// blog_week: the paper's Section 5.3 scenario end to end — a synthetic
// week of blog posts with planted events (stem-cell burst, Beckham burst,
// FA-cup with a gap, iPhone topic drift, week-long Somalia story), run
// through the engine, printing per-day clusters for the planted events
// and the stable-cluster chains that recover them.
//
// Build & run:  ./build/examples/blog_week

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "gen/corpus_generator.h"

using namespace stabletext;

int main() {
  CorpusGenOptions corpus_options;
  corpus_options.days = 7;
  corpus_options.posts_per_day = 1500;
  corpus_options.vocabulary = 4000;
  corpus_options.min_words_per_post = 12;
  corpus_options.max_words_per_post = 28;
  corpus_options.micro_events = 150;  // Background chatter stories.
  corpus_options.script = EventScript::PaperWeek();
  CorpusGenerator generator(corpus_options);

  EngineOptions options;
  options.gap = 2;  // The FA-cup event has a two-day gap.
  options.clustering.pruning.rho_threshold = 0.2;
  options.clustering.pruning.min_pair_support = 5;
  options.affinity.theta = 0.1;
  Engine engine(options);

  std::printf("generating and clustering 7 days of posts...\n");
  for (uint32_t day = 0; day < 7; ++day) {
    auto tick = engine.IngestText(generator.GenerateDay(day));
    if (!tick.ok()) {
      std::printf("day %u failed: %s\n", day,
                  tick.status().ToString().c_str());
      return 1;
    }
    std::printf("  day %u: %zu clusters\n", day,
                engine.interval_result(day).clusters.size());
  }

  // Show the planted single-day events (Figures 1 and 2 analogs).
  auto show_event = [&](uint32_t day, const char* stem,
                        const char* label) {
    const KeywordId id = engine.dict().Lookup(stem);
    if (id == kInvalidKeyword) return;
    for (const Cluster& c : engine.interval_result(day).clusters) {
      if (c.Contains(id)) {
        std::printf("%s (day %u): %s\n", label, day,
                    c.ToString(engine.dict()).c_str());
        return;
      }
    }
  };
  std::printf("\nplanted single-day events recovered as clusters:\n");
  show_event(2, "amniot", "stem-cell discovery (Figure 1 analog)");
  show_event(6, "beckham", "Beckham to LA Galaxy (Figure 2 analog)");

  std::printf("\nfull-week stable clusters (Figure 16 analog):\n");
  Query full;
  full.k = 2;
  full.l = 0;  // Full paths.
  auto full_result = engine.Query(full);
  if (full_result.ok()) {
    for (const auto& chain : full_result.value().chains) {
      std::printf("%s\n", engine.RenderChain(chain).c_str());
    }
  }

  std::printf("normalized stable clusters (length >= 3):\n");
  Query normalized;
  normalized.mode = FinderMode::kNormalized;
  normalized.k = 3;
  normalized.l = 3;
  auto normalized_result = engine.Query(normalized);
  if (normalized_result.ok()) {
    for (const auto& chain : normalized_result.value().chains) {
      std::printf("%s\n", engine.RenderChain(chain).c_str());
    }
  }

  // Diversified top-k (the Section 4 affix-constraint variant): no two
  // reported chains may share their first/last two clusters.
  std::printf("diversified stable clusters (length 3):\n");
  Query diversified;
  diversified.k = 3;
  diversified.l = 3;
  diversified.diversify_prefix = 2;
  diversified.diversify_suffix = 2;
  auto diversified_result = engine.Query(diversified);
  if (diversified_result.ok()) {
    for (const auto& chain : diversified_result.value().chains) {
      std::printf("%s\n", engine.RenderChain(chain).c_str());
    }
  }

  // Gap survival (Figure 4 analog): find a chain containing liverpool
  // that skips days.
  const KeywordId liverpool = engine.dict().Lookup("liverpool");
  Query mid;
  mid.k = 200;
  mid.l = 3;
  auto mid_result = engine.Query(mid);
  if (mid_result.ok() && liverpool != kInvalidKeyword) {
    for (const auto& chain : mid_result.value().chains) {
      if (!chain.clusters.front()->Contains(liverpool)) continue;
      bool has_gap = false;
      for (size_t i = 1; i < chain.clusters.size(); ++i) {
        if (chain.clusters[i]->interval -
                chain.clusters[i - 1]->interval > 1) {
          has_gap = true;
        }
      }
      if (has_gap) {
        std::printf(
            "FA-cup chain surviving a gap (Figure 4 analog):\n%s\n",
            engine.RenderChain(chain).c_str());
        break;
      }
    }
  }
  return 0;
}
