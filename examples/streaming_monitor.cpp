// streaming_monitor: the Section 4.6 online scenario, end to end. Posts
// arrive one interval at a time (as from the BlogScope crawler); every
// tick is committed with Engine::IngestText and the current top-k stable
// clusters are re-reported immediately with an online Query — no batch
// rebuild, no barrier. The warm streaming finder inside the engine only
// touches the g+1-interval window per tick (Section 4.6), so each
// report costs the marginal work of the newest interval.
//
// While the week streams in, a small fleet of concurrent readers keeps
// polling the same engine from other threads — the serving scenario.
// Snapshot isolation guarantees each of their answers is one committed
// epoch, so they run wait-free alongside every ingest.
//
// Build & run:  ./build/examples/streaming_monitor

#include <atomic>
#include <cstdio>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "util/thread_pool.h"

using namespace stabletext;

int main() {
  // A synthetic feed: a week of blog posts with planted events (the
  // Section 5.3 script), delivered day by day.
  CorpusGenOptions corpus_options;
  corpus_options.days = 7;
  corpus_options.posts_per_day = 600;
  corpus_options.vocabulary = 3000;
  corpus_options.min_words_per_post = 12;
  corpus_options.max_words_per_post = 28;
  corpus_options.micro_events = 60;
  corpus_options.script = EventScript::PaperWeek();
  CorpusGenerator generator(corpus_options);

  EngineOptions options;
  options.gap = 1;
  options.clustering.pruning.rho_threshold = 0.2;
  options.clustering.pruning.min_pair_support = 5;
  options.affinity.theta = 0.1;
  Engine monitor(options);

  Query query;
  query.algorithm = FinderAlgorithm::kOnline;
  query.k = 3;
  query.l = 3;  // Watch for stories stable across 3 intervals.

  std::printf(
      "streaming %u days; reporting top-%zu stable chains of length %u "
      "after each arrival\n\n",
      corpus_options.days, query.k, query.l);

  // The concurrent reader fleet: polls bfs and online queries against
  // whatever epoch is currently published, the whole time ingest runs.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_queries{0};
  std::atomic<uint64_t> reader_epochs_seen{0};
  std::atomic<bool> reader_ok{true};
  ReaderFleet fleet(2, [&](size_t reader) {
    Query poll = query;
    if (reader % 2 == 1) poll.algorithm = FinderAlgorithm::kBfs;
    uint64_t last_epoch = 0;
    uint64_t epochs = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto r = monitor.Query(poll);
      if (!r.ok()) {
        reader_ok.store(false, std::memory_order_relaxed);
        break;
      }
      if (r.value().epoch < last_epoch) {
        // Epochs are monotone per reader; seeing one go backwards would
        // mean a torn snapshot.
        reader_ok.store(false, std::memory_order_relaxed);
        break;
      }
      if (r.value().epoch > last_epoch) ++epochs;
      last_epoch = r.value().epoch;
      reader_queries.fetch_add(1, std::memory_order_relaxed);
    }
    reader_epochs_seen.fetch_add(epochs, std::memory_order_relaxed);
  });

  // Any failure must release the fleet before exiting, or the readers
  // would spin on !done forever while the destructor joins them.
  auto fail = [&](const char* what, const Status& status) {
    std::printf("%s failed: %s\n", what, status.ToString().c_str());
    done.store(true, std::memory_order_release);
    fleet.Join();
    return 1;
  };

  for (uint32_t day = 0; day < corpus_options.days; ++day) {
    // A new batch arrives from the crawler; ingest commits it.
    auto tick = monitor.IngestText(generator.GenerateDay(day));
    if (!tick.ok()) return fail("ingest", tick.status());

    auto top = monitor.Query(query);
    if (!top.ok()) return fail("query", top.status());
    std::printf("tick %2u: %3zu clusters",
                tick.value(),
                monitor.interval_result(day).clusters.size());
    if (top.value().chains.empty()) {
      std::printf("  (no length-%u chains yet)\n", query.l);
      continue;
    }
    std::printf("  best");
    for (const StableClusterChain& chain : top.value().chains) {
      std::printf(" %s", chain.path.ToString().c_str());
    }
    std::printf("\n");
  }

  done.store(true, std::memory_order_release);
  fleet.Join();
  std::printf(
      "\nconcurrent readers: %llu snapshot-isolated queries during "
      "ingest, %llu epoch advances observed, %s\n",
      static_cast<unsigned long long>(reader_queries.load()),
      static_cast<unsigned long long>(reader_epochs_seen.load()),
      reader_ok.load() ? "all consistent" : "INCONSISTENT");
  if (!reader_ok.load()) return 1;

  // Show the best chain in full at end of week.
  auto final_top = monitor.Query(query);
  if (final_top.ok() && !final_top.value().chains.empty()) {
    std::printf("\nbest stable chain at end of week:\n%s",
                monitor.RenderChain(final_top.value().chains[0]).c_str());
  }

  const EngineStats stats = monitor.stats();
  std::printf(
      "\n%u intervals, %zu cluster nodes, %zu edges, %zu keywords — each "
      "tick only\njoined against its g+1-interval frontier; no past work "
      "was redone (Section 4.6).\n",
      stats.intervals, stats.clusters, stats.edges, stats.keywords);
  std::printf(
      "last epoch published in %.1f us (%zu adjacency chunks shared with "
      "the\nprevious epoch, %zu copied); ~%zu KB resident for the "
      "published epoch.\n",
      stats.publish_ns / 1e3, stats.shared_chunk_count,
      stats.copied_chunk_count, stats.resident_bytes / 1024);
  return 0;
}
