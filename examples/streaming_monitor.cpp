// streaming_monitor: the Section 4.6 online scenario. Intervals arrive
// one at a time (as from a crawler); after every arrival the monitor
// reports the current top-k stable clusters without recomputing history.
// Uses the OnlineStableFinder on cluster graphs, simulating a feed where
// each "tick" delivers the next interval's clusters and affinities.
//
// Build & run:  ./build/examples/streaming_monitor

#include <cstdio>

#include "gen/cluster_graph_generator.h"
#include "stable/online_finder.h"

using namespace stabletext;

int main() {
  // A synthetic feed: 12 intervals, 50 clusters per interval, average
  // out degree 4, gap 1 — the same workload model as the paper's
  // Section 5 generator.
  ClusterGraphGenOptions gen_options;
  gen_options.m = 12;
  gen_options.n = 50;
  gen_options.d = 4;
  gen_options.g = 1;
  gen_options.seed = 20070106;
  ClusterGraph feed = ClusterGraphGenerator::Generate(gen_options);

  OnlineFinderOptions options;
  options.k = 3;
  options.l = 4;  // Watch for stories stable across 4 intervals.
  options.gap = 1;
  OnlineStableFinder monitor(options);

  std::printf(
      "streaming %u intervals; reporting top-%zu stable paths of length "
      "%u after each arrival\n\n",
      feed.interval_count(), options.k, options.l);

  for (uint32_t interval = 0; interval < feed.interval_count();
       ++interval) {
    // A new batch arrives from the crawler.
    monitor.BeginInterval();
    for (size_t j = 0; j < feed.IntervalNodes(interval).size(); ++j) {
      auto node = monitor.AddNode();
      if (!node.ok()) return 1;
    }
    for (NodeId c : feed.IntervalNodes(interval)) {
      for (const ClusterGraphEdge& pe : feed.Parents(c)) {
        if (!monitor.AddEdge(pe.target, c, pe.weight).ok()) return 1;
      }
    }
    Status s = monitor.EndInterval();
    if (!s.ok()) {
      std::printf("EndInterval failed: %s\n", s.ToString().c_str());
      return 1;
    }

    std::printf("tick %2u: ", interval);
    if (monitor.TopK().empty()) {
      std::printf("(no length-%u paths yet)\n", options.l);
      continue;
    }
    std::printf("best ");
    for (const StablePath& p : monitor.TopK()) {
      std::printf(" %s", p.ToString().c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\ntotal node reads: %llu, node writes: %llu — each tick only "
      "touched its\ng+1-interval window; no past work was redone "
      "(Section 4.6).\n",
      static_cast<unsigned long long>(monitor.io().page_reads),
      static_cast<unsigned long long>(monitor.io().page_writes));
  return 0;
}
