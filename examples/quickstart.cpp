// Quickstart: the whole API on a tiny hand-written corpus.
//
//   1. Ingest raw posts, one interval (day) at a time.
//   2. Query whenever you like — there is no build barrier; results
//      always reflect everything ingested so far.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"

using stabletext::Engine;
using stabletext::EngineOptions;
using stabletext::FinderAlgorithm;
using stabletext::Query;

int main() {
  EngineOptions options;
  options.gap = 1;  // Allow one missing day inside a stable cluster.

  Engine engine(options);

  // Day 0: lots of chatter about a phone launch; some soccer noise.
  std::printf("ingesting day 0...\n");
  auto day = engine.IngestText({
      "the new apple iphone launch amazed everyone at macworld",
      "apple iphone macworld keynote today",
      "iphone apple launch macworld touchscreen demo",
      "apple macworld iphone announcement",
      "soccer game tonight was great",
      "my cat slept all day",
  });
  if (!day.ok()) return 1;

  // Day 1: the story continues.
  std::printf("ingesting day 1...\n");
  day = engine.IngestText({
      "apple iphone reviews macworld recap",
      "the iphone apple hype continues after macworld",
      "iphone apple pricing rumors from macworld",
      "apple iphone macworld what a week",
      "made pasta for dinner",
  });
  if (!day.ok()) return 1;

  // Queries are valid between ingests: after two days the best chain is
  // one day long.
  Query query;
  query.algorithm = FinderAlgorithm::kBfs;
  query.k = 1;
  query.l = 1;
  auto so_far = engine.Query(query);
  if (so_far.ok() && !so_far.value().chains.empty()) {
    std::printf("\nbest chain after two days:\n%s\n",
                engine.RenderChain(so_far.value().chains[0]).c_str());
  }

  // Day 2: the topic drifts to a lawsuit.
  std::printf("ingesting day 2...\n");
  day = engine.IngestText({
      "cisco sues apple over the iphone trademark",
      "apple iphone cisco lawsuit trademark claim",
      "the cisco apple iphone lawsuit surprised nobody",
      "iphone apple cisco trademark fight",
      "raining again today",
  });
  if (!day.ok()) return 1;

  // Per-day keyword clusters (Section 3 of the paper).
  for (uint32_t d = 0; d < engine.interval_count(); ++d) {
    const auto& result = engine.interval_result(d);
    std::printf("day %u: %zu cluster(s)\n", d, result.clusters.size());
    for (const auto& cluster : result.clusters) {
      std::printf("  %s\n", cluster.ToString(engine.dict()).c_str());
    }
  }

  // Stable clusters across days (Section 4), now spanning all three.
  query.k = 3;
  query.l = 2;
  auto top = engine.Query(query);
  if (!top.ok()) {
    std::printf("Query: %s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop stable clusters across the three days:\n");
  for (const auto& chain : top.value().chains) {
    std::printf("%s\n", engine.RenderChain(chain).c_str());
  }
  std::printf(
      "note the topic drift: the chain tracks the iphone cluster from "
      "launch\nvocabulary to lawsuit vocabulary, exactly like Figure 15 "
      "of the paper.\n");
  return 0;
}
