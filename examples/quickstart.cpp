// Quickstart: the whole API on a tiny hand-written corpus.
//
//   1. Feed raw posts, one interval (day) at a time.
//   2. Build the cluster graph.
//   3. Ask for stable clusters.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"

using stabletext::FinderKind;
using stabletext::PipelineOptions;
using stabletext::StableClusterPipeline;

int main() {
  PipelineOptions options;
  options.gap = 1;  // Allow one missing day inside a stable cluster.

  StableClusterPipeline pipeline(options);

  // Day 0: lots of chatter about a phone launch; some soccer noise.
  std::printf("adding day 0...\n");
  stabletext::Status s = pipeline.AddIntervalText({
      "the new apple iphone launch amazed everyone at macworld",
      "apple iphone macworld keynote today",
      "iphone apple launch macworld touchscreen demo",
      "apple macworld iphone announcement",
      "soccer game tonight was great",
      "my cat slept all day",
  });
  if (!s.ok()) return 1;

  // Day 1: the story continues.
  std::printf("adding day 1...\n");
  s = pipeline.AddIntervalText({
      "apple iphone reviews macworld recap",
      "the iphone apple hype continues after macworld",
      "iphone apple pricing rumors from macworld",
      "apple iphone macworld what a week",
      "made pasta for dinner",
  });
  if (!s.ok()) return 1;

  // Day 2: the topic drifts to a lawsuit.
  std::printf("adding day 2...\n");
  s = pipeline.AddIntervalText({
      "cisco sues apple over the iphone trademark",
      "apple iphone cisco lawsuit trademark claim",
      "the cisco apple iphone lawsuit surprised nobody",
      "iphone apple cisco trademark fight",
      "raining again today",
  });
  if (!s.ok()) return 1;

  // Per-day keyword clusters (Section 3 of the paper).
  for (uint32_t day = 0; day < pipeline.interval_count(); ++day) {
    const auto& result = pipeline.interval_result(day);
    std::printf("day %u: %zu cluster(s)\n", day, result.clusters.size());
    for (const auto& cluster : result.clusters) {
      std::printf("  %s\n",
                  cluster.ToString(pipeline.dict()).c_str());
    }
  }

  // Link clusters across days and find stable ones (Section 4).
  s = pipeline.BuildClusterGraph();
  if (!s.ok()) {
    std::printf("BuildClusterGraph: %s\n", s.ToString().c_str());
    return 1;
  }
  auto chains = pipeline.FindStableClusters(/*k=*/3, /*l=*/2,
                                            FinderKind::kBfs);
  if (!chains.ok()) {
    std::printf("FindStableClusters: %s\n",
                chains.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop stable clusters across the three days:\n");
  for (const auto& chain : chains.value()) {
    std::printf("%s\n", pipeline.RenderChain(chain).c_str());
  }
  std::printf(
      "note the topic drift: the chain tracks the iphone cluster from "
      "launch\nvocabulary to lawsuit vocabulary, exactly like Figure 15 "
      "of the paper.\n");
  return 0;
}
