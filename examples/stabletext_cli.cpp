// stabletext_cli: command-line driver for the engine. Subcommands:
//
//   gen <out.corpus> [days] [posts_per_day] [micro_events] [seed]
//       Generate a synthetic planted-event corpus (PaperWeek script).
//   ingest <corpus> [--gap N] [--threads N] [--save out.graph]
//          [--data-dir DIR [--durable]]
//       Stream the corpus tick by tick through the engine, printing
//       per-tick commit stats; optionally persist the cluster graph.
//       With --data-dir the engine runs durably: every commit is
//       WAL-logged and checkpointed under DIR, and a later run (or
//       `recover`) resumes from exactly the committed state.
//   recover <data-dir> [--gap N] [--threads N] [--algo ...] [--k N]
//           [--l N]
//       Reopen a durable engine from its data directory: restore the
//       newest checkpoint, replay the WAL tail, report the recovered
//       epoch and answer one query against the recovered state.
//   query <corpus> [--algo bfs|dfs|ta|brute-force|online]
//         [--mode kl-stable|normalized] [--k N] [--l N] [--gap N]
//         [--threads N] [--diversify P,S] [--per-tick]
//       Ingest and answer one query; --per-tick re-reports the top-k
//       after every ingested interval (the Section 4.6 monitor).
//   serve <corpus> [--readers N] [--algo ...] [--mode ...] [--k N]
//         [--l N] [--gap N] [--threads N]
//         [--listen HOST:PORT [--max-inflight N] [--tick-ms MS]]
//       Concurrent serving: streams the corpus tick by tick while
//       --readers threads query the engine the whole time (snapshot
//       isolation — every answer is a committed epoch). Reports reader
//       throughput and query-cache hit rate at the end.
//       With --listen the readers are network clients instead: a
//       net::Server accepts connections on HOST:PORT (--readers worker
//       threads, --max-inflight admission cap), ingest is paced by
//       --tick-ms per interval so clients overlap live publishes, and
//       the process keeps serving after ingest until SIGTERM/SIGINT
//       triggers a graceful drain (exit 0).
//   client <ping|query|stats|subscribe> --listen HOST:PORT
//          [--algo ...] [--mode ...] [--k N] [--l N] [--render]
//          [--deltas N]
//       Talk to a running `serve --listen` server. `query` runs one
//       admission-controlled query (RETRY handled with backoff);
//       `subscribe` registers a standing query and prints pushed
//       per-epoch deltas until --deltas N frames arrived (or the
//       server said BYE).
//   stats <corpus> [--gap N] [--threads N]
//       Engine stats after ingesting the corpus.
//   cluster <corpus> <out_prefix>
//       Run Section 3 per interval; writes <out_prefix>.dayN.clusters
//       (cluster_io format) and <out_prefix>.dict.
//   refine <corpus> <keyword> <day>
//       Query-refinement suggestions for a keyword on a given day.
//   topk <in.graph> [--algo ...] [--mode ...] [--k N] [--l N]
//       Query a persisted cluster graph through the finder registry.
//
// Build & run:  ./build/examples/stabletext_cli gen /tmp/week.corpus

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_io.h"
#include "core/engine.h"
#include "core/query_refiner.h"
#include "core/sharded_engine.h"
#include "gen/corpus_generator.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "stable/cluster_graph_io.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace stabletext;

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

EngineOptions DefaultEngineOptions(uint32_t gap, size_t threads = 1) {
  EngineOptions options;
  options.gap = gap;
  options.threads = threads;
  options.clustering.pruning.rho_threshold = 0.2;
  options.clustering.pruning.min_pair_support = 5;
  options.affinity.theta = 0.1;
  return options;
}

// Shared flag set for the engine-backed subcommands. Positional arguments
// (the corpus path, etc.) are collected in order.
struct CliArgs {
  std::vector<std::string> positional;
  Query query;
  uint32_t gap = 1;
  size_t threads = 1;
  // --shards N: route ingest/query/serve/recover through a ShardedEngine
  // with N hash-partitioned shards. 0 (default) = plain single engine.
  uint32_t shards = 0;
  size_t readers = 2;
  bool per_tick = false;
  bool durable = false;
  std::string data_dir;
  std::string save_path;
  // Network serving / client flags.
  std::string listen;       // host:port for serve --listen / client.
  size_t max_inflight = 64; // Admission cap (serve --listen).
  long tick_ms = 0;         // Ingest pacing per interval (serve --listen).
  long deltas = 3;          // Pushes to print before client subscribe exits.
  bool render = false;      // Ask the server to render chain text.
  Status status;
};

// Builds the engine for an engine-backed subcommand. --data-dir (or
// --durable) routes construction through Engine::Recover, so an existing
// data directory resumes where the last run stopped.
Result<std::unique_ptr<Engine>> MakeEngine(const CliArgs& args) {
  EngineOptions options = DefaultEngineOptions(args.gap, args.threads);
  if (!args.durable && args.data_dir.empty()) {
    return std::make_unique<Engine>(options);
  }
  if (args.data_dir.empty()) {
    return Status::InvalidArgument("--durable needs --data-dir DIR");
  }
  options.durability.enabled = true;
  options.durability.dir = args.data_dir;
  return Engine::Recover(std::move(options));
}

// Strict decimal parse: the whole string must be a number (no silent
// zero for a forgotten or garbled flag value).
bool ParseNum(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

CliArgs ParseCliArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    auto numeric = [&](long* out) {
      const std::string v = value();
      if (!ParseNum(v, out)) {
        args.status = Status::InvalidArgument(
            "flag " + a + " needs a numeric value, got \"" + v + "\"");
        return false;
      }
      return true;
    };
    long n = 0;
    if (a == "--algo") {
      auto algo = ParseFinderAlgorithm(value());
      if (!algo.ok()) {
        args.status = algo.status();
        return args;
      }
      args.query.algorithm = algo.value();
    } else if (a == "--mode") {
      auto mode = ParseFinderMode(value());
      if (!mode.ok()) {
        args.status = mode.status();
        return args;
      }
      args.query.mode = mode.value();
    } else if (a == "--k") {
      if (!numeric(&n)) return args;
      args.query.k = static_cast<size_t>(n);
    } else if (a == "--l") {
      if (!numeric(&n)) return args;
      args.query.l = static_cast<uint32_t>(n);
    } else if (a == "--gap") {
      if (!numeric(&n)) return args;
      args.gap = static_cast<uint32_t>(n);
    } else if (a == "--threads") {
      if (!numeric(&n)) return args;
      args.threads = static_cast<size_t>(std::max(1L, n));
    } else if (a == "--shards") {
      if (!numeric(&n)) return args;
      args.shards = static_cast<uint32_t>(std::max(1L, n));
    } else if (a == "--diversify") {
      // P,S — prefix and suffix node counts (just P applies to both).
      const std::string spec = value();
      const size_t comma = spec.find(',');
      long prefix = 0;
      long suffix = 0;
      const bool ok =
          comma == std::string::npos
              ? ParseNum(spec, &prefix) && (suffix = prefix, true)
              : ParseNum(spec.substr(0, comma), &prefix) &&
                    ParseNum(spec.substr(comma + 1), &suffix);
      if (!ok) {
        args.status = Status::InvalidArgument(
            "--diversify needs P or P,S numbers, got \"" + spec + "\"");
        return args;
      }
      args.query.diversify_prefix = static_cast<uint32_t>(prefix);
      args.query.diversify_suffix = static_cast<uint32_t>(suffix);
    } else if (a == "--readers") {
      if (!numeric(&n)) return args;
      args.readers = static_cast<size_t>(std::max(1L, n));
    } else if (a == "--listen") {
      args.listen = value();
      if (args.listen.empty()) {
        args.status =
            Status::InvalidArgument("--listen needs a HOST:PORT value");
        return args;
      }
    } else if (a == "--max-inflight") {
      if (!numeric(&n)) return args;
      args.max_inflight = static_cast<size_t>(std::max(1L, n));
    } else if (a == "--tick-ms") {
      if (!numeric(&n)) return args;
      args.tick_ms = std::max(0L, n);
    } else if (a == "--deltas") {
      if (!numeric(&n)) return args;
      args.deltas = std::max(1L, n);
    } else if (a == "--render") {
      args.render = true;
    } else if (a == "--per-tick") {
      args.per_tick = true;
    } else if (a == "--durable") {
      args.durable = true;
    } else if (a == "--data-dir") {
      args.data_dir = value();
      args.durable = true;
    } else if (a == "--save") {
      args.save_path = value();
    } else if (!a.empty() && a[0] == '-') {
      args.status = Status::InvalidArgument("unknown flag " + a);
      return args;
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

// Builds the sharded engine for --shards N. Mirrors MakeEngine: with
// --data-dir, construction routes through ShardedEngine::Recover and
// resumes the fleet at its minimum common committed epoch.
Result<std::unique_ptr<ShardedEngine>> MakeShardedEngine(
    const CliArgs& args) {
  ShardedEngineOptions options;
  options.shards = std::max<uint32_t>(1, args.shards);
  options.engine = DefaultEngineOptions(args.gap, args.threads);
  if (!args.durable && args.data_dir.empty()) {
    return std::make_unique<ShardedEngine>(options);
  }
  if (args.data_dir.empty()) {
    return Status::InvalidArgument("--durable needs --data-dir DIR");
  }
  options.engine.durability.enabled = true;
  options.engine.durability.dir = args.data_dir;
  return ShardedEngine::Recover(std::move(options));
}

void PrintChains(const Engine& engine, const QueryResult& result) {
  for (const StableClusterChain& chain : result.chains) {
    std::printf("%s\n", engine.RenderChain(chain).c_str());
  }
}

void PrintChains(const ShardedEngine& engine,
                 const ShardedQueryResult& result) {
  for (size_t i = 0; i < result.chains.size(); ++i) {
    std::printf("shard %u:\n%s\n", result.chain_shard[i],
                engine.RenderChain(result.chains[i], result.chain_shard[i])
                    .c_str());
  }
}

// The measured threshold-merge early termination of one sharded query.
void PrintMergeStats(const ShardMergeStats& merge) {
  std::printf("merge: %llu chain(s) merged;",
              static_cast<unsigned long long>(merge.paths_merged));
  for (size_t s = 0; s < merge.paths_pulled.size(); ++s) {
    std::printf(" shard %zu pulled %llu/%llu", s,
                static_cast<unsigned long long>(merge.paths_pulled[s]),
                static_cast<unsigned long long>(merge.paths_available[s]));
  }
  std::printf("; %u stream(s) early-terminated\n",
              merge.early_terminations);
}

int CmdGen(int argc, char** argv) {
  if (argc < 1) return 2;
  // The optional operands are all strict decimals; a garbled one is a
  // usage error, not a silent zero.
  long nums[4] = {7, 2000, 200, 7};
  for (int i = 1; i < argc && i <= 4; ++i) {
    if (!ParseNum(argv[i], &nums[i - 1]) || nums[i - 1] < 0) {
      std::fprintf(stderr, "gen: operand %d must be a number, got \"%s\"\n",
                   i, argv[i]);
      return 2;
    }
  }
  CorpusGenOptions options;
  options.days = static_cast<uint32_t>(nums[0]);
  options.posts_per_day = static_cast<uint32_t>(nums[1]);
  options.micro_events = static_cast<uint32_t>(nums[2]);
  options.seed = static_cast<uint64_t>(nums[3]);
  options.min_words_per_post = 12;
  options.max_words_per_post = 28;
  options.script = EventScript::PaperWeek();
  CorpusGenerator generator(options);
  Status s = generator.GenerateToFile(argv[0]);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %u days x %u posts to %s\n", options.days,
              options.posts_per_day, argv[0]);
  return 0;
}

// Streams the corpus through the engine tick by tick, printing a commit
// line per interval — the serving-shaped ingest path.
// ingest --shards N: the multi-writer path. Every tick fans out across
// the shard fleet; the per-tick line reports the aggregate graph.
int ShardedIngest(ShardedEngine& engine, const CliArgs& args) {
  if (engine.interval_count() > 0) {
    std::printf("recovered %llu committed interval(s) from %s\n",
                static_cast<unsigned long long>(engine.interval_count()),
                args.data_dir.c_str());
  }
  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>& posts) {
        const EngineStats stats = engine.stats();
        std::printf(
            "tick %2u committed across %u shard(s): %4zu posts, graph "
            "now %zu nodes / %zu edges\n",
            tick, engine.shard_count(), posts.size(), stats.clusters,
            stats.edges);
        return Status::OK();
      });
  if (!ingested.ok()) return Fail(ingested.status());
  if (args.durable) {
    const EngineStats stats = engine.stats();
    std::printf(
        "durability: %llu WAL bytes, %llu fsyncs, last checkpoint "
        "%.1f ms (fleet aggregate)\n",
        static_cast<unsigned long long>(stats.wal_bytes),
        static_cast<unsigned long long>(stats.io.fsyncs),
        stats.checkpoint_ns / 1e6);
  }
  return 0;
}

int CmdIngest(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.positional.empty()) return 2;
  if (args.shards > 0) {
    if (!args.save_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--save is per-graph and not supported with --shards"));
    }
    auto made = MakeShardedEngine(args);
    if (!made.ok()) return Fail(made.status());
    return ShardedIngest(*made.value(), args);
  }
  auto made = MakeEngine(args);
  if (!made.ok()) return Fail(made.status());
  Engine& engine = *made.value();
  if (engine.interval_count() > 0) {
    std::printf("recovered %u committed interval(s) from %s\n",
                engine.interval_count(), args.data_dir.c_str());
  }

  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>& posts) {
        const EngineStats stats = engine.stats();
        std::printf(
            "tick %2u committed: %4zu posts, %3zu clusters, graph now "
            "%zu nodes / %zu edges\n",
            tick, posts.size(),
            engine.interval_result(tick).clusters.size(), stats.clusters,
            stats.edges);
        return Status::OK();
      });
  if (!ingested.ok()) return Fail(ingested.status());
  if (args.durable) {
    const EngineStats stats = engine.stats();
    std::printf(
        "durability: %llu WAL bytes, %llu fsyncs, last checkpoint "
        "%.1f ms\n",
        static_cast<unsigned long long>(stats.wal_bytes),
        static_cast<unsigned long long>(stats.io.fsyncs),
        stats.checkpoint_ns / 1e6);
  }
  if (!args.save_path.empty()) {
    Status s = engine.Compact();
    if (!s.ok()) return Fail(s);
    s = SaveClusterGraph(engine.graph(), args.save_path);
    if (!s.ok()) return Fail(s);
    std::printf("cluster graph (%zu nodes, %zu edges) -> %s\n",
                engine.graph().node_count(), engine.graph().edge_count(),
                args.save_path.c_str());
  }
  return 0;
}

// query --shards N: scatter-gather with the threshold merge; prints the
// merged top-k plus the measured early-termination counters.
int ShardedQuery(ShardedEngine& engine, const CliArgs& args) {
  if (!args.per_tick) {
    auto ingested = engine.IngestCorpusFile(args.positional[0]);
    if (!ingested.ok()) return Fail(ingested.status());
    std::fprintf(stderr, "ingested %u interval(s) across %u shard(s)\n",
                 ingested.value(), engine.shard_count());
    auto result = engine.Query(args.query);
    if (!result.ok()) return Fail(result.status());
    PrintChains(engine, result.value());
    PrintMergeStats(result.value().merge);
    return 0;
  }
  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>&) {
        auto result = engine.Query(args.query);
        if (!result.ok()) return result.status();
        std::printf("tick %2u: top-%zu", tick, args.query.k);
        for (const StableClusterChain& chain : result.value().chains) {
          std::printf(" %s", chain.path.ToString().c_str());
        }
        std::printf("\n");
        return Status::OK();
      });
  if (!ingested.ok()) return Fail(ingested.status());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.positional.empty()) return 2;
  if (args.shards > 0) {
    auto made = MakeShardedEngine(args);
    if (!made.ok()) return Fail(made.status());
    return ShardedQuery(*made.value(), args);
  }
  auto made = MakeEngine(args);
  if (!made.ok()) return Fail(made.status());
  Engine& engine = *made.value();

  if (!args.per_tick) {
    auto ingested = engine.IngestCorpusFile(args.positional[0]);
    if (!ingested.ok()) return Fail(ingested.status());
    std::fprintf(stderr, "ingested %u interval(s)\n", ingested.value());
    auto result = engine.Query(args.query);
    if (!result.ok()) return Fail(result.status());
    PrintChains(engine, result.value());
    std::printf("io: %s\n", result.value().finder.io.ToString().c_str());
    return 0;
  }

  // --per-tick: the Section 4.6 monitor — re-report after every arrival.
  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>&) {
        auto result = engine.Query(args.query);
        if (!result.ok()) return result.status();
        std::printf("tick %2u: top-%zu", tick, args.query.k);
        for (const StableClusterChain& chain : result.value().chains) {
          std::printf(" %s", chain.path.ToString().c_str());
        }
        std::printf("\n");
        return Status::OK();
      });
  if (!ingested.ok()) return Fail(ingested.status());
  return 0;
}

// SIGTERM/SIGINT request a graceful serve shutdown (drain in-flight
// queries, flush subscription deltas, BYE every connection).
volatile std::sig_atomic_t g_stop = 0;
void OnStopSignal(int) { g_stop = 1; }

// serve --listen: the engine behind a net::Server. Ingest is paced by
// --tick-ms so network clients overlap live epoch publishes; after the
// corpus ends the process keeps serving until SIGTERM/SIGINT, then
// drains gracefully. Works for Engine and ShardedEngine alike — the
// server fronts both through its ServingBackend.
template <typename EngineT>
int ServeNetwork(EngineT& engine, const CliArgs& args) {
  auto hostport = net::ParseHostPort(args.listen);
  if (!hostport.ok()) return Fail(hostport.status());

  net::ServerOptions options;
  options.host = hostport.value().first;
  options.port = hostport.value().second;
  options.workers = args.readers;
  options.max_inflight = args.max_inflight;
  options.queue_depth = 2 * args.max_inflight;
  net::Server server(&engine, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  g_stop = 0;
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  std::printf("serving on %s:%u (%zu workers, max in-flight %zu)\n",
              options.host.c_str(), server.port(), options.workers,
              options.max_inflight);
  std::fflush(stdout);

  bool interrupted = false;
  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>& posts) {
        std::printf("tick %2u committed: %4zu posts (epoch %u live)\n",
                    tick, posts.size(), tick + 1);
        std::fflush(stdout);
        if (args.tick_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(args.tick_ms));
        }
        if (g_stop) {
          interrupted = true;
          return Status::IOError("interrupted");
        }
        return Status::OK();
      });
  if (!ingested.ok() && !interrupted) {
    server.Shutdown();
    return Fail(ingested.status());
  }

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down: draining queries and subscriptions...\n");
  std::fflush(stdout);
  server.Shutdown();

  EngineStats stats = engine.stats();
  server.FillServingStats(&stats);
  std::printf(
      "served %llu queries (%llu shed, %llu failed), pushed %llu deltas "
      "to %llu subscriptions\n",
      static_cast<unsigned long long>(server.queries_served()),
      static_cast<unsigned long long>(stats.queries_rejected),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<unsigned long long>(stats.pushes_sent),
      static_cast<unsigned long long>(stats.subscriptions_active));
  return 0;
}

// Concurrent serving: the writer streams the corpus tick by tick while a
// fleet of reader threads queries nonstop. Readers are snapshot-isolated
// — each answer comes from one committed epoch — so nothing here locks
// or pauses around ingest.
template <typename EngineT>
int ServeLocal(EngineT& engine, const CliArgs& args) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> max_epoch{0};
  WallTimer timer;
  ReaderFleet fleet(args.readers, [&](size_t reader) {
    // Rotate the requested query with a different *algorithm* (same
    // k/l) so the fleet exercises both the warm streaming path and cold
    // finder runs. Rotating online configurations instead would thrash
    // the single warm-online slot and force a full replay per tick.
    Query alt = args.query;
    alt.algorithm = args.query.algorithm == FinderAlgorithm::kBfs
                        ? FinderAlgorithm::kDfs
                        : FinderAlgorithm::kBfs;
    uint64_t n = reader;
    while (!done.load(std::memory_order_acquire)) {
      auto r = engine.Query((n++ & 1) ? alt : args.query);
      if (!r.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      queries.fetch_add(1, std::memory_order_relaxed);
      uint64_t seen = max_epoch.load(std::memory_order_relaxed);
      while (r.value().epoch > seen &&
             !max_epoch.compare_exchange_weak(seen, r.value().epoch)) {
      }
    }
  });

  auto ingested = engine.IngestCorpusFile(
      args.positional[0],
      [&](uint32_t tick, const std::vector<std::string>& posts) {
        std::printf("tick %2u committed: %4zu posts (readers at work)\n",
                    tick, posts.size());
        return Status::OK();
      });
  const double ingest_seconds = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  fleet.Join();
  if (!ingested.ok()) return Fail(ingested.status());

  const EngineStats stats = engine.stats();
  std::printf(
      "\nserved %llu queries from %zu readers during %.0f ms of ingest "
      "(%.0f q/s), %llu failed\n",
      static_cast<unsigned long long>(queries.load()), args.readers,
      ingest_seconds * 1e3,
      ingest_seconds > 0 ? queries.load() / ingest_seconds : 0.0,
      static_cast<unsigned long long>(failures.load()));
  std::printf(
      "max epoch observed %llu of %llu; query cache %llu hits / %llu "
      "misses\n",
      static_cast<unsigned long long>(max_epoch.load()),
      static_cast<unsigned long long>(engine.interval_count()),
      static_cast<unsigned long long>(stats.query_cache_hits),
      static_cast<unsigned long long>(stats.query_cache_misses));

  auto final_top = engine.Query(args.query);
  if (!final_top.ok()) return Fail(final_top.status());
  PrintChains(engine, final_top.value());
  return 0;
}

int CmdServe(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.positional.empty()) return 2;
  if (args.shards > 0) {
    auto made = MakeShardedEngine(args);
    if (!made.ok()) return Fail(made.status());
    ShardedEngine& engine = *made.value();
    return args.listen.empty() ? ServeLocal(engine, args)
                               : ServeNetwork(engine, args);
  }
  auto made = MakeEngine(args);
  if (!made.ok()) return Fail(made.status());
  Engine& engine = *made.value();
  return args.listen.empty() ? ServeLocal(engine, args)
                             : ServeNetwork(engine, args);
}

// client <ping|query|stats|subscribe> --listen HOST:PORT [...]
// Thin wrapper over net::Client against a running `serve --listen`.
int CmdClient(int argc, char** argv) {
  if (argc < 1) return 2;
  const std::string action = argv[0];
  CliArgs args = ParseCliArgs(argc - 1, argv + 1);
  if (!args.status.ok()) return Fail(args.status);
  if (args.listen.empty()) return 2;
  auto hostport = net::ParseHostPort(args.listen);
  if (!hostport.ok()) return Fail(hostport.status());

  net::Client client;
  Status connected = client.Connect(hostport.value().first,
                                    hostport.value().second,
                                    /*attempts=*/20);
  if (!connected.ok()) return Fail(connected);

  if (action == "ping") {
    auto epoch = client.Ping();
    if (!epoch.ok()) return Fail(epoch.status());
    std::printf("pong: epoch %llu\n",
                static_cast<unsigned long long>(epoch.value()));
    return 0;
  }

  if (action == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status());
    const net::WireStats& s = stats.value();
    std::printf("epoch:                %llu\n",
                static_cast<unsigned long long>(s.epoch));
    std::printf("clusters:             %llu\n",
                static_cast<unsigned long long>(s.clusters));
    std::printf("edges:                %llu\n",
                static_cast<unsigned long long>(s.edges));
    std::printf("keywords:             %llu\n",
                static_cast<unsigned long long>(s.keywords));
    std::printf("resident bytes:       %llu\n",
                static_cast<unsigned long long>(s.resident_bytes));
    std::printf("cache hits/misses:    %llu / %llu\n",
                static_cast<unsigned long long>(s.query_cache_hits),
                static_cast<unsigned long long>(s.query_cache_misses));
    std::printf("queries served:       %llu\n",
                static_cast<unsigned long long>(s.queries_served));
    std::printf("queries rejected:     %llu\n",
                static_cast<unsigned long long>(s.queries_rejected));
    std::printf("queries failed:       %llu\n",
                static_cast<unsigned long long>(s.queries_failed));
    for (size_t i = 0; i < s.shards.size(); ++i) {
      std::printf("shard %zu:              %llu clusters, %llu edges, "
                  "%llu keywords, %llu resident bytes\n",
                  i, static_cast<unsigned long long>(s.shards[i].clusters),
                  static_cast<unsigned long long>(s.shards[i].edges),
                  static_cast<unsigned long long>(s.shards[i].keywords),
                  static_cast<unsigned long long>(
                      s.shards[i].resident_bytes));
    }
    std::printf("subscriptions active: %llu\n",
                static_cast<unsigned long long>(s.subscriptions_active));
    std::printf("pushes sent:          %llu\n",
                static_cast<unsigned long long>(s.pushes_sent));
    return 0;
  }

  if (action == "query") {
    auto result = client.QueryWithRetry(args.query, args.render);
    if (!result.ok()) return Fail(result.status());
    std::printf("epoch %llu%s:\n",
                static_cast<unsigned long long>(result.value().epoch),
                result.value().warm_online ? " (warm online)" : "");
    for (const net::WireChain& chain : result.value().chains) {
      std::printf("  weight %.4f length %u\n", chain.weight, chain.length);
      if (!chain.rendered.empty()) {
        std::printf("%s\n", chain.rendered.c_str());
      }
    }
    return 0;
  }

  if (action == "subscribe") {
    auto sub = client.Subscribe(args.query, args.render);
    if (!sub.ok()) return Fail(sub.status());
    std::printf("subscribed: id %llu, waiting for %ld delta(s)\n",
                static_cast<unsigned long long>(sub.value()), args.deltas);
    std::fflush(stdout);
    for (long received = 0; received < args.deltas;) {
      bool is_bye = false;
      auto push = client.NextPush(/*timeout_ms=*/60000, &is_bye);
      if (!push.ok()) return Fail(push.status());
      if (is_bye) {
        std::printf("server closing (BYE) after %ld delta(s)\n", received);
        return 0;
      }
      const net::WireDelta& delta = push.value();
      std::printf("epoch %llu: top-%llu, %zu change(s)\n",
                  static_cast<unsigned long long>(delta.epoch),
                  static_cast<unsigned long long>(delta.new_size),
                  delta.changes.size());
      for (const auto& change : delta.changes) {
        std::printf("  rank %u: weight %.4f length %u\n", change.first,
                    change.second.weight, change.second.length);
        if (!change.second.rendered.empty()) {
          std::printf("%s\n", change.second.rendered.c_str());
        }
      }
      std::fflush(stdout);
      ++received;
    }
    Status unsub = client.Unsubscribe(sub.value());
    if (!unsub.ok()) return Fail(unsub);
    std::printf("unsubscribed\n");
    return 0;
  }

  std::fprintf(stderr, "unknown client action: %s\n", action.c_str());
  return 2;
}

void PrintEngineStats(const EngineStats& stats) {
  std::printf("intervals:      %u\n", stats.intervals);
  std::printf("clusters:       %zu\n", stats.clusters);
  std::printf("edges:          %zu\n", stats.edges);
  std::printf("keywords:       %zu\n", stats.keywords);
  std::printf("graph bytes:    %zu\n", stats.graph_bytes);
  std::printf("resident bytes: %zu (epoch estimate)\n",
              stats.resident_bytes);
  std::printf("last publish:   %.1f us (%zu chunks shared, %zu copied)\n",
              stats.publish_ns / 1e3, stats.shared_chunk_count,
              stats.copied_chunk_count);
  std::printf("ingest io:      %s\n", stats.io.ToString().c_str());
  std::printf("serving:        %llu subscription(s), %llu push(es), "
              "%llu rejected, %llu failed\n",
              static_cast<unsigned long long>(stats.subscriptions_active),
              static_cast<unsigned long long>(stats.pushes_sent),
              static_cast<unsigned long long>(stats.queries_rejected),
              static_cast<unsigned long long>(stats.queries_failed));
}

int CmdStats(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.positional.empty()) return 2;
  if (args.shards > 0) {
    auto made = MakeShardedEngine(args);
    if (!made.ok()) return Fail(made.status());
    ShardedEngine& engine = *made.value();
    auto ingested = engine.IngestCorpusFile(args.positional[0]);
    if (!ingested.ok()) return Fail(ingested.status());
    PrintEngineStats(engine.stats());
    const std::vector<EngineStats> per = engine.shard_stats();
    for (size_t s = 0; s < per.size(); ++s) {
      std::printf(
          "shard %zu:        %zu clusters, %zu edges, %zu keywords, "
          "%zu resident bytes\n",
          s, per[s].clusters, per[s].edges, per[s].keywords,
          per[s].resident_bytes);
    }
    return 0;
  }
  auto made = MakeEngine(args);
  if (!made.ok()) return Fail(made.status());
  Engine& engine = *made.value();
  auto ingested = engine.IngestCorpusFile(args.positional[0]);
  if (!ingested.ok()) return Fail(ingested.status());
  PrintEngineStats(engine.stats());
  return 0;
}

// Reopens a durable data directory: checkpoint restore + WAL-tail
// replay, then one query against the recovered state.
int CmdRecover(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.data_dir.empty() && !args.positional.empty()) {
    args.data_dir = args.positional[0];
  }
  if (args.data_dir.empty()) return 2;
  args.durable = true;
  if (args.shards > 0) {
    auto made = MakeShardedEngine(args);
    if (!made.ok()) return Fail(made.status());
    ShardedEngine& engine = *made.value();
    const EngineStats stats = engine.stats();
    std::printf(
        "recovered %llu interval(s) from %s across %u shard(s): "
        "%zu clusters, %zu edges, %zu keywords\n",
        static_cast<unsigned long long>(engine.interval_count()),
        args.data_dir.c_str(), engine.shard_count(), stats.clusters,
        stats.edges, stats.keywords);
    if (engine.interval_count() == 0) return 0;
    auto result = engine.Query(args.query);
    if (!result.ok()) return Fail(result.status());
    PrintChains(engine, result.value());
    PrintMergeStats(result.value().merge);
    return 0;
  }
  auto made = MakeEngine(args);
  if (!made.ok()) return Fail(made.status());
  Engine& engine = *made.value();
  const EngineStats stats = engine.stats();
  std::printf(
      "recovered %llu interval(s) from %s: %zu clusters, %zu edges, "
      "%zu keywords\n",
      static_cast<unsigned long long>(stats.recovered_epoch),
      args.data_dir.c_str(), stats.clusters, stats.edges, stats.keywords);
  if (engine.interval_count() == 0) return 0;
  auto result = engine.Query(args.query);
  if (!result.ok()) return Fail(result.status());
  PrintChains(engine, result.value());
  return 0;
}

int CmdCluster(int argc, char** argv) {
  if (argc < 2) return 2;
  Engine engine(DefaultEngineOptions(0));
  auto ingested = engine.IngestCorpusFile(argv[0]);
  if (!ingested.ok()) return Fail(ingested.status());
  const std::string prefix = argv[1];
  for (uint32_t day = 0; day < engine.interval_count(); ++day) {
    const auto& result = engine.interval_result(day);
    const std::string path =
        prefix + ".day" + std::to_string(day) + ".clusters";
    Status s = SaveClusters(result.clusters, path);
    if (!s.ok()) return Fail(s);
    std::printf("day %u: %zu clusters -> %s\n", day,
                result.clusters.size(), path.c_str());
  }
  Status s = engine.dict().Save(prefix + ".dict");
  if (!s.ok()) return Fail(s);
  std::printf("dictionary (%zu keywords) -> %s.dict\n",
              engine.dict().size(), prefix.c_str());
  return 0;
}

int CmdRefine(int argc, char** argv) {
  if (argc < 3) return 2;
  long day_num = 0;
  if (!ParseNum(argv[2], &day_num) || day_num < 0) {
    std::fprintf(stderr, "refine: <day> must be a number, got \"%s\"\n",
                 argv[2]);
    return 2;
  }
  Engine engine(DefaultEngineOptions(0));
  auto ingested = engine.IngestCorpusFile(argv[0]);
  if (!ingested.ok()) return Fail(ingested.status());
  QueryRefiner refiner(&engine);
  const uint32_t day = static_cast<uint32_t>(day_num);
  auto suggestions = refiner.Suggest(argv[1], day);
  if (suggestions.empty()) {
    std::printf("no refinements for \"%s\" on day %u\n", argv[1], day);
    return 0;
  }
  for (const Refinement& r : suggestions) {
    std::printf("%-20s %.3f\n", r.keyword.c_str(), r.score);
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  CliArgs args = ParseCliArgs(argc, argv);
  if (!args.status.ok()) return Fail(args.status);
  if (args.positional.empty()) return 2;
  auto graph = LoadClusterGraph(args.positional[0]);
  if (!graph.ok()) return Fail(graph.status());
  auto result = RunFinder(graph.value(), args.query);
  if (!result.ok()) return Fail(result.status());
  for (const StablePath& p : result.value().paths) {
    std::printf("%s\n", p.ToString().c_str());
  }
  std::printf("io: %s\n", result.value().io.ToString().c_str());
  return 0;
}

// Per-command usage line, printed to stderr on missing/garbled operands.
const char* UsageFor(const std::string& cmd) {
  if (cmd == "gen")
    return "gen <out.corpus> [days] [posts_per_day] [micro_events] [seed]";
  if (cmd == "ingest")
    return "ingest <corpus> [--gap N] [--threads N] [--shards N] "
           "[--save out.graph] [--data-dir DIR [--durable]]";
  if (cmd == "recover")
    return "recover <data-dir> [--gap N] [--threads N] [--shards N] "
           "[--algo A] [--k N] [--l N]";
  if (cmd == "query")
    return "query <corpus> [--algo A] [--mode M] [--k N] [--l N] [--gap N] "
           "[--threads N] [--shards N] [--diversify P,S] [--per-tick]";
  if (cmd == "serve")
    return "serve <corpus> [--readers N] [--algo A] [--mode M] [--k N] "
           "[--l N] [--gap N] [--threads N] [--shards N] "
           "[--listen HOST:PORT [--max-inflight N] [--tick-ms MS]]";
  if (cmd == "client")
    return "client <ping|query|stats|subscribe> --listen HOST:PORT "
           "[--algo A] [--mode M] [--k N] [--l N] [--render] [--deltas N]";
  if (cmd == "stats")
    return "stats <corpus> [--gap N] [--threads N] [--shards N]";
  if (cmd == "cluster") return "cluster <corpus> <out_prefix>";
  if (cmd == "refine") return "refine <corpus> <keyword> <day>";
  if (cmd == "topk")
    return "topk <in.graph> [--algo A] [--mode M] [--k N] [--l N]";
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s "
        "<gen|ingest|recover|query|serve|client|stats|cluster|refine|topk> "
        "...\n"
        "(see the header comment of stabletext_cli.cpp)\n",
        argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  int rc = 2;
  if (cmd == "gen") rc = CmdGen(argc - 2, argv + 2);
  else if (cmd == "ingest") rc = CmdIngest(argc - 2, argv + 2);
  else if (cmd == "recover") rc = CmdRecover(argc - 2, argv + 2);
  else if (cmd == "query") rc = CmdQuery(argc - 2, argv + 2);
  else if (cmd == "serve") rc = CmdServe(argc - 2, argv + 2);
  else if (cmd == "client") rc = CmdClient(argc - 2, argv + 2);
  else if (cmd == "stats") rc = CmdStats(argc - 2, argv + 2);
  else if (cmd == "cluster") rc = CmdCluster(argc - 2, argv + 2);
  else if (cmd == "refine") rc = CmdRefine(argc - 2, argv + 2);
  else if (cmd == "topk") rc = CmdTopK(argc - 2, argv + 2);
  else std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  if (rc == 2) {
    const char* usage = UsageFor(cmd);
    if (usage != nullptr) {
      std::fprintf(stderr, "usage: %s %s\n", argv[0], usage);
    }
  }
  return rc;
}
