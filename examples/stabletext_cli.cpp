// stabletext_cli: command-line driver for the full system. Subcommands:
//
//   gen <out.corpus> [days] [posts_per_day] [micro_events] [seed]
//       Generate a synthetic planted-event corpus (PaperWeek script).
//   cluster <corpus> <out_prefix>
//       Run Section 3 per interval; writes <out_prefix>.dayN.clusters
//       (cluster_io format) and <out_prefix>.dict.
//   stable <corpus> [k] [l] [gap] [bfs|dfs]
//       End-to-end kl-stable clusters; l = 0 means full paths.
//   normalized <corpus> [k] [lmin] [gap]
//       Normalized stable clusters.
//   refine <corpus> <keyword> <day>
//       Query-refinement suggestions for a keyword on a given day.
//   savegraph <corpus> <out.graph> [gap]
//       Build and persist the cluster graph.
//   topk <in.graph> [k] [l] [bfs|dfs]
//       Query a persisted cluster graph.
//
// Build & run:  ./build/examples/stabletext_cli gen /tmp/week.corpus

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/cluster_io.h"
#include "core/pipeline.h"
#include "core/query_refiner.h"
#include "gen/corpus_generator.h"
#include "stable/cluster_graph_io.h"
#include "stable/dfs_finder.h"

namespace {

using namespace stabletext;

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

PipelineOptions DefaultPipelineOptions(uint32_t gap) {
  PipelineOptions options;
  options.gap = gap;
  options.clustering.pruning.rho_threshold = 0.2;
  options.clustering.pruning.min_pair_support = 5;
  options.affinity.theta = 0.1;
  return options;
}

Status LoadPipeline(const std::string& corpus, uint32_t /*gap*/,
                    StableClusterPipeline* pipeline) {
  ST_RETURN_IF_ERROR(pipeline->AddCorpusFile(corpus));
  std::fprintf(stderr, "clustered %u interval(s)\n",
               pipeline->interval_count());
  return Status::OK();
}

int CmdGen(int argc, char** argv) {
  if (argc < 1) return 2;
  CorpusGenOptions options;
  options.days = argc > 1 ? std::atoi(argv[1]) : 7;
  options.posts_per_day = argc > 2 ? std::atoi(argv[2]) : 2000;
  options.micro_events = argc > 3 ? std::atoi(argv[3]) : 200;
  options.seed = argc > 4 ? std::atoll(argv[4]) : 7;
  options.min_words_per_post = 12;
  options.max_words_per_post = 28;
  options.script = EventScript::PaperWeek();
  CorpusGenerator generator(options);
  Status s = generator.GenerateToFile(argv[0]);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %u days x %u posts to %s\n", options.days,
              options.posts_per_day, argv[0]);
  return 0;
}

int CmdCluster(int argc, char** argv) {
  if (argc < 2) return 2;
  StableClusterPipeline pipeline(DefaultPipelineOptions(0));
  Status s = LoadPipeline(argv[0], 0, &pipeline);
  if (!s.ok()) return Fail(s);
  const std::string prefix = argv[1];
  for (uint32_t day = 0; day < pipeline.interval_count(); ++day) {
    const auto& result = pipeline.interval_result(day);
    const std::string path =
        prefix + ".day" + std::to_string(day) + ".clusters";
    s = SaveClusters(result.clusters, path);
    if (!s.ok()) return Fail(s);
    std::printf("day %u: %zu clusters -> %s\n", day,
                result.clusters.size(), path.c_str());
  }
  s = pipeline.dict().Save(prefix + ".dict");
  if (!s.ok()) return Fail(s);
  std::printf("dictionary (%zu keywords) -> %s.dict\n",
              pipeline.dict().size(), prefix.c_str());
  return 0;
}

int CmdStable(int argc, char** argv) {
  if (argc < 1) return 2;
  const size_t k = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint32_t l = argc > 2 ? std::atoi(argv[2]) : 0;
  const uint32_t gap = argc > 3 ? std::atoi(argv[3]) : 1;
  const FinderKind kind =
      (argc > 4 && std::strcmp(argv[4], "dfs") == 0) ? FinderKind::kDfs
                                                     : FinderKind::kBfs;
  StableClusterPipeline pipeline(DefaultPipelineOptions(gap));
  Status s = LoadPipeline(argv[0], gap, &pipeline);
  if (!s.ok()) return Fail(s);
  s = pipeline.BuildClusterGraph();
  if (!s.ok()) return Fail(s);
  auto chains = pipeline.FindStableClusters(k, l, kind);
  if (!chains.ok()) return Fail(chains.status());
  for (const auto& chain : chains.value()) {
    std::printf("%s\n", pipeline.RenderChain(chain).c_str());
  }
  return 0;
}

int CmdNormalized(int argc, char** argv) {
  if (argc < 1) return 2;
  const size_t k = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint32_t lmin = argc > 2 ? std::atoi(argv[2]) : 2;
  const uint32_t gap = argc > 3 ? std::atoi(argv[3]) : 1;
  StableClusterPipeline pipeline(DefaultPipelineOptions(gap));
  Status s = LoadPipeline(argv[0], gap, &pipeline);
  if (!s.ok()) return Fail(s);
  s = pipeline.BuildClusterGraph();
  if (!s.ok()) return Fail(s);
  auto chains = pipeline.FindNormalizedStableClusters(k, lmin);
  if (!chains.ok()) return Fail(chains.status());
  for (const auto& chain : chains.value()) {
    std::printf("%s\n", pipeline.RenderChain(chain).c_str());
  }
  return 0;
}

int CmdRefine(int argc, char** argv) {
  if (argc < 3) return 2;
  StableClusterPipeline pipeline(DefaultPipelineOptions(0));
  Status s = LoadPipeline(argv[0], 0, &pipeline);
  if (!s.ok()) return Fail(s);
  QueryRefiner refiner(&pipeline);
  const uint32_t day = std::atoi(argv[2]);
  auto suggestions = refiner.Suggest(argv[1], day);
  if (suggestions.empty()) {
    std::printf("no refinements for \"%s\" on day %u\n", argv[1], day);
    return 0;
  }
  for (const Refinement& r : suggestions) {
    std::printf("%-20s %.3f\n", r.keyword.c_str(), r.score);
  }
  return 0;
}

int CmdSaveGraph(int argc, char** argv) {
  if (argc < 2) return 2;
  const uint32_t gap = argc > 2 ? std::atoi(argv[2]) : 1;
  StableClusterPipeline pipeline(DefaultPipelineOptions(gap));
  Status s = LoadPipeline(argv[0], gap, &pipeline);
  if (!s.ok()) return Fail(s);
  s = pipeline.BuildClusterGraph();
  if (!s.ok()) return Fail(s);
  s = SaveClusterGraph(*pipeline.cluster_graph(), argv[1]);
  if (!s.ok()) return Fail(s);
  std::printf("cluster graph (%zu nodes, %zu edges) -> %s\n",
              pipeline.cluster_graph()->node_count(),
              pipeline.cluster_graph()->edge_count(), argv[1]);
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc < 1) return 2;
  const size_t k = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint32_t l = argc > 2 ? std::atoi(argv[2]) : 0;
  const bool dfs = argc > 3 && std::strcmp(argv[3], "dfs") == 0;
  auto graph = LoadClusterGraph(argv[0]);
  if (!graph.ok()) return Fail(graph.status());
  StableFinderResult result;
  if (dfs) {
    DfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = DfsStableFinder(options).Find(graph.value());
    if (!r.ok()) return Fail(r.status());
    result = std::move(r).value();
  } else {
    BfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = BfsStableFinder(options).Find(graph.value());
    if (!r.ok()) return Fail(r.status());
    result = std::move(r).value();
  }
  for (const StablePath& p : result.paths) {
    std::printf("%s\n", p.ToString().c_str());
  }
  std::printf("io: %s\n", result.io.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s <gen|cluster|stable|normalized|refine|savegraph|topk> "
        "...\n(see the header comment of stabletext_cli.cpp)\n",
        argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  int rc = 2;
  if (cmd == "gen") rc = CmdGen(argc - 2, argv + 2);
  else if (cmd == "cluster") rc = CmdCluster(argc - 2, argv + 2);
  else if (cmd == "stable") rc = CmdStable(argc - 2, argv + 2);
  else if (cmd == "normalized") rc = CmdNormalized(argc - 2, argv + 2);
  else if (cmd == "refine") rc = CmdRefine(argc - 2, argv + 2);
  else if (cmd == "savegraph") rc = CmdSaveGraph(argc - 2, argv + 2);
  else if (cmd == "topk") rc = CmdTopK(argc - 2, argv + 2);
  else std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  if (rc == 2) std::fprintf(stderr, "bad arguments for %s\n", cmd.c_str());
  return rc;
}
