// query_refinement: the search application motivated in Sections 1 and 3
// of the paper — "If a search query for a specific interval falls in a
// cluster, the rest of the keywords in that cluster are good candidates
// for query refinement." Ingests a week of posts, then answers
// refinement queries per day, showing how suggestions for the same query
// change as the story evolves. Because the engine commits per tick,
// refinements for a day are available the moment that day is ingested.
//
// Build & run:  ./build/examples/query_refinement

#include <cstdio>

#include "core/engine.h"
#include "core/query_refiner.h"
#include "gen/corpus_generator.h"

using namespace stabletext;

int main() {
  CorpusGenOptions corpus_options;
  corpus_options.days = 7;
  corpus_options.posts_per_day = 1500;
  corpus_options.vocabulary = 4000;
  corpus_options.min_words_per_post = 12;
  corpus_options.max_words_per_post = 28;
  corpus_options.script = EventScript::PaperWeek();
  CorpusGenerator generator(corpus_options);

  EngineOptions options;
  options.clustering.pruning.min_pair_support = 5;
  Engine engine(options);
  std::printf("building clusters for 7 days...\n");
  for (uint32_t day = 0; day < 7; ++day) {
    if (!engine.IngestText(generator.GenerateDay(day)).ok()) {
      return 1;
    }
  }

  QueryRefiner refiner(&engine);
  auto show = [&](const char* query, uint32_t day) {
    auto suggestions = refiner.Suggest(query, day, 6);
    std::printf("query \"%s\" on day %u:", query, day);
    if (suggestions.empty()) {
      std::printf(" (no cluster for this keyword)\n");
      return;
    }
    for (const Refinement& r : suggestions) {
      std::printf(" %s(%.2f)", r.keyword.c_str(), r.score);
    }
    std::printf("\n");
  };

  // The iphone story drifts: launch vocabulary on day 3, lawsuit
  // vocabulary by day 6 — refinements follow the chatter.
  std::printf("\n-- tracking the iphone story --\n");
  show("iphone", 2);  // Before the launch: nothing.
  show("iphone", 3);  // Launch day: macworld, touchscreen...
  show("iphone", 6);  // Lawsuit days: cisco, trademark...

  std::printf("\n-- single-day events --\n");
  show("beckham", 5);  // Day before the news: nothing.
  show("beckham", 6);  // The announcement day.
  show("amniotic", 2);

  std::printf("\n-- persistent story --\n");
  show("somalia", 0);
  show("somalia", 5);  // Keyword set has grown by now.

  std::printf("\n-- queries that are stop words or unknown --\n");
  show("the", 3);
  show("qwertyuiop", 3);
  return 0;
}
