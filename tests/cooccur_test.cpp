// Co-occurrence pipeline: dictionary, pair emission, aggregation — checked
// against a brute-force document-pair counter on random corpora.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cooccur/cooccurrence_counter.h"
#include "storage/temp_dir.h"
#include "util/random.h"

namespace stabletext {
namespace {

Document MakeDoc(uint32_t interval, std::vector<std::string> words) {
  Document d;
  d.interval = interval;
  d.keywords = std::move(words);
  std::sort(d.keywords.begin(), d.keywords.end());
  d.keywords.erase(std::unique(d.keywords.begin(), d.keywords.end()),
                   d.keywords.end());
  return d;
}

TEST(KeywordDictTest, InternIsIdempotent) {
  KeywordDict dict;
  const KeywordId a = dict.Intern("apple");
  const KeywordId b = dict.Intern("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("apple"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Word(a), "apple");
  EXPECT_EQ(dict.Lookup("banana"), b);
  EXPECT_EQ(dict.Lookup("cherry"), kInvalidKeyword);
}

TEST(KeywordDictTest, SaveLoadRoundTrip) {
  TempDir dir;
  KeywordDict dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  dict.Intern("gamma");
  ASSERT_TRUE(dict.Save(dir.FilePath("dict.txt")).ok());
  KeywordDict loaded;
  ASSERT_TRUE(loaded.Load(dir.FilePath("dict.txt")).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.Lookup("beta"), dict.Lookup("beta"));
  EXPECT_EQ(loaded.Word(0), "alpha");
}

TEST(CooccurrenceCounterTest, CountsSimpleCorpus) {
  KeywordDict dict;
  CooccurrenceCounter counter(&dict);
  // Three documents: {a,b}, {a,b,c}, {c}.
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"a", "b"})).ok());
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"a", "b", "c"})).ok());
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"c"})).ok());
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());

  EXPECT_EQ(table.document_count, 3u);
  const KeywordId a = dict.Lookup("a");
  const KeywordId b = dict.Lookup("b");
  const KeywordId c = dict.Lookup("c");
  EXPECT_EQ(table.unary[a], 2u);
  EXPECT_EQ(table.unary[b], 2u);
  EXPECT_EQ(table.unary[c], 2u);

  std::map<std::pair<KeywordId, KeywordId>, uint32_t> pairs;
  for (const Triplet& t : table.triplets) {
    pairs[{std::min(t.u, t.v), std::max(t.u, t.v)}] = t.count;
  }
  EXPECT_EQ(pairs.size(), 3u);
  EXPECT_EQ((pairs[{std::min(a, b), std::max(a, b)}]), 2u);
  EXPECT_EQ((pairs[{std::min(a, c), std::max(a, c)}]), 1u);
  EXPECT_EQ((pairs[{std::min(b, c), std::max(b, c)}]), 1u);
}

TEST(CooccurrenceCounterTest, EmptyCorpus) {
  KeywordDict dict;
  CooccurrenceCounter counter(&dict);
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());
  EXPECT_EQ(table.document_count, 0u);
  EXPECT_TRUE(table.triplets.empty());
}

TEST(CooccurrenceCounterTest, SingleWordDocumentsProduceNoTriplets) {
  KeywordDict dict;
  CooccurrenceCounter counter(&dict);
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"solo"})).ok());
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"solo"})).ok());
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());
  EXPECT_TRUE(table.triplets.empty());
  EXPECT_EQ(table.unary[dict.Lookup("solo")], 2u);
}

TEST(CooccurrenceCounterTest, TripletsAreCanonicalAndSorted) {
  KeywordDict dict;
  CooccurrenceCounter counter(&dict);
  ASSERT_TRUE(counter.Add(MakeDoc(0, {"z", "m", "a"})).ok());
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());
  ASSERT_EQ(table.triplets.size(), 3u);
  for (const Triplet& t : table.triplets) EXPECT_LT(t.u, t.v);
  for (size_t i = 1; i < table.triplets.size(); ++i) {
    const Triplet& p = table.triplets[i - 1];
    const Triplet& q = table.triplets[i];
    EXPECT_TRUE(p.u < q.u || (p.u == q.u && p.v < q.v));
  }
}

// Property sweep: pipeline counts == brute-force counts on random corpora,
// across sort budgets small enough to force external runs.
class CooccurRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(CooccurRandomTest, MatchesBruteForce) {
  const auto [docs, sort_budget] = GetParam();
  Rng rng(docs * 131 + sort_budget);
  const size_t vocab = 30;

  std::vector<Document> corpus;
  for (size_t i = 0; i < docs; ++i) {
    const size_t words = 1 + rng.Uniform(8);
    std::vector<std::string> ws;
    for (size_t w = 0; w < words; ++w) {
      ws.push_back("w" + std::to_string(rng.Uniform(vocab)));
    }
    corpus.push_back(MakeDoc(0, ws));
  }

  KeywordDict dict;
  CooccurrenceCounterOptions opt;
  opt.sort_memory_bytes = sort_budget;
  CooccurrenceCounter counter(&dict, opt);
  for (const Document& d : corpus) ASSERT_TRUE(counter.Add(d).ok());
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());

  // Brute force.
  std::map<std::string, uint32_t> unary;
  std::map<std::pair<std::string, std::string>, uint32_t> pairs;
  for (const Document& d : corpus) {
    for (size_t i = 0; i < d.keywords.size(); ++i) {
      ++unary[d.keywords[i]];
      for (size_t j = i + 1; j < d.keywords.size(); ++j) {
        ++pairs[{d.keywords[i], d.keywords[j]}];
      }
    }
  }

  EXPECT_EQ(table.document_count, docs);
  for (const auto& [word, count] : unary) {
    const KeywordId id = dict.Lookup(word);
    ASSERT_NE(id, kInvalidKeyword);
    EXPECT_EQ(table.unary[id], count) << word;
  }
  std::map<std::pair<KeywordId, KeywordId>, uint32_t> got;
  for (const Triplet& t : table.triplets) got[{t.u, t.v}] = t.count;
  ASSERT_EQ(got.size(), pairs.size());
  for (const auto& [key, count] : pairs) {
    KeywordId u = dict.Lookup(key.first);
    KeywordId v = dict.Lookup(key.second);
    if (u > v) std::swap(u, v);
    EXPECT_EQ((got[{u, v}]), count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CooccurRandomTest,
    ::testing::Combine(::testing::Values<size_t>(10, 200, 1000),
                       ::testing::Values<size_t>(64, 4096, 1 << 22)),
    [](const auto& info) {
      return "docs" + std::to_string(std::get<0>(info.param)) + "_budget" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CooccurrenceCounterTest, SpillsUnderTinyBudget) {
  KeywordDict dict;
  CooccurrenceCounterOptions opt;
  opt.sort_memory_bytes = 64;
  IoStats stats;
  CooccurrenceCounter counter(&dict, opt, &stats);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(counter.Add(MakeDoc(0, {"a", "b", "c", "d"})).ok());
  }
  CooccurrenceTable table;
  ASSERT_TRUE(counter.Finish(&table).ok());
  EXPECT_GT(counter.spill_runs(), 0u);
  EXPECT_GT(stats.page_writes, 0u);
  // Counts still exact despite spilling.
  EXPECT_EQ(table.unary[dict.Lookup("a")], 50u);
}

}  // namespace
}  // namespace stabletext
