// Corpus generator and event scripts: determinism, planted-event injection
// rates, background-vocabulary properties.

#include <gtest/gtest.h>

#include <set>

#include "gen/corpus_generator.h"
#include "storage/temp_dir.h"
#include "text/document.h"

namespace stabletext {
namespace {

CorpusGenOptions SmallOptions() {
  CorpusGenOptions opt;
  opt.days = 3;
  opt.posts_per_day = 300;
  opt.vocabulary = 500;
  opt.seed = 11;
  return opt;
}

TEST(CorpusGeneratorTest, DeterministicPerSeed) {
  CorpusGenerator a(SmallOptions());
  CorpusGenerator b(SmallOptions());
  EXPECT_EQ(a.GenerateDay(1), b.GenerateDay(1));
  CorpusGenOptions other = SmallOptions();
  other.seed = 12;
  CorpusGenerator c(other);
  EXPECT_NE(a.GenerateDay(1), c.GenerateDay(1));
}

TEST(CorpusGeneratorTest, GeneratesRequestedVolume) {
  CorpusGenerator gen(SmallOptions());
  for (uint32_t day = 0; day < 3; ++day) {
    EXPECT_EQ(gen.GenerateDay(day).size(), 300u);
  }
}

TEST(CorpusGeneratorTest, PostsRespectWordCountBounds) {
  CorpusGenOptions opt = SmallOptions();
  opt.min_words_per_post = 5;
  opt.max_words_per_post = 12;
  CorpusGenerator gen(opt);
  for (const std::string& post : gen.GenerateDay(0)) {
    const size_t words =
        1 + std::count(post.begin(), post.end(), ' ');
    EXPECT_GE(words, 5u);
    // Event posts may exceed the target by the event keyword count; the
    // default script is empty here, so the bound is tight.
    EXPECT_LE(words, 12u);
  }
}

TEST(CorpusGeneratorTest, BackgroundWordsAreWellFormed) {
  std::set<std::string> seen;
  for (size_t rank = 0; rank < 2000; ++rank) {
    const std::string w = CorpusGenerator::BackgroundWord(rank);
    EXPECT_GE(w.size(), 4u);  // At least two syllables.
    EXPECT_TRUE(seen.insert(w).second) << "collision at rank " << rank;
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
      EXPECT_NE(c, 'e');  // 'e' excluded to keep stemming injective.
    }
  }
}

TEST(CorpusGeneratorTest, EventPostsAppearAtScriptedRate) {
  CorpusGenOptions opt = SmallOptions();
  opt.posts_per_day = 1000;
  Event event;
  event.name = "test";
  event.phases.push_back(
      EventPhase{1, 1, {"liverpool", "arsenal", "rosicky"}, 0.05});
  opt.script.events.push_back(event);
  CorpusGenerator gen(opt);

  auto count_mentions = [&](uint32_t day) {
    size_t mentions = 0;
    for (const std::string& post : gen.GenerateDay(day)) {
      if (post.find("liverpool") != std::string::npos &&
          post.find("arsenal") != std::string::npos) {
        ++mentions;
      }
    }
    return mentions;
  };
  EXPECT_EQ(count_mentions(0), 0u);  // Phase not active on day 0.
  // Day 1: ~5% of 1000 posts; each event post mentions >= 3 of the 3
  // keywords, i.e. all of them.
  const size_t day1 = count_mentions(1);
  EXPECT_GE(day1, 45u);
  EXPECT_LE(day1, 55u);
  EXPECT_EQ(count_mentions(2), 0u);
}

TEST(CorpusGeneratorTest, DriftChangesKeywordSetAcrossPhases) {
  CorpusGenOptions opt = SmallOptions();
  opt.posts_per_day = 500;
  opt.script = EventScript::PaperWeek();
  opt.days = 7;
  CorpusGenerator gen(opt);
  auto day_text = [&](uint32_t day) {
    std::string all;
    for (const std::string& p : gen.GenerateDay(day)) {
      all += p;
      all += ' ';
    }
    return all;
  };
  // iPhone phase 1 (days 3-4) mentions macworld but not the lawsuit.
  const std::string day3 = day_text(3);
  EXPECT_NE(day3.find("macworld"), std::string::npos);
  EXPECT_EQ(day3.find("lawsuit"), std::string::npos);
  // Phase 2 (days 5-6) flips.
  const std::string day6 = day_text(6);
  EXPECT_EQ(day6.find("macworld"), std::string::npos);
  EXPECT_NE(day6.find("lawsuit"), std::string::npos);
  // The Somalia event persists all week.
  for (uint32_t day = 0; day < 7; ++day) {
    EXPECT_NE(day_text(day).find("somalia"), std::string::npos)
        << "day " << day;
  }
}

TEST(CorpusGeneratorTest, GenerateToFileRoundTrips) {
  TempDir dir;
  CorpusGenOptions opt = SmallOptions();
  opt.days = 2;
  opt.posts_per_day = 50;
  CorpusGenerator gen(opt);
  const std::string path = dir.FilePath("corpus.txt");
  ASSERT_TRUE(gen.GenerateToFile(path).ok());
  CorpusReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  size_t count = 0;
  uint32_t interval;
  std::string text;
  std::set<uint32_t> days;
  while (reader.Next(&interval, &text)) {
    ++count;
    days.insert(interval);
    EXPECT_FALSE(text.empty());
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(days, (std::set<uint32_t>{0, 1}));
}

TEST(EventScriptTest, PaperWeekShape) {
  EventScript script = EventScript::PaperWeek();
  ASSERT_EQ(script.events.size(), 5u);
  for (const Event& e : script.events) {
    EXPECT_FALSE(e.phases.empty());
    for (const EventPhase& p : e.phases) {
      EXPECT_LE(p.begin_day, p.end_day);
      EXPECT_LE(p.end_day, 6u);
      EXPECT_GE(p.keywords.size(), 3u);
      EXPECT_GT(p.post_fraction, 0.0);
      EXPECT_LT(p.post_fraction, 0.2);
    }
  }
  // The fa-cup event has a gap between phases (Figure 4's shape).
  const Event* facup = nullptr;
  for (const Event& e : script.events) {
    if (e.name == "fa-cup") facup = &e;
  }
  ASSERT_NE(facup, nullptr);
  ASSERT_EQ(facup->phases.size(), 2u);
  EXPECT_GT(facup->phases[1].begin_day, facup->phases[0].end_day + 1);
}

}  // namespace
}  // namespace stabletext
