// End-to-end integration: synthetic corpus with planted events -> Section 3
// clusters -> cluster graph -> stable clusters. Ground truth: the planted
// events must be recovered as clusters and as stable paths; query
// refinement must surface co-event keywords.

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "core/query_refiner.h"
#include "gen/corpus_generator.h"
#include "storage/temp_dir.h"

namespace stabletext {
namespace {

CorpusGenOptions TestCorpusOptions(uint32_t days) {
  CorpusGenOptions opt;
  opt.days = days;
  opt.posts_per_day = 800;
  opt.vocabulary = 2000;
  // Mild length variation keeps the document-length confound (long posts
  // correlate everything with everything) out of the ground truth.
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 28;
  opt.seed = 5;
  return opt;
}

PipelineOptions TestPipelineOptions(uint32_t gap = 1) {
  PipelineOptions opt;
  opt.gap = gap;
  // The paper's rho threshold; a support floor compensates for the small
  // corpus (800 posts/day vs BlogScope's ~200k), where chance
  // co-occurrences of rare words otherwise produce spurious high-rho
  // edges.
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 8;
  opt.affinity.theta = 0.1;
  return opt;
}

// True if some cluster in `result` contains all `stems` (already stemmed).
bool HasClusterWith(const IntervalResult& result, const KeywordDict& dict,
                    const std::vector<std::string>& stems) {
  for (const Cluster& c : result.clusters) {
    bool all = true;
    for (const std::string& stem : stems) {
      const KeywordId id = dict.Lookup(stem);
      if (id == kInvalidKeyword || !c.Contains(id)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  // One shared expensive fixture for all integration assertions.
  static void SetUpTestSuite() {
    CorpusGenOptions copt = TestCorpusOptions(7);
    copt.script = EventScript::PaperWeek();
    CorpusGenerator gen(copt);
    pipeline_ = new StableClusterPipeline(TestPipelineOptions(2));
    for (uint32_t day = 0; day < 7; ++day) {
      ASSERT_TRUE(pipeline_->AddIntervalText(gen.GenerateDay(day)).ok());
    }
    ASSERT_TRUE(pipeline_->BuildClusterGraph().ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static StableClusterPipeline* pipeline_;
};

StableClusterPipeline* PipelineIntegrationTest::pipeline_ = nullptr;

TEST_F(PipelineIntegrationTest, RecoversSingleDayEventClusters) {
  // Figure 1 analog: the stem-cell event on day 2 forms a cluster with
  // its (stemmed) keywords; it is absent on other days.
  const KeywordDict& dict = pipeline_->dict();
  EXPECT_TRUE(HasClusterWith(pipeline_->interval_result(2), dict,
                             {"stem", "cell", "amniot"}));
  EXPECT_FALSE(HasClusterWith(pipeline_->interval_result(1), dict,
                              {"stem", "cell", "amniot"}));
  // Figure 2 analog: Beckham on day 6 only.
  EXPECT_TRUE(HasClusterWith(pipeline_->interval_result(6), dict,
                             {"beckham", "galaxi", "madrid"}));
  EXPECT_FALSE(HasClusterWith(pipeline_->interval_result(5), dict,
                              {"beckham", "galaxi", "madrid"}));
}

TEST_F(PipelineIntegrationTest, BackgroundNoiseDoesNotFormGiantClusters) {
  // Pruning must keep clusters small relative to the vocabulary: the
  // largest cluster should be event-scale, not noise-scale.
  for (uint32_t day = 0; day < 7; ++day) {
    size_t largest = 0;
    for (const Cluster& c : pipeline_->interval_result(day).clusters) {
      largest = std::max(largest, c.keywords.size());
    }
    EXPECT_LE(largest, 40u) << "day " << day;
  }
}

TEST_F(PipelineIntegrationTest, FullWeekEventYieldsFullLengthStablePath) {
  // Figure 16 analog: the Somalia event persists all 7 days, so a full
  // path (length 6) whose clusters all contain "somalia" must exist.
  auto chains = pipeline_->FindStableClusters(5, 0, FinderKind::kBfs);
  ASSERT_TRUE(chains.ok());
  ASSERT_FALSE(chains.value().empty());
  const KeywordDict& dict = pipeline_->dict();
  const KeywordId somalia = dict.Lookup("somalia");
  ASSERT_NE(somalia, kInvalidKeyword);
  bool found = false;
  for (const StableClusterChain& chain : chains.value()) {
    bool all = true;
    for (const Cluster* c : chain.clusters) {
      if (!c->Contains(somalia)) {
        all = false;
        break;
      }
    }
    if (all) found = true;
  }
  EXPECT_TRUE(found) << "no full-week somalia chain among top-5";
}

TEST_F(PipelineIntegrationTest, GapEventSurvivesViaGapEdges) {
  // Figure 4 analog: fa-cup is active on day 0 and days 3-4 with a
  // 2-day gap; with g = 2 a stable path across the gap must exist.
  const KeywordDict& dict = pipeline_->dict();
  const KeywordId liverpool = dict.Lookup("liverpool");
  ASSERT_NE(liverpool, kInvalidKeyword);
  auto chains = pipeline_->FindStableClusters(200, 3, FinderKind::kBfs);
  ASSERT_TRUE(chains.ok());
  bool crosses_gap = false;
  for (const StableClusterChain& chain : chains.value()) {
    if (!chain.clusters.front()->Contains(liverpool)) continue;
    for (size_t i = 1; i < chain.clusters.size(); ++i) {
      if (chain.clusters[i]->interval -
              chain.clusters[i - 1]->interval >=
          2) {
        crosses_gap = true;
      }
    }
  }
  EXPECT_TRUE(crosses_gap);
}

TEST_F(PipelineIntegrationTest, TopicDriftTrackedAcrossChain) {
  // Figure 15 analog: an iphone chain spanning days 3..6 whose early
  // clusters mention macworld and late clusters mention the lawsuit.
  const KeywordDict& dict = pipeline_->dict();
  const KeywordId iphon = dict.Lookup("iphon");
  ASSERT_NE(iphon, kInvalidKeyword);
  auto chains = pipeline_->FindStableClusters(400, 3, FinderKind::kBfs);
  ASSERT_TRUE(chains.ok());
  const KeywordId macworld = dict.Lookup("macworld");
  const KeywordId lawsuit = dict.Lookup("lawsuit");
  bool drift = false;
  for (const StableClusterChain& chain : chains.value()) {
    bool early_launch = false, late_lawsuit = false;
    for (const Cluster* c : chain.clusters) {
      if (!c->Contains(iphon)) continue;
      if (macworld != kInvalidKeyword && c->Contains(macworld)) {
        early_launch = true;
      }
      if (lawsuit != kInvalidKeyword && c->Contains(lawsuit)) {
        late_lawsuit = true;
      }
    }
    if (early_launch && late_lawsuit) drift = true;
  }
  EXPECT_TRUE(drift) << "no chain tracking the iphone topic drift";
}

TEST_F(PipelineIntegrationTest, BfsAndDfsAgreeOnThePipelineGraph) {
  auto bfs = pipeline_->FindStableClusters(5, 3, FinderKind::kBfs);
  auto dfs = pipeline_->FindStableClusters(5, 3, FinderKind::kDfs);
  ASSERT_TRUE(bfs.ok());
  ASSERT_TRUE(dfs.ok());
  ASSERT_EQ(bfs.value().size(), dfs.value().size());
  for (size_t i = 0; i < bfs.value().size(); ++i) {
    EXPECT_EQ(bfs.value()[i].path.nodes, dfs.value()[i].path.nodes);
  }
}

TEST_F(PipelineIntegrationTest, NormalizedQueryRuns) {
  auto chains = pipeline_->FindNormalizedStableClusters(3, 2);
  ASSERT_TRUE(chains.ok());
  for (const StableClusterChain& chain : chains.value()) {
    EXPECT_GE(chain.path.length, 2u);
    EXPECT_GT(chain.path.stability(), 0.0);
  }
}

TEST_F(PipelineIntegrationTest, QueryRefinementSurfacesEventKeywords) {
  QueryRefiner refiner(pipeline_);
  // Day 6, query "beckham": co-event keywords must surface.
  auto suggestions = refiner.Suggest("beckham", 6);
  ASSERT_FALSE(suggestions.empty());
  std::set<std::string> words;
  for (const Refinement& r : suggestions) words.insert(r.keyword);
  EXPECT_TRUE(words.count("galaxi") || words.count("madrid") ||
              words.count("soccer"))
      << "suggestions missed the beckham event vocabulary";
  // Scores are sorted descending.
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].score, suggestions[i].score);
  }
  // Unknown keyword and out-of-range interval yield nothing.
  EXPECT_TRUE(refiner.Suggest("zzzqqq", 0).empty());
  EXPECT_TRUE(refiner.Suggest("beckham", 99).empty());
}

TEST_F(PipelineIntegrationTest, RenderChainMentionsKeywords) {
  auto chains = pipeline_->FindStableClusters(1, 0, FinderKind::kBfs);
  ASSERT_TRUE(chains.ok());
  ASSERT_FALSE(chains.value().empty());
  const std::string text = pipeline_->RenderChain(chains.value()[0]);
  EXPECT_NE(text.find("stable cluster"), std::string::npos);
  EXPECT_NE(text.find("interval"), std::string::npos);
}

TEST(PipelineTest, ApiValidation) {
  StableClusterPipeline pipeline;
  EXPECT_FALSE(pipeline.BuildClusterGraph().ok());  // No intervals.
  EXPECT_FALSE(pipeline.FindStableClusters(5, 0).ok());  // No graph.
  ASSERT_TRUE(pipeline.AddIntervalText({"apple iphone launch today",
                                        "apple iphone touchscreen"})
                  .ok());
  ASSERT_TRUE(pipeline.AddIntervalText({"apple iphone lawsuit cisco",
                                        "apple iphone cisco trademark"})
                  .ok());
  ASSERT_TRUE(pipeline.BuildClusterGraph().ok());
  EXPECT_FALSE(pipeline.BuildClusterGraph().ok());  // Double build.
  EXPECT_FALSE(pipeline.AddIntervalText({"too late"}).ok());
}

// Every affinity measure must produce a valid cluster graph (weights in
// (0,1] after normalization) and answer stable-cluster queries.
class PipelineAffinityTest
    : public ::testing::TestWithParam<AffinityMeasure> {};

TEST_P(PipelineAffinityTest, BuildsValidGraphAndAnswers) {
  CorpusGenOptions copt = TestCorpusOptions(4);
  copt.posts_per_day = 400;
  copt.script = EventScript::PaperWeek();
  CorpusGenerator gen(copt);
  PipelineOptions popt = TestPipelineOptions(1);
  popt.affinity.measure = GetParam();
  if (GetParam() == AffinityMeasure::kIntersection) {
    popt.affinity.theta = 1.5;  // Raw counts: "share > 1 keyword".
  }
  StableClusterPipeline pipeline(popt);
  for (uint32_t day = 0; day < 4; ++day) {
    ASSERT_TRUE(pipeline.AddIntervalText(gen.GenerateDay(day)).ok());
  }
  ASSERT_TRUE(pipeline.BuildClusterGraph().ok());
  const ClusterGraph* graph = pipeline.cluster_graph();
  ASSERT_NE(graph, nullptr);
  for (NodeId v = 0; v < graph->node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph->Children(v)) {
      ASSERT_GT(e.weight, 0.0);
      ASSERT_LE(e.weight, 1.0);
    }
  }
  auto chains = pipeline.FindStableClusters(3, 2, FinderKind::kBfs);
  ASSERT_TRUE(chains.ok());
  for (const auto& chain : chains.value()) {
    EXPECT_EQ(chain.path.length, 2u);
    EXPECT_GT(chain.path.weight, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Measures, PipelineAffinityTest,
    ::testing::Values(AffinityMeasure::kJaccard,
                      AffinityMeasure::kIntersection,
                      AffinityMeasure::kOverlap,
                      AffinityMeasure::kWeightedJaccard),
    [](const auto& info) {
      std::string name = AffinityMeasureName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PipelineTest, AddCorpusFileMatchesAddIntervalText) {
  TempDir dir;
  CorpusGenOptions copt = TestCorpusOptions(3);
  copt.posts_per_day = 200;
  CorpusGenerator gen(copt);
  const std::string path = dir.FilePath("corpus.txt");
  ASSERT_TRUE(gen.GenerateToFile(path).ok());

  StableClusterPipeline from_file(TestPipelineOptions());
  ASSERT_TRUE(from_file.AddCorpusFile(path).ok());
  StableClusterPipeline from_text(TestPipelineOptions());
  for (uint32_t day = 0; day < 3; ++day) {
    ASSERT_TRUE(from_text.AddIntervalText(gen.GenerateDay(day)).ok());
  }
  ASSERT_EQ(from_file.interval_count(), from_text.interval_count());
  for (uint32_t day = 0; day < 3; ++day) {
    EXPECT_EQ(from_file.interval_result(day).clusters.size(),
              from_text.interval_result(day).clusters.size());
  }
}

}  // namespace
}  // namespace stabletext
