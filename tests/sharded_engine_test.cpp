// ShardedEngine contract tests.
//
// 1. shards == 1 is byte-identical to a plain Engine: same graph bytes,
//    same answers from all five finder algorithms.
// 2. On a partition-respecting corpus (every document's keywords hash to
//    one shard) the merged scatter-gather top-k equals the single-engine
//    answer modulo the documented tie-break relaxation — asserted here
//    as equality of the rendered-chain multisets, which is tie-order
//    independent.
// 3. Readers run concurrently with sharded multi-writer ingest (the
//    TSan target) and only ever observe consistent epoch vectors.
// 4. A 2-shard durable fleet whose shards crashed one epoch apart
//    recovers to the minimum common committed epoch on every shard.
// 5. The threshold merge measurably early-terminates shard streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/shard_router.h"
#include "core/sharded_engine.h"
#include "gen/corpus_generator.h"
#include "stable/shard_merge.h"
#include "storage/temp_dir.h"
#include "text/document.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace stabletext {
namespace {

CorpusGenOptions WeekCorpus() {
  CorpusGenOptions opt;
  opt.days = 5;
  opt.posts_per_day = 300;
  opt.vocabulary = 1500;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 28;
  opt.micro_events = 30;
  opt.seed = 11;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions() {
  EngineOptions opt;
  opt.gap = 1;
  opt.clustering.pruning.rho_threshold = 0.15;
  opt.clustering.pruning.min_pair_support = 3;
  opt.affinity.theta = 0.05;
  return opt;
}

std::string GraphFingerprint(const ClusterGraph& graph) {
  std::string out = StringPrintf("nodes=%zu edges=%zu intervals=%u\n",
                                 graph.node_count(), graph.edge_count(),
                                 graph.interval_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      out += StringPrintf("%u->%u %.17g\n", v, e.target, e.weight);
    }
  }
  return out;
}

// Byte-exact rendering of a chain list: node sequences + full-precision
// weights. Only comparable when both sides share one node-id space
// (shards == 1 vs plain Engine).
std::string ChainsFingerprint(const std::vector<StableClusterChain>& chains) {
  std::string out;
  for (const StableClusterChain& chain : chains) {
    for (NodeId n : chain.path.nodes) out += StringPrintf("%u-", n);
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

Query MakeQuery(FinderAlgorithm algorithm, size_t k, uint32_t l) {
  Query q;
  q.algorithm = algorithm;
  q.k = k;
  q.l = l;
  return q;
}

// Tie-order-independent view of an answer: the sorted multiset of
// rendered chains (keyword sets per interval + weight + length). Node
// ids are shard-local and never compared across engines.
std::vector<std::string> RenderedSet(const Engine& engine,
                                     const QueryResult& result) {
  std::vector<std::string> out;
  for (const StableClusterChain& chain : result.chains) {
    out.push_back(engine.RenderChain(chain));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> RenderedSet(const ShardedEngine& engine,
                                     const ShardedQueryResult& result) {
  std::vector<std::string> out;
  for (size_t i = 0; i < result.chains.size(); ++i) {
    out.push_back(
        engine.RenderChain(result.chains[i], result.chain_shard[i]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// A corpus that respects the shard partition: every post's words stem to
// keywords that all hash to the same shard, so shard-local statistics
// equal the global ones and sharded clustering is exact (the contract in
// shard_router.h). Each shard gets two planted keyword groups that
// recur every tick (stable chains) plus one-shot noise words (pruned by
// min_pair_support).
class PartitionedCorpus {
 public:
  PartitionedCorpus(uint32_t shards, uint32_t ticks) : shards_(shards) {
    BuildPools();
    ticks_.resize(ticks);
    for (uint32_t t = 0; t < ticks; ++t) {
      for (uint32_t s = 0; s < shards; ++s) {
        for (uint32_t g = 0; g < kGroupsPerShard; ++g) {
          // Distinct per-(shard, group) support counts keep chain
          // weights distinct across shards — fewer k-boundary ties.
          const uint32_t posts = 7 + 2 * g + s;
          for (uint32_t p = 0; p < posts; ++p) {
            std::string post;
            for (uint32_t w = 0; w < kGroupWords; ++w) {
              post += pools_[s][g * kGroupWords + w] + " ";
            }
            // One unique-per-tick noise word: its pairs never reach
            // min_pair_support.
            post += NoiseWord(s, t * 101 + g * 31 + p);
            ticks_[t].push_back(post);
          }
        }
      }
    }
  }

  const std::vector<std::vector<std::string>>& ticks() const {
    return ticks_;
  }

 private:
  static constexpr uint32_t kGroupsPerShard = 2;
  static constexpr uint32_t kGroupWords = 3;

  // Generates consonant-vowel words, keeps those that survive the text
  // pipeline as a single keyword, and buckets them by shard.
  void BuildPools() {
    static const char kConsonants[] = "bcdfgjklmnpqrstvwz";
    static const char kVowels[] = "aeiou";
    DocumentProcessor processor;
    pools_.resize(shards_);
    noise_.resize(shards_);
    for (const char c1 : std::string(kConsonants)) {
      for (const char v1 : std::string(kVowels)) {
        for (const char c2 : std::string(kConsonants)) {
          for (const char v2 : std::string(kVowels)) {
            const std::string word = {c1, v1, c2, v2, c1, v1};
            const Document doc = processor.Process(0, word);
            if (doc.keywords.size() != 1) continue;
            const uint32_t s = ShardOfKeyword(doc.keywords[0], shards_);
            if (pools_[s].size() < kGroupsPerShard * kGroupWords) {
              pools_[s].push_back(word);
            } else {
              noise_[s].push_back(word);
            }
          }
        }
      }
    }
    for (uint32_t s = 0; s < shards_; ++s) {
      ASSERT_GE(pools_[s].size(), kGroupsPerShard * kGroupWords)
          << "shard " << s << " pool too small";
      ASSERT_GE(noise_[s].size(), 64u) << "shard " << s;
    }
  }

  std::string NoiseWord(uint32_t shard, uint32_t n) const {
    return noise_[shard][n % noise_[shard].size()];
  }

  const uint32_t shards_;
  std::vector<std::vector<std::string>> pools_;   // [shard][word]
  std::vector<std::vector<std::string>> noise_;   // [shard][word]
  std::vector<std::vector<std::string>> ticks_;   // [tick][post]
};

TEST(ShardedEngineTest, SingleShardByteIdenticalToEngine) {
  CorpusGenerator gen(WeekCorpus());

  Engine plain(TestOptions());
  ShardedEngineOptions sharded_options;
  sharded_options.shards = 1;
  sharded_options.engine = TestOptions();
  ShardedEngine sharded(sharded_options);

  for (uint32_t day = 0; day < WeekCorpus().days; ++day) {
    const std::vector<std::string> posts = gen.GenerateDay(day);
    auto p = plain.IngestText(posts);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    auto s = sharded.IngestText(posts);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
  }
  ASSERT_EQ(plain.interval_count(), sharded.interval_count());

  EXPECT_EQ(GraphFingerprint(plain.graph()),
            GraphFingerprint(sharded.shard(0)->graph()));

  for (const FinderAlgorithm algorithm :
       {FinderAlgorithm::kBfs, FinderAlgorithm::kDfs,
        FinderAlgorithm::kBruteForce, FinderAlgorithm::kOnline}) {
    SCOPED_TRACE(StringPrintf("algorithm=%d", static_cast<int>(algorithm)));
    auto want = plain.Query(MakeQuery(algorithm, 4, 2));
    auto got = sharded.Query(MakeQuery(algorithm, 4, 2));
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(ChainsFingerprint(want.value().chains),
              ChainsFingerprint(got.value().chains));
    for (const uint32_t shard : got.value().chain_shard) {
      EXPECT_EQ(shard, 0u);
    }
  }
}

// The fifth finder, TA, only supports g = 0 — its byte-identity check
// runs on a dedicated gap-0 engine pair.
TEST(ShardedEngineTest, SingleShardByteIdenticalToEngineTaFinder) {
  CorpusGenerator gen(WeekCorpus());
  EngineOptions engine_options = TestOptions();
  engine_options.gap = 0;

  Engine plain(engine_options);
  ShardedEngineOptions sharded_options;
  sharded_options.shards = 1;
  sharded_options.engine = engine_options;
  ShardedEngine sharded(sharded_options);

  for (uint32_t day = 0; day < WeekCorpus().days; ++day) {
    const std::vector<std::string> posts = gen.GenerateDay(day);
    auto p = plain.IngestText(posts);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    auto s = sharded.IngestText(posts);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
  }

  auto want = plain.Query(MakeQuery(FinderAlgorithm::kTa, 4, 0));
  auto got = sharded.Query(MakeQuery(FinderAlgorithm::kTa, 4, 0));
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(ChainsFingerprint(want.value().chains),
            ChainsFingerprint(got.value().chains));
}

TEST(ShardedEngineTest, MergedTopKMatchesSingleEngineOnPartitionedCorpus) {
  for (const uint32_t shards : {uint32_t{2}, uint32_t{4}}) {
    SCOPED_TRACE(StringPrintf("shards=%u", shards));
    PartitionedCorpus corpus(shards, /*ticks=*/4);
    if (::testing::Test::HasFatalFailure()) return;

    Engine plain(TestOptions());
    ShardedEngineOptions sharded_options;
    sharded_options.shards = shards;
    sharded_options.engine = TestOptions();
    ShardedEngine sharded(sharded_options);

    for (const auto& posts : corpus.ticks()) {
      auto p = plain.IngestText(posts);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      auto s = sharded.IngestText(posts);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
    }

    // k large enough to hold every surviving chain: the answer is then
    // the full chain set and equality is independent of tie order.
    const Query query = MakeQuery(FinderAlgorithm::kBfs, 32, 2);
    auto want = plain.Query(query);
    auto got = sharded.Query(query);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_FALSE(want.value().chains.empty());
    EXPECT_EQ(RenderedSet(plain, want.value()),
              RenderedSet(sharded, got.value()));

    // And at a tight k the merged prefix carries the same scores as the
    // single-engine prefix (chains may differ only within score ties).
    const Query tight = MakeQuery(FinderAlgorithm::kBfs, 3, 2);
    auto want_tight = plain.Query(tight);
    auto got_tight = sharded.Query(tight);
    ASSERT_TRUE(want_tight.ok()) << want_tight.status().ToString();
    ASSERT_TRUE(got_tight.ok()) << got_tight.status().ToString();
    ASSERT_EQ(want_tight.value().chains.size(),
              got_tight.value().chains.size());
    for (size_t i = 0; i < want_tight.value().chains.size(); ++i) {
      EXPECT_NEAR(want_tight.value().chains[i].path.weight,
                  got_tight.value().chains[i].path.weight, 1e-9);
    }
  }
}

TEST(ShardedEngineTest, ReadersStayConsistentDuringShardedIngest) {
  PartitionedCorpus corpus(/*shards=*/2, /*ticks=*/6);
  if (::testing::Test::HasFatalFailure()) return;

  ShardedEngineOptions options;
  options.shards = 2;
  options.engine = TestOptions();
  ShardedEngine engine(options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> inconsistent{0};
  const Query query = MakeQuery(FinderAlgorithm::kBfs, 4, 2);
  ReaderFleet fleet(3, [&](size_t) {
    while (!done.load(std::memory_order_acquire)) {
      auto snap = engine.snapshot();
      // The consistency invariant: every shard of a published snapshot
      // sits at the same committed epoch.
      for (const auto& shard : snap->shards) {
        if (shard->epoch != snap->epoch) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
      auto r = engine.QueryAt(snap, query);
      if (r.ok()) queries.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (const auto& posts : corpus.ticks()) {
    auto r = engine.IngestText(posts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  done.store(true, std::memory_order_release);
  fleet.Join();

  EXPECT_EQ(fleet.failed(), 0u);
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(engine.interval_count(), 6u);
}

TEST(ShardedEngineTest, RecoverTruncatesToConsistentEpochVector) {
  TempDir dir("sharded");
  PartitionedCorpus corpus(/*shards=*/2, /*ticks=*/4);
  if (::testing::Test::HasFatalFailure()) return;

  ShardedEngineOptions options;
  options.shards = 2;
  options.engine = TestOptions();
  options.engine.durability.enabled = true;
  options.engine.durability.dir = dir.path();
  options.engine.durability.checkpoint_interval = 2;

  std::vector<std::string> want_graphs;
  std::vector<std::string> want_answer;
  const Query query = MakeQuery(FinderAlgorithm::kBfs, 8, 2);
  {
    auto made = ShardedEngine::Recover(options);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    ShardedEngine& engine = *made.value();
    for (const auto& posts : corpus.ticks()) {
      auto r = engine.IngestText(posts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_EQ(engine.interval_count(), 4u);
    for (uint32_t s = 0; s < 2; ++s) {
      want_graphs.push_back(GraphFingerprint(engine.shard(s)->graph()));
    }
    auto r = engine.Query(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    want_answer = RenderedSet(engine, r.value());
  }

  // Simulate a crash between the per-shard commits and the barrier:
  // shard 1 committed epoch 5, shard 0 never did. (Reopening one shard
  // directory with a plain durable Engine is exactly what the fan-out
  // worker does.)
  {
    EngineOptions ahead = TestOptions();
    ahead.threads = 1;
    ahead.durability.enabled = true;
    ahead.durability.dir = dir.path() + "/shard-1";
    ahead.durability.checkpoint_interval = 2;
    auto made = Engine::Recover(ahead);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    ASSERT_EQ(made.value()->interval_count(), 4u);
    auto r = made.value()->IngestText(corpus.ticks()[0]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(made.value()->interval_count(), 5u);
  }

  // Recovery truncates shard 1 back to the fleet minimum, epoch 4, and
  // restores the exact pre-crash state.
  auto recovered = ShardedEngine::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedEngine& engine = *recovered.value();
  EXPECT_EQ(engine.interval_count(), 4u);
  auto snap = engine.snapshot();
  for (const auto& shard : snap->shards) {
    EXPECT_EQ(shard->epoch, 4u);
  }
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(GraphFingerprint(engine.shard(s)->graph()), want_graphs[s]);
  }
  auto r = engine.Query(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(RenderedSet(engine, r.value()), want_answer);

  // And the fleet keeps ingesting from the consistent vector.
  auto next = engine.IngestText(corpus.ticks()[1]);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(engine.interval_count(), 5u);
}

TEST(ShardedEngineTest, RecoverRejectsShardCountMismatch) {
  TempDir dir("sharded-manifest");
  ShardedEngineOptions options;
  options.shards = 2;
  options.engine = TestOptions();
  options.engine.durability.enabled = true;
  options.engine.durability.dir = dir.path();
  {
    auto made = ShardedEngine::Recover(options);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
  }
  options.shards = 4;
  auto reopened = ShardedEngine::Recover(options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, ThresholdMergeEarlyTerminatesShardStreams) {
  PartitionedCorpus corpus(/*shards=*/2, /*ticks=*/4);
  if (::testing::Test::HasFatalFailure()) return;

  ShardedEngineOptions options;
  options.shards = 2;
  options.engine = TestOptions();
  ShardedEngine engine(options);
  for (const auto& posts : corpus.ticks()) {
    auto r = engine.IngestText(posts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  // Wide k: every stream drains, nothing is abandoned early.
  auto wide = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 32, 2));
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  const ShardMergeStats& all = wide.value().merge;
  ASSERT_EQ(all.paths_pulled.size(), 2u);
  EXPECT_EQ(all.early_terminations, 0u);
  EXPECT_EQ(all.shards_exhausted, 2u);
  uint64_t total_available = 0;
  for (const uint64_t n : all.paths_available) total_available += n;
  ASSERT_GE(total_available, 4u)
      << "corpus must give each shard several chains";

  // Tight k: no shard stream is ever pulled past its contribution.
  auto tight = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 1, 2));
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  const ShardMergeStats& merge = tight.value().merge;
  ASSERT_EQ(merge.paths_pulled.size(), 2u);
  EXPECT_EQ(merge.paths_merged, 1u);
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_LE(merge.paths_pulled[s], merge.paths_available[s]);
  }
}

// Deterministic early-termination check against synthetic shard
// streams: one shard dominates the scores, so the merge must abandon
// the other after its seed pull.
TEST(ShardMergeTest, ThresholdMergeAbandonsDominatedStream) {
  auto make_result = [](std::vector<double> weights) {
    QueryResult result;
    for (const double w : weights) {
      StableClusterChain chain;
      chain.path.weight = w;
      chain.path.length = 2;
      chain.path.nodes = {0, 1, 2};
      result.chains.push_back(std::move(chain));
    }
    return result;
  };
  const QueryResult strong = make_result({5.0, 4.0, 3.0});
  const QueryResult weak = make_result({1.0, 0.5});

  FinderQuery query;
  query.k = 3;
  ShardMergeStats stats;
  const std::vector<MergedChainRef> merged =
      ThresholdMergeTopK({&strong, &weak}, query, &stats);

  ASSERT_EQ(merged.size(), 3u);
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].shard, 0u);
    EXPECT_EQ(merged[i].rank, i);
  }
  EXPECT_EQ(stats.paths_merged, 3u);
  ASSERT_EQ(stats.paths_pulled.size(), 2u);
  EXPECT_EQ(stats.paths_pulled[0], 3u);
  // The weak shard was seeded once and never pulled again: its second
  // chain stayed behind — measured early termination.
  EXPECT_EQ(stats.paths_pulled[1], 1u);
  EXPECT_EQ(stats.early_terminations, 1u);
}

}  // namespace
}  // namespace stabletext
