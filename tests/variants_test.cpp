// Extension variants from Section 4's discussion: diversified top-k
// (prefix/suffix dedup) and the paper-literal normalized algorithm.

#include <gtest/gtest.h>

#include "stable/brute_force_finder.h"
#include "stable/diversify.h"
#include "stable/normalized_literal_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

StablePath P(std::vector<NodeId> nodes, double weight, uint32_t length) {
  StablePath p;
  p.nodes = std::move(nodes);
  p.weight = weight;
  p.length = length;
  return p;
}

TEST(DiversifyTest, ConflictDetection) {
  DiversifyOptions opt;
  opt.prefix_nodes = 2;
  opt.suffix_nodes = 2;
  // Shared first edge.
  EXPECT_TRUE(
      PathsConflict(P({1, 2, 3}, 1, 2), P({1, 2, 9}, 1, 2), opt));
  // Shared last edge.
  EXPECT_TRUE(
      PathsConflict(P({7, 2, 3}, 1, 2), P({9, 2, 3}, 1, 2), opt));
  // Disjoint affixes.
  EXPECT_FALSE(
      PathsConflict(P({1, 2, 3}, 1, 2), P({4, 2, 9}, 1, 2), opt));
  // Constraints disabled.
  DiversifyOptions off;
  off.prefix_nodes = 0;
  off.suffix_nodes = 0;
  EXPECT_FALSE(
      PathsConflict(P({1, 2, 3}, 1, 2), P({1, 2, 3}, 1, 2), off));
}

TEST(DiversifyTest, GreedySelectionSkipsConflicts) {
  DiversifyOptions opt;
  opt.prefix_nodes = 2;
  opt.suffix_nodes = 0;
  std::vector<StablePath> ranked = {
      P({1, 2, 3}, 0.9, 2),  // Kept.
      P({1, 2, 4}, 0.8, 2),  // Same prefix (1,2): skipped.
      P({5, 2, 4}, 0.7, 2),  // Kept.
      P({5, 2, 9}, 0.6, 2),  // Same prefix (5,2): skipped.
      P({6, 2, 9}, 0.5, 2),  // Kept.
  };
  auto out = DiversifyPaths(ranked, 3, opt);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].nodes, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(out[1].nodes, (std::vector<NodeId>{5, 2, 4}));
  EXPECT_EQ(out[2].nodes, (std::vector<NodeId>{6, 2, 9}));
}

TEST(DiversifyTest, EndToEndResultsAreConflictFreeAndRanked) {
  ClusterGraph graph = MakeRandomGraph(6, 10, 3, 1, 77);
  BfsFinderOptions fopt;
  fopt.k = 5;
  fopt.l = 3;
  DiversifyOptions dopt;
  auto result =
      FindDiversifiedStableClusters(graph, fopt, dopt);
  ASSERT_TRUE(result.ok());
  const auto& paths = result.value().paths;
  EXPECT_LE(paths.size(), 5u);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_FALSE(PathsConflict(paths[i], paths[j], dopt));
    }
    if (i > 0) {
      EXPECT_GE(paths[i - 1].weight, paths[i].weight);
    }
    EXPECT_EQ(paths[i].length, 3u);
  }
  // The best diversified path is the overall best path.
  const auto best = BruteForceFinder::TopKByWeight(graph, 1, 3);
  ASSERT_FALSE(best.empty());
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].nodes, best[0].nodes);
}

TEST(NormalizedLiteralTest, TopOneMatchesOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (uint32_t lmin : {1u, 2u, 3u}) {
      ClusterGraph graph = MakeRandomGraph(5, 4, 2, 0, seed * 23 + 1);
      NormalizedFinderOptions opt;
      opt.k = 1;
      opt.lmin = lmin;
      auto literal = NormalizedLiteralFinder(opt).Find(graph);
      ASSERT_TRUE(literal.ok());
      const auto expected =
          BruteForceFinder::TopKByStability(graph, 1, lmin);
      ASSERT_EQ(literal.value().paths.empty(), expected.empty())
          << "seed " << seed << " lmin " << lmin;
      if (!expected.empty()) {
        // Theorem-1 substitution may return a dominating suffix with
        // identical stability; the stability value itself is exact.
        EXPECT_DOUBLE_EQ(literal.value().paths[0].stability(),
                         expected[0].stability())
            << "seed " << seed << " lmin " << lmin;
      }
    }
  }
}

TEST(NormalizedLiteralTest, AllReturnedPathsAreValidAndLongEnough) {
  ClusterGraph graph = MakeRandomGraph(6, 5, 2, 1, 3);
  NormalizedFinderOptions opt;
  opt.k = 5;
  opt.lmin = 2;
  auto result = NormalizedLiteralFinder(opt).Find(graph);
  ASSERT_TRUE(result.ok());
  for (const StablePath& p : result.value().paths) {
    EXPECT_GE(p.length, 2u);
    // Verify edges exist and the weight adds up.
    double weight = 0;
    for (size_t i = 1; i < p.nodes.size(); ++i) {
      bool found = false;
      for (const ClusterGraphEdge& e : graph.Children(p.nodes[i - 1])) {
        if (e.target == p.nodes[i]) {
          weight += e.weight;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "phantom edge in returned path";
    }
    EXPECT_DOUBLE_EQ(weight, p.weight);
  }
}

TEST(NormalizedLiteralTest, CostGrowsWithLmin) {
  // The paper's Figure 14 driver: smallpaths keep ALL paths of length
  // < lmin, so work grows with lmin (contrast with the exact finder,
  // whose per-length heaps make it lmin-insensitive).
  ClusterGraph graph = MakeRandomGraph(8, 30, 3, 0, 9);
  uint64_t prev = 0;
  for (uint32_t lmin : {2u, 4u, 6u}) {
    NormalizedFinderOptions opt;
    opt.k = 5;
    opt.lmin = lmin;
    auto result = NormalizedLiteralFinder(opt).Find(graph);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().heap_offers, prev) << "lmin " << lmin;
    prev = result.value().heap_offers;
  }
}

}  // namespace
}  // namespace stabletext
