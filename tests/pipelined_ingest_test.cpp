// Two-stage pipelined batch ingest (IngestTicks): interval t+1's
// tokenization+clustering overlaps interval t's serial commit. The
// contract under test is byte-identity — graph, per-tick epochs, keyword
// watermarks and every algorithm's answers must match a serial
// one-tick-at-a-time ingest at 1, 2 and 4 worker threads. Runs in the
// ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "util/strings.h"

namespace stabletext {
namespace {

constexpr uint32_t kDays = 6;

CorpusGenOptions TestCorpus() {
  CorpusGenOptions opt;
  opt.days = kDays;
  opt.posts_per_day = 200;
  opt.vocabulary = 1200;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 26;
  opt.micro_events = 20;
  opt.seed = 23;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions(size_t threads, bool pipeline) {
  EngineOptions opt;
  opt.gap = 1;
  opt.threads = threads;
  opt.pipeline_ingest = pipeline;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

std::vector<std::vector<std::string>> GenerateWeek() {
  CorpusGenerator gen(TestCorpus());
  std::vector<std::vector<std::string>> days;
  for (uint32_t day = 0; day < kDays; ++day) {
    days.push_back(gen.GenerateDay(day));
  }
  return days;
}

std::string GraphFingerprint(const ClusterGraph& graph) {
  std::string out = StringPrintf("nodes=%zu edges=%zu intervals=%u\n",
                                 graph.node_count(), graph.edge_count(),
                                 graph.interval_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      out += StringPrintf("%u->%u %.17g\n", v, e.target, e.weight);
    }
  }
  return out;
}

std::string PathsFingerprint(const QueryResult& result) {
  std::string out;
  for (const StableClusterChain& chain : result.chains) {
    for (NodeId n : chain.path.nodes) {
      out += StringPrintf("%u-", n);
    }
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

Query MakeQuery(FinderAlgorithm algorithm, size_t k, uint32_t l) {
  Query q;
  q.algorithm = algorithm;
  q.k = k;
  q.l = l;
  return q;
}

// Per-tick trace of the serving-visible state: epoch, graph shape and
// the keyword watermark. With pipelined ingest the dictionary already
// holds the next interval's words at publish time; the published
// watermark must hide that.
std::string TickTrace(const Engine& engine, uint32_t tick) {
  const EngineStats stats = engine.stats();
  return StringPrintf("tick=%u epoch=%u clusters=%zu edges=%zu kw=%zu\n",
                      tick, stats.intervals, stats.clusters, stats.edges,
                      stats.keywords);
}

TEST(PipelinedIngestTest, PipelinedMatchesSerialAt124Threads) {
  const auto days = GenerateWeek();

  // Reference: strictly serial, one IngestText call per tick.
  Engine reference(TestOptions(/*threads=*/1, /*pipeline=*/false));
  std::string reference_trace;
  for (uint32_t day = 0; day < kDays; ++day) {
    ASSERT_TRUE(reference.IngestText(days[day]).ok());
    reference_trace += TickTrace(reference, day);
  }
  const std::string reference_graph =
      GraphFingerprint(*reference.snapshot()->graph);

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE(StringPrintf("threads=%zu", threads));
    Engine pipelined(TestOptions(threads, /*pipeline=*/true));
    std::string trace;
    auto ingested = pipelined.IngestTicks(
        days, [&](uint32_t tick, const std::vector<std::string>& posts) {
          EXPECT_EQ(posts.size(), days[tick].size());
          trace += TickTrace(pipelined, tick);
          return Status::OK();
        });
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
    EXPECT_EQ(ingested.value(), kDays);
    EXPECT_EQ(trace, reference_trace);
    EXPECT_EQ(GraphFingerprint(*pipelined.snapshot()->graph),
              reference_graph);

    for (const FinderAlgorithm algorithm :
         {FinderAlgorithm::kBfs, FinderAlgorithm::kDfs,
          FinderAlgorithm::kOnline, FinderAlgorithm::kBruteForce}) {
      SCOPED_TRACE(FinderAlgorithmName(algorithm));
      auto p = pipelined.Query(MakeQuery(algorithm, 4, 2));
      auto r = reference.Query(MakeQuery(algorithm, 4, 2));
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      ASSERT_TRUE(r.ok());
      EXPECT_FALSE(p.value().chains.empty());
      EXPECT_EQ(PathsFingerprint(p.value()), PathsFingerprint(r.value()));
    }
    Query normalized = MakeQuery(FinderAlgorithm::kBfs, 4, 2);
    normalized.mode = FinderMode::kNormalized;
    auto pn = pipelined.Query(normalized);
    auto rn = reference.Query(normalized);
    ASSERT_TRUE(pn.ok());
    ASSERT_TRUE(rn.ok());
    EXPECT_EQ(PathsFingerprint(pn.value()), PathsFingerprint(rn.value()));
  }
}

// Queries interleaved through on_tick see exactly the per-epoch answers
// of a serial run — the pipeline never lets interval t+1's half-built
// state leak into epoch t.
TEST(PipelinedIngestTest, InterleavedQueriesSeeCommittedEpochsOnly) {
  const auto days = GenerateWeek();
  const Query q = MakeQuery(FinderAlgorithm::kBfs, 3, 2);

  Engine reference(TestOptions(1, false));
  std::vector<std::string> expected;
  for (uint32_t day = 0; day < kDays; ++day) {
    ASSERT_TRUE(reference.IngestText(days[day]).ok());
    auto r = reference.Query(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(PathsFingerprint(r.value()));
  }

  Engine pipelined(TestOptions(/*threads=*/2, /*pipeline=*/true));
  uint32_t ticks_seen = 0;
  auto ingested = pipelined.IngestTicks(
      days, [&](uint32_t tick, const std::vector<std::string>&) {
        auto r = pipelined.Query(q);
        EXPECT_TRUE(r.ok());
        if (r.ok()) {
          EXPECT_EQ(r.value().epoch, tick + 1);
          EXPECT_EQ(PathsFingerprint(r.value()), expected[tick]);
        }
        ++ticks_seen;
        return Status::OK();
      });
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(ticks_seen, kDays);
}

TEST(PipelinedIngestTest, LifecycleAndErrors) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(2, true));

  // Empty batch: trivially zero ticks.
  auto none = engine.IngestTicks({});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), 0u);

  // An on_tick error aborts the batch after the committed tick; the
  // engine stays healthy and continues ingesting — and the aborted batch
  // leaves no trace: the pipeline had already interned tick 2's words
  // when the abort hit, so they must be rolled back or every later
  // keyword id diverges from a serial engine.
  auto aborted = engine.IngestTicks(
      days, [&](uint32_t tick, const std::vector<std::string>&) {
        return tick == 1 ? Status::IOError("stop here") : Status::OK();
      });
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kIOError);
  EXPECT_EQ(engine.interval_count(), 2u);  // Ticks 0 and 1 committed.
  // Continue with a tick the aborted batch never saw, then compare the
  // whole serving state byte-for-byte against a serial engine fed the
  // same committed sequence (days 0, 1, 3).
  ASSERT_TRUE(engine.IngestText(days[3]).ok());
  EXPECT_EQ(engine.interval_count(), 3u);
  Engine serial(TestOptions(1, false));
  ASSERT_TRUE(serial.IngestText(days[0]).ok());
  ASSERT_TRUE(serial.IngestText(days[1]).ok());
  ASSERT_TRUE(serial.IngestText(days[3]).ok());
  EXPECT_EQ(engine.stats().keywords, serial.stats().keywords);
  EXPECT_EQ(GraphFingerprint(*engine.snapshot()->graph),
            GraphFingerprint(*serial.snapshot()->graph));
  {
    auto p = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 2));
    auto s = serial.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 2));
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(PathsFingerprint(p.value()), PathsFingerprint(s.value()));
  }

  // A compacted engine refuses batches like it refuses single ticks.
  ASSERT_TRUE(engine.Compact().ok());
  auto refused = engine.IngestTicks(days);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace stabletext
