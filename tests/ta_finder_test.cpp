// Section 4.4 (TA finder): exact equality with the oracle on full-path
// queries, early-termination behaviour, bound-table ablation, g=0
// restriction.

#include <gtest/gtest.h>

#include "stable/brute_force_finder.h"
#include "stable/ta_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(TaFinderTest, PaperFigure5TopPath) {
  // Figure 5 has gap 1; rebuild the same weights with g = 0 and only the
  // consecutive-interval edges (the TA configuration of Table 3).
  ClusterGraph g(3, 0);
  for (uint32_t i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) g.AddNode(i);
  }
  struct E {
    NodeId a, b;
    double w;
  };
  const E edges[] = {{0, 3, 0.5}, {1, 4, 0.1}, {2, 4, 0.8}, {1, 5, 0.4},
                     {3, 6, 0.7}, {4, 6, 0.7}, {3, 7, 0.4}, {4, 8, 0.9},
                     {5, 8, 0.4}};
  for (const E& e : edges) ASSERT_TRUE(g.AddEdge(e.a, e.b, e.w).ok());
  g.SortChildren();

  TaFinderOptions opt;
  opt.k = 2;
  auto result = TaStableFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().paths.size(), 2u);
  EXPECT_EQ(result.value().paths[0].nodes,
            (std::vector<NodeId>{2, 4, 8}));  // weight 1.7
  EXPECT_EQ(result.value().paths[1].nodes,
            (std::vector<NodeId>{2, 4, 6}));  // weight 1.5
}

TEST(TaFinderTest, RejectsGaps) {
  ClusterGraph g = MakeRandomGraph(4, 4, 2, 1, 3);
  auto result = TaStableFinder().Find(g);
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

class TaSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint32_t, size_t, bool>> {};

TEST_P(TaSweepTest, MatchesBruteForceOnFullPaths) {
  const auto [m, n, d, k, bounds] = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ClusterGraph graph = MakeRandomGraph(m, n, d, 0, seed * 41 + 5);
    TaFinderOptions opt;
    opt.k = k;
    opt.use_bound_tables = bounds;
    auto result = TaStableFinder(opt).Find(graph);
    ASSERT_TRUE(result.ok());
    const auto expected = BruteForceFinder::TopKByWeight(graph, k, 0);
    ASSERT_EQ(result.value().paths.size(), expected.size())
        << "m=" << m << " n=" << n << " seed=" << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(result.value().paths[i].nodes, expected[i].nodes)
          << "m=" << m << " n=" << n << " seed=" << seed << " rank=" << i
          << " bounds=" << bounds;
      ASSERT_EQ(result.value().paths[i].weight, expected[i].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaSweepTest,
    ::testing::Values(std::make_tuple(3u, 4u, 2u, size_t{1}, true),
                      std::make_tuple(3u, 4u, 2u, size_t{5}, true),
                      std::make_tuple(4u, 4u, 2u, size_t{3}, true),
                      std::make_tuple(4u, 4u, 2u, size_t{3}, false),
                      std::make_tuple(5u, 3u, 2u, size_t{4}, true),
                      std::make_tuple(5u, 3u, 2u, size_t{4}, false),
                      std::make_tuple(6u, 3u, 1u, size_t{2}, true)),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(std::get<0>(p)) + "n" +
             std::to_string(std::get<1>(p)) + "d" +
             std::to_string(std::get<2>(p)) + "k" +
             std::to_string(std::get<3>(p)) +
             (std::get<4>(p) ? "_bounds" : "_nobounds");
    });

TEST(TaFinderTest, EarlyTerminationScansFewerEdgesOnSkewedWeights) {
  // One dominant chain of weight-1.0 edges on an otherwise light graph:
  // TA should stop long before exhausting the lists.
  ClusterGraph g(4, 0);
  std::vector<NodeId> heavy;
  for (uint32_t i = 0; i < 4; ++i) {
    heavy.push_back(g.AddNode(i));
    for (int j = 0; j < 20; ++j) g.AddNode(i);
  }
  Rng rng(3);
  for (uint32_t i = 0; i < 3; ++i) {
    for (NodeId a : g.IntervalNodes(i)) {
      for (int c = 0; c < 2; ++c) {
        const auto& next = g.IntervalNodes(i + 1);
        NodeId b = next[rng.Uniform(next.size())];
        // Light edges in (0, 0.2]; ignore rare duplicate-edge adds.
        (void)g.AddEdge(a, b, 0.05 + 0.15 * rng.NextDouble());
      }
    }
    ASSERT_TRUE(g.AddEdge(heavy[i], heavy[i + 1], 1.0).ok());
  }
  g.SortChildren();
  TaFinderOptions opt;
  opt.k = 1;
  auto result = TaStableFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().paths.size(), 1u);
  EXPECT_EQ(result.value().paths[0].nodes, heavy);
  // 3 lists x ~43 edges each: early termination must not consume all.
  EXPECT_LT(result.value().edges_scanned, g.edge_count() / 2);
}

TEST(TaFinderTest, BoundTablesCutProbes) {
  ClusterGraph graph = MakeRandomGraph(5, 10, 3, 0, 29);
  TaFinderOptions with;
  with.k = 2;
  TaFinderOptions without = with;
  without.use_bound_tables = false;
  auto a = TaStableFinder(with).Find(graph);
  auto b = TaStableFinder(without).Find(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a.value().random_probes, b.value().random_probes);
  ASSERT_EQ(a.value().paths.size(), b.value().paths.size());
  for (size_t i = 0; i < a.value().paths.size(); ++i) {
    EXPECT_EQ(a.value().paths[i].nodes, b.value().paths[i].nodes);
  }
}

TEST(TaFinderTest, ProbeBudgetAborts) {
  ClusterGraph graph = MakeRandomGraph(6, 10, 4, 0, 31);
  TaFinderOptions opt;
  opt.k = 5;
  opt.max_probes = 3;
  auto result = TaStableFinder(opt).Find(graph);
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST(TaFinderTest, GraphWithNoFullPathsReturnsEmpty) {
  // Interval 1 is a dead layer with no outgoing edges.
  ClusterGraph g(3, 0);
  const NodeId a = g.AddNode(0);
  const NodeId b = g.AddNode(1);
  g.AddNode(2);
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  g.SortChildren();
  auto result = TaStableFinder().Find(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().paths.empty());
}

}  // namespace
}  // namespace stabletext
