// Algorithm 1: biconnected components and articulation points, validated on
// the paper's Figure 3 example, hand graphs, and randomized cross-checks of
// three independent implementations (BCC-based, direct DFS, brute force).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "cluster/articulation.h"
#include "cluster/cluster_extractor.h"
#include "util/random.h"

namespace stabletext {
namespace {

using EdgeSet = std::set<std::pair<KeywordId, KeywordId>>;

KeywordGraph FromPairs(size_t n,
                       const std::vector<std::pair<int, int>>& pairs) {
  std::vector<WeightedEdge> edges;
  for (auto [u, v] : pairs) {
    edges.push_back(WeightedEdge{static_cast<KeywordId>(u),
                                 static_cast<KeywordId>(v), 1.0});
  }
  return KeywordGraph::FromEdges(n, edges);
}

std::vector<EdgeSet> Components(const KeywordGraph& g,
                                BiconnectedStats* stats = nullptr,
                                BiconnectedOptions options = {}) {
  BiconnectedFinder finder(options);
  std::vector<EdgeSet> out;
  EXPECT_TRUE(finder
                  .Run(g,
                       [&](const std::vector<WeightedEdge>& edges) {
                         EdgeSet set;
                         for (const WeightedEdge& e : edges) {
                           set.insert({std::min(e.u, e.v),
                                       std::max(e.u, e.v)});
                         }
                         EXPECT_EQ(set.size(), edges.size())
                             << "duplicate edge in component";
                         out.push_back(std::move(set));
                       },
                       stats)
                  .ok());
  return out;
}

// The Figure 3 example: triangle a-b-c, bridge b-d, triangle d-e-f.
// Expected: three biconnected components; articulation points b and d.
TEST(BiconnectedTest, PaperFigure3Example) {
  enum { a, b, c, d, e, f };
  KeywordGraph g = FromPairs(
      6, {{a, b}, {b, c}, {c, a}, {b, d}, {d, e}, {e, f}, {f, d}});
  BiconnectedStats stats;
  auto components = Components(g, &stats);
  ASSERT_EQ(components.size(), 3u);
  std::sort(components.begin(), components.end());
  EXPECT_TRUE(std::count(components.begin(), components.end(),
                         EdgeSet{{a, b}, {b, c}, {a, c}}) == 1);
  EXPECT_TRUE(std::count(components.begin(), components.end(),
                         EdgeSet{{b, d}}) == 1);
  EXPECT_TRUE(std::count(components.begin(), components.end(),
                         EdgeSet{{d, e}, {e, f}, {d, f}}) == 1);
  EXPECT_EQ(stats.articulation_points, 2u);

  BiconnectedFinder finder;
  auto arts = finder.ArticulationPoints(g);
  ASSERT_TRUE(arts.ok());
  EXPECT_EQ(arts.value(), (std::vector<KeywordId>{b, d}));
  EXPECT_EQ(FindArticulationPoints(g), (std::vector<KeywordId>{b, d}));
  EXPECT_EQ(FindArticulationPointsBruteForce(g),
            (std::vector<KeywordId>{b, d}));
}

TEST(BiconnectedTest, SingleEdgeIsOneComponent) {
  KeywordGraph g = FromPairs(2, {{0, 1}});
  auto components = Components(g);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], (EdgeSet{{0, 1}}));
  EXPECT_TRUE(FindArticulationPoints(g).empty());
}

TEST(BiconnectedTest, CycleIsBiconnected) {
  KeywordGraph g = FromPairs(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  auto components = Components(g);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 5u);
  EXPECT_TRUE(FindArticulationPoints(g).empty());
}

TEST(BiconnectedTest, PathDecomposesIntoEdges) {
  KeywordGraph g = FromPairs(4, {{0, 1}, {1, 2}, {2, 3}});
  auto components = Components(g);
  EXPECT_EQ(components.size(), 3u);
  EXPECT_EQ(FindArticulationPoints(g), (std::vector<KeywordId>{1, 2}));
}

TEST(BiconnectedTest, EmptyAndIsolatedVertices) {
  KeywordGraph g = FromPairs(10, {{7, 8}});
  BiconnectedStats stats;
  auto components = Components(g, &stats);
  EXPECT_EQ(components.size(), 1u);
  KeywordGraph empty = FromPairs(3, {});
  EXPECT_TRUE(Components(empty).empty());
}

TEST(BiconnectedTest, DisconnectedGraphHandlesAllPieces) {
  KeywordGraph g =
      FromPairs(7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {5, 6}});
  auto components = Components(g);
  EXPECT_EQ(components.size(), 3u);
}

TEST(BiconnectedTest, EveryEdgeInExactlyOneComponent) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.Uniform(40);
    std::vector<WeightedEdge> edges;
    for (KeywordId u = 0; u < n; ++u) {
      for (KeywordId v = u + 1; v < n; ++v) {
        if (rng.NextBool(0.12)) edges.push_back(WeightedEdge{u, v, 1.0});
      }
    }
    KeywordGraph g = KeywordGraph::FromEdges(n, edges);
    EdgeSet all;
    size_t total = 0;
    for (const auto& comp : Components(g)) {
      total += comp.size();
      for (const auto& e : comp) {
        EXPECT_TRUE(all.insert(e).second) << "edge in two components";
      }
    }
    EXPECT_EQ(total, edges.size());
  }
}

class ArticulationRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ArticulationRandomTest, ThreeImplementationsAgree) {
  const auto [n, p] = GetParam();
  Rng rng(n * 1000 + static_cast<uint64_t>(p * 100));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<WeightedEdge> edges;
    for (KeywordId u = 0; u < n; ++u) {
      for (KeywordId v = u + 1; v < n; ++v) {
        if (rng.NextBool(p)) edges.push_back(WeightedEdge{u, v, 1.0});
      }
    }
    KeywordGraph g = KeywordGraph::FromEdges(n, edges);
    const auto brute = FindArticulationPointsBruteForce(g);
    const auto direct = FindArticulationPoints(g);
    BiconnectedFinder finder;
    auto via_bcc = finder.ArticulationPoints(g);
    ASSERT_TRUE(via_bcc.ok());
    ASSERT_EQ(direct, brute) << "n=" << n << " p=" << p;
    ASSERT_EQ(via_bcc.value(), brute) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArticulationRandomTest,
    ::testing::Combine(::testing::Values<size_t>(5, 12, 30, 60),
                       ::testing::Values(0.05, 0.15, 0.4)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) *
                                             100));
    });

TEST(BiconnectedTest, SpillingStackGivesIdenticalComponents) {
  Rng rng(77);
  std::vector<WeightedEdge> edges;
  const size_t n = 60;
  for (KeywordId u = 0; u < n; ++u) {
    for (KeywordId v = u + 1; v < n; ++v) {
      if (rng.NextBool(0.3)) edges.push_back(WeightedEdge{u, v, 1.0});
    }
  }
  KeywordGraph g = KeywordGraph::FromEdges(n, edges);
  auto in_memory = Components(g);

  BiconnectedOptions tiny;
  tiny.stack_memory_entries = 32;
  tiny.stack_block_entries = 16;
  IoStats stats;
  tiny.io_stats = &stats;
  BiconnectedStats bstats;
  auto spilled = Components(g, &bstats, tiny);
  EXPECT_GT(bstats.spilled_entries, 0u);
  EXPECT_GT(stats.page_writes, 0u);
  std::sort(in_memory.begin(), in_memory.end());
  std::sort(spilled.begin(), spilled.end());
  EXPECT_EQ(in_memory, spilled);
}

TEST(ClusterTest, NormalizeAndAccessors) {
  Cluster c;
  c.interval = 4;
  c.edges = {{3, 1, 0.5}, {2, 1, 0.25}};
  c.keywords = {3, 1, 2, 1};
  NormalizeCluster(&c);
  EXPECT_EQ(c.keywords, (KeywordArray{1, 2, 3}));
  EXPECT_EQ(c.edges[0].u, 1u);  // Canonical orientation and order.
  EXPECT_EQ(c.edges[0].v, 2u);
  EXPECT_EQ(c.edges[1].v, 3u);
  EXPECT_TRUE(c.Contains(2));
  EXPECT_FALSE(c.Contains(4));
  EXPECT_DOUBLE_EQ(c.TotalEdgeWeight(), 0.75);
}

TEST(ClusterTest, ToStringUsesDictionary) {
  KeywordDict dict;
  dict.Intern("apple");
  dict.Intern("iphone");
  Cluster c;
  c.keywords = {0, 1};
  EXPECT_EQ(c.ToString(dict), "{apple, iphone}");
  EXPECT_EQ(c.ToString(dict, 1), "{apple, ...}");
}

TEST(ClusterExtractorTest, BiconnectedModeMatchesFinder) {
  enum { a, b, c, d, e, f };
  KeywordGraph g = FromPairs(
      6, {{a, b}, {b, c}, {c, a}, {b, d}, {d, e}, {e, f}, {f, d}});
  ClusterExtractor extractor;
  auto clusters = extractor.Extract(g, 9);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(clusters.value().size(), 3u);
  for (const Cluster& cl : clusters.value()) {
    EXPECT_EQ(cl.interval, 9u);
    EXPECT_GE(cl.keywords.size(), 2u);
  }
}

TEST(ClusterExtractorTest, ConnectedComponentMode) {
  KeywordGraph g = FromPairs(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  ClusterExtractorOptions opt;
  opt.mode = ClusterMode::kConnectedComponent;
  ClusterExtractor extractor(opt);
  auto clusters = extractor.Extract(g, 0);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 3u);
  // The 0-1-2 path is a single connected cluster with both edges.
  size_t sizes[3];
  for (int i = 0; i < 3; ++i) {
    sizes[i] = clusters.value()[i].keywords.size();
  }
  std::sort(sizes, sizes + 3);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 3u);
}

TEST(ClusterExtractorTest, MinKeywordsFilter) {
  enum { a, b, c, d, e, f };
  KeywordGraph g = FromPairs(
      6, {{a, b}, {b, c}, {c, a}, {b, d}, {d, e}, {e, f}, {f, d}});
  ClusterExtractorOptions opt;
  opt.min_keywords = 3;
  ClusterExtractor extractor(opt);
  auto clusters = extractor.Extract(g, 0);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(clusters.value().size(), 2u);  // The bridge {b, d} is dropped.
}

TEST(ArticulationTest, CountConnectedComponents) {
  KeywordGraph g = FromPairs(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(CountConnectedComponents(g), 3u);
  EXPECT_EQ(CountConnectedComponents(g, 1), 4u);  // 0, 2, {3,4}, {5,6}.
  EXPECT_EQ(CountConnectedComponents(g, 3), 3u);  // 4 remains alone.
}

}  // namespace
}  // namespace stabletext
