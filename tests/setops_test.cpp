// Property tests for the set-intersection kernels (util/setops.h): every
// kernel tier must agree with the scalar reference byte-for-byte on both
// IntersectionSize and IntersectInto, across set sizes 0–4096, skewed
// size ratios, SIMD register-boundary sizes, and misaligned base
// pointers. Also pins dispatch behavior: ForceKernel round-trips,
// unavailable tiers degrade, and IntersectInto honors its documented
// output-pad contract (canary words past size + pad stay untouched).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/setops.h"

namespace stabletext {
namespace setops {
namespace {

using SizeFn = size_t (*)(const uint32_t*, size_t, const uint32_t*, size_t);
using IntoFn = size_t (*)(const uint32_t*, size_t, const uint32_t*, size_t,
                          uint32_t*);

struct KernelEntry {
  Kernel kernel;
  SizeFn size_fn;
  IntoFn into_fn;
};

// Every non-auto tier. The SSE/AVX2 entry points fall back to scalar when
// the tier is unavailable, so calling them is always safe — they just
// stop being an independent implementation to compare against.
const KernelEntry kKernels[] = {
    {Kernel::kScalar, IntersectionSizeScalar, IntersectIntoScalar},
    {Kernel::kGalloping, IntersectionSizeGalloping, IntersectIntoGalloping},
    {Kernel::kSse, IntersectionSizeSse, IntersectIntoSse},
    {Kernel::kAvx2, IntersectionSizeAvx2, IntersectIntoAvx2},
};

// Strictly-ascending sorted set of `n` values drawn from [0, universe).
std::vector<uint32_t> MakeSet(Rng* rng, size_t n, uint32_t universe) {
  std::vector<uint32_t> v;
  if (n == 0) return v;
  if (universe < n) universe = static_cast<uint32_t>(n);
  for (size_t idx : rng->SampleWithoutReplacement(universe, n)) {
    v.push_back(static_cast<uint32_t>(idx));
  }
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<uint32_t> ReferenceIntersection(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

constexpr uint32_t kCanary = 0xDEADBEEFu;

// Runs every kernel on (a, b) and (b, a) and checks the full contract
// against std::set_intersection: size, contents, order, and no writes
// past size + kIntersectIntoPad.
void CheckAllKernels(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b,
                     const std::string& label) {
  const std::vector<uint32_t> expected = ReferenceIntersection(a, b);
  const size_t cap = std::min(a.size(), b.size()) + kIntersectIntoPad;
  for (const KernelEntry& entry : kKernels) {
    SCOPED_TRACE(label + " kernel=" + KernelName(entry.kernel));
    for (int swap = 0; swap < 2; ++swap) {
      const std::vector<uint32_t>& x = swap ? b : a;
      const std::vector<uint32_t>& y = swap ? a : b;
      EXPECT_EQ(entry.size_fn(x.data(), x.size(), y.data(), y.size()),
                expected.size());

      std::vector<uint32_t> out(cap + 4, kCanary);
      const size_t n =
          entry.into_fn(x.data(), x.size(), y.data(), y.size(), out.data());
      ASSERT_EQ(n, expected.size());
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
      // Past the documented pad the buffer must be untouched.
      for (size_t i = cap; i < out.size(); ++i) {
        EXPECT_EQ(out[i], kCanary) << "overwrite at offset " << i;
      }
    }
  }
  // The dispatched entry points must agree too, whatever tier is active.
  EXPECT_EQ(IntersectionSize(a.data(), a.size(), b.data(), b.size()),
            expected.size());
  for (const uint32_t probe : expected) {
    EXPECT_TRUE(ContainsSorted(a.data(), a.size(), probe));
    EXPECT_TRUE(ContainsSorted(b.data(), b.size(), probe));
  }
}

TEST(SetOpsTest, EmptyAndTrivialSets) {
  CheckAllKernels({}, {}, "both empty");
  CheckAllKernels({}, {1, 2, 3}, "one empty");
  CheckAllKernels({7}, {7}, "singleton equal");
  CheckAllKernels({7}, {8}, "singleton disjoint");
}

// Sizes straddling the SSE (4-wide) and AVX2 (8-wide) block widths and
// the 16/32-element boundaries the affinity tests also exercise: the
// scalar tail handoff must not drop or duplicate matches.
TEST(SetOpsTest, RegisterBoundarySizes) {
  Rng rng(2026);
  for (size_t n : {3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u}) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto a = MakeSet(&rng, n, static_cast<uint32_t>(2 * n + 4));
      const auto b = MakeSet(&rng, n, static_cast<uint32_t>(2 * n + 4));
      CheckAllKernels(a, b, "boundary n=" + std::to_string(n));
    }
  }
}

// Randomized sweep over sizes 0..4096 with varying densities: dense
// (most elements shared), sparse (few shared), and disjoint ranges.
TEST(SetOpsTest, RandomizedSizeSweep) {
  Rng rng(777);
  const size_t sizes[] = {0, 1, 2, 3, 5, 8, 13, 21, 64, 100,
                          255, 256, 257, 1000, 1024, 2048, 4096};
  for (size_t na : sizes) {
    for (int density = 0; density < 3; ++density) {
      const size_t nb = sizes[rng.Uniform(sizeof(sizes) / sizeof(*sizes))];
      const uint32_t universe = static_cast<uint32_t>(
          density == 0 ? (na + nb + 1)            // dense overlap
          : density == 1 ? 8 * (na + nb + 1)      // sparse overlap
                         : 1u << 30);             // nearly disjoint
      const auto a = MakeSet(&rng, na, universe);
      const auto b = MakeSet(&rng, nb, universe);
      CheckAllKernels(a, b,
                      "sweep na=" + std::to_string(na) +
                          " nb=" + std::to_string(nb) +
                          " density=" + std::to_string(density));
    }
  }
}

// Skew ratios at and around kGallopRatio, the kAuto galloping cutover.
TEST(SetOpsTest, SkewedRatios) {
  Rng rng(31337);
  for (size_t small : {1u, 2u, 7u, 33u}) {
    for (size_t factor : {kGallopRatio - 1, kGallopRatio,
                          kGallopRatio * 4}) {
      const size_t large = small * factor;
      const auto a = MakeSet(&rng, small, static_cast<uint32_t>(4 * large));
      const auto b = MakeSet(&rng, large, static_cast<uint32_t>(4 * large));
      CheckAllKernels(a, b,
                      "skew " + std::to_string(small) + "x" +
                          std::to_string(large));
    }
  }
}

// Unaligned base pointers: the kernels use unaligned loads, so results
// must not depend on the arrays' address modulo the register width.
TEST(SetOpsTest, MisalignedBasePointers) {
  Rng rng(99);
  const auto a = MakeSet(&rng, 513, 2048);
  const auto b = MakeSet(&rng, 511, 2048);
  const std::vector<uint32_t> expected = ReferenceIntersection(a, b);
  for (size_t offa = 0; offa < 8; ++offa) {
    for (size_t offb = 0; offb < 8; offb += 3) {
      std::vector<uint32_t> bufa(offa + a.size() + 8);
      std::vector<uint32_t> bufb(offb + b.size() + 8);
      std::copy(a.begin(), a.end(), bufa.begin() + offa);
      std::copy(b.begin(), b.end(), bufb.begin() + offb);
      for (const KernelEntry& entry : kKernels) {
        SCOPED_TRACE(std::string("offsets ") + std::to_string(offa) + "," +
                     std::to_string(offb) + " kernel=" +
                     KernelName(entry.kernel));
        EXPECT_EQ(entry.size_fn(bufa.data() + offa, a.size(),
                                bufb.data() + offb, b.size()),
                  expected.size());
      }
    }
  }
}

TEST(SetOpsTest, ContainsSortedMatchesLinearScan) {
  Rng rng(5);
  for (size_t n : {0u, 1u, 2u, 15u, 16u, 17u, 100u, 1024u}) {
    const auto a = MakeSet(&rng, n, static_cast<uint32_t>(3 * n + 7));
    for (uint32_t key = 0; key < 3 * n + 9; ++key) {
      const bool expected =
          std::find(a.begin(), a.end(), key) != a.end();
      EXPECT_EQ(ContainsSorted(a.data(), a.size(), key), expected)
          << "n=" << n << " key=" << key;
    }
  }
}

// ForceKernel round-trips through every tier; forcing an unavailable
// tier degrades instead of crashing, and the dispatched results stay
// identical under every forced tier.
TEST(SetOpsTest, ForceKernelRoundTripAndDegradation) {
  Rng rng(11);
  const auto a = MakeSet(&rng, 300, 1000);
  const auto b = MakeSet(&rng, 280, 1000);
  const size_t expected =
      IntersectionSizeScalar(a.data(), a.size(), b.data(), b.size());
  for (const KernelEntry& entry : kKernels) {
    ForceKernel(entry.kernel);
    const Kernel active = ActiveKernel();
    if (KernelAvailable(entry.kernel)) {
      EXPECT_EQ(active, entry.kernel);
    } else {
      EXPECT_TRUE(KernelAvailable(active))
          << "degraded to unavailable tier " << KernelName(active);
    }
    EXPECT_EQ(IntersectionSize(a.data(), a.size(), b.data(), b.size()),
              expected)
        << "forced=" << KernelName(entry.kernel);
  }
  ForceKernel(Kernel::kAuto);
  EXPECT_TRUE(KernelAvailable(ActiveKernel()));
}

TEST(SetOpsTest, KernelNamesRoundTrip) {
  for (const KernelEntry& entry : kKernels) {
    EXPECT_EQ(ParseKernelName(KernelName(entry.kernel)), entry.kernel);
  }
  EXPECT_EQ(ParseKernelName("auto"), Kernel::kAuto);
  EXPECT_EQ(ParseKernelName("bogus"), Kernel::kAuto);
  // Scalar and galloping are portable: always available.
  EXPECT_TRUE(KernelAvailable(Kernel::kScalar));
  EXPECT_TRUE(KernelAvailable(Kernel::kGalloping));
}

}  // namespace
}  // namespace setops
}  // namespace stabletext
