// SpillableStack: LIFO equivalence with std::vector under spill-forcing
// configurations, mixed push/pop workloads, accounting.

#include <gtest/gtest.h>

#include <vector>

#include "storage/spillable_stack.h"
#include "util/random.h"

namespace stabletext {
namespace {

struct Entry {
  uint32_t u;
  uint32_t v;
  friend bool operator==(const Entry& a, const Entry& b) {
    return a.u == b.u && a.v == b.v;
  }
};

SpillableStackOptions SmallOptions(size_t memory_entries,
                                   size_t block_entries) {
  SpillableStackOptions opt;
  opt.memory_entries = memory_entries;
  opt.block_entries = block_entries;
  opt.page_size = 256;
  return opt;
}

TEST(SpillableStackTest, BasicLifo) {
  SpillableStack<Entry> stack(SmallOptions(64, 16));
  EXPECT_TRUE(stack.empty());
  ASSERT_TRUE(stack.Push(Entry{1, 2}).ok());
  ASSERT_TRUE(stack.Push(Entry{3, 4}).ok());
  EXPECT_EQ(stack.size(), 2u);
  Entry e;
  ASSERT_TRUE(stack.Top(&e).ok());
  EXPECT_EQ(e, (Entry{3, 4}));
  ASSERT_TRUE(stack.Pop(&e).ok());
  EXPECT_EQ(e, (Entry{3, 4}));
  ASSERT_TRUE(stack.Pop(&e).ok());
  EXPECT_EQ(e, (Entry{1, 2}));
  EXPECT_TRUE(stack.empty());
}

TEST(SpillableStackTest, PopEmptyIsError) {
  SpillableStack<Entry> stack(SmallOptions(64, 16));
  Entry e;
  EXPECT_FALSE(stack.Pop(&e).ok());
  EXPECT_FALSE(stack.Top(&e).ok());
}

TEST(SpillableStackTest, SpillsAndRestores) {
  IoStats stats;
  SpillableStack<Entry> stack(SmallOptions(64, 16), &stats);
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(stack.Push(Entry{i, i * 2}).ok());
  }
  EXPECT_GT(stack.cold_entries(), 0u);
  EXPECT_GT(stats.page_writes, 0u);
  EXPECT_LE(stack.hot_entries(), 64u + 1);
  for (uint32_t i = 200; i-- > 0;) {
    Entry e;
    ASSERT_TRUE(stack.Pop(&e).ok());
    EXPECT_EQ(e, (Entry{i, i * 2}));
  }
  EXPECT_TRUE(stack.empty());
  EXPECT_GT(stats.page_reads, 0u);
}

class SpillableStackRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpillableStackRandomTest, MatchesReferenceUnderMixedWorkload) {
  const size_t memory_entries = GetParam();
  SpillableStack<Entry> stack(
      SmallOptions(memory_entries, memory_entries / 2));
  std::vector<Entry> reference;
  Rng rng(memory_entries * 31 + 7);
  for (int step = 0; step < 20000; ++step) {
    const bool push = reference.empty() || rng.NextBool(0.55);
    if (push) {
      Entry e{static_cast<uint32_t>(step),
              static_cast<uint32_t>(rng.Next() & 0xFFFF)};
      ASSERT_TRUE(stack.Push(e).ok());
      reference.push_back(e);
    } else {
      Entry e;
      ASSERT_TRUE(stack.Pop(&e).ok());
      ASSERT_EQ(e, reference.back());
      reference.pop_back();
    }
    ASSERT_EQ(stack.size(), reference.size());
  }
  // Drain.
  while (!reference.empty()) {
    Entry e;
    ASSERT_TRUE(stack.Pop(&e).ok());
    ASSERT_EQ(e, reference.back());
    reference.pop_back();
  }
  EXPECT_TRUE(stack.empty());
}

INSTANTIATE_TEST_SUITE_P(MemorySizes, SpillableStackRandomTest,
                         ::testing::Values<size_t>(8, 32, 128, 4096),
                         [](const auto& info) {
                           return "mem" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace stabletext
