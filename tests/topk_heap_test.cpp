// TopKHeap: ordering, capacity, duplicate rejection, tie-breaking, and the
// path comparators' monotonicity properties that the DP finders rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stable/topk_heap.h"
#include "util/random.h"

namespace stabletext {
namespace {

StablePath P(std::vector<NodeId> nodes, double weight, uint32_t length) {
  StablePath p;
  p.nodes = std::move(nodes);
  p.weight = weight;
  p.length = length;
  return p;
}

TEST(TopKHeapTest, KeepsBestKSorted) {
  TopKHeap<> heap(3);
  EXPECT_TRUE(heap.Offer(P({1, 2}, 0.3, 1)));
  EXPECT_TRUE(heap.Offer(P({2, 3}, 0.9, 1)));
  EXPECT_TRUE(heap.Offer(P({3, 4}, 0.5, 1)));
  EXPECT_TRUE(heap.full());
  EXPECT_TRUE(heap.Offer(P({4, 5}, 0.7, 1)));   // Evicts 0.3.
  EXPECT_FALSE(heap.Offer(P({5, 6}, 0.2, 1)));  // Too light.
  ASSERT_EQ(heap.size(), 3u);
  EXPECT_DOUBLE_EQ(heap.paths()[0].weight, 0.9);
  EXPECT_DOUBLE_EQ(heap.paths()[1].weight, 0.7);
  EXPECT_DOUBLE_EQ(heap.paths()[2].weight, 0.5);
  EXPECT_DOUBLE_EQ(heap.MinWeight(), 0.5);
}

// MinWeight on a non-full heap used to read paths_.back() — UB when
// empty. The pinned contract: while the heap is below capacity the
// pruning bound is -infinity (no k-th path exists yet); once full it is
// the weight of the worst retained path.
TEST(TopKHeapTest, MinWeightSentinelBelowCapacity) {
  TopKHeap<> heap(3);
  EXPECT_EQ(heap.MinWeight(), -std::numeric_limits<double>::infinity());
  heap.Offer(P({1, 2}, 0.9, 1));
  heap.Offer(P({2, 3}, 0.4, 1));
  // Still below capacity: nothing can be pruned yet.
  EXPECT_FALSE(heap.full());
  EXPECT_EQ(heap.MinWeight(), -std::numeric_limits<double>::infinity());
  heap.Offer(P({3, 4}, 0.6, 1));
  EXPECT_TRUE(heap.full());
  EXPECT_DOUBLE_EQ(heap.MinWeight(), 0.4);
  heap.Clear();
  EXPECT_EQ(heap.MinWeight(), -std::numeric_limits<double>::infinity());
}

TEST(TopKHeapTest, RejectsExactDuplicates) {
  TopKHeap<> heap(5);
  EXPECT_TRUE(heap.Offer(P({1, 2, 3}, 0.5, 2)));
  EXPECT_FALSE(heap.Offer(P({1, 2, 3}, 0.5, 2)));
  EXPECT_EQ(heap.size(), 1u);
}

TEST(TopKHeapTest, ZeroCapacityAcceptsNothing) {
  TopKHeap<> heap(0);
  EXPECT_FALSE(heap.Offer(P({1, 2}, 1.0, 1)));
  EXPECT_TRUE(heap.empty());
}

TEST(TopKHeapTest, TieBreaksLexicographically) {
  TopKHeap<> heap(1);
  EXPECT_TRUE(heap.Offer(P({5, 6}, 0.5, 1)));
  EXPECT_TRUE(heap.Offer(P({1, 2}, 0.5, 1)));   // Same weight, smaller.
  EXPECT_FALSE(heap.Offer(P({7, 8}, 0.5, 1)));  // Same weight, larger.
  ASSERT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.paths()[0].nodes, (std::vector<NodeId>{1, 2}));
}

TEST(TopKHeapTest, ClearResets) {
  TopKHeap<> heap(2);
  heap.Offer(P({1, 2}, 0.5, 1));
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.capacity(), 2u);
}

TEST(TopKHeapTest, MemoryBytesGrowsWithContent) {
  TopKHeap<> heap(4);
  const size_t empty = heap.MemoryBytes();
  heap.Offer(P({1, 2, 3, 4, 5}, 0.5, 4));
  EXPECT_GT(heap.MemoryBytes(), empty);
}

TEST(TopKHeapTest, StabilityOrderUsedByNormalizedProblem) {
  TopKHeap<PathMoreStable> heap(2);
  heap.Offer(P({1, 2, 3}, 1.0, 2));     // stability 0.5
  heap.Offer(P({4, 5}, 0.9, 1));        // stability 0.9
  heap.Offer(P({6, 7, 8, 9}, 1.8, 3));  // stability 0.6
  ASSERT_EQ(heap.size(), 2u);
  EXPECT_DOUBLE_EQ(heap.paths()[0].stability(), 0.9);
  EXPECT_DOUBLE_EQ(heap.paths()[1].stability(), 0.6);
}

TEST(PathTest, StabilityAndToString) {
  StablePath p = P({3, 9}, 0.75, 3);
  EXPECT_DOUBLE_EQ(p.stability(), 0.25);
  EXPECT_NE(p.ToString().find("3-9"), std::string::npos);
  StablePath zero;
  EXPECT_EQ(zero.stability(), 0);
}

TEST(PathTest, IsSubpathDetectsContiguousRuns) {
  StablePath super = P({1, 2, 3, 4}, 1, 3);
  EXPECT_TRUE(IsSubpath(P({2, 3}, 0, 1), super));
  EXPECT_TRUE(IsSubpath(P({1, 2, 3, 4}, 0, 3), super));
  EXPECT_FALSE(IsSubpath(P({1, 3}, 0, 1), super));  // Not contiguous.
  EXPECT_FALSE(IsSubpath(P({4, 5}, 0, 1), super));
  EXPECT_FALSE(IsSubpath(P({}, 0, 0), super));
}

// Prefix monotonicity: if a > b under PathBetter (same end node, same
// length), then a+edge > b+edge. This is the property that makes per-node
// top-k pruning exact in the BFS/DFS DP.
TEST(PathOrderTest, PrefixMonotoneUnderExtension) {
  Rng rng(3);
  PathBetter better;
  for (int trial = 0; trial < 500; ++trial) {
    // Two random same-length paths ending at the same node.
    const double q = 1024.0;
    StablePath a = P({static_cast<NodeId>(rng.Uniform(5)), 9},
                     std::ceil(rng.NextDouble() * q) / q, 1);
    StablePath b = P({static_cast<NodeId>(rng.Uniform(5)), 9},
                     std::ceil(rng.NextDouble() * q) / q, 1);
    if (a == b) continue;
    const double w = std::ceil(rng.NextDouble() * q) / q;
    StablePath ae = a, be = b;
    ae.nodes.push_back(17);
    be.nodes.push_back(17);
    ae.weight += w;
    be.weight += w;
    ae.length += 1;
    be.length += 1;
    EXPECT_EQ(better(a, b), better(ae, be));
  }
}

}  // namespace
}  // namespace stabletext
