// Unit tests for text/: Tokenizer, StopWords, DocumentProcessor, Corpus IO.

#include <gtest/gtest.h>

#include "storage/temp_dir.h"
#include "text/corpus.h"
#include "text/document.h"

namespace stabletext {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, RemovesApostrophes) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("don't can't"),
            (std::vector<std::string>{"dont", "cant"}));
}

TEST(TokenizerTest, DropsShortAndLongTokens) {
  TokenizerOptions opt;
  opt.min_token_length = 3;
  opt.max_token_length = 5;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("a ab abc abcd abcdef"),
            (std::vector<std::string>{"abc", "abcd"}));
}

TEST(TokenizerTest, DigitPolicy) {
  TokenizerOptions opt;
  opt.keep_digits = false;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("win 2007 iphone2"),
            (std::vector<std::string>{"win", "iphone2"}));
  Tokenizer keep;  // Default keeps digits.
  EXPECT_EQ(keep.Tokenize("win 2007"),
            (std::vector<std::string>{"win", "2007"}));
}

TEST(TokenizerTest, NonAsciiBytesAreSeparators) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("caf\xC3\xA9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... !!! ---").empty());
}

TEST(StopWordsTest, DefaultListCatchesFunctionWords) {
  StopWords sw;
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_TRUE(sw.Contains("and"));
  EXPECT_TRUE(sw.Contains("dont"));  // Post-apostrophe-removal form.
  EXPECT_FALSE(sw.Contains("beckham"));
  EXPECT_GT(sw.size(), 100u);
}

TEST(StopWordsTest, CustomListAndAdd) {
  StopWords sw(std::vector<std::string>{"foo"});
  EXPECT_TRUE(sw.Contains("foo"));
  EXPECT_FALSE(sw.Contains("the"));
  sw.Add("bar");
  EXPECT_TRUE(sw.Contains("bar"));
}

TEST(DocumentProcessorTest, StemsDeduplicatesAndSorts) {
  DocumentProcessor p;
  Document doc =
      p.Process(3, "The runners were running and the runner ran!");
  EXPECT_EQ(doc.interval, 3u);
  // "the", "were", "and" are stop words; runners/running/runner stem
  // together ("runner" -> "runner", "running" -> "run"...).
  for (const auto& kw : doc.keywords) {
    EXPECT_FALSE(kw.empty());
  }
  // Sorted and unique.
  for (size_t i = 1; i < doc.keywords.size(); ++i) {
    EXPECT_LT(doc.keywords[i - 1], doc.keywords[i]);
  }
  // No stop words survive.
  StopWords sw;
  for (const auto& kw : doc.keywords) EXPECT_FALSE(sw.Contains(kw));
}

TEST(DocumentProcessorTest, KeywordsAreDistinctPerDocument) {
  DocumentProcessor p;
  Document doc = p.Process(0, "apple apple apple iphone iphone");
  EXPECT_EQ(doc.keywords.size(), 2u);
}

TEST(CorpusTest, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.FilePath("corpus.txt");
  CorpusWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(0, "first post").ok());
  ASSERT_TRUE(writer.Append(0, "second\tpost\nwith breaks").ok());
  ASSERT_TRUE(writer.Append(1, "day two").ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.count(), 3u);

  CorpusReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  uint32_t interval;
  std::string text;
  ASSERT_TRUE(reader.Next(&interval, &text));
  EXPECT_EQ(interval, 0u);
  EXPECT_EQ(text, "first post");
  ASSERT_TRUE(reader.Next(&interval, &text));
  EXPECT_EQ(text, "second post with breaks");  // Breaks sanitized.
  ASSERT_TRUE(reader.Next(&interval, &text));
  EXPECT_EQ(interval, 1u);
  EXPECT_FALSE(reader.Next(&interval, &text));
  EXPECT_TRUE(reader.status().ok());
}

TEST(CorpusTest, ForEachVisitsAllPosts) {
  TempDir dir;
  const std::string path = dir.FilePath("corpus.txt");
  CorpusWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (uint32_t d = 0; d < 3; ++d) {
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(writer.Append(d, "post").ok());
    }
  }
  ASSERT_TRUE(writer.Finish().ok());
  CorpusReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  size_t count = 0;
  ASSERT_TRUE(reader
                  .ForEach([&](uint32_t iv, const std::string& t) {
                    EXPECT_LT(iv, 3u);
                    EXPECT_EQ(t, "post");
                    ++count;
                  })
                  .ok());
  EXPECT_EQ(count, 12u);
}

TEST(CorpusTest, DetectsMalformedLines) {
  TempDir dir;
  const std::string path = dir.FilePath("bad.txt");
  {
    std::ofstream out(path);
    out << "no tab here\n";
  }
  CorpusReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  uint32_t interval;
  std::string text;
  EXPECT_FALSE(reader.Next(&interval, &text));
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(CorpusTest, MissingFileFailsToOpen) {
  CorpusReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/path/corpus.txt").ok());
}

}  // namespace
}  // namespace stabletext
