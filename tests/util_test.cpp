// Unit tests for util/: Status, Result, Rng, ZipfDistribution,
// MemoryTracker, string helpers, ReaderFleet lifecycle.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/memory_tracker.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace stabletext {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IOError("x").code(),         Status::OutOfMemoryBudget("x").code(),
      Status::Corruption("x").code(),      Status::NotSupported("x").code(),
      Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextWeightInLeftOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double w = rng.NextWeight();
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeight) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(19);
  for (size_t n : {1ul, 5ul, 100ul}) {
    for (size_t k = 0; k <= n; k += (n > 10 ? 17 : 1)) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(23);
  ZipfDistribution zipf(1000, 1.0);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Sample(&rng) < 10) ++low;
  }
  // Top-10 of 1000 ranks under s=1 carries ~39% of the mass.
  EXPECT_GT(low, total / 4);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(29);
  ZipfDistribution zipf(10, 0.0);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(MemoryTrackerTest, TracksLiveAndPeak) {
  MemoryTracker t;
  EXPECT_TRUE(t.Charge(100).ok());
  EXPECT_TRUE(t.Charge(50).ok());
  t.Release(120);
  EXPECT_EQ(t.live_bytes(), 30u);
  EXPECT_EQ(t.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, EnforcesBudget) {
  MemoryTracker t(100);
  EXPECT_TRUE(t.Charge(80).ok());
  Status s = t.Charge(30);
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemoryBudget);
  EXPECT_EQ(t.live_bytes(), 80u);  // Failed charge leaves usage unchanged.
  EXPECT_TRUE(t.WouldFit(20));
  EXPECT_FALSE(t.WouldFit(21));
}

TEST(MemoryTrackerTest, ForceChargeBypassesBudget) {
  MemoryTracker t(10);
  t.ForceCharge(100);
  EXPECT_EQ(t.live_bytes(), 100u);
  EXPECT_EQ(t.peak_bytes(), 100u);
}

TEST(MemoryTrackerTest, ResetClearsUsageKeepsBudget) {
  MemoryTracker t(64);
  t.ForceCharge(32);
  t.Reset();
  EXPECT_EQ(t.live_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
  EXPECT_EQ(t.budget_bytes(), 64u);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"alpha", "beta", "gamma"};
  EXPECT_EQ(Split(Join(pieces, "|"), '|'), pieces);
}

TEST(StringsTest, ToLowerAsciiOnlyTouchesAsciiUppercase) {
  std::string s = "MiXeD 123 ÄÖ";
  ToLowerAscii(&s);
  EXPECT_EQ(s, "mixed 123 ÄÖ");
}

TEST(StringsTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi\t\n"), "hi");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii("a b"), "a b");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(35ull << 20), "35.0MB");
}

TEST(StringsTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 0.5), "0.50");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.ElapsedMicros(), 0);
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(ReaderFleetTest, RunsEveryReaderAndJoinIsIdempotent) {
  std::atomic<size_t> ran{0};
  ReaderFleet fleet(3, [&](size_t) { ran.fetch_add(1); });
  fleet.Join();
  fleet.Join();  // Idempotent: a second Join is a no-op, not a crash.
  EXPECT_EQ(ran.load(), 3u);
  EXPECT_EQ(fleet.failed(), 0u);
}

TEST(ReaderFleetTest, ThrowingReaderEndsItselfNotTheProcess) {
  std::atomic<size_t> completed{0};
  ReaderFleet fleet(4, [&](size_t reader) {
    if (reader % 2 == 0) throw std::runtime_error("reader died");
    completed.fetch_add(1);
  });
  fleet.Join();
  // The two throwing readers are counted; the two healthy ones finished
  // normally despite their siblings dying.
  EXPECT_EQ(fleet.failed(), 2u);
  EXPECT_EQ(completed.load(), 2u);
}

TEST(ReaderFleetTest, DestructorJoinsThrowingReaders) {
  // A fleet whose every reader throws immediately must be destroyable:
  // the destructor joins and the swallowed exceptions never reach
  // std::terminate.
  {
    ReaderFleet fleet(2, [](size_t) { throw 42; });
  }
  SUCCEED();
}

}  // namespace
}  // namespace stabletext
