// Concurrent serving: snapshot isolation under real reader/writer
// overlap. A fleet of reader threads issues bfs/ta/online/normalized
// queries nonstop while the writer ingests a 7-day generated corpus; the
// test then replays the same week serially and asserts that every
// concurrently observed answer is byte-identical to the serial answer at
// that reader's observed epoch — i.e. no query ever saw a half-committed
// interval, a torn graph, or a stale-but-mislabeled epoch. Also covers
// epoch pinning via Engine::snapshot()/QueryAt and the per-epoch query
// cache. Built to run under ThreadSanitizer (the CI tsan job).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace stabletext {
namespace {

constexpr uint32_t kDays = 7;
constexpr size_t kReaders = 4;

CorpusGenOptions TestCorpus() {
  CorpusGenOptions opt;
  opt.days = kDays;
  opt.posts_per_day = 120;
  opt.vocabulary = 800;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 24;
  opt.micro_events = 15;
  opt.seed = 13;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions(size_t threads) {
  EngineOptions opt;
  opt.gap = 0;  // TA answers full-path queries only on gap-0 graphs.
  opt.threads = threads;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

std::vector<std::vector<std::string>> GenerateWeek() {
  CorpusGenerator gen(TestCorpus());
  std::vector<std::vector<std::string>> days;
  for (uint32_t day = 0; day < kDays; ++day) {
    days.push_back(gen.GenerateDay(day));
  }
  return days;
}

// The query mix the readers rotate through: every concurrently reachable
// algorithm family (ta is gap-0/full-path, hence l = 0).
std::vector<Query> QueryMix() {
  std::vector<Query> mix;
  Query q;
  q.k = 3;
  q.algorithm = FinderAlgorithm::kBfs;
  q.l = 2;
  mix.push_back(q);
  q.algorithm = FinderAlgorithm::kTa;
  q.l = 0;
  mix.push_back(q);
  q.algorithm = FinderAlgorithm::kOnline;
  q.l = 2;
  mix.push_back(q);
  q.algorithm = FinderAlgorithm::kBfs;
  q.mode = FinderMode::kNormalized;
  q.l = 2;
  mix.push_back(q);
  return mix;
}

// Byte-exact rendering of an answer-or-error; two results compare equal
// iff node sequences, full-precision weights and status agree.
std::string Fingerprint(const Result<QueryResult>& result) {
  if (!result.ok()) {
    return "ERROR: " + result.status().ToString();
  }
  std::string out;
  for (const StableClusterChain& chain : result.value().chains) {
    for (NodeId n : chain.path.nodes) {
      out += StringPrintf("%u-", n);
    }
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

// One concurrently observed answer: which query, at which epoch, with
// which rendering.
struct Observation {
  uint64_t epoch;
  size_t config;
  std::string fingerprint;
};

// Structural snapshot-consistency checks a reader can apply without the
// serial reference: the answer must be entirely explained by `epoch`
// committed intervals.
bool ObservationIsSelfConsistent(const QueryResult& result,
                                 std::string* why) {
  for (const StableClusterChain& chain : result.chains) {
    if (chain.clusters.size() != chain.path.nodes.size()) {
      *why = "chain clusters do not mirror path nodes";
      return false;
    }
    for (const Cluster* cluster : chain.clusters) {
      if (cluster == nullptr) {
        *why = "null cluster in chain";
        return false;
      }
      if (cluster->interval >= result.epoch) {
        *why = StringPrintf("cluster of interval %u visible at epoch %llu",
                            cluster->interval,
                            static_cast<unsigned long long>(result.epoch));
        return false;
      }
    }
  }
  return true;
}

TEST(ConcurrentEngineTest, ReadersMatchSerialReplayAtObservedEpoch) {
  const auto days = GenerateWeek();
  const auto mix = QueryMix();

  Engine engine(TestOptions(/*threads=*/2));
  std::atomic<bool> done{false};
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::string> reader_errors(kReaders);

  {
    ReaderFleet fleet(kReaders, [&](size_t reader) {
      auto& obs = observed[reader];
      std::string& error = reader_errors[reader];
      uint64_t last_epoch = 0;
      size_t n = reader;  // Stagger the mix across readers.
      auto issue = [&](const Query& q, size_t config) {
        auto r = engine.Query(q);
        if (r.ok()) {
          if (r.value().epoch < last_epoch) {
            error = "epoch went backwards for one reader";
            return false;
          }
          last_epoch = r.value().epoch;
          std::string why;
          if (!ObservationIsSelfConsistent(r.value(), &why)) {
            error = why;
            return false;
          }
        }
        obs.push_back(Observation{r.ok() ? r.value().epoch : last_epoch,
                                  config, Fingerprint(r)});
        return true;
      };
      while (!done.load(std::memory_order_acquire)) {
        const size_t config = n++ % mix.size();
        if (!issue(mix[config], config)) return;
        std::this_thread::yield();
      }
      // One final sweep so every reader provably observes the final
      // epoch for every query in the mix.
      for (size_t config = 0; config < mix.size(); ++config) {
        if (!issue(mix[config], config)) return;
      }
    });

    // Release the fleet before any assertion: an early return while
    // readers still spin on !done would hang the join in ~ReaderFleet.
    Status ingest_status;
    for (uint32_t day = 0; day < kDays; ++day) {
      auto tick = engine.IngestText(days[day]);
      if (!tick.ok()) {
        ingest_status = tick.status();
        break;
      }
    }
    done.store(true, std::memory_order_release);
    fleet.Join();
    ASSERT_TRUE(ingest_status.ok()) << ingest_status.ToString();
  }

  for (size_t reader = 0; reader < kReaders; ++reader) {
    EXPECT_EQ(reader_errors[reader], "") << "reader " << reader;
  }

  // Serial replay: the same week, one tick at a time, recording the
  // expected answer for every (epoch, query) pair a reader could have
  // observed. Determinism across thread counts is already covered by
  // engine_test, so the reference runs single-threaded.
  Engine reference(TestOptions(/*threads=*/1));
  std::map<std::pair<uint64_t, size_t>, std::string> expected;
  for (size_t config = 0; config < mix.size(); ++config) {
    expected[{0, config}] = Fingerprint(reference.Query(mix[config]));
  }
  for (uint32_t day = 0; day < kDays; ++day) {
    ASSERT_TRUE(reference.IngestText(days[day]).ok());
    for (size_t config = 0; config < mix.size(); ++config) {
      expected[{day + 1, config}] =
          Fingerprint(reference.Query(mix[config]));
    }
  }

  // Every concurrent observation equals the serial answer at its epoch.
  size_t total = 0;
  uint64_t final_epoch_hits = 0;
  for (size_t reader = 0; reader < kReaders; ++reader) {
    for (const Observation& o : observed[reader]) {
      ASSERT_LE(o.epoch, kDays);
      const auto it = expected.find({o.epoch, o.config});
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(o.fingerprint, it->second)
          << "reader " << reader << " config " << o.config << " epoch "
          << o.epoch;
      if (o.epoch == kDays) ++final_epoch_hits;
      ++total;
    }
    EXPECT_FALSE(observed[reader].empty()) << "reader " << reader;
    ASSERT_GE(observed[reader].size(), mix.size());
    EXPECT_EQ(observed[reader].back().epoch, kDays)
        << "reader " << reader << " never saw the final epoch";
  }
  // All four readers ran their final sweep at the final epoch.
  EXPECT_GE(final_epoch_hits, kReaders * mix.size());
  EXPECT_GE(total, kReaders * mix.size());
}

TEST(ConcurrentEngineTest, PinnedSnapshotIsImmuneToLaterIngest) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(/*threads=*/1));
  for (uint32_t day = 0; day < 3; ++day) {
    ASSERT_TRUE(engine.IngestText(days[day]).ok());
  }
  Query q;
  q.algorithm = FinderAlgorithm::kBfs;
  q.k = 3;
  q.l = 2;

  const auto pinned = engine.snapshot();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, 3u);
  EXPECT_TRUE(pinned->graph->frozen());
  EXPECT_EQ(pinned->graph->interval_count(), 3u);
  const std::string before = Fingerprint(engine.QueryAt(pinned, q));

  for (uint32_t day = 3; day < kDays; ++day) {
    ASSERT_TRUE(engine.IngestText(days[day]).ok());
  }

  // The pinned epoch still answers exactly as it did, while the live
  // engine has moved on.
  const auto at_pin = engine.QueryAt(pinned, q);
  ASSERT_TRUE(at_pin.ok());
  EXPECT_EQ(at_pin.value().epoch, 3u);
  EXPECT_EQ(Fingerprint(at_pin), before);

  // Rendering off the pinned snapshot's word table agrees with the live
  // engine's (keyword ids are append-only, so both tables resolve a
  // committed chain identically).
  ASSERT_FALSE(at_pin.value().chains.empty());
  const StableClusterChain& chain = at_pin.value().chains[0];
  const std::string rendered = pinned->RenderChain(chain);
  EXPECT_NE(rendered.find("interval"), std::string::npos);
  EXPECT_EQ(rendered, engine.RenderChain(chain));

  const auto live = engine.Query(q);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().epoch, static_cast<uint64_t>(kDays));
}

TEST(ConcurrentEngineTest, QueryCacheHitsRepeatsAndRollsWithEpochs) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(/*threads=*/1));
  ASSERT_TRUE(engine.IngestText(days[0]).ok());
  ASSERT_TRUE(engine.IngestText(days[1]).ok());

  Query q;
  q.algorithm = FinderAlgorithm::kBfs;
  q.k = 3;
  q.l = 1;
  const std::string first = Fingerprint(engine.Query(q));
  const uint64_t hits_before = engine.stats().query_cache_hits;
  EXPECT_EQ(Fingerprint(engine.Query(q)), first);
  EXPECT_EQ(engine.stats().query_cache_hits, hits_before + 1);

  // A new epoch is a new key: the next query recomputes (miss), and its
  // answer reflects the new interval.
  ASSERT_TRUE(engine.IngestText(days[2]).ok());
  const uint64_t misses_before = engine.stats().query_cache_misses;
  auto after = engine.Query(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().epoch, 3u);
  EXPECT_EQ(engine.stats().query_cache_misses, misses_before + 1);

  // A cache-disabled engine answers identically.
  EngineOptions no_cache = TestOptions(1);
  no_cache.query_cache.entries_per_shard = 0;
  Engine uncached(no_cache);
  ASSERT_TRUE(uncached.IngestText(days[0]).ok());
  ASSERT_TRUE(uncached.IngestText(days[1]).ok());
  EXPECT_EQ(Fingerprint(uncached.Query(q)), first);
  EXPECT_EQ(uncached.stats().query_cache_hits, 0u);
}

}  // namespace
}  // namespace stabletext
