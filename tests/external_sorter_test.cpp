// ExternalSorter: equality with std::sort under many memory budgets
// (forcing 0..many spill runs), duplicate preservation, edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "storage/external_sorter.h"
#include "util/random.h"

namespace stabletext {
namespace {

struct Pair {
  uint32_t a;
  uint32_t b;
  friend bool operator<(const Pair& x, const Pair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  }
  friend bool operator==(const Pair& x, const Pair& y) {
    return x.a == y.a && x.b == y.b;
  }
};

std::vector<Pair> RandomPairs(size_t n, uint64_t seed, uint32_t key_space) {
  Rng rng(seed);
  std::vector<Pair> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Pair{static_cast<uint32_t>(rng.Uniform(key_space)),
                       static_cast<uint32_t>(rng.Uniform(key_space))});
  }
  return out;
}

std::vector<Pair> SortWith(const std::vector<Pair>& input,
                           size_t budget_bytes, IoStats* stats,
                           size_t* runs) {
  ExternalSorterOptions opt;
  opt.memory_budget_bytes = budget_bytes;
  opt.page_size = 256;
  ExternalSorter<Pair> sorter(opt, stats);
  for (const Pair& p : input) EXPECT_TRUE(sorter.Add(p).ok());
  EXPECT_TRUE(sorter.Sort().ok());
  std::vector<Pair> out;
  Pair p;
  while (sorter.Next(&p)) out.push_back(p);
  EXPECT_TRUE(sorter.status().ok());
  if (runs != nullptr) *runs = sorter.run_count();
  return out;
}

TEST(ExternalSorterTest, EmptyInput) {
  IoStats stats;
  auto out = SortWith({}, 1 << 20, &stats, nullptr);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.page_reads, 0u);
}

TEST(ExternalSorterTest, SingleElement) {
  auto out = SortWith({Pair{3, 4}}, 1 << 20, nullptr, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Pair{3, 4}));
}

TEST(ExternalSorterTest, InMemoryPathMatchesStdSort) {
  auto input = RandomPairs(5000, 1, 1000);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  size_t runs = 0;
  auto out = SortWith(input, 1 << 20, nullptr, &runs);
  EXPECT_EQ(runs, 0u);  // Never spilled.
  EXPECT_EQ(out, expected);
}

TEST(ExternalSorterTest, PreservesDuplicateMultiplicity) {
  std::vector<Pair> input(1000, Pair{1, 1});
  for (int i = 0; i < 500; ++i) input.push_back(Pair{0, 9});
  size_t runs = 0;
  auto out = SortWith(input, 64 * sizeof(Pair), nullptr, &runs);
  EXPECT_GT(runs, 1u);
  ASSERT_EQ(out.size(), 1500u);
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(out[i], (Pair{0, 9}));
  for (size_t i = 500; i < 1500; ++i) EXPECT_EQ(out[i], (Pair{1, 1}));
}

class ExternalSorterBudgetTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ExternalSorterBudgetTest, MatchesStdSortUnderBudget) {
  const auto [n, budget_records] = GetParam();
  auto input = RandomPairs(n, 0xC0FFEE + n + budget_records, 512);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  IoStats stats;
  size_t runs = 0;
  auto out =
      SortWith(input, budget_records * sizeof(Pair), &stats, &runs);
  EXPECT_EQ(out, expected);
  if (budget_records < n) {
    EXPECT_GT(runs, 0u);
    EXPECT_GT(stats.page_writes, 0u);  // Spill traffic was accounted.
    EXPECT_GT(stats.page_reads, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ExternalSorterBudgetTest,
    ::testing::Combine(::testing::Values<size_t>(100, 1000, 20000),
                       ::testing::Values<size_t>(16, 64, 1024, 100000)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_budget" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ExternalSorterTest, ManyRunsStillMergeCorrectly) {
  auto input = RandomPairs(10000, 77, 50);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  size_t runs = 0;
  // Budget of 1 record degenerates to max_buffered_ = 1: 10000 runs.
  auto out = SortWith(input, 1, nullptr, &runs);
  EXPECT_EQ(runs, 10000u);
  EXPECT_EQ(out, expected);
}

TEST(ExternalSorterTest, CustomComparator) {
  struct Desc {
    bool operator()(const Pair& x, const Pair& y) const { return y < x; }
  };
  ExternalSorterOptions opt;
  opt.memory_budget_bytes = 16 * sizeof(Pair);
  ExternalSorter<Pair, Desc> sorter(opt);
  auto input = RandomPairs(300, 5, 64);
  for (const Pair& p : input) ASSERT_TRUE(sorter.Add(p).ok());
  ASSERT_TRUE(sorter.Sort().ok());
  std::vector<Pair> out;
  Pair p;
  while (sorter.Next(&p)) out.push_back(p);
  auto expected = input;
  std::sort(expected.begin(), expected.end(), Desc());
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace stabletext
