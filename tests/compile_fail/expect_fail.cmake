# Harness for the negative compile suite (see CMakeLists.txt here).
# Inputs: COMPILER, FLAGS (cmake list), SOURCE, EXPECT_FAIL, EXPECT.
#   EXPECT_FAIL=ON : compilation must fail AND the output must match the
#                    EXPECT regex — failing for the wrong reason is a
#                    suite failure, not a pass.
#   EXPECT_FAIL=OFF: compilation must succeed (positive control proving
#                    the harness and flags can build correct code).
execute_process(
    COMMAND ${COMPILER} ${FLAGS} ${SOURCE} -o /dev/null
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
set(all "${out}\n${err}")
if(EXPECT_FAIL)
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "expected ${SOURCE} to fail to compile, but it succeeded — the "
        "static gate this case seeds a violation of is not firing")
  endif()
  if(NOT all MATCHES "${EXPECT}")
    message(FATAL_ERROR
        "${SOURCE} failed to compile, but without the expected "
        "diagnostic (regex: ${EXPECT}). Compiler output:\n${all}")
  endif()
else()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "positive control ${SOURCE} failed to compile:\n${all}")
  endif()
endif()
