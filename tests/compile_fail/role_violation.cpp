// Seeded violation: calling a thread-affine (REQUIRES(role)) method
// without holding the role — e.g. touching the engine's commit path
// from a random thread. Must fail under Clang ("requires holding").
#include "util/annotated_mutex.h"

namespace {
class Committer {
 public:
  stabletext::ThreadRole writer_role;
  void Commit() REQUIRES(writer_role) {}
};
}  // namespace

int main() {
  Committer c;
  c.Commit();  // BUG: writer_role not held.
  return 0;
}
