// Seeded violation: a Status silently dropped on the floor. Status is
// [[nodiscard]], so under -Werror this must fail on every supported
// compiler — a failed fsync that nobody checks is how data loss starts.
#include "util/status.h"

namespace {
stabletext::Status Flush() { return stabletext::Status::OK(); }
}  // namespace

int main() {
  Flush();  // BUG: result ignored.
  return 0;
}
