// Seeded violation: writing a GUARDED_BY(mu_) field without holding
// mu_. Clang -Wthread-safety must reject this ("requires holding").
#include "util/annotated_mutex.h"

namespace {
class Counter {
 public:
  void Increment() { ++value_; }  // BUG: mu_ not held.

 private:
  stabletext::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};
}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
