// Positive control: correct use of the exact constructs the negative
// cases violate, built through the same harness and flags. If this
// stops compiling, the suite's "expected failures" prove nothing.
#include "util/annotated_mutex.h"
#include "util/status.h"

namespace {
class Counter {
 public:
  void Increment() {
    stabletext::MutexLock lock(mu_);
    ++value_;
  }
  int value() {
    stabletext::MutexLock lock(mu_);
    return value_;
  }

 private:
  stabletext::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class Committer {
 public:
  stabletext::ThreadRole writer_role;
  void Commit() REQUIRES(writer_role) { ++commits_; }

 private:
  int commits_ GUARDED_BY(writer_role) = 0;
};

stabletext::Status Flush() { return stabletext::Status::OK(); }
}  // namespace

int main() {
  Counter c;
  c.Increment();
  Committer committer;
  {
    stabletext::AssumeRole role(committer.writer_role);
    committer.Commit();
  }
  stabletext::Status s = Flush();
  return (s.ok() && c.value() == 1) ? 0 : 1;
}
