// Seeded violation: acquiring a mutex the scope already holds —
// self-deadlock with std::mutex at runtime, a compile error here
// ("already held").
#include "util/annotated_mutex.h"

namespace {
stabletext::Mutex mu;
int value GUARDED_BY(mu) = 0;
}  // namespace

int main() {
  stabletext::MutexLock outer(mu);
  stabletext::MutexLock inner(mu);  // BUG: mu is already held.
  ++value;
  return 0;
}
