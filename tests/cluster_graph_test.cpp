// ClusterGraph: construction invariants, edge validation, adjacency
// ordering, and the generator's conformance to the Section 5 model.

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(ClusterGraphTest, AddNodesAndEdges) {
  ClusterGraph g(3, 0);
  const NodeId a = g.AddNode(0);
  const NodeId b = g.AddNode(1);
  const NodeId c = g.AddNode(2);
  EXPECT_TRUE(g.AddEdge(a, b, 0.5).ok());
  EXPECT_TRUE(g.AddEdge(b, c, 1.0).ok());
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.Interval(b), 1u);
  EXPECT_EQ(g.IntervalNodes(0), (std::vector<NodeId>{a}));
  ASSERT_EQ(g.Children(a).size(), 1u);
  EXPECT_EQ(g.Children(a)[0].target, b);
  ASSERT_EQ(g.Parents(c).size(), 1u);
  EXPECT_EQ(g.Parents(c)[0].target, b);
  EXPECT_EQ(g.EdgeLength(a, b), 1u);
}

TEST(ClusterGraphTest, RejectsInvalidEdges) {
  ClusterGraph g(4, 0);  // Gap 0: edges span exactly 1 interval... plus 1.
  const NodeId a = g.AddNode(0);
  const NodeId b = g.AddNode(1);
  const NodeId c = g.AddNode(3);
  EXPECT_FALSE(g.AddEdge(b, a, 0.5).ok());   // Backward in time.
  EXPECT_FALSE(g.AddEdge(a, c, 0.5).ok());   // Exceeds gap bound (3 > 1).
  EXPECT_FALSE(g.AddEdge(a, b, 0.0).ok());   // Weight must be > 0.
  EXPECT_FALSE(g.AddEdge(a, b, 1.5).ok());   // Weight must be <= 1.
  EXPECT_FALSE(g.AddEdge(a, 99, 0.5).ok());  // Out of range.
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(ClusterGraphTest, GapAllowsLongerEdges) {
  ClusterGraph g(4, 2);
  const NodeId a = g.AddNode(0);
  const NodeId c = g.AddNode(3);
  EXPECT_TRUE(g.AddEdge(a, c, 0.5).ok());  // Length 3 <= g+1 = 3.
  EXPECT_EQ(g.EdgeLength(a, c), 3u);
}

TEST(ClusterGraphTest, ChildrenSortedByDescendingWeight) {
  ClusterGraph g(2, 0);
  const NodeId a = g.AddNode(0);
  const NodeId x = g.AddNode(1);
  const NodeId y = g.AddNode(1);
  const NodeId z = g.AddNode(1);
  ASSERT_TRUE(g.AddEdge(a, x, 0.2).ok());
  ASSERT_TRUE(g.AddEdge(a, y, 0.9).ok());
  ASSERT_TRUE(g.AddEdge(a, z, 0.5).ok());
  g.SortChildren();
  ASSERT_EQ(g.Children(a).size(), 3u);
  EXPECT_EQ(g.Children(a)[0].target, y);
  EXPECT_EQ(g.Children(a)[1].target, z);
  EXPECT_EQ(g.Children(a)[2].target, x);
  EXPECT_EQ(g.MaxOutDegree(), 3u);
}

TEST(ClusterGraphTest, PaperFigure5Shape) {
  ClusterGraph g = MakePaperFigure5Graph();
  EXPECT_EQ(g.interval_count(), 3u);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.gap(), 1u);
  // The gap edge c11 -> c32 has length 2 (the paper's worked example).
  EXPECT_EQ(g.EdgeLength(0, 7), 2u);
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(ClusterGraphGeneratorTest, MatchesSection5Model) {
  ClusterGraphGenOptions opt;
  opt.m = 5;
  opt.n = 50;
  opt.d = 4;
  opt.g = 1;
  opt.seed = 11;
  ClusterGraph g = ClusterGraphGenerator::Generate(opt);
  EXPECT_EQ(g.interval_count(), 5u);
  EXPECT_EQ(g.node_count(), 250u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g.IntervalNodes(i).size(), 50u);
  }
  // Every node in a non-final interval has outgoing edges to each
  // reachable interval, between 1 and 2d per pair, and weights in (0,1].
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<size_t> per_interval(5, 0);
    for (const ClusterGraphEdge& e : g.Children(v)) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 1.0);
      const uint32_t span = g.Interval(e.target) - g.Interval(v);
      EXPECT_GE(span, 1u);
      EXPECT_LE(span, opt.g + 1);
      ++per_interval[g.Interval(e.target)];
    }
    const uint32_t iv = g.Interval(v);
    for (uint32_t j = iv + 1; j < 5 && j <= iv + opt.g + 1; ++j) {
      EXPECT_GE(per_interval[j], 1u);
      EXPECT_LE(per_interval[j], 2u * opt.d);
    }
  }
}

TEST(ClusterGraphGeneratorTest, DeterministicPerSeed) {
  ClusterGraph a = MakeRandomGraph(4, 20, 3, 1, 5);
  ClusterGraph b = MakeRandomGraph(4, 20, 3, 1, 5);
  ClusterGraph c = MakeRandomGraph(4, 20, 3, 1, 6);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  bool all_equal = true;
  for (NodeId v = 0; v < a.node_count(); ++v) {
    const auto& ca = a.Children(v);
    const auto& cb = b.Children(v);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i].target, cb[i].target);
      ASSERT_EQ(ca[i].weight, cb[i].weight);
    }
  }
  (void)all_equal;
  EXPECT_NE(a.edge_count(), 0u);
  // A different seed produces a different graph: compare a weight
  // fingerprint (collision odds are negligible).
  auto fingerprint = [](const ClusterGraph& gr) {
    double sum = 0;
    for (NodeId v = 0; v < gr.node_count(); ++v) {
      for (const ClusterGraphEdge& e : gr.Children(v)) {
        sum += e.weight * (v + 1);
      }
    }
    return sum;
  };
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(ClusterGraphGeneratorTest, QuantizedWeightsAreExactBinaryFractions) {
  ClusterGraph g = MakeRandomGraph(3, 30, 3, 0, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const ClusterGraphEdge& e : g.Children(v)) {
      const double scaled = e.weight * 1024.0;
      EXPECT_EQ(scaled, std::floor(scaled));
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 1.0);
    }
  }
}

TEST(ClusterGraphGeneratorTest, AverageOutDegreeNearD) {
  ClusterGraphGenOptions opt;
  opt.m = 2;
  opt.n = 2000;
  opt.d = 5;
  opt.g = 0;
  ClusterGraph g = ClusterGraphGenerator::Generate(opt);
  double total = 0;
  for (NodeId v : g.IntervalNodes(0)) total += g.Children(v).size();
  const double avg = total / 2000.0;
  // E[out degree] = (1 + 2d) / 2 = 5.5 for d = 5; sampling keeps it close.
  EXPECT_GT(avg, 4.8);
  EXPECT_LT(avg, 6.2);
}

}  // namespace
}  // namespace stabletext
