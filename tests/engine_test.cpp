// Engine API: incremental ingest ≡ batch build. Intervals ingested one at
// a time with interleaved queries must leave the engine in a state
// byte-identical to ingesting everything up front (and to the legacy
// batch pipeline shim), for every algorithm in the registry and for 1 and
// 4 worker threads. Plus lifecycle validation, registry reachability (TA,
// brute-force, online, diversified) and the corpus-file ingest contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/pipeline.h"
#include "gen/corpus_generator.h"
#include "stable/diversify.h"
#include "storage/temp_dir.h"
#include "util/strings.h"

namespace stabletext {
namespace {

constexpr uint32_t kDays = 5;

CorpusGenOptions TestCorpus() {
  CorpusGenOptions opt;
  opt.days = kDays;
  opt.posts_per_day = 300;
  opt.vocabulary = 1500;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 28;
  opt.micro_events = 30;
  opt.seed = 11;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions(uint32_t gap, size_t threads) {
  EngineOptions opt;
  opt.gap = gap;
  opt.threads = threads;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

// Byte-exact rendering of a query answer: node sequences and full-precision
// weights.
std::string PathsFingerprint(const QueryResult& result) {
  std::string out;
  for (const StableClusterChain& chain : result.chains) {
    for (NodeId n : chain.path.nodes) {
      out += StringPrintf("%u-", n);
    }
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

// Byte-exact rendering of the engine's graph (works frozen or unfrozen).
std::string GraphFingerprint(const ClusterGraph& graph) {
  std::string out = StringPrintf("nodes=%zu edges=%zu intervals=%u\n",
                                 graph.node_count(), graph.edge_count(),
                                 graph.interval_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      out += StringPrintf("%u->%u %.17g\n", v, e.target, e.weight);
    }
  }
  return out;
}

std::vector<std::vector<std::string>> GenerateWeek() {
  CorpusGenerator gen(TestCorpus());
  std::vector<std::vector<std::string>> days;
  for (uint32_t day = 0; day < kDays; ++day) {
    days.push_back(gen.GenerateDay(day));
  }
  return days;
}

Query MakeQuery(FinderAlgorithm algorithm, size_t k, uint32_t l) {
  Query q;
  q.algorithm = algorithm;
  q.k = k;
  q.l = l;
  return q;
}

// The incremental-vs-batch equivalence demanded by the acceptance
// criteria: ingest one interval at a time with interleaved queries, then
// compare the final answers (all algorithms) and the graph against a
// one-shot build, at 1 and 4 threads.
TEST(EngineEquivalenceTest, IncrementalMatchesBatchAllAlgorithms) {
  const auto days = GenerateWeek();

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(StringPrintf("threads=%zu", threads));

    // Incremental: one tick at a time, querying between every two
    // ingests (the queries must not perturb later answers).
    Engine incremental(TestOptions(/*gap=*/1, threads));
    for (uint32_t day = 0; day < kDays; ++day) {
      auto tick = incremental.IngestText(days[day]);
      ASSERT_TRUE(tick.ok()) << tick.status().ToString();
      EXPECT_EQ(tick.value(), day);
      for (const FinderAlgorithm algorithm :
           {FinderAlgorithm::kBfs, FinderAlgorithm::kDfs,
            FinderAlgorithm::kOnline}) {
        auto mid = incremental.Query(MakeQuery(algorithm, 3, 2));
        ASSERT_TRUE(mid.ok()) << mid.status().ToString();
      }
    }

    // Batch: everything up front, no intermediate queries.
    Engine batch(TestOptions(/*gap=*/1, threads));
    for (uint32_t day = 0; day < kDays; ++day) {
      ASSERT_TRUE(batch.IngestText(days[day]).ok());
    }

    // Legacy facade: the deprecated shim must agree too.
    StableClusterPipeline shim(TestOptions(/*gap=*/1, threads));
    for (uint32_t day = 0; day < kDays; ++day) {
      ASSERT_TRUE(shim.AddIntervalText(days[day]).ok());
    }
    ASSERT_TRUE(shim.BuildClusterGraph().ok());

    EXPECT_EQ(GraphFingerprint(incremental.graph()),
              GraphFingerprint(batch.graph()));
    EXPECT_EQ(GraphFingerprint(incremental.graph()),
              GraphFingerprint(*shim.cluster_graph()));

    for (const FinderAlgorithm algorithm :
         {FinderAlgorithm::kBfs, FinderAlgorithm::kDfs,
          FinderAlgorithm::kOnline, FinderAlgorithm::kBruteForce}) {
      SCOPED_TRACE(FinderAlgorithmName(algorithm));
      for (const uint32_t l : {uint32_t{2}, uint32_t{0}}) {
        auto inc = incremental.Query(MakeQuery(algorithm, 4, l));
        auto bat = batch.Query(MakeQuery(algorithm, 4, l));
        ASSERT_TRUE(inc.ok()) << inc.status().ToString();
        ASSERT_TRUE(bat.ok()) << bat.status().ToString();
        EXPECT_FALSE(inc.value().chains.empty());
        EXPECT_EQ(PathsFingerprint(inc.value()),
                  PathsFingerprint(bat.value()))
            << "l=" << l;
      }
    }

    // Normalized mode agrees as well.
    Query normalized = MakeQuery(FinderAlgorithm::kBfs, 4, 2);
    normalized.mode = FinderMode::kNormalized;
    auto inc_norm = incremental.Query(normalized);
    auto bat_norm = batch.Query(normalized);
    ASSERT_TRUE(inc_norm.ok());
    ASSERT_TRUE(bat_norm.ok());
    EXPECT_EQ(PathsFingerprint(inc_norm.value()),
              PathsFingerprint(bat_norm.value()));

    // And the shim's answers are the engine's answers.
    auto shim_chains = shim.FindStableClusters(4, 2, FinderKind::kBfs);
    auto engine_chains = incremental.Query(MakeQuery(
        FinderAlgorithm::kBfs, 4, 2));
    ASSERT_TRUE(shim_chains.ok());
    ASSERT_TRUE(engine_chains.ok());
    ASSERT_EQ(shim_chains.value().size(),
              engine_chains.value().chains.size());
    for (size_t i = 0; i < shim_chains.value().size(); ++i) {
      EXPECT_EQ(shim_chains.value()[i].path.nodes,
                engine_chains.value().chains[i].path.nodes);
    }
  }
}

// The TA finder (Section 4.5) is gap-0 / full-path; at that
// configuration it must agree with brute force and bfs, incrementally
// ingested, at 1 and 4 threads.
TEST(EngineEquivalenceTest, TaMatchesOracleOnGapZero) {
  const auto days = GenerateWeek();
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(StringPrintf("threads=%zu", threads));
    Engine engine(TestOptions(/*gap=*/0, threads));
    for (uint32_t day = 0; day < kDays; ++day) {
      ASSERT_TRUE(engine.IngestText(days[day]).ok());
      // Interleaved TA queries: full-path answers on the stream so far.
      auto mid = engine.Query(MakeQuery(FinderAlgorithm::kTa, 3, 0));
      ASSERT_TRUE(mid.ok()) << mid.status().ToString();
    }
    auto ta = engine.Query(MakeQuery(FinderAlgorithm::kTa, 3, 0));
    auto oracle =
        engine.Query(MakeQuery(FinderAlgorithm::kBruteForce, 3, 0));
    auto bfs = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 0));
    ASSERT_TRUE(ta.ok()) << ta.status().ToString();
    ASSERT_TRUE(oracle.ok());
    ASSERT_TRUE(bfs.ok());
    EXPECT_FALSE(ta.value().chains.empty());
    EXPECT_EQ(PathsFingerprint(ta.value()),
              PathsFingerprint(oracle.value()));
    EXPECT_EQ(PathsFingerprint(ta.value()), PathsFingerprint(bfs.value()));
  }
}

// The warm online cache fed across ingests must equal a cold batch BFS
// at every tick, not just the last one.
TEST(EngineEquivalenceTest, OnlineWarmCacheMatchesBfsEveryTick) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(/*gap=*/1, /*threads=*/1));
  for (uint32_t day = 0; day < kDays; ++day) {
    ASSERT_TRUE(engine.IngestText(days[day]).ok());
    auto online = engine.Query(MakeQuery(FinderAlgorithm::kOnline, 4, 2));
    auto bfs = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 4, 2));
    ASSERT_TRUE(online.ok()) << online.status().ToString();
    ASSERT_TRUE(bfs.ok());
    EXPECT_EQ(PathsFingerprint(online.value()),
              PathsFingerprint(bfs.value()))
        << "tick " << day;
  }
}

TEST(EngineTest, QueryValidAtAnyTime) {
  Engine engine(TestOptions(1, 1));
  // Empty engine: every algorithm answers (emptily), no barrier errors.
  for (const FinderAlgorithm algorithm :
       {FinderAlgorithm::kBfs, FinderAlgorithm::kDfs,
        FinderAlgorithm::kOnline, FinderAlgorithm::kBruteForce}) {
    auto r = engine.Query(MakeQuery(algorithm, 3, 0));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().chains.empty());
  }
  ASSERT_TRUE(engine
                  .IngestText({"apple iphone launch today",
                               "apple iphone touchscreen demo"})
                  .ok());
  // One interval: still no paths, still no errors.
  auto r = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().chains.empty());
}

TEST(EngineTest, ValidationAndUnsupportedCombinations) {
  Engine engine(TestOptions(1, 1));
  ASSERT_TRUE(engine.IngestText({"apple iphone launch", "apple iphone"})
                  .ok());
  ASSERT_TRUE(engine.IngestText({"apple iphone lawsuit", "apple iphone"})
                  .ok());

  Query q = MakeQuery(FinderAlgorithm::kBfs, 0, 0);
  EXPECT_EQ(engine.Query(q).status().code(), StatusCode::kInvalidArgument);

  // k = 0 is rejected uniformly, including on the warm online path.
  q = MakeQuery(FinderAlgorithm::kOnline, 0, 1);
  EXPECT_EQ(engine.Query(q).status().code(), StatusCode::kInvalidArgument);

  // Early-stream grace covers both modes: length (or lmin) beyond the
  // stream so far is an empty answer, not an error.
  q = MakeQuery(FinderAlgorithm::kBfs, 3, 5);
  ASSERT_TRUE(engine.Query(q).ok());
  EXPECT_TRUE(engine.Query(q).value().chains.empty());
  q.mode = FinderMode::kNormalized;
  ASSERT_TRUE(engine.Query(q).ok());
  EXPECT_TRUE(engine.Query(q).value().chains.empty());

  q = MakeQuery(FinderAlgorithm::kTa, 3, 0);
  q.mode = FinderMode::kNormalized;
  EXPECT_EQ(engine.Query(q).status().code(), StatusCode::kNotSupported);

  q = MakeQuery(FinderAlgorithm::kOnline, 3, 0);
  q.mode = FinderMode::kNormalized;
  EXPECT_EQ(engine.Query(q).status().code(), StatusCode::kNotSupported);

  // TA on a gapped engine: surfaced, not silently substituted.
  Engine gapped(TestOptions(/*gap=*/1, 1));
  ASSERT_TRUE(gapped.IngestText({"apple iphone launch"}).ok());
  ASSERT_TRUE(gapped.IngestText({"apple iphone lawsuit"}).ok());
  EXPECT_EQ(gapped.Query(MakeQuery(FinderAlgorithm::kTa, 3, 0))
                .status()
                .code(),
            StatusCode::kNotSupported);

  // Compact freezes: queries keep working, ingest fails.
  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_TRUE(engine.compacted());
  EXPECT_TRUE(engine.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 0)).ok());
  EXPECT_FALSE(engine.IngestText({"too late"}).ok());
}

// The post-compact online contract (previously undefined: a stale warm
// OnlineStableFinder could outlive the freeze): warm state survives into
// the final snapshot only when caught up with the final epoch, so a
// post-compact online query — same configuration or any other — answers
// exactly like a replay of the frozen graph, i.e. like BFS.
TEST(EngineTest, CompactDefinesPostCompactOnlineBehavior) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(/*gap=*/1, /*threads=*/1));
  ASSERT_TRUE(engine.IngestText(days[0]).ok());
  ASSERT_TRUE(engine.IngestText(days[1]).ok());
  // Warm the (3, 2) configuration: the cold query hints the writer, the
  // next ingests keep it warm.
  ASSERT_TRUE(engine.Query(MakeQuery(FinderAlgorithm::kOnline, 3, 2)).ok());
  ASSERT_TRUE(engine.IngestText(days[2]).ok());
  ASSERT_TRUE(engine.IngestText(days[3]).ok());

  auto pre = engine.Query(MakeQuery(FinderAlgorithm::kOnline, 3, 2));
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  ASSERT_FALSE(pre.value().chains.empty());

  ASSERT_TRUE(engine.Compact().ok());
  EXPECT_TRUE(engine.compacted());

  // Same configuration: identical answer across the freeze.
  auto post = engine.Query(MakeQuery(FinderAlgorithm::kOnline, 3, 2));
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(PathsFingerprint(pre.value()), PathsFingerprint(post.value()));

  // Any other configuration replays the frozen graph and agrees with
  // BFS — no stale warm state can leak into it.
  auto online_other =
      engine.Query(MakeQuery(FinderAlgorithm::kOnline, 2, 3));
  auto bfs_other = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 2, 3));
  ASSERT_TRUE(online_other.ok()) << online_other.status().ToString();
  ASSERT_TRUE(bfs_other.ok());
  EXPECT_FALSE(online_other.value().chains.empty());
  EXPECT_EQ(PathsFingerprint(online_other.value()),
            PathsFingerprint(bfs_other.value()));

  // And the compacted epoch is what queries serve: ingest is rejected,
  // the published snapshot is frozen CSR.
  EXPECT_FALSE(engine.IngestText({"too late"}).ok());
  EXPECT_TRUE(engine.snapshot()->graph->frozen());
  EXPECT_EQ(engine.snapshot()->epoch, 4u);
}

TEST(EngineTest, DiversifiedQueryRespectsAffixConstraints) {
  const auto days = GenerateWeek();
  Engine engine(TestOptions(1, 1));
  for (const auto& day : days) {
    ASSERT_TRUE(engine.IngestText(day).ok());
  }
  Query q = MakeQuery(FinderAlgorithm::kBfs, 4, 2);
  q.diversify_prefix = 2;
  q.diversify_suffix = 2;
  auto r = engine.Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& chains = r.value().chains;
  ASSERT_FALSE(chains.empty());
  EXPECT_LE(chains.size(), 4u);
  DiversifyOptions constraints;
  constraints.prefix_nodes = 2;
  constraints.suffix_nodes = 2;
  for (size_t a = 0; a < chains.size(); ++a) {
    for (size_t b = a + 1; b < chains.size(); ++b) {
      EXPECT_FALSE(PathsConflict(chains[a].path, chains[b].path,
                                 constraints));
    }
  }
  // And the un-diversified top-4 does conflict (otherwise the constraint
  // tested nothing on this corpus).
  auto plain = engine.Query(MakeQuery(FinderAlgorithm::kBfs, 4, 2));
  ASSERT_TRUE(plain.ok());
  bool any_conflict = false;
  const auto& plain_chains = plain.value().chains;
  for (size_t a = 0; a < plain_chains.size(); ++a) {
    for (size_t b = a + 1; b < plain_chains.size(); ++b) {
      any_conflict |= PathsConflict(plain_chains[a].path,
                                    plain_chains[b].path, constraints);
    }
  }
  EXPECT_TRUE(any_conflict);
}

TEST(EngineTest, IngestCorpusFileReturnsIntervalCount) {
  TempDir dir;
  CorpusGenOptions copt = TestCorpus();
  copt.days = 3;
  copt.posts_per_day = 150;
  CorpusGenerator gen(copt);
  const std::string path = dir.FilePath("corpus.txt");
  ASSERT_TRUE(gen.GenerateToFile(path).ok());

  Engine engine(TestOptions(1, 1));
  auto loaded = engine.IngestCorpusFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), 3u);
  EXPECT_EQ(engine.interval_count(), 3u);

  // The deprecated shim reports the same count through Result<uint32_t>.
  StableClusterPipeline shim(TestOptions(1, 1));
  auto shim_loaded = shim.AddCorpusFile(std::filesystem::path(path));
  ASSERT_TRUE(shim_loaded.ok());
  EXPECT_EQ(shim_loaded.value(), 3u);

  // The shim keeps the historical strict validation the engine relaxed:
  // an out-of-range l is an error, not an empty answer.
  ASSERT_TRUE(shim.BuildClusterGraph().ok());
  EXPECT_EQ(shim.FindStableClusters(3, 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(shim.FindNormalizedStableClusters(3, 10).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.IngestCorpusFile(dir.FilePath("missing.txt"))
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(EngineTest, StatsReflectIngest) {
  Engine engine(TestOptions(1, 1));
  EXPECT_EQ(engine.stats().intervals, 0u);
  ASSERT_TRUE(engine
                  .IngestText({"apple iphone macworld launch",
                               "apple iphone macworld keynote",
                               "apple iphone macworld demo"})
                  .ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.intervals, 1u);
  EXPECT_EQ(stats.clusters, engine.graph().node_count());
  EXPECT_GT(stats.keywords, 0u);
  EXPECT_GT(stats.graph_bytes, 0u);
}

// Raw-intersection affinities are normalized by the running maximum and
// rescaled in place when it grows: weights must stay in (0, 1] at every
// tick and queries must keep working throughout.
TEST(EngineTest, IntersectionMeasureRenormalizesIncrementally) {
  const auto days = GenerateWeek();
  EngineOptions opt = TestOptions(1, 1);
  opt.affinity.measure = AffinityMeasure::kIntersection;
  opt.affinity.theta = 1.5;  // Raw counts: "share > 1 keyword".
  Engine engine(opt);
  for (const auto& day : days) {
    ASSERT_TRUE(engine.IngestText(day).ok());
    for (NodeId v = 0; v < engine.graph().node_count(); ++v) {
      for (const ClusterGraphEdge& e : engine.graph().Children(v)) {
        ASSERT_GT(e.weight, 0.0);
        ASSERT_LE(e.weight, 1.0);
      }
    }
    ASSERT_TRUE(engine.Query(MakeQuery(FinderAlgorithm::kBfs, 3, 0)).ok());
  }
  EXPECT_GT(engine.graph().edge_count(), 0u);
}

}  // namespace
}  // namespace stabletext
