// Chunked copy-on-write epoch publication: the invariants behind the
// O(delta) publish path. Untouched adjacency chunks must be shared by
// pointer across epochs, pinned old epochs must stay byte-stable while
// the writer keeps committing, lazy read-time renormalization must equal
// the eager materialized baseline byte-for-byte for every finder, and the
// chunk-shared publish must answer exactly like the old full-copy path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "util/strings.h"

namespace stabletext {
namespace {

CorpusGenOptions TestCorpus(uint32_t days) {
  CorpusGenOptions opt;
  opt.days = days;
  opt.posts_per_day = 100;
  opt.vocabulary = 600;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 24;
  opt.micro_events = 12;
  opt.seed = 17;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions() {
  EngineOptions opt;
  opt.gap = 1;
  opt.threads = 1;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

std::vector<std::vector<std::string>> GenerateDays(uint32_t days) {
  CorpusGenerator gen(TestCorpus(days));
  std::vector<std::vector<std::string>> out;
  for (uint32_t day = 0; day < days; ++day) {
    out.push_back(gen.GenerateDay(day));
  }
  return out;
}

// Byte-exact rendering of the effective (read-time) adjacency.
std::string GraphFingerprint(const ClusterGraph& graph) {
  std::string out = StringPrintf("nodes=%zu edges=%zu intervals=%u\n",
                                 graph.node_count(), graph.edge_count(),
                                 graph.interval_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      out += StringPrintf("%u->%u %.17g\n", v, e.target, e.weight);
    }
    for (const ClusterGraphEdge& e : graph.Parents(v)) {
      out += StringPrintf("%u<-%u %.17g\n", v, e.target, e.weight);
    }
  }
  return out;
}

std::string PathsFingerprint(const QueryResult& result) {
  std::string out;
  for (const StableClusterChain& chain : result.chains) {
    for (NodeId n : chain.path.nodes) {
      out += StringPrintf("%u-", n);
    }
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

Query MakeQuery(FinderAlgorithm algorithm, size_t k, uint32_t l) {
  Query q;
  q.algorithm = algorithm;
  q.k = k;
  q.l = l;
  return q;
}

// Streams generated days (cycling if needed) until the graph spans at
// least `min_nodes` nodes; returns one pinned snapshot per epoch.
std::vector<std::shared_ptr<const GraphSnapshot>> IngestUntil(
    Engine* engine, const std::vector<std::vector<std::string>>& days,
    size_t min_nodes, size_t max_ticks) {
  std::vector<std::shared_ptr<const GraphSnapshot>> epochs;
  epochs.push_back(engine->snapshot());
  for (size_t t = 0; t < max_ticks; ++t) {
    auto r = engine->IngestText(days[t % days.size()]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) break;
    epochs.push_back(engine->snapshot());
    if (engine->snapshot()->graph->node_count() >= min_nodes) break;
  }
  return epochs;
}

// Untouched chunks must be pointer-identical across consecutive epochs;
// only the chunks covering the gap window (and the growing tail) may be
// rebuilt. The published chunk accounting must agree with reality.
TEST(ChunkedPublishTest, UntouchedChunksAreSharedAcrossEpochs) {
  const auto days = GenerateDays(7);
  Engine engine(TestOptions());
  // Enough ticks that the graph spans several chunks and the window has
  // moved well past chunk 0.
  const auto epochs = IngestUntil(&engine, days,
                                  2 * ClusterGraph::kChunkNodes + 64, 400);
  const auto& final_graph = *epochs.back()->graph;
  ASSERT_GE(final_graph.chunk_count(), 2u)
      << "corpus too small to span multiple chunks";

  size_t shared_pairs = 0;
  for (size_t e = 1; e < epochs.size(); ++e) {
    const auto& prev = *epochs[e - 1]->graph;
    const auto& cur = *epochs[e]->graph;
    ASSERT_GE(cur.chunk_count(), prev.chunk_count());
    if (prev.node_count() < ClusterGraph::kChunkNodes) continue;
    // Nodes of the last gap+2 intervals of `prev` may gain edges at the
    // next tick; chunks entirely below them must be shared.
    const uint32_t frontier_interval =
        prev.interval_count() >= 3 ? prev.interval_count() - 3 : 0;
    const NodeId frontier_node =
        prev.IntervalNodes(frontier_interval).empty()
            ? 0
            : prev.IntervalNodes(frontier_interval).front();
    const size_t stable_chunks = frontier_node >> ClusterGraph::kChunkShift;
    for (size_t c = 0; c < stable_chunks; ++c) {
      EXPECT_EQ(prev.child_chunk(c).get(), cur.child_chunk(c).get())
          << "epoch " << e << " rebuilt untouched child chunk " << c;
      EXPECT_EQ(prev.parent_chunk(c).get(), cur.parent_chunk(c).get())
          << "epoch " << e << " rebuilt untouched parent chunk " << c;
      ++shared_pairs;
    }
  }
  EXPECT_GT(shared_pairs, 0u) << "no sharing was ever exercised";

  // The published accounting covers every chunk, and once the graph spans
  // several chunks most of them are shared per publish.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shared_chunk_count + stats.copied_chunk_count,
            2 * final_graph.chunk_count());
  EXPECT_GT(stats.shared_chunk_count, 0u);
  EXPECT_GT(stats.publish_ns, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

// A pinned epoch must answer byte-identically while 100 further ticks
// commit — the copy-on-write guarantee readers rely on.
TEST(ChunkedPublishTest, PinnedEpochByteStableWhile100TicksCommit) {
  const auto days = GenerateDays(7);
  Engine engine(TestOptions());
  for (uint32_t day = 0; day < 5; ++day) {
    ASSERT_TRUE(engine.IngestText(days[day]).ok());
  }
  const auto pinned = engine.snapshot();
  ASSERT_EQ(pinned->epoch, 5u);
  const std::string graph_before = GraphFingerprint(*pinned->graph);
  const Query q = MakeQuery(FinderAlgorithm::kBfs, 3, 2);
  auto before = engine.QueryAt(pinned, q);
  ASSERT_TRUE(before.ok());
  const std::string answer_before = PathsFingerprint(before.value());

  for (uint32_t tick = 0; tick < 100; ++tick) {
    ASSERT_TRUE(engine.IngestText(days[tick % days.size()]).ok());
  }
  ASSERT_EQ(engine.snapshot()->epoch, 105u);

  EXPECT_EQ(GraphFingerprint(*pinned->graph), graph_before);
  auto after = engine.QueryAt(pinned, q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().epoch, 5u);
  EXPECT_EQ(PathsFingerprint(after.value()), answer_before);
}

// Lazy read-time renormalization must be byte-identical to the eager
// baseline that materializes scaled weights into every published chunk,
// for the graph itself and for all five finders, at every tick.
TEST(ChunkedPublishTest, LazyRenormalizationMatchesEagerAllFinders) {
  const auto days = GenerateDays(6);
  EngineOptions lazy_opt = TestOptions();
  lazy_opt.affinity.measure = AffinityMeasure::kIntersection;
  lazy_opt.affinity.theta = 1.5;  // Raw counts: "share > 1 keyword".
  lazy_opt.lazy_renormalize = true;
  EngineOptions eager_opt = lazy_opt;
  eager_opt.lazy_renormalize = false;

  Engine lazy(lazy_opt);
  Engine eager(eager_opt);
  const std::vector<FinderAlgorithm> all = {
      FinderAlgorithm::kBfs, FinderAlgorithm::kDfs, FinderAlgorithm::kTa,
      FinderAlgorithm::kBruteForce, FinderAlgorithm::kOnline};
  for (uint32_t day = 0; day < days.size(); ++day) {
    ASSERT_TRUE(lazy.IngestText(days[day]).ok());
    ASSERT_TRUE(eager.IngestText(days[day]).ok());
    EXPECT_EQ(GraphFingerprint(*lazy.snapshot()->graph),
              GraphFingerprint(*eager.snapshot()->graph))
        << "tick " << day;
    for (const FinderAlgorithm algorithm : all) {
      SCOPED_TRACE(StringPrintf("day=%u algo=%s", day,
                                FinderAlgorithmName(algorithm)));
      // TA is gap-0-only; this corpus runs at gap 1, so skip it at the
      // per-tick loop and let the graph fingerprint cover its inputs.
      if (algorithm == FinderAlgorithm::kTa) continue;
      auto l = lazy.Query(MakeQuery(algorithm, 4, 2));
      auto e = eager.Query(MakeQuery(algorithm, 4, 2));
      ASSERT_TRUE(l.ok()) << l.status().ToString();
      ASSERT_TRUE(e.ok()) << e.status().ToString();
      EXPECT_EQ(PathsFingerprint(l.value()), PathsFingerprint(e.value()));
    }
  }
  // Weights must still read in (0, 1] from both engines (the lazy scale
  // clamps exactly like the eager materialization).
  for (NodeId v = 0; v < lazy.graph().node_count(); ++v) {
    for (const ClusterGraphEdge& e : lazy.graph().Children(v)) {
      ASSERT_GT(e.weight, 0.0);
      ASSERT_LE(e.weight, 1.0);
    }
  }
  EXPECT_GT(lazy.graph().edge_count(), 0u);
}

// TA needs gap 0: run the lazy/eager equivalence for it separately.
TEST(ChunkedPublishTest, LazyRenormalizationMatchesEagerTa) {
  const auto days = GenerateDays(4);
  EngineOptions lazy_opt = TestOptions();
  lazy_opt.gap = 0;
  lazy_opt.affinity.measure = AffinityMeasure::kIntersection;
  lazy_opt.affinity.theta = 0.5;  // Raw counts: any shared keyword.
  EngineOptions eager_opt = lazy_opt;
  eager_opt.lazy_renormalize = false;
  Engine lazy(lazy_opt);
  Engine eager(eager_opt);
  for (const auto& day : days) {
    ASSERT_TRUE(lazy.IngestText(day).ok());
    ASSERT_TRUE(eager.IngestText(day).ok());
  }
  auto l = lazy.Query(MakeQuery(FinderAlgorithm::kTa, 3, 0));
  auto e = eager.Query(MakeQuery(FinderAlgorithm::kTa, 3, 0));
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(PathsFingerprint(l.value()), PathsFingerprint(e.value()));
  EXPECT_FALSE(l.value().chains.empty());
}

// The chunk-shared publish answers exactly like the old full-copy path
// (cow_publish=false, the bench_publish baseline).
TEST(ChunkedPublishTest, CowPublishMatchesFullCopyBaseline) {
  const auto days = GenerateDays(6);
  EngineOptions cow_opt = TestOptions();
  EngineOptions full_opt = TestOptions();
  full_opt.cow_publish = false;
  Engine cow(cow_opt);
  Engine full(full_opt);
  for (uint32_t day = 0; day < days.size(); ++day) {
    ASSERT_TRUE(cow.IngestText(days[day]).ok());
    ASSERT_TRUE(full.IngestText(days[day]).ok());
    EXPECT_EQ(GraphFingerprint(*cow.snapshot()->graph),
              GraphFingerprint(*full.snapshot()->graph))
        << "tick " << day;
    auto c = cow.Query(MakeQuery(FinderAlgorithm::kBfs, 4, 2));
    auto f = full.Query(MakeQuery(FinderAlgorithm::kBfs, 4, 2));
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(PathsFingerprint(c.value()), PathsFingerprint(f.value()));
  }
  // The baseline rebuilds everything: no chunk is ever shared.
  EXPECT_EQ(full.stats().shared_chunk_count, 0u);
  EXPECT_EQ(full.stats().copied_chunk_count,
            2 * full.snapshot()->graph->chunk_count());
}

// An epoch-0 (empty) snapshot answers every algorithm in the registry
// with an empty result, never an error.
TEST(ChunkedPublishTest, Epoch0SnapshotAnswersEveryAlgorithm) {
  Engine engine(TestOptions());
  const auto snap = engine.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  for (const FinderInfo& info : FinderRegistry()) {
    SCOPED_TRACE(info.name);
    for (const uint32_t l : {uint32_t{0}, uint32_t{2}}) {
      auto r = engine.QueryAt(snap, MakeQuery(info.algorithm, 3, l));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r.value().chains.empty());
      EXPECT_EQ(r.value().epoch, 0u);
    }
    if (info.supports_normalized) {
      Query q = MakeQuery(info.algorithm, 3, 2);
      q.mode = FinderMode::kNormalized;
      auto r = engine.QueryAt(snap, q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r.value().chains.empty());
    }
  }
}

// ToChains rejects paths naming nodes the epoch never committed with
// InvalidArgument (a caller error, not an internal invariant failure).
TEST(ChunkedPublishTest, ToChainsRejectsOutOfEpochNodes) {
  const auto days = GenerateDays(2);
  Engine engine(TestOptions());
  ASSERT_TRUE(engine.IngestText(days[0]).ok());
  const auto snap = engine.snapshot();
  StablePath path;
  path.nodes = {0, static_cast<NodeId>(snap->graph->node_count() + 7)};
  path.length = 1;
  auto chains = snap->ToChains({path});
  ASSERT_FALSE(chains.ok());
  EXPECT_EQ(chains.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace stabletext
