// Shared helpers for finder tests: small random cluster graphs with
// quantized weights (exact binary fractions make path-weight sums
// independent of summation order, so cross-algorithm comparisons are
// exact).

#ifndef STABLETEXT_TESTS_TEST_HELPERS_H_
#define STABLETEXT_TESTS_TEST_HELPERS_H_

#include <vector>

#include "gen/cluster_graph_generator.h"
#include "stable/cluster_graph.h"
#include "stable/path.h"

namespace stabletext {

inline ClusterGraph MakeRandomGraph(uint32_t m, uint32_t n, uint32_t d,
                                    uint32_t g, uint64_t seed) {
  ClusterGraphGenOptions opt;
  opt.m = m;
  opt.n = n;
  opt.d = d;
  opt.g = g;
  opt.seed = seed;
  opt.weight_quantum = 1024;  // Exact binary fractions.
  return ClusterGraphGenerator::Generate(opt);
}

// The Figure 5 cluster graph of the paper: three intervals, three clusters
// each, g = 1. Node ids: c11=0 c12=1 c13=2 | c21=3 c22=4 c23=5 |
// c31=6 c32=7 c33=8. Edge weights follow the worked example in
// Sections 4.2 and 4.3 (h-heap values and Table 2 are reproduced with
// them).
inline ClusterGraph MakePaperFigure5Graph() {
  ClusterGraph graph(3, 1);
  for (uint32_t i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) graph.AddNode(i);
  }
  struct E {
    NodeId a, b;
    double w;
  };
  // Weights chosen to reproduce the paper's numbers:
  //   c11c21 = 0.5, c12c22 = 0.1, c13c22 = 0.8, c12c23 = 0.4,
  //   c21c31 = 0.7, c22c31 = 0.7, c21c32 = 0.4, c22c33 = 0.9,
  //   c23c33 = 0.4, c11c32 (gap edge, length 2) = 0.9.
  // Checks from the text: weight(c11c21c31) = 1.2, weight(c13c22c31)
  //  = 1.5, weight(c12c22c31) = 0.8, weight(c13c22c33) = 1.7,
  //  maxweight(c33, 2) via c23 = 0.8, h2_32 contains c11c21c32 (0.9)
  //  and c11c32 (0.9).
  const E edges[] = {{0, 3, 0.5}, {1, 4, 0.1}, {2, 4, 0.8}, {1, 5, 0.4},
                     {3, 6, 0.7}, {4, 6, 0.7}, {3, 7, 0.4}, {4, 8, 0.9},
                     {5, 8, 0.4}, {0, 7, 0.9}};
  for (const E& e : edges) {
    Status s = graph.AddEdge(e.a, e.b, e.w);
    (void)s;
  }
  graph.SortChildren();
  return graph;
}

inline std::vector<double> Weights(const std::vector<StablePath>& paths) {
  std::vector<double> out;
  out.reserve(paths.size());
  for (const auto& p : paths) out.push_back(p.weight);
  return out;
}

}  // namespace stabletext

#endif  // STABLETEXT_TESTS_TEST_HELPERS_H_
