// Fault-injected crash recovery. The tentpole claim under test: a durable
// engine killed at ANY physical-op boundary (WAL chunk write, WAL fsync,
// checkpoint page write/fsync/rename, log rotation) recovers to the epoch
// that was published at the crash — or one later, when the crash hit
// after the WAL fsync but before the publish — and the recovered state is
// byte-identical to an uninterrupted run at that epoch: same graph bits,
// same query answers. The sweep advances the injected fault budget one
// physical op at a time over a 64-tick ingest until a run completes
// cleanly, so every boundary the workload crosses is a kill point. Plus
// WAL torn-tail/corrupt-record unit tests and the durability lifecycle
// contract (Recover-only construction, DataLoss on vanished checkpoints).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "storage/temp_dir.h"
#include "storage/wal.h"
#include "util/strings.h"

namespace stabletext {
namespace {

namespace fs = std::filesystem;

// Small, fast ticks: the sweep ingests tens of thousands of them.
constexpr uint32_t kTicks = 64;
constexpr uint32_t kCheckpointInterval = 8;

std::vector<std::vector<std::string>> GenerateTicks() {
  CorpusGenOptions opt;
  opt.days = 8;
  opt.posts_per_day = 24;
  opt.vocabulary = 240;
  opt.min_words_per_post = 6;
  opt.max_words_per_post = 14;
  opt.micro_events = 8;
  opt.seed = 7;
  opt.script = EventScript::PaperWeek();
  CorpusGenerator gen(opt);
  std::vector<std::vector<std::string>> ticks;
  ticks.reserve(kTicks);
  for (uint32_t t = 0; t < kTicks; ++t) {
    ticks.push_back(gen.GenerateDay(t % opt.days));
  }
  return ticks;
}

EngineOptions BaseOptions() {
  EngineOptions opt;
  opt.gap = 1;
  opt.clustering.pruning.rho_threshold = 0.15;
  opt.clustering.pruning.min_pair_support = 2;
  opt.affinity.theta = 0.05;
  return opt;
}

EngineOptions DurableOptions(const std::string& dir,
                             uint64_t fail_after_physical_ops) {
  EngineOptions opt = BaseOptions();
  opt.durability.enabled = true;
  opt.durability.dir = dir;
  opt.durability.checkpoint_interval = kCheckpointInterval;
  opt.durability.fail_after_physical_ops = fail_after_physical_ops;
  return opt;
}

std::string GraphFingerprint(const ClusterGraph& graph) {
  std::string out = StringPrintf("nodes=%zu edges=%zu intervals=%u\n",
                                 graph.node_count(), graph.edge_count(),
                                 graph.interval_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      out += StringPrintf("%u->%u %.17g\n", v, e.target, e.weight);
    }
  }
  return out;
}

std::string QueryFingerprint(const Engine& engine) {
  Query q;
  q.algorithm = FinderAlgorithm::kBfs;
  q.k = 4;
  q.l = 2;
  auto r = engine.Query(q);
  if (!r.ok()) return "query failed: " + r.status().ToString();
  std::string out;
  for (const StableClusterChain& chain : r.value().chains) {
    for (NodeId n : chain.path.nodes) out += StringPrintf("%u-", n);
    out += StringPrintf(" w=%.17g len=%u\n", chain.path.weight,
                        chain.path.length);
  }
  return out;
}

// Per-epoch reference state from an uninterrupted, non-durable run:
// recovery at epoch e must reproduce these bytes exactly.
struct Reference {
  std::vector<std::string> graphs;   // [0..kTicks]
  std::vector<std::string> queries;  // [0..kTicks]
};

Reference BuildReference(const std::vector<std::vector<std::string>>& ticks) {
  Reference ref;
  Engine engine(BaseOptions());
  ref.graphs.push_back(GraphFingerprint(engine.graph()));
  ref.queries.push_back(QueryFingerprint(engine));
  for (const auto& posts : ticks) {
    auto r = engine.IngestText(posts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    ref.graphs.push_back(GraphFingerprint(engine.graph()));
    ref.queries.push_back(QueryFingerprint(engine));
  }
  return ref;
}

TEST(WalTest, TornTailIsTruncatedNotReplayed) {
  TempDir dir("wal");
  const std::string path = dir.FilePath("wal-0");
  const std::string rec1 = "first record payload";
  const std::string rec2 = "second, longer record payload with more bytes";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Create(path, nullptr, nullptr).ok());
    ASSERT_TRUE(writer.Append(rec1.data(), rec1.size()).ok());
    ASSERT_TRUE(writer.Append(rec2.data(), rec2.size()).ok());
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Simulate a torn third record: header promising more bytes than exist.
  const auto intact_size = fs::file_size(path);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const uint32_t len = 1000;
    const uint32_t crc = 0;
    f.write(reinterpret_cast<const char*>(&len), 4);
    f.write(reinterpret_cast<const char*>(&crc), 4);
    f.write("partial", 7);
  }
  std::vector<std::string> records;
  ASSERT_TRUE(WalScanAndTruncate(path, &records, nullptr).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], rec1);
  EXPECT_EQ(records[1], rec2);
  // The torn tail was physically truncated.
  EXPECT_EQ(fs::file_size(path), intact_size);
  // A second scan sees a clean file.
  records.clear();
  ASSERT_TRUE(WalScanAndTruncate(path, &records, nullptr).ok());
  EXPECT_EQ(records.size(), 2u);
}

TEST(WalTest, CorruptRecordEndsTheScan) {
  TempDir dir("wal");
  const std::string path = dir.FilePath("wal-0");
  const std::string rec1 = "good record";
  const std::string rec2 = "record that will rot";
  const std::string rec3 = "record after the rot";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Create(path, nullptr, nullptr).ok());
    for (const std::string* r : {&rec1, &rec2, &rec3}) {
      ASSERT_TRUE(writer.Append(r->data(), r->size()).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  // Flip one payload byte of the second record. Layout: 8 magic, then
  // per record 8-byte header + payload.
  const size_t offset = 8 + 8 + rec1.size() + 8 + 3;
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ 0x40));
  }
  std::vector<std::string> records;
  ASSERT_TRUE(WalScanAndTruncate(path, &records, nullptr).ok());
  // Only the prefix before the corruption survives — the corrupt record
  // and everything after it (even though intact) is discarded, never
  // replayed.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], rec1);
}

TEST(WalTest, TornHeaderReportsNotFound) {
  TempDir dir("wal");
  const std::string path = dir.FilePath("wal-0");
  {
    std::ofstream f(path, std::ios::binary);
    f.write("STW", 3);  // Crash mid-magic.
  }
  std::vector<std::string> records;
  Status s = WalScanAndTruncate(path, &records, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(fs::file_size(path), 0u);  // Truncated for recreation.
}

TEST(CrashRecoveryTest, DurableConstructionContract) {
  TempDir dir("durable");
  // Durability on, but built with the plain constructor: ingest refuses.
  Engine wrong(DurableOptions(dir.path(), 0));
  auto r = wrong.IngestText({"alpha beta gamma"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Recover without durability enabled: invalid.
  EXPECT_FALSE(Engine::Recover(BaseOptions()).ok());
}

TEST(CrashRecoveryTest, RoundTripRestoresStateByteIdentically) {
  const auto ticks = GenerateTicks();
  TempDir dir("durable");
  std::string expected_graph;
  std::string expected_query;
  uint64_t wal_bytes = 0;
  {
    auto created = Engine::Recover(DurableOptions(dir.path(), 0));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    Engine& engine = *created.value();
    for (uint32_t t = 0; t < 2 * kCheckpointInterval + 3; ++t) {
      auto r = engine.IngestText(ticks[t]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    expected_graph = GraphFingerprint(engine.graph());
    expected_query = QueryFingerprint(engine);
    const EngineStats stats = engine.stats();
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_GT(stats.checkpoint_ns, 0u);
    EXPECT_GT(stats.io.fsyncs, 0u);
    EXPECT_EQ(stats.recovered_epoch, 0u);
    wal_bytes = stats.wal_bytes;
  }
  auto recovered = Engine::Recover(DurableOptions(dir.path(), 0));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Engine& engine = *recovered.value();
  EXPECT_EQ(engine.snapshot()->epoch, 2 * kCheckpointInterval + 3);
  EXPECT_EQ(engine.stats().recovered_epoch, 2 * kCheckpointInterval + 3);
  EXPECT_EQ(GraphFingerprint(engine.graph()), expected_graph);
  EXPECT_EQ(QueryFingerprint(engine), expected_query);
  // A fresh process starts its WAL byte counter at zero.
  EXPECT_LT(engine.stats().wal_bytes, wal_bytes);
  // And the non-durable engine reproduces the same state: durability is
  // observationally free.
  Engine plain(BaseOptions());
  for (uint32_t t = 0; t < 2 * kCheckpointInterval + 3; ++t) {
    ASSERT_TRUE(plain.IngestText(ticks[t]).ok());
  }
  EXPECT_EQ(GraphFingerprint(plain.graph()), expected_graph);
  EXPECT_EQ(plain.stats().wal_bytes, 0u);
  EXPECT_EQ(plain.stats().io.fsyncs, 0u);
}

TEST(CrashRecoveryTest, VanishedCheckpointIsDataLossNotSilentTruncation) {
  const auto ticks = GenerateTicks();
  TempDir dir("durable");
  {
    auto created = Engine::Recover(DurableOptions(dir.path(), 0));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    for (uint32_t t = 0; t < kCheckpointInterval + 2; ++t) {
      ASSERT_TRUE(created.value()->IngestText(ticks[t]).ok());
    }
  }
  // The checkpoint fsync promised durability; deleting it must surface
  // as DataLoss (the surviving log has no base to replay onto), never as
  // a quietly empty engine.
  const std::string checkpoint =
      (fs::path(dir.path()) /
       ("checkpoint-" + std::to_string(kCheckpointInterval)))
          .string();
  ASSERT_TRUE(fs::remove(checkpoint));
  auto recovered = Engine::Recover(DurableOptions(dir.path(), 0));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
}

// The sweep. For every fault budget B = 1, 2, 3, ... the writer is
// recreated against a fresh directory and killed by I/O-op exhaustion
// somewhere in a 64-tick ingest; recovery (no injection) must then land
// on the epoch published at the kill — or one later — with byte-exact
// state. The sweep ends at the first budget that survives the whole
// ingest, so every physical-op boundary the workload crosses has been a
// kill point exactly once.
TEST(CrashRecoveryTest, KillAtEveryPhysicalOpBoundary) {
  const auto ticks = GenerateTicks();
  const Reference ref = BuildReference(ticks);
  // Safety bound: the workload takes a few hundred physical ops end to
  // end; far more means runaway I/O (itself a regression).
  constexpr uint64_t kMaxBudget = 50000;
  uint64_t completed_at = 0;
  for (uint64_t budget = 1; budget <= kMaxBudget; ++budget) {
    SCOPED_TRACE(StringPrintf("fault budget=%llu",
                              static_cast<unsigned long long>(budget)));
    TempDir dir("crash");
    uint64_t published = 0;
    bool crashed = false;
    {
      auto writer = Engine::Recover(DurableOptions(dir.path(), budget));
      if (!writer.ok()) {
        crashed = true;  // Killed during directory/WAL creation.
      } else {
        Engine& engine = *writer.value();
        for (uint32_t t = 0; t < kTicks; ++t) {
          auto r = engine.IngestText(ticks[t]);
          if (!r.ok()) {
            ASSERT_TRUE(r.status().code() == StatusCode::kIOError ||
                        r.status().code() == StatusCode::kInternal)
                << r.status().ToString();
            crashed = true;
            break;
          }
        }
        published = engine.snapshot()->epoch;
      }
    }  // The "crash": the writer is destroyed with no clean shutdown.

    auto recovered = Engine::Recover(DurableOptions(dir.path(), 0));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    Engine& engine = *recovered.value();
    const uint64_t epoch = engine.snapshot()->epoch;
    if (!crashed) {
      EXPECT_EQ(epoch, kTicks);
      EXPECT_EQ(GraphFingerprint(engine.graph()), ref.graphs[kTicks]);
      EXPECT_EQ(QueryFingerprint(engine), ref.queries[kTicks]);
      completed_at = budget;
      break;
    }
    // Published epochs are always recoverable; one more only when the
    // crash split a WAL fsync from its publish.
    ASSERT_TRUE(epoch == published || epoch == published + 1)
        << "published=" << published << " recovered=" << epoch;
    ASSERT_EQ(GraphFingerprint(engine.graph()), ref.graphs[epoch]);
    ASSERT_EQ(QueryFingerprint(engine), ref.queries[epoch]);
    EXPECT_EQ(engine.stats().recovered_epoch, epoch);
    // Sampled: the recovered writer resumes ingest to completion and
    // converges on the uninterrupted run's final bytes.
    if (budget % 13 == 0) {
      for (uint32_t t = static_cast<uint32_t>(epoch); t < kTicks; ++t) {
        auto r = engine.IngestText(ticks[t]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
      ASSERT_EQ(GraphFingerprint(engine.graph()), ref.graphs[kTicks]);
      ASSERT_EQ(QueryFingerprint(engine), ref.queries[kTicks]);
    }
  }
  ASSERT_GT(completed_at, 0u) << "no budget survived the whole ingest";
  std::printf("sweep covered %llu fault budgets\n",
              static_cast<unsigned long long>(completed_at));
}

}  // namespace
}  // namespace stabletext
