// Algorithm 2 (BFS finder): the paper's Figure 5 worked example, exact
// equality with the brute-force oracle over randomized parameter sweeps,
// and block-nested-loop (memory-budget) equivalence.

#include <gtest/gtest.h>

#include <tuple>

#include "stable/bfs_finder.h"
#include "stable/brute_force_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(BfsFinderTest, PaperFigure5WorkedExample) {
  // Section 4.2 ends: "the best two paths are identified as c13c22c31 and
  // c13c22c33" for k = 2, l = 2.
  ClusterGraph g = MakePaperFigure5Graph();
  BfsFinderOptions opt;
  opt.k = 2;
  opt.l = 2;
  auto result = BfsStableFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  const auto& paths = result.value().paths;
  ASSERT_EQ(paths.size(), 2u);
  // c13=2, c22=4, c33=8 (weight 1.7); c13=2, c22=4, c31=6 (weight 1.5).
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{2, 4, 8}));
  EXPECT_NEAR(paths[0].weight, 1.7, 1e-12);
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeId>{2, 4, 6}));
  EXPECT_NEAR(paths[1].weight, 1.5, 1e-12);
}

TEST(BfsFinderTest, EmptyAndDegenerateGraphs) {
  ClusterGraph empty(0, 0);
  auto r = BfsStableFinder().Find(empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().paths.empty());

  ClusterGraph one(1, 0);
  one.AddNode(0);
  r = BfsStableFinder().Find(one);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().paths.empty());

  // No edges: no paths.
  ClusterGraph sparse(3, 0);
  for (uint32_t i = 0; i < 3; ++i) sparse.AddNode(i);
  BfsFinderOptions opt;
  opt.l = 1;
  r = BfsStableFinder(opt).Find(sparse);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().paths.empty());
}

TEST(BfsFinderTest, RejectsBadLength) {
  ClusterGraph g = MakeRandomGraph(4, 5, 2, 0, 1);
  BfsFinderOptions opt;
  opt.l = 9;  // > m-1.
  auto r = BfsStableFinder(opt).Find(g);
  EXPECT_FALSE(r.ok());
}

class BfsSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, size_t,
                     uint32_t>> {};

TEST_P(BfsSweepTest, MatchesBruteForceExactly) {
  const auto [m, n, d, g, k, l] = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ClusterGraph graph = MakeRandomGraph(m, n, d, g, seed * 97);
    BfsFinderOptions opt;
    opt.k = k;
    opt.l = l;
    auto result = BfsStableFinder(opt).Find(graph);
    ASSERT_TRUE(result.ok());
    const auto expected = BruteForceFinder::TopKByWeight(graph, k, l);
    ASSERT_EQ(result.value().paths.size(), expected.size())
        << "m=" << m << " n=" << n << " d=" << d << " g=" << g
        << " k=" << k << " l=" << l << " seed=" << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(result.value().paths[i].nodes, expected[i].nodes)
          << "rank " << i << " seed " << seed;
      ASSERT_EQ(result.value().paths[i].weight, expected[i].weight);
      ASSERT_EQ(result.value().paths[i].length, expected[i].length);
    }
  }
}

// l = 0 means full paths. Kept small: the oracle enumerates every path.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsSweepTest,
    ::testing::Values(
        std::make_tuple(3u, 4u, 2u, 0u, size_t{1}, 0u),
        std::make_tuple(3u, 4u, 2u, 0u, size_t{5}, 0u),
        std::make_tuple(4u, 4u, 2u, 0u, size_t{3}, 2u),
        std::make_tuple(4u, 5u, 2u, 1u, size_t{3}, 0u),
        std::make_tuple(4u, 5u, 2u, 1u, size_t{3}, 2u),
        std::make_tuple(5u, 3u, 2u, 2u, size_t{4}, 3u),
        std::make_tuple(5u, 4u, 3u, 0u, size_t{2}, 1u),
        std::make_tuple(6u, 3u, 2u, 1u, size_t{5}, 4u),
        std::make_tuple(6u, 3u, 1u, 0u, size_t{10}, 0u),
        std::make_tuple(7u, 2u, 2u, 2u, size_t{3}, 5u)),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(std::get<0>(p)) + "n" +
             std::to_string(std::get<1>(p)) + "d" +
             std::to_string(std::get<2>(p)) + "g" +
             std::to_string(std::get<3>(p)) + "k" +
             std::to_string(std::get<4>(p)) + "l" +
             std::to_string(std::get<5>(p));
    });

TEST(BfsFinderTest, MemoryBudgetForcesPassesButKeepsAnswer) {
  ClusterGraph graph = MakeRandomGraph(6, 30, 3, 1, 13);
  BfsFinderOptions unlimited;
  unlimited.k = 5;
  unlimited.l = 3;
  auto full = BfsStableFinder(unlimited).Find(graph);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.value().passes, 1u);

  BfsFinderOptions tight = unlimited;
  tight.memory_budget_bytes = 4096;  // Far below the window size.
  auto constrained = BfsStableFinder(tight).Find(graph);
  ASSERT_TRUE(constrained.ok());
  EXPECT_GT(constrained.value().passes, 1u);
  // Block-nested-loop re-reads the current interval every pass.
  EXPECT_GT(constrained.value().io.page_reads,
            full.value().io.page_reads);
  // The answer is identical.
  ASSERT_EQ(constrained.value().paths.size(), full.value().paths.size());
  for (size_t i = 0; i < full.value().paths.size(); ++i) {
    EXPECT_EQ(constrained.value().paths[i].nodes,
              full.value().paths[i].nodes);
  }
}

TEST(BfsFinderTest, FullModeUsesOneHeapPerNode) {
  // Full-path mode (l = m-1) must agree with explicitly passing l = m-1.
  ClusterGraph graph = MakeRandomGraph(5, 8, 2, 0, 3);
  BfsFinderOptions implicit;
  implicit.k = 4;
  implicit.l = 0;
  BfsFinderOptions explicit_l;
  explicit_l.k = 4;
  explicit_l.l = 4;
  auto a = BfsStableFinder(implicit).Find(graph);
  auto b = BfsStableFinder(explicit_l).Find(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().paths.size(), b.value().paths.size());
  for (size_t i = 0; i < a.value().paths.size(); ++i) {
    EXPECT_EQ(a.value().paths[i].nodes, b.value().paths[i].nodes);
  }
  // The full-mode memory footprint is the smaller one.
  EXPECT_LE(a.value().peak_memory_bytes, b.value().peak_memory_bytes);
}

TEST(BfsFinderTest, IoGrowsWithGap) {
  // Larger g => wider windows => more window reads per interval.
  BfsFinderOptions opt;
  opt.k = 5;
  opt.l = 3;
  uint64_t prev = 0;
  for (uint32_t g : {0u, 1u, 2u}) {
    ClusterGraph graph = MakeRandomGraph(8, 20, 3, g, 21);
    auto r = BfsStableFinder(opt).Find(graph);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value().io.page_reads, prev);
    prev = r.value().io.page_reads;
  }
}

TEST(BfsFinderTest, PathsRespectGapBound) {
  ClusterGraph graph = MakeRandomGraph(6, 6, 2, 2, 8);
  BfsFinderOptions opt;
  opt.k = 10;
  opt.l = 4;
  auto r = BfsStableFinder(opt).Find(graph);
  ASSERT_TRUE(r.ok());
  for (const StablePath& p : r.value().paths) {
    EXPECT_EQ(p.length, 4u);
    for (size_t i = 1; i < p.nodes.size(); ++i) {
      const uint32_t span = graph.Interval(p.nodes[i]) -
                            graph.Interval(p.nodes[i - 1]);
      EXPECT_GE(span, 1u);
      EXPECT_LE(span, 3u);  // g + 1.
    }
  }
}

}  // namespace
}  // namespace stabletext
