// Keyword-graph statistics and pruning: chi-squared (Equation 1 vs closed
// form, known critical behaviour), correlation (Equation 3 vs the literal
// Equation 2), GraphPruner staging, KeywordGraph CSR structure.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.h"
#include "util/random.h"

namespace stabletext {
namespace {

TEST(ChiSquareTest, IndependentPairScoresNearZero) {
  // u in half the docs, v in half the docs, together in a quarter:
  // exactly the independence expectation.
  EXPECT_NEAR(ChiSquare::Statistic(500, 500, 250, 1000), 0.0, 1e-9);
}

TEST(ChiSquareTest, PerfectCorrelationScoresN) {
  // u and v always together: chi^2 == n for a balanced table.
  EXPECT_NEAR(ChiSquare::Statistic(500, 500, 500, 1000), 1000.0, 1e-6);
}

TEST(ChiSquareTest, ClosedFormMatchesFourCellForm) {
  Rng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t n = 10 + rng.Uniform(5000);
    const uint64_t a_u = 1 + rng.Uniform(n - 1);
    const uint64_t a_v = 1 + rng.Uniform(n - 1);
    const uint64_t max_uv = std::min(a_u, a_v);
    const uint64_t min_uv = a_u + a_v > n ? a_u + a_v - n : 0;
    const uint64_t a_uv =
        min_uv + rng.Uniform(max_uv - min_uv + 1);
    const double four = ChiSquare::Statistic(a_u, a_v, a_uv, n);
    const double closed = ChiSquare::StatisticClosedForm(a_u, a_v, a_uv, n);
    ASSERT_NEAR(four, closed, 1e-6 * std::max(1.0, four))
        << "n=" << n << " a_u=" << a_u << " a_v=" << a_v
        << " a_uv=" << a_uv;
  }
}

TEST(ChiSquareTest, SignificanceThresholdBehaviour) {
  // Strong co-occurrence in a large corpus: clearly significant at 95%.
  EXPECT_TRUE(ChiSquare::Significant(100, 100, 90, 10000));
  // Exactly independent: not significant.
  EXPECT_FALSE(ChiSquare::Significant(100, 100, 1, 10000));
  // Critical values ordered as the standard table says.
  EXPECT_LT(ChiSquare::kCritical90, ChiSquare::kCritical95);
  EXPECT_LT(ChiSquare::kCritical95, ChiSquare::kCritical99);
  EXPECT_NEAR(ChiSquare::kCritical95, 3.84, 0.01);  // The paper's value.
}

TEST(ChiSquareTest, DegenerateMarginalsScoreZero) {
  EXPECT_EQ(ChiSquare::Statistic(0, 10, 0, 100), 0.0);
  EXPECT_EQ(ChiSquare::Statistic(10, 10, 5, 0), 0.0);
  EXPECT_EQ(ChiSquare::StatisticClosedForm(100, 10, 10, 100), 0.0);
}

TEST(CorrelationTest, BoundsAndKnownValues) {
  // Perfectly correlated: rho == 1.
  EXPECT_NEAR(Correlation::Rho(50, 50, 50, 100), 1.0, 1e-12);
  // Independent: rho == 0.
  EXPECT_NEAR(Correlation::Rho(50, 50, 25, 100), 0.0, 1e-12);
  // Perfectly anti-correlated (disjoint, covering): rho == -1.
  EXPECT_NEAR(Correlation::Rho(50, 50, 0, 100), -1.0, 1e-12);
}

TEST(CorrelationTest, Equation3MatchesEquation2) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t n = 20 + rng.Uniform(200);
    std::vector<bool> u(n), v(n);
    uint64_t a_u = 0, a_v = 0, a_uv = 0;
    for (uint64_t i = 0; i < n; ++i) {
      u[i] = rng.NextBool(0.3);
      v[i] = rng.NextBool(u[i] ? 0.6 : 0.2);  // Correlated draw.
      a_u += u[i];
      a_v += v[i];
      a_uv += u[i] && v[i];
    }
    // bool vector has no data(); copy to arrays.
    std::vector<char> ub(n), vb(n);
    for (uint64_t i = 0; i < n; ++i) {
      ub[i] = u[i];
      vb[i] = v[i];
    }
    const double direct = Correlation::RhoFromIndicators(
        reinterpret_cast<const bool*>(ub.data()),
        reinterpret_cast<const bool*>(vb.data()), n);
    const double fast = Correlation::Rho(a_u, a_v, a_uv, n);
    ASSERT_NEAR(direct, fast, 1e-9);
    ASSERT_GE(fast, -1.0 - 1e-12);
    ASSERT_LE(fast, 1.0 + 1e-12);
  }
}

TEST(CorrelationTest, DegenerateMarginalsAreZero) {
  EXPECT_EQ(Correlation::Rho(0, 10, 0, 100), 0.0);
  EXPECT_EQ(Correlation::Rho(100, 10, 10, 100), 0.0);
  EXPECT_EQ(Correlation::Rho(5, 5, 5, 0), 0.0);
}

CooccurrenceTable MakeTable(uint64_t n, std::vector<uint32_t> unary,
                            std::vector<Triplet> triplets) {
  CooccurrenceTable t;
  t.document_count = n;
  t.unary = std::move(unary);
  t.triplets = std::move(triplets);
  return t;
}

TEST(GraphPrunerTest, TwoStageFiltering) {
  // Three keyword pairs in 1000 documents:
  //  (0,1): strong co-occurrence  -> survives both stages;
  //  (0,2): independent           -> fails chi^2;
  //  (1,2): significant but weak  -> passes chi^2, fails rho > 0.2.
  CooccurrenceTable table = MakeTable(
      1000, {100, 100, 100},
      {Triplet{0, 1, 80}, Triplet{0, 2, 10}, Triplet{1, 2, 22}});
  PruneStats stats;
  GraphPruner pruner;
  auto edges = pruner.Prune(table, &stats);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_GT(edges[0].weight, 0.2);
  EXPECT_EQ(stats.input_edges, 3u);
  EXPECT_EQ(stats.failed_chi_square, 1u);
  EXPECT_EQ(stats.failed_rho, 1u);
  EXPECT_EQ(stats.surviving_edges, 1u);
}

TEST(GraphPrunerTest, AblationKnobsDisableStages) {
  CooccurrenceTable table = MakeTable(
      1000, {100, 100, 100},
      {Triplet{0, 1, 80}, Triplet{0, 2, 10}, Triplet{1, 2, 22}});
  GraphPrunerOptions no_chi;
  no_chi.apply_chi_square = false;
  no_chi.rho_threshold = -2;  // Accept any rho.
  EXPECT_EQ(GraphPruner(no_chi).Prune(table).size(), 3u);

  GraphPrunerOptions chi_only;
  chi_only.apply_rho = false;
  EXPECT_EQ(GraphPruner(chi_only).Prune(table).size(), 2u);
}

TEST(GraphPrunerTest, RisingRhoThresholdMonotonicallyPrunes) {
  Rng rng(99);
  std::vector<Triplet> triplets;
  std::vector<uint32_t> unary(50, 200);
  for (uint32_t u = 0; u < 50; ++u) {
    for (uint32_t v = u + 1; v < 50; ++v) {
      triplets.push_back(
          Triplet{u, v, static_cast<uint32_t>(rng.Uniform(120))});
    }
  }
  CooccurrenceTable table = MakeTable(2000, unary, triplets);
  size_t prev = SIZE_MAX;
  for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    GraphPrunerOptions opt;
    opt.rho_threshold = rho;
    const size_t count = GraphPruner(opt).Prune(table).size();
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST(KeywordGraphTest, CsrStructure) {
  std::vector<WeightedEdge> edges = {
      {0, 1, 0.5}, {1, 2, 0.7}, {0, 3, 0.9}};
  KeywordGraph g = KeywordGraph::FromEdges(4, edges);
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.Degree(3), 1u);
  // Neighbors sorted by id.
  EXPECT_EQ(g.Neighbors(0)[0], 1u);
  EXPECT_EQ(g.Neighbors(0)[1], 3u);
  EXPECT_EQ(g.Weights(0)[0], 0.5);
  EXPECT_EQ(g.Weights(0)[1], 0.9);
  // Symmetry.
  EXPECT_EQ(g.Neighbors(3)[0], 0u);
  EXPECT_EQ(g.Weights(3)[0], 0.9);
  EXPECT_EQ(g.NonIsolatedCount(), 4u);
}

TEST(KeywordGraphTest, EmptyAndIsolated) {
  KeywordGraph g = KeywordGraph::FromEdges(5, {{1, 2, 1.0}});
  EXPECT_EQ(g.NonIsolatedCount(), 2u);
  EXPECT_FALSE(g.HasEdges(0));
  EXPECT_TRUE(g.HasEdges(1));
  KeywordGraph empty = KeywordGraph::FromEdges(0, {});
  EXPECT_EQ(empty.vertex_count(), 0u);
  EXPECT_EQ(empty.edge_count(), 0u);
}

TEST(GraphBuilderTest, SummaryCountsMatchTable) {
  CooccurrenceTable table = MakeTable(
      1000, {100, 100, 100, 0},
      {Triplet{0, 1, 80}, Triplet{0, 2, 10}, Triplet{1, 2, 22}});
  KeywordGraphSummary summary;
  GraphBuilder builder;
  KeywordGraph g = builder.Build(table, &summary);
  EXPECT_EQ(summary.document_count, 1000u);
  EXPECT_EQ(summary.keyword_count, 3u);  // Keyword 3 never appeared.
  EXPECT_EQ(summary.raw_edge_count, 3u);
  EXPECT_EQ(summary.prune.surviving_edges, g.edge_count());
}

}  // namespace
}  // namespace stabletext
