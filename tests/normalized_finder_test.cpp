// Section 4.5 (normalized stable clusters): exact equality with the
// stability oracle for both the BFS and DFS variants, Theorem 1 itself as a
// property test, and the pruning option's top-1 guarantee.

#include <gtest/gtest.h>

#include <tuple>

#include "stable/brute_force_finder.h"
#include "stable/normalized_bfs_finder.h"
#include "stable/normalized_dfs_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(NormalizedBfsTest, RanksByStabilityNotWeight) {
  // Two-hop path of weight 1.0 (stability 0.5) vs one-hop edge of weight
  // 0.9 (stability 0.9): with lmin = 1, the single edge must win.
  ClusterGraph g(3, 0);
  const NodeId a = g.AddNode(0);
  const NodeId b = g.AddNode(1);
  const NodeId c = g.AddNode(2);
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 0.5).ok());
  ClusterGraph g2(2, 0);
  (void)g2;
  const NodeId d = g.AddNode(1);
  ASSERT_TRUE(g.AddEdge(a, d, 0.9).ok());
  g.SortChildren();

  NormalizedFinderOptions opt;
  opt.k = 2;
  opt.lmin = 1;
  auto result = NormalizedBfsFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().paths.size(), 2u);
  EXPECT_EQ(result.value().paths[0].nodes, (std::vector<NodeId>{a, d}));
  EXPECT_DOUBLE_EQ(result.value().paths[0].stability(), 0.9);
  EXPECT_DOUBLE_EQ(result.value().paths[1].stability(), 0.5);
}

TEST(NormalizedBfsTest, LminFiltersShortPaths) {
  ClusterGraph g = MakeRandomGraph(5, 4, 2, 0, 3);
  NormalizedFinderOptions opt;
  opt.k = 20;
  opt.lmin = 3;
  auto result = NormalizedBfsFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  for (const StablePath& p : result.value().paths) {
    EXPECT_GE(p.length, 3u);
  }
}

class NormalizedSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, size_t,
                     uint32_t>> {};

TEST_P(NormalizedSweepTest, BothVariantsMatchBruteForce) {
  const auto [m, n, d, g, k, lmin] = GetParam();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ClusterGraph graph = MakeRandomGraph(m, n, d, g, seed * 61 + 11);
    NormalizedFinderOptions opt;
    opt.k = k;
    opt.lmin = lmin;
    auto bfs = NormalizedBfsFinder(opt).Find(graph);
    auto dfs = NormalizedDfsFinder(opt).Find(graph);
    ASSERT_TRUE(bfs.ok());
    ASSERT_TRUE(dfs.ok());
    const auto expected = BruteForceFinder::TopKByStability(graph, k, lmin);
    ASSERT_EQ(bfs.value().paths.size(), expected.size())
        << "m=" << m << " n=" << n << " seed=" << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(bfs.value().paths[i].nodes, expected[i].nodes)
          << "bfs rank " << i << " seed " << seed;
      ASSERT_EQ(dfs.value().paths[i].nodes, expected[i].nodes)
          << "dfs rank " << i << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NormalizedSweepTest,
    ::testing::Values(
        std::make_tuple(3u, 4u, 2u, 0u, size_t{1}, 1u),
        std::make_tuple(3u, 4u, 2u, 0u, size_t{5}, 2u),
        std::make_tuple(4u, 4u, 2u, 0u, size_t{3}, 2u),
        std::make_tuple(4u, 4u, 2u, 1u, size_t{3}, 2u),
        std::make_tuple(5u, 3u, 2u, 0u, size_t{4}, 3u),
        std::make_tuple(5u, 3u, 2u, 2u, size_t{4}, 2u),
        std::make_tuple(6u, 3u, 1u, 0u, size_t{6}, 4u),
        std::make_tuple(6u, 2u, 2u, 1u, size_t{3}, 1u)),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(std::get<0>(p)) + "n" +
             std::to_string(std::get<1>(p)) + "d" +
             std::to_string(std::get<2>(p)) + "g" +
             std::to_string(std::get<3>(p)) + "k" +
             std::to_string(std::get<4>(p)) + "lmin" +
             std::to_string(std::get<5>(p));
    });

// Theorem 1 as a property. The paper's statement is conditional: when
// stability(pre) <= stability(curr), then IF appending a suffix improves
// the combined path (stability(p+c) <= stability(p+c+s)), the reduced path
// dominates (stability(p+c+s) <= stability(c+s)). Equivalently, p+c+s is
// always dominated by p+c (already generated and ranked) or by c+s: the
// extension of a reducible path can be skipped without losing the top-1.
TEST(Theorem1Test, StatementHoldsOnRandomSplits) {
  Rng rng(17);
  for (int trial = 0; trial < 5000; ++trial) {
    const double wp = rng.NextWeight() * 3;
    const double wc = rng.NextWeight() * 3;
    const double ws = rng.NextWeight() * 3;
    const double np = 1 + rng.Uniform(5);
    const double nc = 1 + rng.Uniform(5);
    const double ns = 1 + rng.Uniform(5);
    if (wp / np > wc / nc) continue;  // Not reducible.
    const double pc = (wp + wc) / (np + nc);
    const double pcs = (wp + wc + ws) / (np + nc + ns);
    const double cs = (wc + ws) / (nc + ns);
    // Conditional form, exactly as proved in the paper.
    if (pc <= pcs) {
      EXPECT_LE(pcs, cs + 1e-12);
    }
    // Dominator form used by the pruning implementation.
    EXPECT_LE(pcs, std::max(pc, cs) + 1e-12);
  }
}

TEST(Theorem1Test, ReducibleDetection) {
  // Path a-b-c where the prefix edge (0.1) is weaker than the remaining
  // tail (0.9): reducible for lmin = 1; not reducible for lmin = 2
  // (the tail would be too short).
  ClusterGraph g(3, 0);
  const NodeId a = g.AddNode(0);
  const NodeId b = g.AddNode(1);
  const NodeId c = g.AddNode(2);
  ASSERT_TRUE(g.AddEdge(a, b, 0.1).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 0.9).ok());
  g.SortChildren();
  StablePath p;
  p.nodes = {a, b, c};
  p.weight = 1.0;
  p.length = 2;
  EXPECT_TRUE(Theorem1Reducible(p, g, 1));
  EXPECT_FALSE(Theorem1Reducible(p, g, 2));

  // Strong prefix, weak tail: not reducible.
  ClusterGraph h(3, 0);
  const NodeId x = h.AddNode(0);
  const NodeId y = h.AddNode(1);
  const NodeId z = h.AddNode(2);
  ASSERT_TRUE(h.AddEdge(x, y, 0.9).ok());
  ASSERT_TRUE(h.AddEdge(y, z, 0.1).ok());
  h.SortChildren();
  StablePath q;
  q.nodes = {x, y, z};
  q.weight = 1.0;
  q.length = 2;
  EXPECT_FALSE(Theorem1Reducible(q, h, 1));
}

TEST(NormalizedBfsTest, Theorem1PruningPreservesTopOne) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ClusterGraph graph = MakeRandomGraph(5, 4, 2, 0, seed * 19 + 3);
    NormalizedFinderOptions exact;
    exact.k = 1;
    exact.lmin = 2;
    NormalizedFinderOptions pruned = exact;
    pruned.theorem1_pruning = true;
    auto a = NormalizedBfsFinder(exact).Find(graph);
    auto b = NormalizedBfsFinder(pruned).Find(graph);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().paths.empty(), b.value().paths.empty());
    if (!a.value().paths.empty()) {
      EXPECT_EQ(a.value().paths[0].nodes, b.value().paths[0].nodes)
          << "seed " << seed;
    }
  }
}

TEST(NormalizedBfsTest, Theorem1PruningReducesOffers) {
  ClusterGraph graph = MakeRandomGraph(8, 10, 3, 0, 44);
  NormalizedFinderOptions exact;
  exact.k = 3;
  exact.lmin = 2;
  NormalizedFinderOptions pruned = exact;
  pruned.theorem1_pruning = true;
  auto a = NormalizedBfsFinder(exact).Find(graph);
  auto b = NormalizedBfsFinder(pruned).Find(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b.value().heap_offers, a.value().heap_offers);
}

TEST(NormalizedBfsTest, RejectsBadLmin) {
  ClusterGraph graph = MakeRandomGraph(4, 4, 2, 0, 1);
  NormalizedFinderOptions opt;
  opt.lmin = 9;
  EXPECT_FALSE(NormalizedBfsFinder(opt).Find(graph).ok());
  EXPECT_FALSE(NormalizedDfsFinder(opt).Find(graph).ok());
}

}  // namespace
}  // namespace stabletext
