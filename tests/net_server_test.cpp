// Network serving layer: protocol codec round-trips, byte-identical
// answers through the TCP path, exact per-epoch subscription deltas
// against a serial replay, deterministic admission-control shedding, and
// graceful-shutdown flushing. Built to run under ThreadSanitizer (the CI
// tsan job): the server's loop/worker/notifier threads, the engine's
// writer and the test's client threads all overlap here.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"

namespace stabletext {
namespace net {
namespace {

constexpr uint32_t kDays = 5;

CorpusGenOptions TestCorpus() {
  CorpusGenOptions opt;
  opt.days = kDays;
  opt.posts_per_day = 100;
  opt.vocabulary = 800;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 24;
  opt.micro_events = 15;
  opt.seed = 13;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions TestOptions() {
  EngineOptions opt;
  opt.gap = 0;  // TA answers full-path queries only on gap-0 graphs.
  opt.threads = 1;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

// One generation for the whole suite; every test ingests the same days.
const std::vector<std::vector<std::string>>& Days() {
  static const std::vector<std::vector<std::string>>* days = [] {
    CorpusGenerator gen(TestCorpus());
    auto* d = new std::vector<std::vector<std::string>>();
    for (uint32_t day = 0; day < kDays; ++day) {
      d->push_back(gen.GenerateDay(day));
    }
    return d;
  }();
  return *days;
}

Query MakeQuery(FinderAlgorithm algorithm, size_t k, uint32_t l) {
  Query q;
  q.algorithm = algorithm;
  q.k = k;
  q.l = l;
  return q;
}

// The server's own wire rendering of a direct Engine::QueryAt answer —
// the reference the TCP path must match byte for byte.
WireResult DirectAnswer(const Engine& engine,
                        const std::shared_ptr<const GraphSnapshot>& snap,
                        const Query& query, uint8_t flags) {
  auto result = engine.QueryAt(snap, query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  WireResult wire;
  wire.epoch = result.value().epoch;
  wire.warm_online = result.value().warm_online;
  wire.chains = ToWireChains(*snap, result.value(), flags);
  return wire;
}

bool SameChains(const std::vector<WireChain>& a,
                const std::vector<WireChain>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// --------------------------------------------------------------- codec

TEST(NetProtocolTest, FrameRoundTripsOneByteAtATime) {
  const std::string stream =
      EncodeFrame(MsgType::kPing, 7, "") +
      EncodeFrame(MsgType::kQuery, 8, std::string("abc\0def", 7)) +
      EncodeFrame(MsgType::kBye, 0, "tail");

  FrameReader reader;
  std::vector<Frame> frames;
  Frame frame;
  for (char byte : stream) {
    reader.Feed(&byte, 1);  // Worst-case partial reads.
    for (;;) {
      Status s = reader.Next(&frame);
      if (s.code() == StatusCode::kNotFound) break;
      ASSERT_TRUE(s.ok()) << s.ToString();
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kPing);
  EXPECT_EQ(frames[0].request_id, 7u);
  EXPECT_EQ(frames[1].type, MsgType::kQuery);
  EXPECT_EQ(frames[1].body, std::string("abc\0def", 7));
  EXPECT_EQ(frames[2].type, MsgType::kBye);
  EXPECT_EQ(frames[2].body, "tail");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetProtocolTest, CorruptChecksumTearsTheStream) {
  std::string stream = EncodeFrame(MsgType::kQuery, 1, "payload");
  stream[kFrameHeaderBytes + 3] ^= 0x40;  // Flip one payload bit.
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, OversizedLengthIsCorruption) {
  const uint32_t huge = kMaxFramePayload + 1;
  std::string stream(reinterpret_cast<const char*>(&huge), sizeof(huge));
  stream.resize(kFrameHeaderBytes, '\0');
  FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame).code(), StatusCode::kCorruption);
}

TEST(NetProtocolTest, BodyCodecsRoundTrip) {
  Query query = MakeQuery(FinderAlgorithm::kTa, 7, 0);
  query.mode = FinderMode::kNormalized;
  query.diversify_prefix = 2;
  query.diversify_suffix = 3;
  std::string body = EncodeQueryBody(query, kFlagRender);
  Query decoded_query;
  uint8_t flags = 0;
  ASSERT_TRUE(DecodeQueryBody(body, &decoded_query, &flags).ok());
  EXPECT_TRUE(decoded_query == query);
  EXPECT_EQ(flags, kFlagRender);

  WireResult result;
  result.epoch = 42;
  result.warm_online = true;
  WireChain chain;
  chain.nodes = {3, 1, 4};
  chain.weight = 0.25;
  chain.length = 2;
  chain.rendered = "interval 0: {a}";
  result.chains = {chain, WireChain{}};
  WireResult decoded_result;
  ASSERT_TRUE(
      DecodeResultBody(EncodeResultBody(result), &decoded_result).ok());
  EXPECT_EQ(decoded_result.epoch, 42u);
  EXPECT_TRUE(decoded_result.warm_online);
  EXPECT_TRUE(SameChains(decoded_result.chains, result.chains));

  WireStats stats;
  stats.epoch = 9;
  stats.intervals = 9;
  stats.clusters = 100;
  stats.edges = 200;
  stats.keywords = 300;
  stats.resident_bytes = 4096;
  stats.query_cache_hits = 5;
  stats.query_cache_misses = 6;
  stats.subscriptions_active = 1;
  stats.pushes_sent = 2;
  stats.queries_rejected = 3;
  stats.queries_served = 4;
  WireStats decoded_stats;
  ASSERT_TRUE(
      DecodeStatsBody(EncodeStatsBody(stats), &decoded_stats).ok());
  EXPECT_EQ(decoded_stats.pushes_sent, 2u);
  EXPECT_EQ(decoded_stats.queries_rejected, 3u);
  EXPECT_EQ(decoded_stats.subscriptions_active, 1u);
  EXPECT_EQ(decoded_stats.resident_bytes, 4096u);

  WireRetry retry{17, 5};
  WireRetry decoded_retry;
  ASSERT_TRUE(
      DecodeRetryBody(EncodeRetryBody(retry), &decoded_retry).ok());
  EXPECT_EQ(decoded_retry.inflight, 17u);
  EXPECT_EQ(decoded_retry.queued, 5u);

  Status remote = Status::NotFound("no such subscription");
  Status decoded_status = Status::OK();
  ASSERT_TRUE(
      DecodeErrorBody(EncodeErrorBody(remote), &decoded_status).ok());
  EXPECT_EQ(decoded_status, remote);

  uint64_t value = 0;
  ASSERT_TRUE(DecodeU64Body(EncodeU64Body(77), &value).ok());
  EXPECT_EQ(value, 77u);

  // A truncated body must be corruption, not a garbage decode.
  EXPECT_EQ(DecodeResultBody(body.substr(0, 3), &decoded_result).code(),
            StatusCode::kCorruption);
}

TEST(NetProtocolTest, DiffTopKThenApplyDeltaReproducesTarget) {
  auto entry = [](NodeId a, NodeId b, double w) {
    WireChain c;
    c.nodes = {a, b};
    c.weight = w;
    c.length = 1;
    return c;
  };
  const std::vector<WireChain> empty;
  const std::vector<WireChain> first = {entry(1, 2, 0.5), entry(3, 4, 0.4)};
  // Rank 0 unchanged, rank 1 replaced, rank 2 appended.
  const std::vector<WireChain> second = {entry(1, 2, 0.5), entry(5, 6, 0.45),
                                         entry(3, 4, 0.4)};
  // Shrink: ranks beyond new_size drop without explicit changes.
  const std::vector<WireChain> third = {entry(5, 6, 0.45)};

  WireDelta d1 = DiffTopK(empty, first);
  EXPECT_EQ(d1.changes.size(), 2u);  // Everything is new.
  WireDelta d2 = DiffTopK(first, second);
  EXPECT_EQ(d2.changes.size(), 2u);  // Ranks 1 and 2 only.
  EXPECT_EQ(d2.changes[0].first, 1u);
  WireDelta d3 = DiffTopK(second, third);
  EXPECT_EQ(d3.new_size, 1u);
  EXPECT_EQ(d3.changes.size(), 1u);  // Rank 0; 1 and 2 die by resize.

  // Deltas survive the wire and replay to the exact target states.
  const std::vector<std::pair<const WireDelta*, const std::vector<WireChain>*>>
      steps = {{&d1, &first}, {&d2, &second}, {&d3, &third}};
  std::vector<WireChain> replayed;
  for (const auto& step : steps) {
    WireDelta wired;
    ASSERT_TRUE(
        DecodeDeltaBody(EncodeDeltaBody(*step.first), &wired).ok());
    ASSERT_TRUE(ApplyDelta(&replayed, wired).ok());
    EXPECT_TRUE(SameChains(replayed, *step.second));
  }

  // A rank past new_size is corruption.
  WireDelta bad;
  bad.new_size = 1;
  bad.changes = {{5, entry(1, 2, 0.1)}};
  std::vector<WireChain> state;
  EXPECT_EQ(ApplyDelta(&state, bad).code(), StatusCode::kCorruption);
}

// ------------------------------------------------------- query serving

// (a) Answers through the TCP path are byte-identical to direct
// Engine::QueryAt at the same epoch — static graph, several concurrent
// clients, every algorithm family.
TEST(NetServerTest, ConcurrentClientsMatchDirectQueries) {
  Engine engine(TestOptions());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  for (const auto& day : Days()) {
    ASSERT_TRUE(engine.IngestText(day).ok());
  }

  const std::vector<Query> mix = {
      MakeQuery(FinderAlgorithm::kBfs, 3, 2),
      MakeQuery(FinderAlgorithm::kTa, 3, 0),
      MakeQuery(FinderAlgorithm::kOnline, 3, 2),
  };
  const auto snap = engine.snapshot();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      Client client;
      ASSERT_TRUE(
          client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());
      for (int round = 0; round < 4; ++round) {
        const Query& query = mix[(t + round) % mix.size()];
        const bool render = (round % 2) == 0;
        auto got = client.QueryWithRetry(query, render);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const WireResult expect = DirectAnswer(
            engine, snap, query, render ? kFlagRender : uint8_t{0});
        if (got.value().epoch != expect.epoch ||
            got.value().warm_online != expect.warm_online ||
            !SameChains(got.value().chains, expect.chains)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server.queries_served(), 12u);
  server.Shutdown();
}

// Same property while ingest publishes live: every concurrently observed
// answer equals the direct answer at that answer's epoch, replayed after
// the run from the pinned snapshots.
TEST(NetServerTest, LiveIngestAnswersAreEpochConsistent) {
  Engine engine(TestOptions());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Pin every published epoch so the replay can re-ask at exactly the
  // epoch a client observed.
  std::mutex mu;
  std::map<uint64_t, std::shared_ptr<const GraphSnapshot>> epochs;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto snap = engine.snapshot();
    epochs[snap->epoch] = snap;
  }

  const Query query = MakeQuery(FinderAlgorithm::kBfs, 3, 2);
  std::atomic<bool> done{false};
  std::vector<std::pair<uint64_t, WireResult>> observed;
  std::mutex observed_mu;
  std::thread reader([&] {
    Client client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());
    while (!done.load(std::memory_order_acquire)) {
      auto got = client.QueryWithRetry(query, /*render=*/false);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      std::lock_guard<std::mutex> lock(observed_mu);
      observed.emplace_back(got.value().epoch, std::move(got).value());
    }
  });

  for (const auto& day : Days()) {
    ASSERT_TRUE(engine.IngestText(day).ok());
    std::lock_guard<std::mutex> lock(mu);
    auto snap = engine.snapshot();
    epochs[snap->epoch] = snap;
  }
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_FALSE(observed.empty());
  for (const auto& [epoch, wire] : observed) {
    auto it = epochs.find(epoch);
    ASSERT_NE(it, epochs.end()) << "answer at never-published epoch "
                                << epoch;
    const WireResult expect = DirectAnswer(engine, it->second, query, 0);
    EXPECT_EQ(wire.epoch, expect.epoch);
    EXPECT_TRUE(SameChains(wire.chains, expect.chains))
        << "epoch " << epoch << " answer diverged from direct query";
  }
  server.Shutdown();
}

// --------------------------------------------------------- subscriptions

// (b) A subscriber observing epochs e..e+n receives exactly the
// per-epoch top-k deltas a serial replay of the same snapshots computes.
TEST(NetServerTest, SubscriptionDeltasMatchSerialReplay) {
  Engine engine(TestOptions());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Query query = MakeQuery(FinderAlgorithm::kBfs, 3, 2);
  Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());
  auto sub = client.Subscribe(query, /*render=*/false);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(server.subscriptions_active(), 1u);

  std::vector<std::shared_ptr<const GraphSnapshot>> published;
  for (const auto& day : Days()) {
    ASSERT_TRUE(engine.IngestText(day).ok());
    published.push_back(engine.snapshot());
  }

  // One frame per published epoch, in order, never coalesced.
  std::vector<WireDelta> received;
  for (uint32_t i = 0; i < kDays; ++i) {
    bool is_bye = false;
    auto push = client.NextPush(/*timeout_ms=*/30000, &is_bye);
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    ASSERT_FALSE(is_bye);
    received.push_back(std::move(push).value());
  }

  std::vector<WireChain> last;
  std::vector<WireChain> applied;
  for (uint32_t i = 0; i < kDays; ++i) {
    const auto& snap = published[i];
    auto direct = engine.QueryAt(snap, query);
    ASSERT_TRUE(direct.ok());
    const std::vector<WireChain> now =
        ToWireChains(*snap, direct.value(), 0);
    const WireDelta expect = DiffTopK(last, now);

    EXPECT_EQ(received[i].subscription_id, sub.value());
    EXPECT_EQ(received[i].epoch, snap->epoch) << "delta " << i;
    EXPECT_EQ(received[i].new_size, expect.new_size);
    ASSERT_EQ(received[i].changes.size(), expect.changes.size())
        << "delta " << i << " is not the serial-replay delta";
    for (size_t c = 0; c < expect.changes.size(); ++c) {
      EXPECT_EQ(received[i].changes[c].first, expect.changes[c].first);
      EXPECT_TRUE(
          received[i].changes[c].second == expect.changes[c].second);
    }

    // Applying the received stream reproduces each epoch's exact top-k.
    ASSERT_TRUE(ApplyDelta(&applied, received[i]).ok());
    EXPECT_TRUE(SameChains(applied, now)) << "replay diverged at " << i;
    last = now;
  }

  ASSERT_TRUE(client.Unsubscribe(sub.value()).ok());
  EXPECT_EQ(server.subscriptions_active(), 0u);
  EXPECT_GE(server.pushes_sent(), kDays);
  server.Shutdown();
}

TEST(NetServerTest, SubscribeValidatesAndUnsubscribeUnknownFails) {
  Engine engine(TestOptions());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());

  auto bad = client.Subscribe(MakeQuery(FinderAlgorithm::kBfs, 0, 2),
                              /*render=*/false);
  EXPECT_FALSE(bad.ok());  // k = 0 is not a standing query.

  Status unsub = client.Unsubscribe(12345);
  EXPECT_EQ(unsub.code(), StatusCode::kNotFound);
  server.Shutdown();
}

// ----------------------------------------------------- admission control

// (c) Overload past max_inflight yields RETRY frames — never a hung
// connection or a torn frame. Workers are parked on a latch, so the
// outcome is deterministic: exactly max_inflight RESULTs, the rest RETRY.
TEST(NetServerTest, OverloadShedsDeterministically) {
  Engine engine(TestOptions());
  ASSERT_TRUE(engine.IngestText(Days()[0]).ok());

  std::mutex latch_mu;
  std::condition_variable latch_cv;
  bool released = false;
  ServerOptions options;
  options.workers = 2;
  options.max_inflight = 4;
  options.queue_depth = 64;
  options.worker_test_hook = [&] {
    std::unique_lock<std::mutex> lock(latch_mu);
    latch_cv.wait(lock, [&] { return released; });
  };
  net::Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());

  // Pipeline 20 queries before reading anything. The loop admits 4
  // (2 executing + 2 queued) and must shed the other 16 immediately.
  constexpr int kTotal = 20;
  const std::string body =
      EncodeQueryBody(MakeQuery(FinderAlgorithm::kBfs, 3, 2), 0);
  std::string burst;
  for (int i = 0; i < kTotal; ++i) {
    burst += EncodeFrame(MsgType::kQuery, 100 + i, body);
  }
  size_t off = 0;
  while (off < burst.size()) {
    const IoOutcome io =
        WriteSome(fd.value(), burst.data() + off, burst.size() - off);
    ASSERT_TRUE(io.ok);
    off += static_cast<size_t>(io.n);
  }

  // Collect the 16 RETRYs while the workers are still parked, then
  // release them for the 4 RESULTs.
  FrameReader reader;
  int results = 0;
  int retries = 0;
  std::map<uint64_t, int> seen_ids;
  for (int received = 0; received < kTotal;) {
    Frame frame;
    Status s = reader.Next(&frame);
    if (s.code() == StatusCode::kNotFound) {
      ASSERT_TRUE(WaitReadable(fd.value(), 30000).ok());
      char buf[4096];
      const IoOutcome io = ReadSome(fd.value(), buf, sizeof(buf));
      ASSERT_TRUE(io.ok);
      ASSERT_NE(io.n, 0) << "server hung up mid-burst";
      reader.Feed(buf, static_cast<size_t>(io.n));
      continue;
    }
    ASSERT_TRUE(s.ok()) << "torn frame: " << s.ToString();
    ++received;
    ++seen_ids[frame.request_id];
    if (frame.type == MsgType::kResult) {
      ++results;
    } else if (frame.type == MsgType::kRetry) {
      WireRetry retry;
      ASSERT_TRUE(DecodeRetryBody(frame.body, &retry).ok());
      EXPECT_GE(retry.inflight + retry.queued, options.max_inflight);
      ++retries;
    } else {
      FAIL() << "unexpected frame type";
    }
    if (retries == kTotal - static_cast<int>(options.max_inflight) &&
        !released) {
      std::lock_guard<std::mutex> lock(latch_mu);
      released = true;
      latch_cv.notify_all();
    }
  }
  EXPECT_EQ(results, static_cast<int>(options.max_inflight));
  EXPECT_EQ(retries, kTotal - static_cast<int>(options.max_inflight));
  // Every request id answered exactly once — nothing dropped or doubled.
  EXPECT_EQ(seen_ids.size(), static_cast<size_t>(kTotal));
  for (const auto& [id, count] : seen_ids) EXPECT_EQ(count, 1) << id;

  EXPECT_EQ(server.queries_rejected(),
            static_cast<uint64_t>(kTotal) - options.max_inflight);
  EXPECT_EQ(server.queries_served(), options.max_inflight);

  ::close(fd.value());
  server.Shutdown();
}

// ------------------------------------------------------------- shutdown

// Graceful shutdown flushes the final subscription deltas, says BYE on
// every connection, and only then closes.
TEST(NetServerTest, GracefulShutdownFlushesDeltasThenByes) {
  Engine engine(TestOptions());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Query query = MakeQuery(FinderAlgorithm::kBfs, 3, 2);
  Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());
  auto sub = client.Subscribe(query, /*render=*/false);
  ASSERT_TRUE(sub.ok());

  constexpr uint32_t kTicks = 3;
  for (uint32_t i = 0; i < kTicks; ++i) {
    ASSERT_TRUE(engine.IngestText(Days()[i]).ok());
  }

  // Shut down concurrently with the client still reading: the deltas of
  // every published epoch must land before the BYE.
  std::thread closer([&] { server.Shutdown(); });
  std::vector<uint64_t> epochs;
  for (;;) {
    bool is_bye = false;
    auto push = client.NextPush(/*timeout_ms=*/30000, &is_bye);
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    if (is_bye) break;
    epochs.push_back(push.value().epoch);
  }
  closer.join();

  ASSERT_EQ(epochs.size(), kTicks);
  for (uint32_t i = 0; i < kTicks; ++i) {
    EXPECT_EQ(epochs[i], i + 1) << "delta order broken at " << i;
  }
  // After BYE the server closes; the next read is a clean EOF error,
  // not a hang or a torn frame.
  bool is_bye = false;
  auto after = client.NextPush(/*timeout_ms=*/5000, &is_bye);
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(is_bye);
}

// PING and STATS stay responsive and consistent through the serving
// layer (the counters net::Server folds into EngineStats).
TEST(NetServerTest, PingAndStatsRoundTrip) {
  Engine engine(TestOptions());
  ASSERT_TRUE(engine.IngestText(Days()[0]).ok());
  net::Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", server.port(), /*attempts=*/5).ok());
  auto epoch = client.Ping();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 1u);

  auto sub = client.Subscribe(MakeQuery(FinderAlgorithm::kBfs, 3, 2),
                              /*render=*/false);
  ASSERT_TRUE(sub.ok());
  auto got =
      client.QueryWithRetry(MakeQuery(FinderAlgorithm::kBfs, 3, 2), false);
  ASSERT_TRUE(got.ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epoch, 1u);
  EXPECT_EQ(stats.value().intervals, 1u);
  EXPECT_EQ(stats.value().subscriptions_active, 1u);
  EXPECT_GE(stats.value().queries_served, 1u);
  EXPECT_GT(stats.value().clusters, 0u);

  // The same counters surface through EngineStats for in-process
  // monitoring (CLI stats, bench_serve).
  EngineStats merged = engine.stats();
  server.FillServingStats(&merged);
  EXPECT_EQ(merged.subscriptions_active, 1u);
  EXPECT_GE(merged.queries_rejected, 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace stabletext
