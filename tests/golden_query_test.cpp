// Golden-file regression: a tiny checked-in fixture corpus and the
// expected top-k rendering for every algorithm in the registry (both
// modes, plus a diversified run). Any refactor that silently changes
// ranking, weights, tie-breaking or chain resolution fails here with a
// readable diff.
//
// Regenerating (after an *intentional* ranking change):
//   STABLETEXT_REGEN_GOLDEN=1 ./build/golden_query_test
// rewrites tests/data/golden.corpus and tests/data/golden_expected.txt
// in the source tree; review the diff before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/corpus_generator.h"
#include "util/strings.h"

#ifndef STABLETEXT_TEST_DATA_DIR
#error "STABLETEXT_TEST_DATA_DIR must point at tests/data"
#endif

namespace stabletext {
namespace {

const char kCorpusPath[] = STABLETEXT_TEST_DATA_DIR "/golden.corpus";
const char kExpectedPath[] =
    STABLETEXT_TEST_DATA_DIR "/golden_expected.txt";

// Fixture parameters are part of the golden contract: changing them
// requires regenerating both files.
CorpusGenOptions FixtureCorpus() {
  CorpusGenOptions opt;
  opt.days = 4;
  opt.posts_per_day = 150;
  opt.vocabulary = 800;
  opt.min_words_per_post = 12;
  opt.max_words_per_post = 24;
  opt.micro_events = 12;
  opt.seed = 21;
  opt.script = EventScript::PaperWeek();
  return opt;
}

EngineOptions FixtureEngine() {
  EngineOptions opt;
  opt.gap = 0;  // TA is gap-0/full-path; keep it in the golden set.
  opt.threads = 1;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

struct GoldenQuery {
  const char* name;
  Query query;
};

std::vector<GoldenQuery> GoldenQueries() {
  std::vector<GoldenQuery> out;
  Query q;
  q.k = 3;
  q.l = 2;
  q.algorithm = FinderAlgorithm::kBfs;
  out.push_back({"bfs/kl-stable/k=3/l=2", q});
  q.algorithm = FinderAlgorithm::kDfs;
  out.push_back({"dfs/kl-stable/k=3/l=2", q});
  q.algorithm = FinderAlgorithm::kBruteForce;
  out.push_back({"brute-force/kl-stable/k=3/l=2", q});
  q.algorithm = FinderAlgorithm::kOnline;
  out.push_back({"online/kl-stable/k=3/l=2", q});
  q.algorithm = FinderAlgorithm::kTa;
  q.l = 0;
  out.push_back({"ta/kl-stable/k=3/l=full", q});
  q = Query{};
  q.k = 3;
  q.l = 2;
  q.mode = FinderMode::kNormalized;
  q.algorithm = FinderAlgorithm::kBfs;
  out.push_back({"bfs/normalized/k=3/lmin=2", q});
  q.algorithm = FinderAlgorithm::kDfs;
  out.push_back({"dfs/normalized/k=3/lmin=2", q});
  q.algorithm = FinderAlgorithm::kBruteForce;
  out.push_back({"brute-force/normalized/k=3/lmin=2", q});
  q = Query{};
  q.k = 3;
  q.l = 2;
  q.algorithm = FinderAlgorithm::kBfs;
  q.diversify_prefix = 1;
  q.diversify_suffix = 1;
  out.push_back({"bfs/kl-stable/k=3/l=2/diversify=1,1", q});
  return out;
}

// Full-precision rendering: node chains, weights, lengths, and the
// keywords of every chain cluster (so cluster resolution is pinned too).
std::string Render(const Engine& engine, const char* name,
                   const Result<QueryResult>& result) {
  std::string out = std::string(name) + ":\n";
  if (!result.ok()) {
    return out + "  ERROR: " + result.status().ToString() + "\n";
  }
  for (const StableClusterChain& chain : result.value().chains) {
    out += "  ";
    for (NodeId n : chain.path.nodes) {
      out += StringPrintf("%u-", n);
    }
    out += StringPrintf(" w=%.17g len=%u stab=%.17g\n", chain.path.weight,
                        chain.path.length, chain.path.stability());
    for (const Cluster* cluster : chain.clusters) {
      out += StringPrintf("    interval %u: %s\n", cluster->interval,
                          cluster->ToString(engine.dict(), 6).c_str());
    }
  }
  return out;
}

// Fatal assertions require a void helper; callers wrap with
// ASSERT_NO_FATAL_FAILURE so a missing/corrupt fixture aborts the test
// with guidance instead of dereferencing an error Result.
void RenderAll(std::string* out) {
  Engine engine(FixtureEngine());
  auto loaded = engine.IngestCorpusFile(kCorpusPath);
  ASSERT_TRUE(loaded.ok())
      << loaded.status().ToString() << " — regenerate the fixture with "
      << "STABLETEXT_REGEN_GOLDEN=1";
  ASSERT_EQ(loaded.value(), FixtureCorpus().days);
  for (const GoldenQuery& gq : GoldenQueries()) {
    *out += Render(engine, gq.name, engine.Query(gq.query));
  }
}

bool RegenRequested() {
  const char* env = std::getenv("STABLETEXT_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

TEST(GoldenQueryTest, TopKMatchesCheckedInExpectations) {
  if (RegenRequested()) {
    CorpusGenerator gen(FixtureCorpus());
    ASSERT_TRUE(gen.GenerateToFile(kCorpusPath).ok());
    std::string rendered;
    ASSERT_NO_FATAL_FAILURE(RenderAll(&rendered));
    ASSERT_FALSE(rendered.empty());
    std::ofstream out(kExpectedPath, std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << rendered;
    GTEST_SKIP() << "regenerated " << kExpectedPath;
  }

  std::ifstream in(kExpectedPath);
  ASSERT_TRUE(in.good())
      << "missing " << kExpectedPath
      << " — run with STABLETEXT_REGEN_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  ASSERT_FALSE(expected.empty());

  std::string actual;
  ASSERT_NO_FATAL_FAILURE(RenderAll(&actual));
  EXPECT_EQ(actual, expected)
      << "ranking changed; if intentional, regenerate with "
         "STABLETEXT_REGEN_GOLDEN=1 and review the diff";

  // The golden answers are non-trivial: every kl-stable section must
  // contain at least one chain.
  EXPECT_NE(actual.find("w="), std::string::npos);
}

}  // namespace
}  // namespace stabletext
