// Porter stemmer: the reference behaviour from Porter (1980), including the
// per-step example words from the paper, plus the stemmed keywords visible
// in the VLDB paper's figures ("iphon", "galaxi", ...).

#include <gtest/gtest.h>

#include "text/porter_stemmer.h"

namespace stabletext {
namespace {

struct Case {
  const char* in;
  const char* out;
};

class PorterCaseTest : public ::testing::TestWithParam<Case> {};

TEST_P(PorterCaseTest, StemsToExpectedForm) {
  EXPECT_EQ(PorterStemmer::Stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

// Step 1a examples from Porter (1980).
INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterCaseTest,
    ::testing::Values(Case{"caresses", "caress"}, Case{"ponies", "poni"},
                      Case{"ties", "ti"}, Case{"caress", "caress"},
                      Case{"cats", "cat"}));

// Step 1b examples.
INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterCaseTest,
    ::testing::Values(Case{"feed", "feed"}, Case{"agreed", "agre"},
                      Case{"plastered", "plaster"}, Case{"bled", "bled"},
                      Case{"motoring", "motor"}, Case{"sing", "sing"},
                      Case{"conflated", "conflat"},
                      Case{"troubled", "troubl"}, Case{"sized", "size"},
                      Case{"hopping", "hop"}, Case{"tanned", "tan"},
                      Case{"falling", "fall"}, Case{"hissing", "hiss"},
                      Case{"fizzed", "fizz"}, Case{"failing", "fail"},
                      Case{"filing", "file"}));

// Step 1c examples.
INSTANTIATE_TEST_SUITE_P(Step1c, PorterCaseTest,
                         ::testing::Values(Case{"happy", "happi"},
                                           Case{"sky", "sky"}));

// Step 2 examples (selection).
INSTANTIATE_TEST_SUITE_P(
    Step2, PorterCaseTest,
    ::testing::Values(Case{"relational", "relat"},
                      Case{"conditional", "condit"},
                      Case{"rational", "ration"},
                      Case{"digitizer", "digit"},
                      Case{"conformabli", "conform"},
                      Case{"radicalli", "radic"},
                      Case{"differentli", "differ"},
                      Case{"vileli", "vile"},
                      Case{"analogousli", "analog"},
                      Case{"operator", "oper"}));

// Step 3 examples.
INSTANTIATE_TEST_SUITE_P(
    Step3, PorterCaseTest,
    ::testing::Values(Case{"triplicate", "triplic"},
                      Case{"formative", "form"}, Case{"formalize", "formal"},
                      Case{"electriciti", "electr"},
                      Case{"electrical", "electr"}, Case{"hopeful", "hope"},
                      Case{"goodness", "good"}));

// Step 4 examples (selection).
INSTANTIATE_TEST_SUITE_P(
    Step4, PorterCaseTest,
    ::testing::Values(Case{"revival", "reviv"}, Case{"allowance", "allow"},
                      Case{"inference", "infer"}, Case{"airliner", "airlin"},
                      Case{"adjustable", "adjust"},
                      Case{"defensible", "defens"},
                      Case{"adoption", "adopt"},
                      Case{"replacement", "replac"},
                      Case{"adjustment", "adjust"},
                      Case{"dependent", "depend"},
                      Case{"homologou", "homolog"},
                      Case{"communism", "commun"}, Case{"activate", "activ"},
                      Case{"angulariti", "angular"},
                      Case{"effective", "effect"}, Case{"bowdlerize",
                                                        "bowdler"}));

// Step 5 examples.
INSTANTIATE_TEST_SUITE_P(
    Step5, PorterCaseTest,
    ::testing::Values(Case{"probate", "probat"}, Case{"rate", "rate"},
                      Case{"cease", "ceas"}, Case{"controll", "control"},
                      Case{"roll", "roll"}));

// Keywords the VLDB paper's figures show in stemmed form.
INSTANTIATE_TEST_SUITE_P(
    PaperKeywords, PorterCaseTest,
    ::testing::Values(Case{"iphone", "iphon"}, Case{"galaxy", "galaxi"},
                      Case{"apple", "appl"}, Case{"trial", "trial"},
                      Case{"hussein", "hussein"}, Case{"saddam", "saddam"},
                      Case{"beckham", "beckham"},
                      Case{"stemcell", "stemcel"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStemmer::Stem(""), "");
  EXPECT_EQ(PorterStemmer::Stem("a"), "a");
  EXPECT_EQ(PorterStemmer::Stem("at"), "at");
  EXPECT_EQ(PorterStemmer::Stem("is"), "is");
}

TEST(PorterStemmerTest, StemsNeverLongerThanInput) {
  const char* words[] = {"running",   "nationalization", "hopefulness",
                         "abilities", "troubles",        "generalizations"};
  for (const char* w : words) {
    EXPECT_LE(PorterStemmer::Stem(w).size(), std::string(w).size()) << w;
  }
}

TEST(PorterStemmerTest, RelatedFormsShareAStem) {
  EXPECT_EQ(PorterStemmer::Stem("connect"),
            PorterStemmer::Stem("connected"));
  EXPECT_EQ(PorterStemmer::Stem("connect"),
            PorterStemmer::Stem("connecting"));
  EXPECT_EQ(PorterStemmer::Stem("connect"),
            PorterStemmer::Stem("connection"));
  EXPECT_EQ(PorterStemmer::Stem("connect"),
            PorterStemmer::Stem("connections"));
}

}  // namespace
}  // namespace stabletext
