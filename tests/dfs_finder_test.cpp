// Algorithm 3 (DFS finder): the paper's Table 2 worked example, exact
// equality with the brute-force oracle and with the BFS finder across
// randomized sweeps, pruning and children-order ablations.

#include <gtest/gtest.h>

#include <tuple>

#include "stable/bfs_finder.h"
#include "stable/brute_force_finder.h"
#include "stable/dfs_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(DfsFinderTest, PaperTable2WorkedExample) {
  // Section 4.3's execution over Figure 5 with k = 1, l = 2 ends with
  // H = {c13c22c33} (weight 1.7), and pruning fires at least once (c22).
  ClusterGraph g = MakePaperFigure5Graph();
  DfsFinderOptions opt;
  opt.k = 1;
  opt.l = 2;
  auto result = DfsStableFinder(opt).Find(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().paths.size(), 1u);
  EXPECT_EQ(result.value().paths[0].nodes, (std::vector<NodeId>{2, 4, 8}));
  EXPECT_NEAR(result.value().paths[0].weight, 1.7, 1e-12);
  EXPECT_GE(result.value().prunes, 1u);
}

TEST(DfsFinderTest, EmptyGraph) {
  ClusterGraph empty(0, 0);
  auto r = DfsStableFinder().Find(empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().paths.empty());
}

class DfsSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, size_t,
                     uint32_t, bool>> {};

TEST_P(DfsSweepTest, MatchesBruteForceExactly) {
  const auto [m, n, d, g, k, l, pruning] = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ClusterGraph graph = MakeRandomGraph(m, n, d, g, seed * 131 + 1);
    DfsFinderOptions opt;
    opt.k = k;
    opt.l = l;
    opt.enable_pruning = pruning;
    auto result = DfsStableFinder(opt).Find(graph);
    ASSERT_TRUE(result.ok());
    const auto expected = BruteForceFinder::TopKByWeight(graph, k, l);
    ASSERT_EQ(result.value().paths.size(), expected.size())
        << "m=" << m << " n=" << n << " d=" << d << " g=" << g
        << " k=" << k << " l=" << l << " pruning=" << pruning
        << " seed=" << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(result.value().paths[i].nodes, expected[i].nodes)
          << "rank " << i << " seed " << seed << " pruning=" << pruning;
      ASSERT_EQ(result.value().paths[i].weight, expected[i].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DfsSweepTest,
    ::testing::Values(
        std::make_tuple(3u, 4u, 2u, 0u, size_t{1}, 0u, true),
        std::make_tuple(3u, 4u, 2u, 0u, size_t{5}, 0u, true),
        std::make_tuple(4u, 4u, 2u, 0u, size_t{3}, 2u, true),
        std::make_tuple(4u, 4u, 2u, 0u, size_t{3}, 2u, false),
        std::make_tuple(4u, 5u, 2u, 1u, size_t{3}, 0u, true),
        std::make_tuple(4u, 5u, 2u, 1u, size_t{3}, 2u, true),
        std::make_tuple(5u, 3u, 2u, 2u, size_t{4}, 3u, true),
        std::make_tuple(5u, 3u, 2u, 2u, size_t{4}, 3u, false),
        std::make_tuple(5u, 4u, 3u, 0u, size_t{2}, 1u, true),
        std::make_tuple(6u, 3u, 2u, 1u, size_t{5}, 4u, true),
        std::make_tuple(6u, 3u, 1u, 0u, size_t{10}, 0u, true),
        std::make_tuple(7u, 2u, 2u, 2u, size_t{3}, 5u, true)),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(std::get<0>(p)) + "n" +
             std::to_string(std::get<1>(p)) + "d" +
             std::to_string(std::get<2>(p)) + "g" +
             std::to_string(std::get<3>(p)) + "k" +
             std::to_string(std::get<4>(p)) + "l" +
             std::to_string(std::get<5>(p)) +
             (std::get<6>(p) ? "_prune" : "_noprune");
    });

TEST(DfsFinderTest, AgreesWithBfsOnLargerRandomGraphs) {
  // Graphs too big for the brute-force oracle: cross-check the two
  // independent implementations against each other.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ClusterGraph graph = MakeRandomGraph(8, 12, 3, 1, seed * 7);
    for (uint32_t l : {0u, 3u, 5u}) {
      BfsFinderOptions bopt;
      bopt.k = 5;
      bopt.l = l;
      DfsFinderOptions dopt;
      dopt.k = 5;
      dopt.l = l;
      auto bfs = BfsStableFinder(bopt).Find(graph);
      auto dfs = DfsStableFinder(dopt).Find(graph);
      ASSERT_TRUE(bfs.ok());
      ASSERT_TRUE(dfs.ok());
      ASSERT_EQ(bfs.value().paths.size(), dfs.value().paths.size())
          << "seed=" << seed << " l=" << l;
      for (size_t i = 0; i < bfs.value().paths.size(); ++i) {
        ASSERT_EQ(bfs.value().paths[i].nodes, dfs.value().paths[i].nodes)
            << "seed=" << seed << " l=" << l << " rank=" << i;
      }
    }
  }
}

TEST(DfsFinderTest, ChildrenOrderAblationKeepsAnswer) {
  ClusterGraph graph = MakeRandomGraph(6, 8, 2, 1, 99);
  DfsFinderOptions sorted;
  sorted.k = 5;
  sorted.l = 3;
  DfsFinderOptions unsorted = sorted;
  unsorted.sort_children_by_weight = false;
  auto a = DfsStableFinder(sorted).Find(graph);
  auto b = DfsStableFinder(unsorted).Find(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().paths.size(), b.value().paths.size());
  for (size_t i = 0; i < a.value().paths.size(); ++i) {
    EXPECT_EQ(a.value().paths[i].nodes, b.value().paths[i].nodes);
  }
}

TEST(DfsFinderTest, PruningReducesWork) {
  // On a graph with strong weight skew, pruning should cut pushes.
  ClusterGraph graph = MakeRandomGraph(7, 15, 4, 0, 5);
  DfsFinderOptions with;
  with.k = 1;
  with.l = 6;
  DfsFinderOptions without = with;
  without.enable_pruning = false;
  auto a = DfsStableFinder(with).Find(graph);
  auto b = DfsStableFinder(without).Find(graph);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a.value().prunes, 0u);
  EXPECT_EQ(b.value().prunes, 0u);
  // Same answer either way.
  ASSERT_EQ(a.value().paths.size(), b.value().paths.size());
  for (size_t i = 0; i < a.value().paths.size(); ++i) {
    EXPECT_EQ(a.value().paths[i].nodes, b.value().paths[i].nodes);
  }
}

TEST(DfsFinderTest, UsesRandomIoUnlikeBfs) {
  ClusterGraph graph = MakeRandomGraph(6, 20, 3, 0, 17);
  DfsFinderOptions dopt;
  dopt.k = 5;
  dopt.l = 5;
  BfsFinderOptions bopt;
  bopt.k = 5;
  bopt.l = 5;
  auto dfs = DfsStableFinder(dopt).Find(graph);
  auto bfs = BfsStableFinder(bopt).Find(graph);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(bfs.ok());
  // The cost-model claims of Section 4.3 vs 4.2: DFS does random I/O
  // (every child consideration is a random read); BFS is sequential.
  EXPECT_GT(dfs.value().io.random_seeks, 0u);
  EXPECT_EQ(bfs.value().io.random_seeks, 0u);
  EXPECT_GT(dfs.value().io.page_reads, bfs.value().io.page_reads);
}

TEST(DfsFinderTest, MemoryFootprintBelowBfs) {
  // The paper's Section 5.2 memory note, in miniature: DFS annotations
  // live on disk, so resident state is the stack + H only.
  ClusterGraph graph = MakeRandomGraph(9, 40, 3, 0, 23);
  DfsFinderOptions dopt;
  dopt.k = 3;
  dopt.l = 6;
  BfsFinderOptions bopt;
  bopt.k = 3;
  bopt.l = 6;
  auto dfs = DfsStableFinder(dopt).Find(graph);
  auto bfs = BfsStableFinder(bopt).Find(graph);
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(bfs.ok());
  EXPECT_LT(dfs.value().peak_memory_bytes,
            bfs.value().peak_memory_bytes);
}

}  // namespace
}  // namespace stabletext
