// Persistence (cluster sets, cluster graphs) and fault-injection
// error-propagation tests.

#include <gtest/gtest.h>

#include <fstream>

#include "cluster/cluster_io.h"
#include "stable/bfs_finder.h"
#include "stable/cluster_graph_io.h"
#include "storage/external_sorter.h"
#include "storage/spillable_stack.h"
#include "storage/temp_dir.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

TEST(ClusterIoTest, RoundTripsClusters) {
  TempDir dir;
  std::vector<Cluster> clusters;
  Cluster a;
  a.interval = 3;
  a.keywords = {1, 5, 9};
  a.edges = {{1, 5, 0.123456789012345}, {5, 9, 0.7}};
  Cluster b;
  b.interval = 4;
  b.keywords = {2, 7};
  b.edges = {{2, 7, 1.0}};
  clusters = {a, b};
  const std::string path = dir.FilePath("clusters.txt");
  ASSERT_TRUE(SaveClusters(clusters, path).ok());

  std::vector<Cluster> loaded;
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].interval, 3u);
  EXPECT_EQ(loaded[0].keywords, a.keywords);
  ASSERT_EQ(loaded[0].edges.size(), 2u);
  // Hex floats round trip bit-exactly.
  EXPECT_EQ(loaded[0].edges[0].weight, a.edges[0].weight);
  EXPECT_EQ(loaded[1].keywords, b.keywords);
}

TEST(ClusterIoTest, EmptySetAndEmptyCluster) {
  TempDir dir;
  const std::string path = dir.FilePath("empty.txt");
  ASSERT_TRUE(SaveClusters({}, path).ok());
  std::vector<Cluster> loaded = {Cluster{}};
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());

  Cluster bare;
  bare.interval = 1;
  ASSERT_TRUE(SaveClusters({bare}, path).ok());
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].keywords.empty());
  EXPECT_TRUE(loaded[0].edges.empty());
}

TEST(ClusterIoTest, RejectsCorruptFiles) {
  TempDir dir;
  const std::string path = dir.FilePath("bad.txt");
  {
    std::ofstream out(path);
    out << "3\tonly-two-fields\n";
  }
  std::vector<Cluster> loaded;
  EXPECT_EQ(LoadClusters(path, &loaded).code(), StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "3\t1,2\t1-2-0.5\n";  // Bad edge separator.
  }
  EXPECT_EQ(LoadClusters(path, &loaded).code(), StatusCode::kCorruption);
  EXPECT_FALSE(LoadClusters(dir.FilePath("missing"), &loaded).ok());
}

TEST(ClusterGraphIoTest, RoundTripsGraphAndAnswers) {
  TempDir dir;
  ClusterGraph graph = MakeRandomGraph(6, 12, 3, 1, 99);
  const std::string path = dir.FilePath("graph.txt");
  ASSERT_TRUE(SaveClusterGraph(graph, path).ok());

  auto loaded = LoadClusterGraph(path);
  ASSERT_TRUE(loaded.ok());
  const ClusterGraph& g2 = loaded.value();
  ASSERT_EQ(g2.node_count(), graph.node_count());
  ASSERT_EQ(g2.edge_count(), graph.edge_count());
  ASSERT_EQ(g2.interval_count(), graph.interval_count());
  ASSERT_EQ(g2.gap(), graph.gap());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    ASSERT_EQ(g2.Interval(v), graph.Interval(v));
    const auto& ca = graph.Children(v);
    const auto& cb = g2.Children(v);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i].target, cb[i].target);
      ASSERT_EQ(ca[i].weight, cb[i].weight);  // Bit-exact.
    }
  }
  // Stable-cluster answers on the loaded graph are identical.
  BfsFinderOptions opt;
  opt.k = 5;
  opt.l = 3;
  auto before = BfsStableFinder(opt).Find(graph);
  auto after = BfsStableFinder(opt).Find(g2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().paths.size(), after.value().paths.size());
  for (size_t i = 0; i < before.value().paths.size(); ++i) {
    EXPECT_EQ(before.value().paths[i].nodes,
              after.value().paths[i].nodes);
    EXPECT_EQ(before.value().paths[i].weight,
              after.value().paths[i].weight);
  }
}

TEST(ClusterGraphIoTest, RejectsCorruptFiles) {
  TempDir dir;
  const std::string path = dir.FilePath("bad.txt");
  {
    std::ofstream out(path);
    out << "not a header\n";
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "G 3 0\nN 9\n";  // Interval out of range.
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "G 3 0\nN 0\nN 1\nE 1 0 0x1p-1\n";  // Backward edge.
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(LoadClusterGraph(dir.FilePath("missing")).ok());
}

// Fault injection: failures in the (simulated) disk must surface as
// IOError through every layer, never crash or silently corrupt.
TEST(FaultInjectionTest, PagedFileFailsAfterBudget) {
  TempDir dir;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.truncate = true;
  opt.fail_after_physical_ops = 3;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, nullptr).ok());
  std::vector<uint8_t> page(64, 1);
  EXPECT_TRUE(file.WritePage(0, page.data()).ok());
  EXPECT_TRUE(file.WritePage(1, page.data()).ok());
  EXPECT_TRUE(file.WritePage(2, page.data()).ok());
  Status s = file.WritePage(3, page.data());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  std::vector<uint8_t> out;
  EXPECT_EQ(file.ReadPage(0, &out).code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, SpillableStackPropagatesFaults) {
  SpillableStackOptions opt;
  opt.memory_entries = 8;
  opt.block_entries = 4;
  opt.fail_after_physical_ops = 2;
  SpillableStack<uint64_t> stack(opt);
  Status status = Status::OK();
  for (uint64_t i = 0; i < 1000 && status.ok(); ++i) {
    status = stack.Push(i);
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

struct FaultRec {
  uint64_t v;
  friend bool operator<(const FaultRec& a, const FaultRec& b) {
    return a.v < b.v;
  }
};

TEST(FaultInjectionTest, ExternalSorterPropagatesFaults) {
  using Rec = FaultRec;
  ExternalSorterOptions opt;
  opt.memory_budget_bytes = 8 * sizeof(Rec);
  opt.fail_after_physical_ops = 1;
  ExternalSorter<Rec> sorter(opt);
  Status status = Status::OK();
  for (uint64_t i = 0; i < 100 && status.ok(); ++i) {
    status = sorter.Add(Rec{i});
  }
  if (status.ok()) status = sorter.Sort();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace stabletext
