// Persistence (cluster sets, cluster graphs) and fault-injection
// error-propagation tests.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cluster/cluster_io.h"
#include "cooccur/keyword_dict.h"
#include "core/engine.h"
#include "stable/bfs_finder.h"
#include "stable/cluster_graph_io.h"
#include "storage/external_sorter.h"
#include "storage/record_file.h"
#include "storage/spillable_stack.h"
#include "storage/temp_dir.h"
#include "test_helpers.h"
#include "util/strings.h"

namespace stabletext {
namespace {

TEST(ClusterIoTest, RoundTripsClusters) {
  TempDir dir;
  std::vector<Cluster> clusters;
  Cluster a;
  a.interval = 3;
  a.keywords = {1, 5, 9};
  a.edges = {{1, 5, 0.123456789012345}, {5, 9, 0.7}};
  Cluster b;
  b.interval = 4;
  b.keywords = {2, 7};
  b.edges = {{2, 7, 1.0}};
  clusters = {a, b};
  const std::string path = dir.FilePath("clusters.txt");
  ASSERT_TRUE(SaveClusters(clusters, path).ok());

  std::vector<Cluster> loaded;
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].interval, 3u);
  EXPECT_EQ(loaded[0].keywords, a.keywords);
  ASSERT_EQ(loaded[0].edges.size(), 2u);
  // Hex floats round trip bit-exactly.
  EXPECT_EQ(loaded[0].edges[0].weight, a.edges[0].weight);
  EXPECT_EQ(loaded[1].keywords, b.keywords);
}

TEST(ClusterIoTest, EmptySetAndEmptyCluster) {
  TempDir dir;
  const std::string path = dir.FilePath("empty.txt");
  ASSERT_TRUE(SaveClusters({}, path).ok());
  std::vector<Cluster> loaded = {Cluster{}};
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());

  Cluster bare;
  bare.interval = 1;
  ASSERT_TRUE(SaveClusters({bare}, path).ok());
  ASSERT_TRUE(LoadClusters(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].keywords.empty());
  EXPECT_TRUE(loaded[0].edges.empty());
}

TEST(ClusterIoTest, RejectsCorruptFiles) {
  TempDir dir;
  const std::string path = dir.FilePath("bad.txt");
  {
    std::ofstream out(path);
    out << "3\tonly-two-fields\n";
  }
  std::vector<Cluster> loaded;
  EXPECT_EQ(LoadClusters(path, &loaded).code(), StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "3\t1,2\t1-2-0.5\n";  // Bad edge separator.
  }
  EXPECT_EQ(LoadClusters(path, &loaded).code(), StatusCode::kCorruption);
  EXPECT_FALSE(LoadClusters(dir.FilePath("missing"), &loaded).ok());
}

TEST(ClusterGraphIoTest, RoundTripsGraphAndAnswers) {
  TempDir dir;
  ClusterGraph graph = MakeRandomGraph(6, 12, 3, 1, 99);
  const std::string path = dir.FilePath("graph.txt");
  ASSERT_TRUE(SaveClusterGraph(graph, path).ok());

  auto loaded = LoadClusterGraph(path);
  ASSERT_TRUE(loaded.ok());
  const ClusterGraph& g2 = loaded.value();
  ASSERT_EQ(g2.node_count(), graph.node_count());
  ASSERT_EQ(g2.edge_count(), graph.edge_count());
  ASSERT_EQ(g2.interval_count(), graph.interval_count());
  ASSERT_EQ(g2.gap(), graph.gap());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    ASSERT_EQ(g2.Interval(v), graph.Interval(v));
    const auto& ca = graph.Children(v);
    const auto& cb = g2.Children(v);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i].target, cb[i].target);
      ASSERT_EQ(ca[i].weight, cb[i].weight);  // Bit-exact.
    }
  }
  // Stable-cluster answers on the loaded graph are identical.
  BfsFinderOptions opt;
  opt.k = 5;
  opt.l = 3;
  auto before = BfsStableFinder(opt).Find(graph);
  auto after = BfsStableFinder(opt).Find(g2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().paths.size(), after.value().paths.size());
  for (size_t i = 0; i < before.value().paths.size(); ++i) {
    EXPECT_EQ(before.value().paths[i].nodes,
              after.value().paths[i].nodes);
    EXPECT_EQ(before.value().paths[i].weight,
              after.value().paths[i].weight);
  }
}

TEST(ClusterGraphIoTest, RejectsCorruptFiles) {
  TempDir dir;
  const std::string path = dir.FilePath("bad.txt");
  {
    std::ofstream out(path);
    out << "not a header\n";
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "G 3 0\nN 9\n";  // Interval out of range.
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path);
    out << "G 3 0\nN 0\nN 1\nE 1 0 0x1p-1\n";  // Backward edge.
  }
  EXPECT_EQ(LoadClusterGraph(path).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(LoadClusterGraph(dir.FilePath("missing")).ok());
}

// Fault injection: failures in the (simulated) disk must surface as
// IOError through every layer, never crash or silently corrupt.
TEST(FaultInjectionTest, PagedFileFailsAfterBudget) {
  TempDir dir;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.truncate = true;
  opt.fail_after_physical_ops = 3;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, nullptr).ok());
  std::vector<uint8_t> page(64, 1);
  EXPECT_TRUE(file.WritePage(0, page.data()).ok());
  EXPECT_TRUE(file.WritePage(1, page.data()).ok());
  EXPECT_TRUE(file.WritePage(2, page.data()).ok());
  Status s = file.WritePage(3, page.data());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  std::vector<uint8_t> out;
  EXPECT_EQ(file.ReadPage(0, &out).code(), StatusCode::kIOError);
}

TEST(FaultInjectionTest, SpillableStackPropagatesFaults) {
  SpillableStackOptions opt;
  opt.memory_entries = 8;
  opt.block_entries = 4;
  opt.fail_after_physical_ops = 2;
  SpillableStack<uint64_t> stack(opt);
  Status status = Status::OK();
  for (uint64_t i = 0; i < 1000 && status.ok(); ++i) {
    status = stack.Push(i);
  }
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

struct FaultRec {
  uint64_t v;
  friend bool operator<(const FaultRec& a, const FaultRec& b) {
    return a.v < b.v;
  }
};

TEST(FaultInjectionTest, ExternalSorterPropagatesFaults) {
  using Rec = FaultRec;
  ExternalSorterOptions opt;
  opt.memory_budget_bytes = 8 * sizeof(Rec);
  opt.fail_after_physical_ops = 1;
  ExternalSorter<Rec> sorter(opt);
  Status status = Status::OK();
  for (uint64_t i = 0; i < 100 && status.ok(); ++i) {
    status = sorter.Add(Rec{i});
  }
  if (status.ok()) status = sorter.Sort();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// ---- record-file page checksums ----

struct CrcRec {
  uint32_t a;
  uint64_t b;
};

void FlipByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x01));
}

TEST(RecordFileChecksumTest, CleanFileRoundTrips) {
  TempDir dir;
  const std::string path = dir.FilePath("recs");
  RecordWriter<CrcRec> writer;
  ASSERT_TRUE(writer.Open(path, nullptr, /*page_size=*/128).ok());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Append(CrcRec{i, uint64_t{i} * 3}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  RecordReader<CrcRec> reader;
  ASSERT_TRUE(reader.Open(path, nullptr, /*page_size=*/128).ok());
  CrcRec r{};
  uint32_t n = 0;
  while (reader.Next(&r)) {
    EXPECT_EQ(r.a, n);
    ++n;
  }
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(n, 50u);
}

TEST(RecordFileChecksumTest, BitRotInADataPageIsDataLoss) {
  TempDir dir;
  const std::string path = dir.FilePath("recs");
  RecordWriter<CrcRec> writer;
  // page_size 128 holds (128-4)/16 = 7 records per page.
  ASSERT_TRUE(writer.Open(path, nullptr, /*page_size=*/128).ok());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Append(CrcRec{i, uint64_t{i}}).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  // Rot one byte in the second data page (page 2): records 7..13.
  FlipByte(path, 2 * 128 + 5);
  RecordReader<CrcRec> reader;
  ASSERT_TRUE(reader.Open(path, nullptr, /*page_size=*/128).ok());
  CrcRec r{};
  uint32_t read = 0;
  while (reader.Next(&r)) ++read;
  EXPECT_EQ(read, 7u);  // The first page's records survive.
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(RecordFileChecksumTest, BitRotInTheHeaderIsDataLoss) {
  TempDir dir;
  const std::string path = dir.FilePath("recs");
  RecordWriter<CrcRec> writer;
  ASSERT_TRUE(writer.Open(path, nullptr, /*page_size=*/128).ok());
  ASSERT_TRUE(writer.Append(CrcRec{1, 2}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  FlipByte(path, 3);  // Header page: the record count itself.
  RecordReader<CrcRec> reader;
  EXPECT_EQ(reader.Open(path, nullptr, /*page_size=*/128).code(),
            StatusCode::kDataLoss);
}

// ---- TempDir cleanup reporting ----

TEST(TempDirTest, CleanupReportsAndIsIdempotent) {
  TempDir dir;
  const std::string path = dir.path();
  {
    std::ofstream f(dir.FilePath("scratch"));
    f << "x";
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(dir.Cleanup().ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(dir.Cleanup().ok());  // Second call is a no-op.
}

// ---- KeywordDict::TruncateTo vs. durable recovery ----

TEST(KeywordDictTest, TruncateToRestoresIdAssignment) {
  KeywordDict dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("gamma"), 2u);
  const size_t watermark = dict.size();
  EXPECT_EQ(dict.Intern("delta"), 3u);
  EXPECT_EQ(dict.Intern("epsilon"), 4u);
  dict.TruncateTo(watermark);
  EXPECT_EQ(dict.size(), watermark);
  EXPECT_EQ(dict.Lookup("delta"), kInvalidKeyword);
  EXPECT_EQ(dict.Lookup("epsilon"), kInvalidKeyword);
  EXPECT_EQ(dict.Lookup("beta"), 1u);
  // Ids after the rollback are assigned as if the dropped words never
  // existed — in the new arrival order.
  EXPECT_EQ(dict.Intern("epsilon"), 3u);
  EXPECT_EQ(dict.Intern("delta"), 4u);
}

// An aborted pipelined batch rolls interning back with TruncateTo; the
// WAL watermarks must line up so a later commit — and a recovery replay
// of it — reproduces keyword ids exactly.
TEST(KeywordDictTest, TruncateToRollbackSurvivesDurableRecovery) {
  auto posts = [](std::initializer_list<const char*> texts) {
    std::vector<std::string> out;
    for (const char* t : texts) {
      for (int i = 0; i < 4; ++i) out.push_back(t);  // Clear pair support.
    }
    return out;
  };
  const std::vector<std::vector<std::string>> ticks = {
      posts({"red blue green", "red blue yellow"}),
      posts({"red blue green", "blue green cyan"}),
      posts({"red blue green", "green cyan magenta"}),
  };
  TempDir dir("durable");
  EngineOptions opt;
  opt.gap = 1;
  opt.threads = 2;  // Pipelined batches are the rollback path.
  opt.clustering.pruning.min_pair_support = 2;
  opt.clustering.pruning.rho_threshold = 0.05;
  opt.affinity.theta = 0.05;
  opt.durability.enabled = true;
  opt.durability.dir = dir.path();
  opt.durability.checkpoint_interval = 2;

  std::string expected;
  size_t vocab = 0;
  {
    auto created = Engine::Recover(opt);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    Engine& engine = *created.value();
    // Abort the batch after tick 1 commits: tick 2's words are already
    // interned by the pipeline and must be rolled back.
    auto r = engine.IngestTicks(ticks, [](uint32_t interval,
                                          const std::vector<std::string>&) {
      return interval >= 1 ? Status::Internal("abort batch")
                           : Status::OK();
    });
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(engine.snapshot()->epoch, 2u);
    // The engine is not broken — re-ingest the rolled-back tick.
    auto committed = engine.IngestText(ticks[2]);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    vocab = engine.dict().size();
    for (KeywordId id = 0; id < vocab; ++id) {
      expected += engine.dict().Word(id);
      expected += '\n';
    }
  }
  auto recovered = Engine::Recover(opt);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Engine& engine = *recovered.value();
  EXPECT_EQ(engine.snapshot()->epoch, 3u);
  ASSERT_EQ(engine.dict().size(), vocab);
  std::string replayed;
  for (KeywordId id = 0; id < vocab; ++id) {
    replayed += engine.dict().Word(id);
    replayed += '\n';
  }
  EXPECT_EQ(replayed, expected);
}

}  // namespace
}  // namespace stabletext
