// Unit tests for storage/: TempDir, PagedFile (caching, accounting,
// persistence, error paths), RecordWriter/RecordReader.

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/paged_file.h"
#include "storage/record_file.h"
#include "storage/temp_dir.h"

namespace stabletext {
namespace {

std::vector<uint8_t> FilledPage(size_t page_size, uint8_t fill) {
  return std::vector<uint8_t>(page_size, fill);
}

TEST(TempDirTest, CreatesAndRemovesDirectory) {
  std::string path;
  {
    TempDir dir("st_test");
    path = dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(path));
    EXPECT_EQ(dir.FilePath("x"), path + "/x");
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, DistinctInstancesGetDistinctPaths) {
  TempDir a("st_test"), b("st_test");
  EXPECT_NE(a.path(), b.path());
}

TEST(PagedFileTest, WriteReadRoundTrip) {
  TempDir dir;
  IoStats stats;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 256;
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, &stats).ok());
  for (uint8_t i = 0; i < 10; ++i) {
    auto page = FilledPage(256, i);
    ASSERT_TRUE(file.WritePage(i, page.data()).ok());
  }
  EXPECT_EQ(file.PageCount(), 10u);
  std::vector<uint8_t> out;
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(file.ReadPage(i, &out).ok());
    EXPECT_EQ(out, FilledPage(256, i));
  }
}

TEST(PagedFileTest, PersistsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.FilePath("f");
  {
    PagedFile file;
    PagedFileOptions opt;
    opt.page_size = 128;
    opt.truncate = true;
    ASSERT_TRUE(file.Open(path, opt, nullptr).ok());
    auto page = FilledPage(128, 0xAB);
    ASSERT_TRUE(file.WritePage(0, page.data()).ok());
    ASSERT_TRUE(file.Close().ok());
  }
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 128;
  ASSERT_TRUE(file.Open(path, opt, nullptr).ok());
  EXPECT_EQ(file.PageCount(), 1u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(file.ReadPage(0, &out).ok());
  EXPECT_EQ(out, FilledPage(128, 0xAB));
}

TEST(PagedFileTest, CacheDisabledChargesEveryAccess) {
  TempDir dir;
  IoStats stats;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.cache_pages = 0;  // The paper's "page cache disabled" environment.
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, &stats).ok());
  auto page = FilledPage(64, 1);
  ASSERT_TRUE(file.WritePage(0, page.data()).ok());
  std::vector<uint8_t> out;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(file.ReadPage(0, &out).ok());
  EXPECT_EQ(stats.page_writes, 1u);
  EXPECT_EQ(stats.page_reads, 5u);
  EXPECT_EQ(stats.logical_reads, 0u);
}

TEST(PagedFileTest, CacheAbsorbsRepeatedReads) {
  TempDir dir;
  IoStats stats;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.cache_pages = 4;
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, &stats).ok());
  auto page = FilledPage(64, 1);
  ASSERT_TRUE(file.WritePage(0, page.data()).ok());
  std::vector<uint8_t> out;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(file.ReadPage(0, &out).ok());
  // The write stays cached; all five reads hit the dirty frame.
  EXPECT_EQ(stats.page_reads, 0u);
  EXPECT_EQ(stats.logical_reads, 5u);
  ASSERT_TRUE(file.Flush().ok());
  EXPECT_EQ(stats.page_writes, 1u);
}

TEST(PagedFileTest, LruEvictsColdestPage) {
  TempDir dir;
  IoStats stats;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.cache_pages = 2;
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, &stats).ok());
  for (uint8_t i = 0; i < 3; ++i) {
    auto page = FilledPage(64, i);
    ASSERT_TRUE(file.WritePage(i, page.data()).ok());
  }
  // Pages 0 was evicted (written); 1 and 2 cached.
  EXPECT_EQ(stats.page_writes, 1u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(file.ReadPage(2, &out).ok());
  EXPECT_EQ(stats.page_reads, 0u);
  ASSERT_TRUE(file.ReadPage(0, &out).ok());  // Miss: physical read.
  EXPECT_EQ(stats.page_reads, 1u);
  EXPECT_EQ(out, FilledPage(64, 0));
}

TEST(PagedFileTest, RandomSeeksCounted) {
  TempDir dir;
  IoStats stats;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.cache_pages = 0;
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, &stats).ok());
  auto page = FilledPage(64, 0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(file.WritePage(i, page.data()).ok());
  }
  EXPECT_EQ(stats.random_seeks, 0u);  // Sequential appends.
  std::vector<uint8_t> out;
  ASSERT_TRUE(file.ReadPage(0, &out).ok());  // Jump back: one seek.
  ASSERT_TRUE(file.ReadPage(1, &out).ok());  // Sequential.
  ASSERT_TRUE(file.ReadPage(5, &out).ok());  // Jump: another seek.
  EXPECT_EQ(stats.random_seeks, 2u);
}

TEST(PagedFileTest, ErrorsOnBadAccesses) {
  TempDir dir;
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  opt.truncate = true;
  ASSERT_TRUE(file.Open(dir.FilePath("f"), opt, nullptr).ok());
  std::vector<uint8_t> out;
  EXPECT_FALSE(file.ReadPage(0, &out).ok());  // Empty file.
  auto page = FilledPage(64, 1);
  EXPECT_FALSE(file.WritePage(5, page.data()).ok());  // Gap.
  PagedFile second;
  PagedFileOptions bad;
  bad.page_size = 0;
  EXPECT_EQ(second.Open(dir.FilePath("g"), bad, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(PagedFileTest, RejectsMisalignedExistingFile) {
  TempDir dir;
  const std::string path = dir.FilePath("odd");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("123", f);
    std::fclose(f);
  }
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = 64;
  EXPECT_EQ(file.Open(path, opt, nullptr).code(), StatusCode::kCorruption);
}

struct Rec {
  uint32_t a;
  uint64_t b;
  friend bool operator==(const Rec& x, const Rec& y) {
    return x.a == y.a && x.b == y.b;
  }
};

TEST(RecordFileTest, RoundTripsRecords) {
  TempDir dir;
  IoStats stats;
  RecordWriter<Rec> writer;
  ASSERT_TRUE(writer.Open(dir.FilePath("r"), &stats, 128).ok());
  std::vector<Rec> expected;
  for (uint32_t i = 0; i < 100; ++i) {
    Rec r{i, uint64_t{i} * 7};
    expected.push_back(r);
    ASSERT_TRUE(writer.Append(r).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.count(), 100u);

  RecordReader<Rec> reader;
  ASSERT_TRUE(reader.Open(dir.FilePath("r"), &stats, 128).ok());
  EXPECT_EQ(reader.count(), 100u);
  std::vector<Rec> got;
  Rec r;
  while (reader.Next(&r)) got.push_back(r);
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(got, expected);
}

TEST(RecordFileTest, EmptyFile) {
  TempDir dir;
  RecordWriter<Rec> writer;
  ASSERT_TRUE(writer.Open(dir.FilePath("r"), nullptr).ok());
  ASSERT_TRUE(writer.Finish().ok());
  RecordReader<Rec> reader;
  ASSERT_TRUE(reader.Open(dir.FilePath("r"), nullptr).ok());
  Rec r;
  EXPECT_FALSE(reader.Next(&r));
  EXPECT_EQ(reader.count(), 0u);
}

TEST(RecordFileTest, RejectsPageSmallerThanRecord) {
  TempDir dir;
  RecordWriter<Rec> writer;
  EXPECT_FALSE(writer.Open(dir.FilePath("r"), nullptr, 8).ok());
}

TEST(IoStatsTest, AccumulatesAndPrints) {
  IoStats a, b;
  a.page_reads = 3;
  a.bytes_read = 300;
  b.page_writes = 2;
  b.random_seeks = 1;
  a += b;
  EXPECT_EQ(a.page_reads, 3u);
  EXPECT_EQ(a.page_writes, 2u);
  EXPECT_EQ(a.random_seeks, 1u);
  EXPECT_NE(a.ToString().find("reads=3"), std::string::npos);
  a.Reset();
  EXPECT_EQ(a.page_reads, 0u);
}

}  // namespace
}  // namespace stabletext
