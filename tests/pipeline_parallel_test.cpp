// Parallel-pipeline determinism: 1-thread and N-thread runs must produce
// byte-identical cluster and stable-path output. Keyword ids are interned
// on the submitting thread and join results stitched in interval order, so
// nothing downstream may depend on worker scheduling. A tight sort budget
// additionally forces spilled runs through the pooled run-generation path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "gen/corpus_generator.h"
#include "util/strings.h"

namespace stabletext {
namespace {

CorpusGenOptions SmallCorpus() {
  CorpusGenOptions opt;
  opt.days = 6;
  opt.posts_per_day = 400;
  opt.vocabulary = 1500;
  opt.min_words_per_post = 10;
  opt.max_words_per_post = 24;
  opt.micro_events = 40;
  opt.seed = 31;
  opt.script = EventScript::PaperWeek();
  return opt;
}

PipelineOptions BaseOptions(size_t threads) {
  PipelineOptions opt;
  opt.gap = 2;
  opt.threads = threads;
  opt.clustering.pruning.rho_threshold = 0.2;
  opt.clustering.pruning.min_pair_support = 5;
  opt.affinity.theta = 0.1;
  return opt;
}

// Renders everything observable about a finished pipeline: per-interval
// cluster sets (keywords as text), graph shape, and top-k stable chains.
std::string Fingerprint(const StableClusterPipeline& pipeline) {
  std::string out;
  for (uint32_t i = 0; i < pipeline.interval_count(); ++i) {
    const IntervalResult& r = pipeline.interval_result(i);
    out += StringPrintf("interval %u: %zu clusters, %zu pruned edges\n", i,
                        r.clusters.size(),
                        r.graph_summary.prune.surviving_edges);
    for (const Cluster& c : r.clusters) {
      out += "  " + c.ToString(pipeline.dict(), 64) + "\n";
    }
  }
  const ClusterGraph* graph = pipeline.cluster_graph();
  out += StringPrintf("graph: %zu nodes, %zu edges\n", graph->node_count(),
                      graph->edge_count());
  for (NodeId v = 0; v < graph->node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph->Children(v)) {
      out += StringPrintf("  %u -> %u %.9f\n", v, e.target, e.weight);
    }
  }
  return out;
}

std::string ChainFingerprint(const StableClusterPipeline& pipeline) {
  std::string out;
  auto full = pipeline.FindStableClusters(5, 0, FinderKind::kBfs);
  EXPECT_TRUE(full.ok());
  for (const StableClusterChain& chain : full.value()) {
    out += pipeline.RenderChain(chain, 16);
  }
  auto dfs = pipeline.FindStableClusters(4, 3, FinderKind::kDfs);
  EXPECT_TRUE(dfs.ok());
  for (const StableClusterChain& chain : dfs.value()) {
    out += pipeline.RenderChain(chain, 16);
  }
  auto norm = pipeline.FindNormalizedStableClusters(4, 2);
  EXPECT_TRUE(norm.ok());
  for (const StableClusterChain& chain : norm.value()) {
    out += pipeline.RenderChain(chain, 16);
  }
  return out;
}

struct RunOutput {
  std::string pipeline;
  std::string chains;
};

RunOutput RunWithThreads(size_t threads, size_t sort_memory_bytes) {
  CorpusGenerator gen(SmallCorpus());
  PipelineOptions popt = BaseOptions(threads);
  popt.clustering.counting.sort_memory_bytes = sort_memory_bytes;
  StableClusterPipeline pipeline(popt);
  for (uint32_t day = 0; day < 6; ++day) {
    EXPECT_TRUE(pipeline.AddIntervalText(gen.GenerateDay(day)).ok());
  }
  EXPECT_TRUE(pipeline.BuildClusterGraph().ok());
  return RunOutput{Fingerprint(pipeline), ChainFingerprint(pipeline)};
}

TEST(PipelineParallelTest, ThreadCountDoesNotChangeOutput) {
  const RunOutput sequential = RunWithThreads(1, 32 << 20);
  ASSERT_FALSE(sequential.pipeline.empty());
  for (const size_t threads : {2u, 4u, 8u}) {
    const RunOutput parallel = RunWithThreads(threads, 32 << 20);
    EXPECT_EQ(sequential.pipeline, parallel.pipeline)
        << "threads=" << threads;
    EXPECT_EQ(sequential.chains, parallel.chains)
        << "threads=" << threads;
  }
}

TEST(PipelineParallelTest, SpilledSortRunsAreDeterministicToo) {
  // A tiny sort budget forces every interval through spilled runs and the
  // pooled run-generation + loser-tree merge path.
  const RunOutput sequential = RunWithThreads(1, 64 << 10);
  const RunOutput parallel = RunWithThreads(4, 64 << 10);
  EXPECT_EQ(sequential.pipeline, parallel.pipeline);
  EXPECT_EQ(sequential.chains, parallel.chains);
  // And the budget itself must not change the answer either.
  const RunOutput roomy = RunWithThreads(4, 32 << 20);
  EXPECT_EQ(sequential.pipeline, roomy.pipeline);
}

TEST(PipelineParallelTest, ParallelErrorsSurfaceAtBuild) {
  PipelineOptions popt = BaseOptions(4);
  StableClusterPipeline pipeline(popt);
  EXPECT_FALSE(pipeline.BuildClusterGraph().ok());  // No intervals.
}

}  // namespace
}  // namespace stabletext
