// Section 4.6 (online version): after each arriving interval the streaming
// finder's top-k equals the batch BFS finder run on the data so far, and
// integrating an interval never touches earlier intervals' annotations.

#include <gtest/gtest.h>

#include "stable/bfs_finder.h"
#include "stable/online_finder.h"
#include "test_helpers.h"

namespace stabletext {
namespace {

// Replays `graph` interval by interval into an online finder, checking the
// streaming answer against batch BFS on the growing prefix after every
// interval.
void ReplayAndCheck(uint32_t m, uint32_t n, uint32_t d, uint32_t g,
                    size_t k, uint32_t l, uint64_t seed) {
  ClusterGraph full = MakeRandomGraph(m, n, d, g, seed);
  OnlineFinderOptions opt;
  opt.k = k;
  opt.l = l;
  opt.gap = g;
  OnlineStableFinder online(opt);

  for (uint32_t i = 0; i < m; ++i) {
    online.BeginInterval();
    for (size_t j = 0; j < full.IntervalNodes(i).size(); ++j) {
      auto node = online.AddNode();
      ASSERT_TRUE(node.ok());
      // The generator assigns dense ids interval-major, so ids align.
      ASSERT_EQ(node.value(), full.IntervalNodes(i)[j]);
    }
    for (NodeId c : full.IntervalNodes(i)) {
      for (const ClusterGraphEdge& pe : full.Parents(c)) {
        ASSERT_TRUE(online.AddEdge(pe.target, c, pe.weight).ok());
      }
    }
    ASSERT_TRUE(online.EndInterval().ok());

    if (i < l) {
      // Not enough intervals yet for any length-l path.
      EXPECT_TRUE(online.TopK().empty());
      continue;
    }
    // Batch reference on the prefix graph [0, i].
    ClusterGraph prefix(i + 1, g);
    for (uint32_t iv = 0; iv <= i; ++iv) {
      for (size_t j = 0; j < full.IntervalNodes(iv).size(); ++j) {
        prefix.AddNode(iv);
      }
    }
    for (uint32_t iv = 0; iv <= i; ++iv) {
      for (NodeId c : full.IntervalNodes(iv)) {
        for (const ClusterGraphEdge& pe : full.Parents(c)) {
          ASSERT_TRUE(prefix.AddEdge(pe.target, c, pe.weight).ok());
        }
      }
    }
    prefix.SortChildren();
    BfsFinderOptions bopt;
    bopt.k = k;
    bopt.l = l;
    auto batch = BfsStableFinder(bopt).Find(prefix);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(online.TopK().size(), batch.value().paths.size())
        << "after interval " << i;
    for (size_t r = 0; r < online.TopK().size(); ++r) {
      ASSERT_EQ(online.TopK()[r].nodes, batch.value().paths[r].nodes)
          << "after interval " << i << " rank " << r;
      ASSERT_EQ(online.TopK()[r].weight, batch.value().paths[r].weight);
    }
  }
}

TEST(OnlineFinderTest, StreamingEqualsBatchNoGap) {
  ReplayAndCheck(6, 6, 2, 0, 3, 2, 7);
}

TEST(OnlineFinderTest, StreamingEqualsBatchWithGap) {
  ReplayAndCheck(6, 5, 2, 1, 4, 3, 11);
}

TEST(OnlineFinderTest, StreamingEqualsBatchLongerPaths) {
  ReplayAndCheck(8, 4, 2, 2, 5, 4, 13);
}

TEST(OnlineFinderTest, ApiValidation) {
  OnlineStableFinder online(OnlineFinderOptions{});
  EXPECT_FALSE(online.AddNode().ok());  // No interval open.
  EXPECT_FALSE(online.EndInterval().ok());
  online.BeginInterval();
  auto a = online.AddNode();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(online.EndInterval().ok());

  online.BeginInterval();
  auto b = online.AddNode();
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(online.AddEdge(b.value(), a.value(), 0.5).ok());  // Backward.
  EXPECT_FALSE(online.AddEdge(a.value(), b.value(), 1.5).ok());  // Weight.
  EXPECT_FALSE(online.AddEdge(a.value(), 99, 0.5).ok());
  EXPECT_TRUE(online.AddEdge(a.value(), b.value(), 0.5).ok());
  ASSERT_TRUE(online.EndInterval().ok());
  EXPECT_EQ(online.interval_count(), 2u);
  EXPECT_EQ(online.node_count(), 2u);
}

TEST(OnlineFinderTest, GapBoundEnforced) {
  OnlineFinderOptions opt;
  opt.gap = 0;
  OnlineStableFinder online(opt);
  online.BeginInterval();
  auto a = online.AddNode();
  ASSERT_TRUE(online.EndInterval().ok());
  online.BeginInterval();
  ASSERT_TRUE(online.EndInterval().ok());
  online.BeginInterval();
  auto c = online.AddNode();
  // a is 2 intervals back; with g = 0 only 1 interval is allowed.
  EXPECT_FALSE(online.AddEdge(a.value(), c.value(), 0.5).ok());
  ASSERT_TRUE(online.EndInterval().ok());
}

TEST(OnlineFinderTest, IoPerIntervalIsWindowBounded) {
  // Integrating interval i reads only the g+1-interval window, not all
  // past intervals: total reads grow linearly, not quadratically.
  const uint32_t m = 10, n = 5;
  ClusterGraph full = MakeRandomGraph(m, n, 2, 0, 5);
  OnlineFinderOptions opt;
  opt.k = 3;
  opt.l = 2;
  opt.gap = 0;
  OnlineStableFinder online(opt);
  uint64_t prev_reads = 0;
  uint64_t max_delta = 0;
  for (uint32_t i = 0; i < m; ++i) {
    online.BeginInterval();
    for (size_t j = 0; j < n; ++j) ASSERT_TRUE(online.AddNode().ok());
    for (NodeId c : full.IntervalNodes(i)) {
      for (const ClusterGraphEdge& pe : full.Parents(c)) {
        ASSERT_TRUE(online.AddEdge(pe.target, c, pe.weight).ok());
      }
    }
    ASSERT_TRUE(online.EndInterval().ok());
    max_delta = std::max(max_delta, online.io().page_reads - prev_reads);
    prev_reads = online.io().page_reads;
  }
  // Window (g+1=1 interval) + current interval = 2n reads per step.
  EXPECT_LE(max_delta, 2ull * n);
}

}  // namespace
}  // namespace stabletext
