// Affinity measures and the threshold similarity join (Section 4 / [11]):
// hand-computed values, metric properties, join == brute-force join across
// randomized cluster sets and thresholds.

#include <gtest/gtest.h>

#include <tuple>

#include "affinity/similarity_join.h"
#include "util/random.h"

namespace stabletext {
namespace {

Cluster MakeCluster(std::vector<KeywordId> keywords, uint32_t interval = 0) {
  Cluster c;
  c.interval = interval;
  c.keywords.assign(keywords.begin(), keywords.end());
  std::sort(c.keywords.begin(), c.keywords.end());
  return c;
}

TEST(AffinityTest, IntersectionSize) {
  Cluster a = MakeCluster({1, 2, 3, 4});
  Cluster b = MakeCluster({3, 4, 5});
  EXPECT_EQ(KeywordIntersectionSize(a, b), 2u);
  EXPECT_EQ(KeywordIntersectionSize(a, a), 4u);
  EXPECT_EQ(KeywordIntersectionSize(a, MakeCluster({9})), 0u);
  EXPECT_EQ(KeywordIntersectionSize(a, MakeCluster({})), 0u);
}

TEST(AffinityTest, JaccardValues) {
  Cluster a = MakeCluster({1, 2, 3, 4});
  Cluster b = MakeCluster({3, 4, 5});
  // |∩| = 2, |∪| = 5.
  EXPECT_DOUBLE_EQ(ClusterAffinity(a, b, AffinityMeasure::kJaccard), 0.4);
  EXPECT_DOUBLE_EQ(ClusterAffinity(a, a, AffinityMeasure::kJaccard), 1.0);
  EXPECT_DOUBLE_EQ(
      ClusterAffinity(a, MakeCluster({7}), AffinityMeasure::kJaccard), 0.0);
}

TEST(AffinityTest, OverlapValues) {
  Cluster a = MakeCluster({1, 2, 3, 4});
  Cluster b = MakeCluster({3, 4, 5});
  // |∩| = 2, min size = 3.
  EXPECT_DOUBLE_EQ(ClusterAffinity(a, b, AffinityMeasure::kOverlap),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ClusterAffinity(b, b, AffinityMeasure::kOverlap), 1.0);
}

TEST(AffinityTest, IntersectionMeasureIsRaw) {
  Cluster a = MakeCluster({1, 2, 3, 4});
  Cluster b = MakeCluster({3, 4, 5});
  EXPECT_DOUBLE_EQ(ClusterAffinity(a, b, AffinityMeasure::kIntersection),
                   2.0);
}

TEST(AffinityTest, WeightedJaccardValues) {
  Cluster a;
  a.keywords = {1, 2, 3};
  a.edges = {{1, 2, 0.8}, {2, 3, 0.4}};
  Cluster b;
  b.keywords = {1, 2, 4};
  b.edges = {{1, 2, 0.6}, {2, 4, 0.5}};
  // Shared edge (1,2): min 0.6, max 0.8; unmatched 0.4 + 0.5.
  const double expected = 0.6 / (0.8 + 0.4 + 0.5);
  EXPECT_DOUBLE_EQ(
      ClusterAffinity(a, b, AffinityMeasure::kWeightedJaccard), expected);
  EXPECT_DOUBLE_EQ(
      ClusterAffinity(a, a, AffinityMeasure::kWeightedJaccard), 1.0);
}

// Cluster sizes at the SIMD register boundaries (16 and 32 elements, ±1):
// the affinity values must not depend on whether the intersection kernel
// takes the vector path, the scalar tail, or both. Compares the dispatched
// result against a hand-maintained merge count.
TEST(AffinityTest, SimdRegisterBoundarySizes) {
  Rng rng(160032);
  for (size_t na : {15u, 16u, 17u, 31u, 32u, 33u}) {
    for (size_t nb : {15u, 16u, 17u, 31u, 32u, 33u}) {
      std::vector<KeywordId> ka, kb;
      for (size_t idx : rng.SampleWithoutReplacement(96, na)) {
        ka.push_back(static_cast<KeywordId>(idx));
      }
      for (size_t idx : rng.SampleWithoutReplacement(96, nb)) {
        kb.push_back(static_cast<KeywordId>(idx));
      }
      Cluster a = MakeCluster(ka), b = MakeCluster(kb);
      size_t expected = 0, i = 0, j = 0;
      while (i < a.keywords.size() && j < b.keywords.size()) {
        if (a.keywords[i] < b.keywords[j]) {
          ++i;
        } else if (b.keywords[j] < a.keywords[i]) {
          ++j;
        } else {
          ++expected, ++i, ++j;
        }
      }
      ASSERT_EQ(KeywordIntersectionSize(a, b), expected)
          << "na=" << na << " nb=" << nb;
      const auto inter = KeywordIntersection(a, b);
      ASSERT_EQ(inter.size(), expected);
      EXPECT_TRUE(std::is_sorted(inter.begin(), inter.end()));
      const double denom = static_cast<double>(
          a.keywords.size() + b.keywords.size() - expected);
      EXPECT_DOUBLE_EQ(ClusterAffinity(a, b, AffinityMeasure::kJaccard),
                       denom == 0 ? 0.0 : expected / denom);
    }
  }
}

TEST(AffinityTest, SymmetryAndRange) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<KeywordId> ka, kb;
    for (KeywordId v = 0; v < 20; ++v) {
      if (rng.NextBool(0.4)) ka.push_back(v);
      if (rng.NextBool(0.4)) kb.push_back(v);
    }
    if (ka.empty() || kb.empty()) continue;
    Cluster a = MakeCluster(ka), b = MakeCluster(kb);
    for (auto measure :
         {AffinityMeasure::kJaccard, AffinityMeasure::kOverlap,
          AffinityMeasure::kIntersection}) {
      const double ab = ClusterAffinity(a, b, measure);
      const double ba = ClusterAffinity(b, a, measure);
      ASSERT_DOUBLE_EQ(ab, ba);
      ASSERT_GE(ab, 0.0);
      if (measure != AffinityMeasure::kIntersection) {
        ASSERT_LE(ab, 1.0);
      }
    }
  }
}

TEST(AffinityTest, MeasureNames) {
  EXPECT_STREQ(AffinityMeasureName(AffinityMeasure::kJaccard), "jaccard");
  EXPECT_STREQ(AffinityMeasureName(AffinityMeasure::kIntersection),
               "intersection");
  EXPECT_STREQ(AffinityMeasureName(AffinityMeasure::kOverlap), "overlap");
  EXPECT_STREQ(AffinityMeasureName(AffinityMeasure::kWeightedJaccard),
               "weighted-jaccard");
}

std::vector<Cluster> RandomClusters(size_t count, size_t vocab,
                                    double density, Rng* rng) {
  std::vector<Cluster> out;
  for (size_t i = 0; i < count; ++i) {
    std::vector<KeywordId> kws;
    for (KeywordId v = 0; v < vocab; ++v) {
      if (rng->NextBool(density)) kws.push_back(v);
    }
    if (kws.empty()) kws.push_back(static_cast<KeywordId>(i % vocab));
    out.push_back(MakeCluster(kws));
  }
  return out;
}

class SimilarityJoinSweepTest
    : public ::testing::TestWithParam<std::tuple<double, AffinityMeasure>> {
};

TEST_P(SimilarityJoinSweepTest, JoinMatchesBruteForce) {
  const auto [theta, measure] = GetParam();
  Rng rng(static_cast<uint64_t>(theta * 1000) + 17);
  for (int trial = 0; trial < 10; ++trial) {
    auto left = RandomClusters(30, 40, 0.2, &rng);
    auto right = RandomClusters(25, 40, 0.2, &rng);
    AffinityOptions opt;
    opt.theta = theta;
    opt.measure = measure;
    SimilarityJoin join(opt);
    SimilarityJoinStats stats;
    auto fast = join.Join(left, right, &stats);
    auto slow = join.JoinBruteForce(left, right);
    ASSERT_EQ(fast.size(), slow.size()) << "theta=" << theta;
    for (size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].left, slow[i].left);
      ASSERT_EQ(fast[i].right, slow[i].right);
      ASSERT_DOUBLE_EQ(fast[i].affinity, slow[i].affinity);
    }
    EXPECT_EQ(stats.result_pairs, fast.size());
    EXPECT_LE(stats.result_pairs, stats.candidate_pairs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimilarityJoinSweepTest,
    ::testing::Combine(
        ::testing::Values(0.05, 0.1, 0.3, 0.6),
        ::testing::Values(AffinityMeasure::kJaccard,
                          AffinityMeasure::kOverlap,
                          AffinityMeasure::kIntersection)),
    [](const auto& info) {
      return std::string("theta") +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_" +
             AffinityMeasureName(std::get<1>(info.param));
    });

TEST(SimilarityJoinTest, PrefixFilterPrunesCandidates) {
  Rng rng(23);
  auto left = RandomClusters(100, 200, 0.05, &rng);
  auto right = RandomClusters(100, 200, 0.05, &rng);
  AffinityOptions opt;
  opt.theta = 0.5;  // High threshold: short prefixes.
  opt.measure = AffinityMeasure::kJaccard;
  SimilarityJoin join(opt);
  SimilarityJoinStats stats;
  auto result = join.Join(left, right, &stats);
  EXPECT_LT(stats.candidate_pairs, 100ull * 100ull);
  // Exactness regardless.
  EXPECT_EQ(result.size(), join.JoinBruteForce(left, right).size());
}

// Pins the threshold boundary documented in similarity_join.h: the join
// keeps affinity STRICTLY GREATER than theta, while the Jaccard prefix
// filter is derived for ">= theta". A pair at exactly theta must survive
// the filter (it is a candidate) and be rejected by verification — in
// both Join and JoinBruteForce.
TEST(SimilarityJoinTest, ThetaBoundary) {
  // J(a, b) = |{2,3}| / |{1,2,3,4}| = 0.5 exactly.
  Cluster a = MakeCluster({1, 2, 3});
  Cluster b = MakeCluster({2, 3, 4});
  // J(a, c) = 3/4 = 0.75: strictly above, must stay.
  Cluster c = MakeCluster({1, 2, 3, 4});
  AffinityOptions opt;
  opt.theta = 0.5;
  opt.measure = AffinityMeasure::kJaccard;
  SimilarityJoin join(opt);

  SimilarityJoinStats stats;
  auto result = join.Join({a}, {b, c}, &stats);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].right, 1u);  // c, not the exact-theta pair with b.
  EXPECT_DOUBLE_EQ(result[0].affinity, 0.75);
  // The exact-theta pair passed the prefix filter — it was evaluated.
  EXPECT_EQ(stats.candidate_pairs, 2u);
  EXPECT_EQ(stats.result_pairs, 1u);

  auto brute = join.JoinBruteForce({a}, {b, c});
  ASSERT_EQ(brute.size(), 1u);
  EXPECT_EQ(brute[0].right, 1u);

  // Nudge theta just below 0.5: the boundary pair is now strictly above
  // and must appear in both implementations.
  opt.theta = 0.5 - 1e-9;
  SimilarityJoin loose(opt);
  EXPECT_EQ(loose.Join({a}, {b, c}).size(), 2u);
  EXPECT_EQ(loose.JoinBruteForce({a}, {b, c}).size(), 2u);
}

TEST(SimilarityJoinTest, EmptyInputs) {
  SimilarityJoin join;
  EXPECT_TRUE(join.Join({}, {}).empty());
  Rng rng(1);
  auto some = RandomClusters(5, 10, 0.3, &rng);
  EXPECT_TRUE(join.Join(some, {}).empty());
  EXPECT_TRUE(join.Join({}, some).empty());
}

}  // namespace
}  // namespace stabletext
