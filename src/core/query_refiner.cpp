#include "core/query_refiner.h"

#include <algorithm>
#include <unordered_map>

#include "core/pipeline.h"
#include "text/porter_stemmer.h"
#include "util/strings.h"

namespace stabletext {

QueryRefiner::QueryRefiner(const StableClusterPipeline* pipeline)
    : engine_(&pipeline->engine()) {}

std::vector<Refinement> QueryRefiner::Suggest(const std::string& query,
                                              uint32_t interval,
                                              size_t max_suggestions)
    const {
  std::vector<Refinement> out;
  if (interval >= engine_->interval_count()) return out;
  std::string lowered = query;
  ToLowerAscii(&lowered);
  const std::string stem = PorterStemmer::Stem(lowered);
  const KeywordId id = engine_->dict().Lookup(stem);
  if (id == kInvalidKeyword) return out;

  // Strongest correlation per co-clustered keyword.
  std::unordered_map<KeywordId, double> best;
  const IntervalResult& result = engine_->interval_result(interval);
  for (const Cluster& cluster : result.clusters) {
    if (!cluster.Contains(id)) continue;
    // Direct edges first: the strongest correlations.
    for (const WeightedEdge& e : cluster.edges) {
      if (e.u == id || e.v == id) {
        const KeywordId other = e.u == id ? e.v : e.u;
        auto [it, inserted] = best.emplace(other, e.weight);
        if (!inserted) it->second = std::max(it->second, e.weight);
      }
    }
    // Cluster co-members without a direct edge still qualify ("the rest
    // of the keywords in that cluster are good candidates"), scored by
    // the cluster's mean edge weight.
    const double mean =
        cluster.edges.empty()
            ? 0
            : cluster.TotalEdgeWeight() /
                  static_cast<double>(cluster.edges.size());
    for (KeywordId other : cluster.keywords) {
      if (other == id) continue;
      best.emplace(other, mean);  // Keeps a direct-edge score if present.
    }
  }

  out.reserve(best.size());
  for (const auto& [kw, score] : best) {
    out.push_back(Refinement{engine_->dict().Word(kw), score, interval});
  }
  std::sort(out.begin(), out.end(),
            [](const Refinement& a, const Refinement& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.keyword < b.keyword;
            });
  if (out.size() > max_suggestions) out.resize(max_suggestions);
  return out;
}

}  // namespace stabletext
