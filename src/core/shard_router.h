// Shard routing: the stable partition function behind ShardedEngine.
//
// Documents are routed by their minimum keyword (Document::keywords is
// distinct and sorted, so that is keywords.front()) through a fixed
// FNV-1a 64 hash mod the shard count. The function is a pure property of
// the keyword bytes — independent of ingest order, thread count, shard
// snapshot state, or process lifetime — so the same corpus always lands
// on the same shards and a recovered fleet re-routes identically.
//
// Statistics note (why routing is by keyword, and when shard-local
// clustering equals global clustering): the chi-squared and rho pruning
// statistics of Section 3 depend on per-interval keyword counts a_u,
// pair counts a_uv, and the interval's total document count n. Routing
// keeps whole documents, so a keyword's counts split across shards in
// general; on a partition-respecting corpus — every document's keywords
// hash to a single shard — each keyword's full count lands on one shard
// and, with the global document count override
// (Engine::IngestDocumentsGlobal), the shard-local statistics equal the
// global ones exactly. That is the correctness contract
// sharded_engine_test.cpp pins. Arbitrary corpora get a documented
// relaxation instead (see README "Sharding").

#ifndef STABLETEXT_CORE_SHARD_ROUTER_H_
#define STABLETEXT_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace stabletext {

/// FNV-1a 64-bit over the keyword bytes. Stable across platforms and
/// releases: persisted shard directories depend on it.
uint64_t ShardHashKeyword(std::string_view keyword);

/// Shard owning `keyword` in an N-shard fleet. `shards` must be >= 1.
uint32_t ShardOfKeyword(std::string_view keyword, uint32_t shards);

/// Shard a document routes to: the shard of its minimum (first) keyword.
/// Keyword-free documents go to shard 0 — they carry no co-occurrence
/// signal, but every shard must still see the tick boundary.
uint32_t ShardOfDocument(const Document& document, uint32_t shards);

/// One tick's documents, fanned out per shard. Order within each shard
/// preserves the input order (determinism: shard 0 of a 1-shard fleet is
/// byte-identical to an unsharded engine).
struct RoutedTick {
  std::vector<std::vector<Document>> shards;
  uint64_t total_documents = 0;
};

/// Routes one tick. Every shard gets an entry (possibly empty): shards
/// advance their epoch in lockstep even on ticks they receive nothing.
RoutedTick RouteTick(const std::vector<Document>& documents,
                     uint32_t shards);

}  // namespace stabletext

#endif  // STABLETEXT_CORE_SHARD_ROUTER_H_
