// ShardedEngine: N independent Engines behind one ingest/query facade —
// the multi-writer scale-out of the serving engine. The keyword space is
// partitioned by a stable hash (core/shard_router.h): each arriving tick
// is routed once on the caller thread and then fanned out, one task per
// shard, onto an outer thread pool where every shard clusters, joins and
// publishes its partition concurrently. There is no shared writer lock
// anywhere on the fan-out path: a shard's tick touches only that shard's
// Engine (whose single-writer discipline the per-engine ThreadRole
// capability still checks), so N writers really do commit in parallel.
// The only synchronization is the barrier at the end of the tick, where
// the facade waits for every shard, verifies the statuses, and publishes
// one ShardedSnapshot — so the sharded epoch stays a single monotone
// sequence and a reader never observes shard A at tick t with shard B at
// tick t-1.
//
// Statistics: every shard runs the Section 3 chi-squared/rho tests
// against the tick-global document count (Engine::IngestDocumentsGlobal),
// not its partition's size, so partitioning does not shift the pruning
// thresholds. On a partition-respecting corpus (every document's
// keywords hash to one shard) the shard-local counts equal the global
// ones and clustering is exact; see shard_router.h for the contract and
// README "Sharding" for the relaxation on arbitrary corpora.
//
// Queries scatter-gather: each shard answers on its pinned snapshot at
// the consistent epoch vector, and the per-shard best-first chain lists
// are combined by the TA-style threshold merge (stable/shard_merge.h),
// which stops pulling from a shard once its next-best possible score is
// at or below the global k-th. ShardedQueryResult::merge carries the
// measured early-termination counters.
//
// shards == 1 routes everything to shard 0 in arrival order and runs on
// the caller thread: byte-identical to a plain Engine (pinned by
// sharded_engine_test.cpp).

#ifndef STABLETEXT_CORE_SHARDED_ENGINE_H_
#define STABLETEXT_CORE_SHARDED_ENGINE_H_

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/shard_router.h"
#include "stable/shard_merge.h"
#include "util/annotated_mutex.h"
#include "util/thread_pool.h"

namespace stabletext {

/// Options for the sharded facade.
struct ShardedEngineOptions {
  /// Number of independent engine shards (>= 1).
  uint32_t shards = 1;
  /// Per-shard engine template. Applied to every shard with two
  /// derivations: with shards > 1 each shard runs threads = 1 (the outer
  /// pool IS the parallelism — one writer task per shard), and
  /// durability.dir becomes "<dir>/shard-<i>". shards == 1 uses the
  /// template verbatim.
  EngineOptions engine;
};

/// The consistent read view of the fleet at one sharded epoch: every
/// shard's snapshot at the same committed-interval count. Immutable;
/// hold the shared_ptr to pin the whole vector.
struct ShardedSnapshot {
  uint64_t epoch = 0;
  std::vector<std::shared_ptr<const GraphSnapshot>> shards;
};

/// \brief Answer to one scatter-gather query.
///
/// `chains[i]` came from shard `chain_shard[i]`; its node ids (and the
/// borrowed Cluster pointers) are local to that shard. Render through
/// ShardedEngine::RenderChain(chain, shard).
struct ShardedQueryResult {
  std::vector<StableClusterChain> chains;  ///< Merged top-k, best first.
  std::vector<uint32_t> chain_shard;       ///< Producing shard per chain.
  uint64_t epoch = 0;
  /// True when every shard answered from warm streaming-finder state.
  bool warm_online = false;
  /// Threshold-merge early-termination counters for this query.
  ShardMergeStats merge;
};

/// \brief N-shard multi-writer engine with threshold-merged queries.
///
/// Thread contract mirrors Engine: Ingest* are writers and must be
/// externally exclusive with each other; Query/QueryAt/snapshot/stats/
/// shard_stats/RenderChain may run concurrently with them from any
/// number of threads. Each query reads one published ShardedSnapshot —
/// a consistent epoch vector. The writer side is machine-checked with
/// the same ThreadRole capability pattern as Engine.
class ShardedEngine {
 public:
  /// Non-durable construction. Durable fleets must be built with
  /// Recover() (same rule as Engine: a constructor cannot report a
  /// failed recovery).
  explicit ShardedEngine(ShardedEngineOptions options = {});

  /// \brief Opens (or creates) a durable fleet from its data directory.
  ///
  /// Each shard recovers from "<dir>/shard-<i>" independently; a crash
  /// between the per-shard commits and the barrier can leave shards at
  /// most one epoch apart, so recovery truncates every shard to the
  /// fleet's minimum common committed epoch
  /// (DurabilityOptions::recover_epoch_cap) and the restored fleet
  /// resumes from one consistent epoch vector. The shard count is
  /// persisted in "<dir>/SHARDS" and validated on reopen — recovering a
  /// directory with a different --shards value is an error, not a
  /// silent re-partition.
  static Result<std::unique_ptr<ShardedEngine>> Recover(
      ShardedEngineOptions options);

  /// Tokenizes, routes and commits one tick of raw posts across every
  /// shard. Returns the interval index (identical on all shards).
  Result<uint32_t> IngestText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Result<uint32_t> IngestDocuments(const std::vector<Document>& documents);

  /// Ingests a batch of ticks in order. While the shards of tick t run
  /// on the pool, the caller thread tokenizes and routes tick t+1, then
  /// joins the barrier. Per-tick commit semantics match IngestText;
  /// `on_tick` runs after each tick's sharded publish.
  Result<uint32_t> IngestTicks(
      const std::vector<std::vector<std::string>>& ticks,
      const Engine::TickCallback& on_tick = nullptr);

  /// Streams a corpus file (CorpusWriter format; intervals contiguous
  /// from the fleet's next interval) through IngestTicks.
  Result<uint32_t> IngestCorpusFile(
      const std::filesystem::path& path,
      const Engine::TickCallback& on_tick = nullptr);

  /// Scatter-gathers `query` on the latest published epoch vector.
  Result<ShardedQueryResult> Query(const stabletext::Query& query) const;

  /// Scatter-gathers `query` on a pinned epoch vector. Per-shard answers
  /// go through each shard's query cache exactly like Engine::QueryAt.
  Result<ShardedQueryResult> QueryAt(
      const std::shared_ptr<const ShardedSnapshot>& snap,
      const stabletext::Query& query) const;

  /// The latest published epoch vector. Never null; epoch 0 before the
  /// first ingest.
  std::shared_ptr<const ShardedSnapshot> snapshot() const;

  /// Invoked on the writer thread after every sharded publish (barrier
  /// commit), with the vector just made visible. Same O(1) rule as
  /// Engine::PublishCallback.
  using PublishCallback =
      std::function<void(const std::shared_ptr<const ShardedSnapshot>&)>;

  /// Installs (or clears) the publish callback. Writer-side: must not
  /// race Ingest*.
  void SetPublishCallback(PublishCallback cb);

  /// Fleet-aggregate stats: counters are summed across shards;
  /// publish_ns and checkpoint_ns report the slowest shard (the barrier
  /// pays for the maximum, not the sum); intervals is the sharded epoch.
  EngineStats stats() const;

  /// Per-shard point-in-time stats, shard order.
  std::vector<EngineStats> shard_stats() const;

  uint32_t interval_count() const {
    return static_cast<uint32_t>(snapshot()->epoch);
  }
  uint32_t shard_count() const {
    return static_cast<uint32_t>(engines_.size());
  }
  /// The underlying shard engine (tests, introspection). Writer-side
  /// rules of Engine's borrowed accessors apply.
  Engine* shard(uint32_t i) { return engines_[i].get(); }
  const Engine* shard(uint32_t i) const { return engines_[i].get(); }

  /// Renders a merged chain through its producing shard's word table.
  std::string RenderChain(const StableClusterChain& chain, uint32_t shard,
                          size_t max_keywords = 8) const;

 private:
  ShardedEngine(ShardedEngineOptions options, bool durable);

  /// Per-shard EngineOptions for shard `i` (threads/durability.dir
  /// derivations; see ShardedEngineOptions::engine).
  static EngineOptions ShardOptions(const ShardedEngineOptions& options,
                                    uint32_t i);

  Result<uint32_t> IngestTicksLocked(
      const std::vector<std::vector<std::string>>& ticks,
      const Engine::TickCallback& on_tick) REQUIRES(writer_role_);
  /// Fans one routed tick to every shard (pool barrier), verifies the
  /// statuses and publishes the new epoch vector.
  Result<uint32_t> CommitTick(RoutedTick routed) REQUIRES(writer_role_);
  /// The fan-out half of CommitTick: one pool task per shard, outputs
  /// written to per-shard slots. `routed` must outlive the barrier.
  void SubmitTick(const RoutedTick& routed,
                  std::vector<std::future<void>>* futures,
                  std::vector<Status>* statuses,
                  std::vector<uint32_t>* intervals) REQUIRES(writer_role_);
  /// The barrier half: waits for every shard (stealing queued tasks),
  /// verifies statuses, publishes the new epoch vector.
  Result<uint32_t> BarrierTick(std::vector<std::future<void>>* futures,
                               const std::vector<Status>& statuses,
                               const std::vector<uint32_t>& intervals)
      REQUIRES(writer_role_);
  /// Collects the shards' current snapshots into a ShardedSnapshot and
  /// atomically publishes it (then fires on_publish_).
  void PublishSharded() REQUIRES(writer_role_);
  /// Tokenizes one tick of raw posts (caller thread; deterministic
  /// document order) and routes it.
  RoutedTick TokenizeAndRoute(uint32_t interval,
                              const std::vector<std::string>& posts) const;

  // Single-writer capability for the facade's own writer state; the
  // shard engines carry their own (asserted per shard task).
  ThreadRole writer_role_;

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;
  // Outer fan-out pool, one worker per shard; null when shards == 1
  // (everything runs on the caller thread — the byte-identity path).
  std::unique_ptr<ThreadPool> pool_;

  // Published epoch vector; swapped with std::atomic_store at every
  // barrier commit.
  std::shared_ptr<const ShardedSnapshot> snapshot_;

  PublishCallback on_publish_ GUARDED_BY(writer_role_);
  // Non-OK after a tick failed on any shard: the fleet's epoch vector
  // can no longer advance consistently, so further ingest is refused
  // while queries keep serving the last published vector.
  Status broken_ GUARDED_BY(writer_role_);
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_SHARDED_ENGINE_H_
