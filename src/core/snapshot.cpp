#include "core/snapshot.h"

#include "util/strings.h"

namespace stabletext {

Result<std::vector<StableClusterChain>> GraphSnapshot::ToChains(
    const std::vector<StablePath>& paths) const {
  std::vector<StableClusterChain> chains;
  chains.reserve(paths.size());
  for (const StablePath& path : paths) {
    StableClusterChain chain;
    chain.path = path;
    for (NodeId node : path.nodes) {
      if (node >= graph->node_count()) {
        // A caller-supplied path naming nodes this epoch has never
        // committed is a bad argument (e.g. a path carried over from a
        // newer epoch), not an engine invariant violation.
        return Status::InvalidArgument(
            "path node outside the snapshot epoch");
      }
      chain.clusters.push_back(NodeCluster(node));
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::string GraphSnapshot::RenderChain(const StableClusterChain& chain,
                                       size_t max_keywords) const {
  std::string out = StringPrintf(
      "stable cluster: length=%u weight=%.3f stability=%.3f\n",
      chain.path.length, chain.path.weight, chain.path.stability());
  for (const Cluster* cluster : chain.clusters) {
    // Same rendering as Cluster::ToString, off the snapshot word table
    // (every keyword id of a committed cluster is below this epoch's
    // vocabulary size).
    std::string keywords = "{";
    for (size_t i = 0;
         i < cluster->keywords.size() && i < max_keywords; ++i) {
      if (i) keywords += ", ";
      keywords += words.Word(cluster->keywords[i]);
    }
    if (cluster->keywords.size() > max_keywords) keywords += ", ...";
    keywords += "}";
    out += StringPrintf("  interval %u: %s\n", cluster->interval,
                        keywords.c_str());
  }
  return out;
}

Result<QueryResult> QuerySnapshot(const GraphSnapshot& snapshot,
                                  const FinderQuery& query) {
  if (query.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  QueryResult out;
  out.epoch = snapshot.epoch;
  // Serving semantics: asking for chains of (minimum) length l before
  // l+1 intervals exist is not an error, the stream just has no such
  // chains yet — in either mode, including the epoch-0 (empty) snapshot.
  // (The graph-level RunFinder keeps strict validation.)
  if (query.l != 0 && query.l >= snapshot.epoch) {
    return out;
  }
  const bool diversify =
      query.diversify_prefix > 0 || query.diversify_suffix > 0;
  if (query.algorithm == FinderAlgorithm::kOnline &&
      query.mode == FinderMode::kKlStable && !diversify) {
    // The stream simply has no length-l paths yet: an empty answer, not
    // an error — the monitor keeps polling as intervals arrive.
    if (snapshot.epoch < 2) return out;
    const uint32_t l = query.l == 0
                           ? static_cast<uint32_t>(snapshot.epoch - 1)
                           : query.l;
    if (snapshot.has_online && snapshot.online_k == query.k &&
        snapshot.online_l == l) {
      // Warm hit: the writer already paid the marginal Section 4.6 work
      // at ingest; the answer is a copy of the published top-k.
      out.warm_online = true;
      out.finder.paths = snapshot.online_topk;
      ST_ASSIGN_OR_RETURN(out.chains, snapshot.ToChains(out.finder.paths));
      return out;
    }
    // Cold: fall through to the registry replay below (identical paths,
    // full replay cost). Engine records a warm-up hint so the writer can
    // serve this configuration from its warm state after the next tick.
  }
  auto r = RunFinder(*snapshot.graph, query);
  if (!r.ok()) return r.status();
  out.finder = std::move(r).value();
  ST_ASSIGN_OR_RETURN(out.chains, snapshot.ToChains(out.finder.paths));
  return out;
}

}  // namespace stabletext
