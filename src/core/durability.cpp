#include "core/durability.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "storage/paged_file.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace stabletext {

namespace fs = std::filesystem;

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'T', 'C', 'K', 'P', 'T',
                                      '1', '\0'};
constexpr size_t kCheckpointPageSize = 4096;
// Header page layout: magic + u64 epoch + u64 payload_bytes + u32 crc32.
constexpr size_t kHeaderBytes = sizeof(kCheckpointMagic) + 8 + 8 + 4;
static_assert(kHeaderBytes <= kCheckpointPageSize, "header fits a page");

const char kCheckpointPrefix[] = "checkpoint-";
const char kWalPrefix[] = "wal-";

/// Parses "<prefix><decimal>" file names; rejects anything else
/// (including the ".tmp" staging suffix).
bool ParseGeneration(const std::string& name, const char* prefix,
                     uint64_t* epoch) {
  const size_t plen = std::strlen(prefix);
  if (name.size() <= plen || name.compare(0, plen, prefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = plen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *epoch = value;
  return true;
}

Status FsyncDir(const std::string& dir, FaultInjector* faults,
                IoStats* io) {
  if (faults != nullptr) ST_RETURN_IF_ERROR(faults->Charge("dir fsync"));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError("cannot open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed for dir " + dir);
  if (io != nullptr) ++io->fsyncs;
  return Status::OK();
}

}  // namespace

std::string Durability::CheckpointPath(uint64_t epoch) const {
  return (fs::path(options_.dir) /
          (kCheckpointPrefix + std::to_string(epoch)))
      .string();
}

std::string Durability::WalPath(uint64_t epoch) const {
  return (fs::path(options_.dir) / (kWalPrefix + std::to_string(epoch)))
      .string();
}

Result<std::unique_ptr<Durability>> Durability::Open(
    const DurabilityOptions& options, RecoveredState* recovered) {
  if (!options.enabled || options.dir.empty()) {
    return Status::InvalidArgument(
        "durability requires enabled=true and a directory");
  }
  auto d = std::unique_ptr<Durability>(new Durability());
  d->options_ = options;
  d->faults_.fail_after_physical_ops = options.fail_after_physical_ops;

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create durability dir " + options.dir +
                           ": " + ec.message());
  }

  // Survey the generations on disk. Staging files (*.tmp) are from a
  // checkpoint the crash preempted before its rename — never valid state.
  uint64_t newest_checkpoint = 0;
  uint64_t newest_wal = 0;
  bool have_wal = false;
  std::vector<uint64_t> checkpoint_epochs;
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    if (ParseGeneration(name, kCheckpointPrefix, &epoch)) {
      newest_checkpoint = std::max(newest_checkpoint, epoch);
      checkpoint_epochs.push_back(epoch);
    } else if (ParseGeneration(name, kWalPrefix, &epoch)) {
      newest_wal = std::max(newest_wal, epoch);
      have_wal = true;
    } else if (entry.path().extension() == ".tmp") {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
  if (ec) {
    return Status::IOError("cannot list durability dir " + options.dir);
  }
  // A log is only ever created after its base checkpoint's rename landed
  // (or at generation 0, which needs no checkpoint): a newer log with no
  // checkpoint to stand on means durable state vanished.
  if (have_wal && newest_wal > newest_checkpoint) {
    return Status::DataLoss("wal generation " + std::to_string(newest_wal) +
                            " has no checkpoint in " + options.dir);
  }

  // Capped recovery rebases on the newest checkpoint the cap allows;
  // uncapped recovery uses the newest outright.
  const uint64_t cap = options.recover_epoch_cap;
  uint64_t base_checkpoint = newest_checkpoint;
  if (cap != 0) {
    base_checkpoint = 0;
    for (const uint64_t epoch : checkpoint_epochs) {
      if (epoch <= cap) base_checkpoint = std::max(base_checkpoint, epoch);
    }
  }

  recovered->checkpoint_epoch = base_checkpoint;
  recovered->blobs.clear();
  if (base_checkpoint > 0) {
    ST_RETURN_IF_ERROR(
        d->LoadCheckpoint(base_checkpoint, &recovered->blobs));
  }
  const std::string wal_path = d->WalPath(base_checkpoint);
  std::vector<std::string> tail;
  Status scan = WalScanAndTruncate(wal_path, &tail, &d->io_);
  if (!scan.ok() && scan.code() != StatusCode::kNotFound) return scan;
  if (scan.code() == StatusCode::kNotFound && cap != 0 &&
      base_checkpoint < newest_checkpoint) {
    // The two-generation retention promises this log exists whenever a
    // newer checkpoint forced the rebase; its absence is lost state, not
    // a fresh directory.
    return Status::DataLoss("wal generation " +
                            std::to_string(base_checkpoint) +
                            " needed by recovery cap " +
                            std::to_string(cap) + " is missing in " +
                            options.dir);
  }
  // Apply the cap: keep only the records up to it, and make the on-disk
  // log match what was replayed — a later append must follow the capped
  // record, not a discarded one.
  const size_t keep_records =
      cap == 0 ? tail.size()
               : std::min<size_t>(tail.size(),
                                  cap > base_checkpoint
                                      ? cap - base_checkpoint
                                      : 0);
  const bool rewrite = scan.ok() && keep_records < tail.size();
  for (size_t i = 0; i < keep_records; ++i) {
    recovered->blobs.push_back(tail[i]);
  }
  if (rewrite || scan.code() == StatusCode::kNotFound) {
    // Rewrite (or start) the generation: Create truncates, then the kept
    // records are re-appended so the durable log ends exactly at the
    // replayed epoch.
    ST_RETURN_IF_ERROR(d->wal_.Create(wal_path, &d->faults_, &d->io_));
    for (size_t i = 0; i < keep_records; ++i) {
      ST_RETURN_IF_ERROR(
          d->wal_.Append(tail[i].data(), tail[i].size()));
    }
    if (keep_records > 0) ST_RETURN_IF_ERROR(d->wal_.Sync());
  } else {
    ST_RETURN_IF_ERROR(
        d->wal_.OpenForAppend(wal_path, &d->faults_, &d->io_));
  }
  if (cap != 0) {
    // Generations newer than the base describe the discarded future;
    // delete them so a later uncapped Open cannot resurrect it.
    for (const uint64_t epoch : checkpoint_epochs) {
      if (epoch > base_checkpoint) {
        std::error_code ignore;
        fs::remove(d->CheckpointPath(epoch), ignore);
        fs::remove(d->WalPath(epoch), ignore);
      }
    }
  }
  d->wal_epoch_ = base_checkpoint;
  // Keep the previous generation too (capped recovery of a sibling shard
  // may need to rebase behind this one); prune everything older.
  uint64_t previous_checkpoint = 0;
  for (const uint64_t epoch : checkpoint_epochs) {
    if (epoch < base_checkpoint) {
      previous_checkpoint = std::max(previous_checkpoint, epoch);
    }
  }
  d->PruneBelow(previous_checkpoint);
  return d;
}

Status Durability::LogCommit(const std::string& blob) {
  ST_RETURN_IF_ERROR(wal_.Append(blob.data(), blob.size()));
  if (options_.fsync) ST_RETURN_IF_ERROR(wal_.Sync());
  wal_bytes_.fetch_add(8 + blob.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status Durability::LoadCheckpoint(uint64_t epoch,
                                  std::vector<std::string>* blobs) {
  const std::string path = CheckpointPath(epoch);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    // PagedFile::Open would silently create it; a checkpoint we saw in
    // the directory listing but cannot open is lost data.
    return Status::DataLoss("checkpoint vanished: " + path);
  }
  PagedFile file;
  PagedFileOptions opt;
  opt.page_size = kCheckpointPageSize;
  opt.cache_pages = 0;
  ST_RETURN_IF_ERROR(file.Open(path, opt, &io_));
  std::vector<uint8_t> page;
  ST_RETURN_IF_ERROR(file.ReadPage(0, &page));
  if (std::memcmp(page.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint64_t stored_epoch = 0;
  uint64_t payload_bytes = 0;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_epoch, page.data() + 8, 8);
  std::memcpy(&payload_bytes, page.data() + 16, 8);
  std::memcpy(&stored_crc, page.data() + 24, 4);
  if (stored_epoch != epoch) {
    return Status::Corruption("checkpoint " + path + " claims epoch " +
                              std::to_string(stored_epoch));
  }
  std::string payload;
  payload.reserve(payload_bytes);
  for (uint64_t page_no = 1; payload.size() < payload_bytes; ++page_no) {
    ST_RETURN_IF_ERROR(file.ReadPage(page_no, &page));
    const size_t take =
        std::min<size_t>(kCheckpointPageSize, payload_bytes - payload.size());
    payload.append(reinterpret_cast<const char*>(page.data()), take);
  }
  ST_RETURN_IF_ERROR(file.Close());
  if (Crc32(payload.data(), payload.size()) != stored_crc) {
    return Status::DataLoss("checkpoint payload checksum mismatch in " +
                            path);
  }
  // Payload = repeated [u32 len][interval delta blob], interval order.
  size_t offset = 0;
  while (offset < payload.size()) {
    if (offset + 4 > payload.size()) {
      return Status::Corruption("truncated frame in " + path);
    }
    uint32_t len = 0;
    std::memcpy(&len, payload.data() + offset, 4);
    offset += 4;
    if (offset + len > payload.size()) {
      return Status::Corruption("frame overruns payload in " + path);
    }
    blobs->emplace_back(payload.data() + offset, len);
    offset += len;
  }
  return Status::OK();
}

Status Durability::WriteCheckpoint(
    uint64_t epoch,
    const std::function<std::string(uint32_t)>& serialize) {
  WallTimer timer;
  std::string payload;
  for (uint32_t i = 0; i < epoch; ++i) {
    const std::string blob = serialize(i);
    const uint32_t len = static_cast<uint32_t>(blob.size());
    payload.append(reinterpret_cast<const char*>(&len), 4);
    payload.append(blob);
  }
  const std::string final_path = CheckpointPath(epoch);
  const std::string tmp_path = final_path + ".tmp";
  {
    PagedFile file;
    PagedFileOptions opt;
    opt.page_size = kCheckpointPageSize;
    opt.cache_pages = 0;
    opt.truncate = true;
    ST_RETURN_IF_ERROR(file.Open(tmp_path, opt, &io_));
    std::vector<uint8_t> page(kCheckpointPageSize, 0);
    std::memcpy(page.data(), kCheckpointMagic, sizeof(kCheckpointMagic));
    const uint64_t payload_bytes = payload.size();
    const uint32_t crc = Crc32(payload.data(), payload.size());
    std::memcpy(page.data() + 8, &epoch, 8);
    std::memcpy(page.data() + 16, &payload_bytes, 8);
    std::memcpy(page.data() + 24, &crc, 4);
    ST_RETURN_IF_ERROR(faults_.Charge("checkpoint page write"));
    ST_RETURN_IF_ERROR(file.WritePage(0, page.data()));
    uint64_t page_no = 1;
    for (size_t offset = 0; offset < payload.size();
         offset += kCheckpointPageSize, ++page_no) {
      const size_t take =
          std::min(kCheckpointPageSize, payload.size() - offset);
      std::memcpy(page.data(), payload.data() + offset, take);
      std::memset(page.data() + take, 0, kCheckpointPageSize - take);
      ST_RETURN_IF_ERROR(faults_.Charge("checkpoint page write"));
      ST_RETURN_IF_ERROR(file.WritePage(page_no, page.data()));
    }
    ST_RETURN_IF_ERROR(faults_.Charge("checkpoint fsync"));
    ST_RETURN_IF_ERROR(file.Sync());
    ST_RETURN_IF_ERROR(file.Close());
  }
  // The commit point of the checkpoint: rename + directory fsync. Until
  // both land, recovery keeps using the previous generation.
  ST_RETURN_IF_ERROR(faults_.Charge("checkpoint rename"));
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp_path + ": " +
                           ec.message());
  }
  ST_RETURN_IF_ERROR(FsyncDir(options_.dir, &faults_, &io_));
  // Rotate the log: records covered by the checkpoint are pruned by
  // starting a fresh generation. The generation we just rotated away
  // from stays on disk (two-generation retention) so a capped recovery
  // can rebase behind this checkpoint; its predecessor goes.
  const uint64_t previous_generation = wal_epoch_;
  ST_RETURN_IF_ERROR(wal_.Close());
  ST_RETURN_IF_ERROR(wal_.Create(WalPath(epoch), &faults_, &io_));
  wal_epoch_ = epoch;
  PruneBelow(previous_generation);
  checkpoint_ns_.store(static_cast<uint64_t>(timer.ElapsedNanos()),
                       std::memory_order_relaxed);
  return Status::OK();
}

void Durability::PruneBelow(uint64_t keep_epoch) {
  // Best effort: leftovers are harmless (Open picks the highest valid
  // checkpoint) and will be retried at the next checkpoint.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    const bool stale =
        (ParseGeneration(name, kCheckpointPrefix, &epoch) &&
         epoch < keep_epoch) ||
        (ParseGeneration(name, kWalPrefix, &epoch) && epoch < keep_epoch);
    if (stale) {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
}

}  // namespace stabletext
