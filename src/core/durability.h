// Durability: the crash-safety layer behind Engine::Recover. Before every
// epoch publish the engine appends one checksummed record describing the
// committed interval's delta (new keywords, clusters, adjacency edges at
// stored weights) to a write-ahead log and fsyncs; every
// checkpoint_interval epochs the whole committed prefix is written as a
// chunk checkpoint through PagedFile and the covered log is pruned by
// rotation. Open() restores the latest checkpoint plus the valid log tail
// — a torn or corrupt tail is truncated, never replayed — so recovery
// always lands on the published epoch or the one whose WAL record was
// synced but whose publish the crash preempted.
//
// Directory layout:
//   checkpoint-<E>   full serialized state at epoch E (PagedFile pages,
//                    CRC-protected header; written as .tmp then renamed)
//   wal-<E>          log of interval deltas for epochs > E
// The newest TWO generations are kept; anything older is pruned after a
// checkpoint rename lands (leftovers are harmless — Open picks the
// highest valid checkpoint). Keeping the previous generation lets a
// capped recovery (DurabilityOptions::recover_epoch_cap, the sharded
// min-common-epoch truncation) fall back behind a checkpoint the cap
// disallows.
//
// Threading: a Durability object is owned by the engine's writer side;
// LogCommit/WriteCheckpoint run only under Engine's writer_role_
// capability (every caller is a REQUIRES(writer_role_) method, checked
// by Clang -Wthread-safety at the engine layer), so this class needs no
// locks of its own. The io()/wal_bytes()/checkpoint_ns() counters are
// atomics because reader-side stats() samples them concurrently.

#ifndef STABLETEXT_CORE_DURABILITY_H_
#define STABLETEXT_CORE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "storage/wal.h"
#include "util/status.h"

namespace stabletext {

/// Durability knobs, embedded in EngineOptions.
struct DurabilityOptions {
  /// Master switch. Off = the engine never touches disk (the untouched
  /// fast path); on = construct the engine with Engine::Recover.
  bool enabled = false;
  /// Directory holding the log and checkpoints (created if missing).
  std::string dir;
  /// Write a full checkpoint (and prune the log) every this many epochs.
  /// 0 = log only, never checkpoint.
  uint32_t checkpoint_interval = 16;
  /// fsync the log after every commit record. Turning this off trades
  /// the durability guarantee for append throughput (benchmarks).
  bool fsync = true;
  /// Crash injection (tests): after this many durability-layer physical
  /// ops (log chunk writes, checkpoint page writes, fsyncs, renames),
  /// every further op fails with IOError. 0 disables. The budget is
  /// shared across the log and checkpoint paths, so a "crash" can land
  /// mid-record or mid-checkpoint.
  uint64_t fail_after_physical_ops = 0;
  /// When non-zero, recovery stops at this committed-interval count even
  /// if more durable state exists: Open() picks the newest checkpoint at
  /// or below the cap, replays the log only up to it, physically rewrites
  /// the log so the discarded records are gone, and deletes every newer
  /// generation. ShardedEngine uses this to truncate shards that raced
  /// ahead of a mid-tick crash back to the fleet's minimum common epoch;
  /// the two-generation retention below guarantees a base checkpoint at
  /// or below any cap within one checkpoint interval of the newest.
  /// 0 (the default) recovers everything, the ordinary single-engine
  /// behavior.
  uint64_t recover_epoch_cap = 0;
};

/// \brief Owns the WAL and checkpoint files of one engine's directory.
///
/// Writer-side only: every method is called from the ingest thread. The
/// byte counters are atomics so Engine::stats() can overlay them from
/// reader threads.
class Durability {
 public:
  /// What Open() recovered: the interval-delta blobs to replay, in
  /// interval order (checkpoint payload first, then the log tail).
  struct RecoveredState {
    uint64_t checkpoint_epoch = 0;  ///< Intervals covered by the checkpoint.
    std::vector<std::string> blobs;
  };

  /// Opens (creating if necessary) the durability directory, loads the
  /// newest checkpoint, scans-and-truncates its log, and leaves the log
  /// open for appends. Unreadable state that fsync promised was durable
  /// (a corrupt checkpoint, a log newer than every checkpoint) is
  /// DataLoss, never a silent empty recovery.
  static Result<std::unique_ptr<Durability>> Open(
      const DurabilityOptions& options, RecoveredState* recovered);

  /// Appends one interval-delta record and (when configured) fsyncs.
  /// Must precede the epoch's publish: on return the record is durable.
  Status LogCommit(const std::string& blob);

  /// True when epoch (the committed-interval count) is a checkpoint
  /// boundary.
  bool ShouldCheckpoint(uint64_t epoch) const {
    return options_.checkpoint_interval != 0 && epoch != 0 &&
           epoch % options_.checkpoint_interval == 0;
  }

  /// Writes checkpoint-<epoch> (tmp + rename + dir fsync), rotates to a
  /// fresh wal-<epoch>, and prunes the previous generation.
  /// `serialize(i)` must return interval i's delta blob.
  Status WriteCheckpoint(
      uint64_t epoch,
      const std::function<std::string(uint32_t)>& serialize);

  /// Total record bytes (headers included) appended this process.
  uint64_t wal_bytes() const {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  /// Wall-clock nanoseconds of the most recent WriteCheckpoint.
  uint64_t checkpoint_ns() const {
    return checkpoint_ns_.load(std::memory_order_relaxed);
  }
  /// Physical traffic of the durability layer (WAL + checkpoints),
  /// separate from ingest-side I/O so replayed engines reproduce the
  /// ingest counters exactly. Writer-side.
  const IoStats& io() const { return io_; }

 private:
  Durability() = default;

  std::string CheckpointPath(uint64_t epoch) const;
  std::string WalPath(uint64_t epoch) const;
  /// Loads and validates checkpoint-<epoch>, appending its interval
  /// blobs to `blobs`.
  Status LoadCheckpoint(uint64_t epoch, std::vector<std::string>* blobs);
  /// Deletes every checkpoint/wal file of a generation older than
  /// `keep_epoch` (best effort: correctness never depends on pruning).
  void PruneBelow(uint64_t keep_epoch);

  DurabilityOptions options_;
  FaultInjector faults_;
  IoStats io_;
  WalWriter wal_;
  uint64_t wal_epoch_ = 0;  ///< Generation the open log belongs to.
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> checkpoint_ns_{0};
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_DURABILITY_H_
