// QueryCache: a small sharded LRU over query answers, keyed by (epoch,
// query). Repeated hot queries between two ingests are absorbed here
// instead of re-running a finder; because the epoch is part of the key,
// an answer computed at epoch e can never be served at epoch e+1 — the
// writer also sweeps superseded epochs out at every publish, so the
// cache never pins more than the live snapshot's results.
//
// Concurrency: Lookup/Insert are safe from any number of reader threads
// (each shard has its own mutex, held only for a short scan of a small
// entry array); EvictBefore is called by the writer at publish time.

#ifndef STABLETEXT_CORE_QUERY_CACHE_H_
#define STABLETEXT_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/snapshot.h"
#include "stable/finder.h"
#include "util/annotated_mutex.h"

namespace stabletext {

/// Cache identity of one query at one epoch.
struct QueryCacheKey {
  uint64_t epoch = 0;
  FinderQuery query;

  friend bool operator==(const QueryCacheKey& a, const QueryCacheKey& b) {
    return a.epoch == b.epoch && a.query == b.query;
  }
};

/// Knobs for the engine's query cache.
struct QueryCacheOptions {
  /// Lock shards; rounded up to a power of two. More shards = less
  /// contention between reader threads.
  size_t shards = 4;
  /// LRU capacity per shard. 0 disables the cache entirely.
  size_t entries_per_shard = 64;
};

/// \brief Sharded LRU of query answers.
class QueryCache {
 public:
  explicit QueryCache(QueryCacheOptions options);

  bool enabled() const { return options_.entries_per_shard > 0; }

  /// Returns the cached answer for `key`, or null. Counts a hit/miss.
  std::shared_ptr<const QueryResult> Lookup(const QueryCacheKey& key);

  /// Inserts (or refreshes) `key` -> `value`, evicting the least
  /// recently used entry of the shard when full.
  void Insert(const QueryCacheKey& key,
              std::shared_ptr<const QueryResult> value);

  /// Drops every entry whose epoch is below `epoch` (writer-side, at
  /// publish).
  void EvictBefore(uint64_t epoch);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    QueryCacheKey key;
    std::shared_ptr<const QueryResult> value;
    uint64_t last_used = 0;
  };
  struct Shard {
    Mutex mu;
    // Small: linear scan beats pointer soup.
    std::vector<Entry> entries GUARDED_BY(mu);
    uint64_t tick GUARDED_BY(mu) = 0;
  };

  static uint64_t HashKey(const QueryCacheKey& key);
  Shard& ShardFor(const QueryCacheKey& key);

  QueryCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_QUERY_CACHE_H_
