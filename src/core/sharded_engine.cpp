#include "core/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <utility>

#include "text/corpus.h"
#include "text/document.h"

namespace stabletext {

namespace fs = std::filesystem;

namespace {

const char kShardManifest[] = "SHARDS";

/// Reads "<dir>/SHARDS" (the persisted shard count). 0 = absent/unreadable.
uint32_t ReadShardManifest(const std::string& dir) {
  std::ifstream in(fs::path(dir) / kShardManifest);
  uint32_t shards = 0;
  if (in >> shards) return shards;
  return 0;
}

Status WriteShardManifest(const std::string& dir, uint32_t shards) {
  const fs::path path = fs::path(dir) / kShardManifest;
  std::ofstream out(path, std::ios::trunc);
  out << shards << "\n";
  out.flush();
  if (!out.good()) {
    return Status::IOError("cannot write shard manifest " + path.string());
  }
  return Status::OK();
}

}  // namespace

EngineOptions ShardedEngine::ShardOptions(
    const ShardedEngineOptions& options, uint32_t i) {
  EngineOptions o = options.engine;
  if (options.shards > 1) {
    // The outer pool is the parallelism: one writer task per shard. An
    // inner pool per shard would oversubscribe N-fold.
    o.threads = 1;
  }
  if (o.durability.enabled && !o.durability.dir.empty()) {
    o.durability.dir =
        (fs::path(o.durability.dir) / ("shard-" + std::to_string(i)))
            .string();
  }
  return o;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : ShardedEngine(std::move(options), /*durable=*/false) {}

ShardedEngine::ShardedEngine(ShardedEngineOptions options, bool durable)
    : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.shards > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.shards);
  }
  if (!durable) {
    for (uint32_t i = 0; i < options_.shards; ++i) {
      engines_.push_back(
          std::make_unique<Engine>(ShardOptions(options_, i)));
    }
    AssumeRole role(writer_role_);
    PublishSharded();
  }
  // Durable path: Recover() fills engines_ and publishes.
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Recover(
    ShardedEngineOptions options) {
  if (options.shards == 0) options.shards = 1;
  if (!options.engine.durability.enabled ||
      options.engine.durability.dir.empty()) {
    return Status::InvalidArgument(
        "ShardedEngine::Recover requires durability.enabled and a data "
        "directory");
  }
  const std::string dir = options.engine.durability.dir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create durability dir " + dir);
  }
  // The partition function is a persistence contract: reopening with a
  // different shard count would silently re-route keywords across
  // incompatible shard histories.
  const uint32_t persisted = ReadShardManifest(dir);
  if (persisted == 0) {
    ST_RETURN_IF_ERROR(WriteShardManifest(dir, options.shards));
  } else if (persisted != options.shards) {
    return Status::InvalidArgument(
        "shard directory " + dir + " was created with " +
        std::to_string(persisted) + " shards, reopened with " +
        std::to_string(options.shards));
  }

  auto sharded = std::unique_ptr<ShardedEngine>(
      new ShardedEngine(std::move(options), /*durable=*/true));
  const uint32_t shards = sharded->options_.shards;
  sharded->engines_.resize(shards);
  uint64_t min_epoch = UINT64_MAX;
  for (uint32_t i = 0; i < shards; ++i) {
    auto engine = Engine::Recover(ShardOptions(sharded->options_, i));
    ST_RETURN_IF_ERROR(engine.status());
    sharded->engines_[i] = std::move(engine).value();
    min_epoch =
        std::min(min_epoch, sharded->engines_[i]->snapshot()->epoch);
  }
  // A crash between the per-shard commits and the barrier leaves shards
  // at most one epoch apart. Truncate the leaders back to the fleet's
  // minimum common committed epoch so the restored vector is consistent.
  for (uint32_t i = 0; i < shards; ++i) {
    if (sharded->engines_[i]->snapshot()->epoch == min_epoch) continue;
    sharded->engines_[i].reset();
    EngineOptions capped = ShardOptions(sharded->options_, i);
    capped.durability.recover_epoch_cap = min_epoch;
    auto engine = Engine::Recover(std::move(capped));
    ST_RETURN_IF_ERROR(engine.status());
    sharded->engines_[i] = std::move(engine).value();
    if (sharded->engines_[i]->snapshot()->epoch != min_epoch) {
      return Status::DataLoss(
          "shard " + std::to_string(i) + " recovered epoch " +
          std::to_string(sharded->engines_[i]->snapshot()->epoch) +
          ", fleet minimum is " + std::to_string(min_epoch));
    }
  }
  AssumeRole role(sharded->writer_role_);
  sharded->PublishSharded();
  return sharded;
}

void ShardedEngine::SetPublishCallback(PublishCallback cb) {
  AssumeRole role(writer_role_);
  on_publish_ = std::move(cb);
}

RoutedTick ShardedEngine::TokenizeAndRoute(
    uint32_t interval, const std::vector<std::string>& posts) const {
  // Caller-thread, document order: routing (and downstream keyword-id
  // assignment inside each shard) never depends on scheduling.
  DocumentProcessor processor;
  std::vector<Document> documents(posts.size());
  for (size_t i = 0; i < posts.size(); ++i) {
    documents[i] = processor.Process(interval, posts[i]);
  }
  return RouteTick(documents, shard_count());
}

Result<uint32_t> ShardedEngine::IngestText(
    const std::vector<std::string>& posts) {
  AssumeRole role(writer_role_);
  ST_RETURN_IF_ERROR(broken_);
  return CommitTick(TokenizeAndRoute(interval_count(), posts));
}

Result<uint32_t> ShardedEngine::IngestDocuments(
    const std::vector<Document>& documents) {
  AssumeRole role(writer_role_);
  ST_RETURN_IF_ERROR(broken_);
  return CommitTick(RouteTick(documents, shard_count()));
}

Result<uint32_t> ShardedEngine::IngestTicks(
    const std::vector<std::vector<std::string>>& ticks,
    const Engine::TickCallback& on_tick) {
  AssumeRole role(writer_role_);
  return IngestTicksLocked(ticks, on_tick);
}

Result<uint32_t> ShardedEngine::IngestTicksLocked(
    const std::vector<std::vector<std::string>>& ticks,
    const Engine::TickCallback& on_tick) {
  ST_RETURN_IF_ERROR(broken_);
  const uint32_t base = interval_count();
  RoutedTick next;
  if (!ticks.empty()) next = TokenizeAndRoute(base, ticks[0]);
  uint32_t done = 0;
  for (size_t t = 0; t < ticks.size(); ++t) {
    RoutedTick current = std::move(next);
    next = RoutedTick();
    if (pool_ != nullptr && t + 1 < ticks.size()) {
      // Overlap: while the shards of tick t run on the pool, the caller
      // tokenizes and routes tick t+1, then joins the barrier inside
      // CommitTick's WaitAll (stealing shard tasks if any are queued).
      std::vector<std::future<void>> futures;
      futures.reserve(engines_.size());
      std::vector<Status> statuses(engines_.size(), Status::OK());
      std::vector<uint32_t> intervals(engines_.size(), 0);
      SubmitTick(current, &futures, &statuses, &intervals);
      next = TokenizeAndRoute(base + static_cast<uint32_t>(t) + 1,
                              ticks[t + 1]);
      auto r = BarrierTick(&futures, statuses, intervals);
      ST_RETURN_IF_ERROR(r.status());
      ++done;
      if (on_tick) ST_RETURN_IF_ERROR(on_tick(r.value(), ticks[t]));
      continue;
    }
    if (t + 1 < ticks.size()) {
      next = TokenizeAndRoute(base + static_cast<uint32_t>(t) + 1,
                              ticks[t + 1]);
    }
    auto r = CommitTick(std::move(current));
    ST_RETURN_IF_ERROR(r.status());
    ++done;
    if (on_tick) ST_RETURN_IF_ERROR(on_tick(r.value(), ticks[t]));
  }
  return done;
}

Result<uint32_t> ShardedEngine::IngestCorpusFile(
    const std::filesystem::path& path,
    const Engine::TickCallback& on_tick) {
  AssumeRole role(writer_role_);
  CorpusReader reader;
  ST_RETURN_IF_ERROR(reader.Open(path.string()));
  std::map<uint32_t, std::vector<std::string>> by_interval;
  uint32_t interval;
  std::string text;
  while (reader.Next(&interval, &text)) {
    by_interval[interval].push_back(text);
  }
  ST_RETURN_IF_ERROR(reader.status());
  uint32_t expected = interval_count();
  std::vector<std::vector<std::string>> ticks;
  ticks.reserve(by_interval.size());
  for (auto& [iv, posts] : by_interval) {
    if (iv != expected) {
      return Status::InvalidArgument(
          "corpus intervals must be contiguous from the fleet's next "
          "interval");
    }
    ++expected;
    ticks.push_back(std::move(posts));
  }
  return IngestTicksLocked(ticks, on_tick);
}

void ShardedEngine::SubmitTick(const RoutedTick& routed,
                               std::vector<std::future<void>>* futures,
                               std::vector<Status>* statuses,
                               std::vector<uint32_t>* intervals) {
  for (uint32_t s = 0; s < engines_.size(); ++s) {
    Engine* engine = engines_[s].get();
    const std::vector<Document>* docs = &routed.shards[s];
    const uint64_t n = routed.total_documents;
    Status* status = &(*statuses)[s];
    uint32_t* out_interval = &(*intervals)[s];
    futures->push_back(pool_->Submit([engine, docs, n, status,
                                      out_interval] {
      // One task per shard: this task is the shard's writer for the
      // tick (Engine::IngestDocumentsGlobal assumes the shard's own
      // writer role). All outputs are per-shard slots — disjoint.
      auto r = engine->IngestDocumentsGlobal(*docs, n);
      if (r.ok()) {
        *out_interval = r.value();
      } else {
        *status = r.status();
      }
    }));
  }
}

Result<uint32_t> ShardedEngine::BarrierTick(
    std::vector<std::future<void>>* futures,
    const std::vector<Status>& statuses,
    const std::vector<uint32_t>& intervals) {
  pool_->WaitAll(*futures);
  for (const Status& status : statuses) {
    if (!status.ok()) {
      // One shard failed its commit: the epoch vector can no longer
      // advance consistently (some shards may have committed the tick).
      broken_ = status;
      return status;
    }
  }
  PublishSharded();
  return intervals.empty() ? 0 : intervals[0];
}

Result<uint32_t> ShardedEngine::CommitTick(RoutedTick routed) {
  ST_RETURN_IF_ERROR(broken_);
  if (pool_ == nullptr) {
    auto r = engines_[0]->IngestDocumentsGlobal(routed.shards[0],
                                                routed.total_documents);
    if (!r.ok()) {
      broken_ = r.status();
      return broken_;
    }
    PublishSharded();
    return r.value();
  }
  std::vector<std::future<void>> futures;
  futures.reserve(engines_.size());
  std::vector<Status> statuses(engines_.size(), Status::OK());
  std::vector<uint32_t> intervals(engines_.size(), 0);
  SubmitTick(routed, &futures, &statuses, &intervals);
  return BarrierTick(&futures, statuses, intervals);
}

void ShardedEngine::PublishSharded() {
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->shards.reserve(engines_.size());
  for (const auto& engine : engines_) {
    snap->shards.push_back(engine->snapshot());
  }
  snap->epoch = snap->shards.empty() ? 0 : snap->shards[0]->epoch;
  std::shared_ptr<const ShardedSnapshot> published = std::move(snap);
  std::atomic_store(&snapshot_, published);
  if (on_publish_) on_publish_(published);
}

std::shared_ptr<const ShardedSnapshot> ShardedEngine::snapshot() const {
  return std::atomic_load(&snapshot_);
}

Result<ShardedQueryResult> ShardedEngine::Query(
    const stabletext::Query& query) const {
  return QueryAt(snapshot(), query);
}

Result<ShardedQueryResult> ShardedEngine::QueryAt(
    const std::shared_ptr<const ShardedSnapshot>& snap,
    const stabletext::Query& query) const {
  if (snap == nullptr || snap->shards.size() != engines_.size()) {
    return Status::InvalidArgument(
        "QueryAt needs a snapshot of this sharded engine");
  }
  // Scatter: each shard answers on its pinned snapshot (through its own
  // query cache). Gather: threshold-merge the best-first streams.
  std::vector<QueryResult> results;
  results.reserve(engines_.size());
  for (uint32_t s = 0; s < engines_.size(); ++s) {
    auto r = engines_[s]->QueryAt(snap->shards[s], query);
    ST_RETURN_IF_ERROR(r.status());
    results.push_back(std::move(r).value());
  }
  std::vector<const QueryResult*> streams;
  streams.reserve(results.size());
  for (const QueryResult& result : results) streams.push_back(&result);

  ShardedQueryResult out;
  out.epoch = snap->epoch;
  const std::vector<MergedChainRef> refs =
      ThresholdMergeTopK(streams, query, &out.merge);
  out.chains.reserve(refs.size());
  out.chain_shard.reserve(refs.size());
  for (const MergedChainRef& ref : refs) {
    out.chains.push_back(results[ref.shard].chains[ref.rank]);
    out.chain_shard.push_back(ref.shard);
  }
  out.warm_online = !results.empty();
  for (const QueryResult& result : results) {
    out.warm_online = out.warm_online && result.warm_online;
  }
  return out;
}

std::vector<EngineStats> ShardedEngine::shard_stats() const {
  std::vector<EngineStats> stats;
  stats.reserve(engines_.size());
  for (const auto& engine : engines_) stats.push_back(engine->stats());
  return stats;
}

EngineStats ShardedEngine::stats() const {
  EngineStats agg;
  const std::vector<EngineStats> per = shard_stats();
  if (per.empty()) return agg;
  // The epoch vector is consistent, so intervals comes from any shard;
  // extensive counters sum; the barrier pays the slowest shard's
  // publish/checkpoint, so those report the max.
  agg.intervals = per[0].intervals;
  agg.recovered_epoch = per[0].recovered_epoch;
  for (const EngineStats& s : per) {
    agg.clusters += s.clusters;
    agg.edges += s.edges;
    agg.keywords += s.keywords;
    agg.graph_bytes += s.graph_bytes;
    agg.io += s.io;
    agg.query_cache_hits += s.query_cache_hits;
    agg.query_cache_misses += s.query_cache_misses;
    agg.shared_chunk_count += s.shared_chunk_count;
    agg.copied_chunk_count += s.copied_chunk_count;
    agg.resident_bytes += s.resident_bytes;
    agg.wal_bytes += s.wal_bytes;
    agg.publish_ns = std::max(agg.publish_ns, s.publish_ns);
    agg.checkpoint_ns = std::max(agg.checkpoint_ns, s.checkpoint_ns);
    agg.recovered_epoch = std::min(agg.recovered_epoch, s.recovered_epoch);
  }
  return agg;
}

std::string ShardedEngine::RenderChain(const StableClusterChain& chain,
                                       uint32_t shard,
                                       size_t max_keywords) const {
  return engines_[shard]->RenderChain(chain, max_keywords);
}

}  // namespace stabletext
