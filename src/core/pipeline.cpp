#include "core/pipeline.h"

namespace stabletext {

Status StableClusterPipeline::AddIntervalText(
    const std::vector<std::string>& posts) {
  if (built_) {
    return Status::InvalidArgument(
        "cluster graph already built; create a new pipeline");
  }
  return engine_.IngestText(posts).status();
}

Status StableClusterPipeline::AddIntervalDocuments(
    const std::vector<Document>& documents) {
  if (built_) {
    return Status::InvalidArgument(
        "cluster graph already built; create a new pipeline");
  }
  return engine_.IngestDocuments(documents).status();
}

Result<uint32_t> StableClusterPipeline::AddCorpusFile(
    const std::filesystem::path& path) {
  if (built_) {
    return Status::InvalidArgument(
        "cluster graph already built; create a new pipeline");
  }
  return engine_.IngestCorpusFile(path);
}

Status StableClusterPipeline::BuildClusterGraph() {
  if (built_) {
    return Status::InvalidArgument("cluster graph already built");
  }
  if (engine_.interval_count() == 0) {
    return Status::InvalidArgument("no intervals added");
  }
  ST_RETURN_IF_ERROR(engine_.Compact());
  built_ = true;
  return Status::OK();
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindStableClusters(size_t k, uint32_t l,
                                          FinderKind kind) const {
  if (!built_) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  // Historical contract: an out-of-range l is an error here, where the
  // serving-shaped Engine::Query returns an empty answer.
  if (l != 0 && engine_.interval_count() > 0 &&
      l > engine_.interval_count() - 1) {
    return Status::InvalidArgument("path length l out of range");
  }
  Query query;
  query.algorithm = kind == FinderKind::kBfs ? FinderAlgorithm::kBfs
                                             : FinderAlgorithm::kDfs;
  query.mode = FinderMode::kKlStable;
  query.k = k;
  query.l = l;
  auto r = engine_.Query(query);
  if (!r.ok()) return r.status();
  return std::move(r).value().chains;
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindNormalizedStableClusters(size_t k,
                                                    uint32_t lmin) const {
  if (!built_) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  if (engine_.interval_count() >= 2 &&
      (lmin < 1 || lmin > engine_.interval_count() - 1)) {
    return Status::InvalidArgument("lmin out of range");
  }
  Query query;
  query.algorithm = FinderAlgorithm::kBfs;
  query.mode = FinderMode::kNormalized;
  query.k = k;
  query.l = lmin;
  auto r = engine_.Query(query);
  if (!r.ok()) return r.status();
  return std::move(r).value().chains;
}

}  // namespace stabletext
