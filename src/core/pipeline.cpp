#include "core/pipeline.h"

#include <algorithm>
#include <map>

#include "text/corpus.h"
#include "util/strings.h"

namespace stabletext {

StableClusterPipeline::StableClusterPipeline(PipelineOptions options)
    : options_(std::move(options)) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

Status StableClusterPipeline::AddIntervalText(
    const std::vector<std::string>& posts) {
  const uint32_t interval = interval_count();
  std::vector<Document> documents(posts.size());
  if (pool_ != nullptr && posts.size() > 1) {
    // Tokenization is document-independent: fan chunks out, write by
    // index (order, and therefore downstream keyword ids, never depend
    // on scheduling).
    const size_t chunks = std::min(pool_->size() * 4, posts.size());
    const size_t per_chunk = (posts.size() + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t begin = 0; begin < posts.size(); begin += per_chunk) {
      const size_t end = std::min(posts.size(), begin + per_chunk);
      futures.push_back(pool_->Submit([&, begin, end] {
        DocumentProcessor processor;
        for (size_t i = begin; i < end; ++i) {
          documents[i] = processor.Process(interval, posts[i]);
        }
      }));
    }
    pool_->WaitAll(futures);
  } else {
    DocumentProcessor processor;
    for (size_t i = 0; i < posts.size(); ++i) {
      documents[i] = processor.Process(interval, posts[i]);
    }
  }
  return AddIntervalDocuments(documents);
}

Status StableClusterPipeline::AddIntervalDocuments(
    const std::vector<Document>& documents) {
  const uint32_t interval = interval_count();
  if (graph_ != nullptr) {
    return Status::InvalidArgument(
        "cluster graph already built; create a new pipeline");
  }
  // Intern here, on the submitting thread, in document order: keyword ids
  // are assigned exactly as a sequential run would assign them, no matter
  // how many workers the heavy phase uses.
  auto interned =
      std::make_shared<std::vector<std::vector<KeywordId>>>();
  interned->reserve(documents.size());
  for (const Document& doc : documents) {
    std::vector<KeywordId> ids;
    ids.reserve(doc.keywords.size());
    for (const std::string& w : doc.keywords) {
      ids.push_back(dict_.Intern(w));
    }
    std::sort(ids.begin(), ids.end());
    interned->push_back(std::move(ids));
  }
  const size_t vocab_snapshot = dict_.size();

  slots_.push_back(std::make_unique<IntervalSlot>());
  IntervalSlot* slot = slots_.back().get();
  auto task = [this, interval, vocab_snapshot, interned, slot] {
    // Exceptions must not die inside the packaged_task's shared state
    // (the pool's Wait never calls get()): convert to a slot status.
    try {
      IntervalClusterer clusterer(&dict_, options_.clustering, &slot->io);
      auto result = clusterer.RunInterned(interval, *interned,
                                          vocab_snapshot, pool_.get());
      if (result.ok()) {
        slot->result = std::move(result).value();
      } else {
        slot->status = result.status();
      }
    } catch (const std::exception& e) {
      slot->status = Status::Internal(
          std::string("interval task threw: ") + e.what());
    }
  };
  if (pool_ != nullptr) {
    pending_.push_back(pool_->Submit(std::move(task)));
    return Status::OK();
  }
  task();
  return slot->status;
}

Status StableClusterPipeline::AddCorpusFile(const std::string& path) {
  CorpusReader reader;
  ST_RETURN_IF_ERROR(reader.Open(path));
  // Group posts by interval; intervals must be contiguous from 0.
  std::map<uint32_t, std::vector<std::string>> by_interval;
  uint32_t interval;
  std::string text;
  while (reader.Next(&interval, &text)) {
    by_interval[interval].push_back(text);
  }
  ST_RETURN_IF_ERROR(reader.status());
  uint32_t expected = interval_count();
  for (const auto& [iv, posts] : by_interval) {
    if (iv != expected) {
      return Status::InvalidArgument(
          "corpus intervals must be contiguous from the pipeline's next "
          "interval");
    }
    ST_RETURN_IF_ERROR(AddIntervalText(posts));
    ++expected;
  }
  return Status::OK();
}

Status StableClusterPipeline::JoinIntervals() {
  if (pool_ != nullptr) {
    pool_->WaitAll(pending_);
    pending_.clear();
  }
  // Remember the verdict: a retried BuildClusterGraph must keep reporting
  // a failed interval, not silently proceed with its empty result.
  if (intervals_joined_) return join_status_;
  intervals_joined_ = true;
  for (const auto& slot : slots_) {
    io_ += slot->io;
    if (join_status_.ok() && !slot->status.ok()) {
      join_status_ = slot->status;
    }
  }
  return join_status_;
}

Status StableClusterPipeline::BuildClusterGraph() {
  if (graph_ != nullptr) {
    return Status::InvalidArgument("cluster graph already built");
  }
  ST_RETURN_IF_ERROR(JoinIntervals());
  const uint32_t m = interval_count();
  if (m == 0) return Status::InvalidArgument("no intervals added");
  graph_ = std::make_unique<ClusterGraph>(m, options_.gap);

  node_of_.assign(m, {});
  for (uint32_t i = 0; i < m; ++i) {
    const auto& clusters = slots_[i]->result.clusters;
    node_of_[i].reserve(clusters.size());
    for (uint32_t j = 0; j < clusters.size(); ++j) {
      const NodeId id = graph_->AddNode(i);
      node_of_[i].push_back(id);
      cluster_of_node_.emplace_back(i, j);
    }
  }

  // Affinity joins between interval pairs within the gap window. Pairs
  // are independent, so they fan out; the per-pair match lists land in
  // fixed slots and are stitched in (i, j) order, keeping edge insertion
  // deterministic. Raw intersection weights are normalized by the running
  // maximum, per the paper's footnote on affinity functions without a
  // (0, 1] range.
  const bool needs_normalization =
      options_.affinity.measure == AffinityMeasure::kIntersection;
  struct JoinJob {
    uint32_t i;
    uint32_t j;
    std::vector<AffinityMatch> matches;
  };
  std::vector<JoinJob> jobs;
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i + 1; j <= std::min(m - 1, i + options_.gap + 1);
         ++j) {
      jobs.push_back(JoinJob{i, j, {}});
    }
  }
  if (pool_ != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (JoinJob& job : jobs) {
      futures.push_back(pool_->Submit([this, &job] {
        SimilarityJoin join(options_.affinity);
        job.matches = join.Join(slots_[job.i]->result.clusters,
                                slots_[job.j]->result.clusters);
      }));
    }
    pool_->WaitAll(futures);
  } else {
    SimilarityJoin join(options_.affinity);
    for (JoinJob& job : jobs) {
      job.matches = join.Join(slots_[job.i]->result.clusters,
                              slots_[job.j]->result.clusters);
    }
  }

  struct RawEdge {
    NodeId from;
    NodeId to;
    double affinity;
  };
  std::vector<RawEdge> raw;
  for (const JoinJob& job : jobs) {
    for (const AffinityMatch& match : job.matches) {
      raw.push_back(RawEdge{node_of_[job.i][match.left],
                            node_of_[job.j][match.right], match.affinity});
    }
  }
  double max_affinity = 0;
  for (const RawEdge& e : raw) {
    max_affinity = std::max(max_affinity, e.affinity);
  }
  for (const RawEdge& e : raw) {
    double w = e.affinity;
    if (needs_normalization && max_affinity > 0) w /= max_affinity;
    w = std::min(w, 1.0);
    ST_RETURN_IF_ERROR(graph_->AddEdge(e.from, e.to, w));
  }
  graph_->SortChildren();
  return Status::OK();
}

const Cluster* StableClusterPipeline::NodeCluster(NodeId node) const {
  const auto& [i, j] = cluster_of_node_[node];
  return &slots_[i]->result.clusters[j];
}

Result<std::vector<StableClusterChain>> StableClusterPipeline::ToChains(
    const std::vector<StablePath>& paths) const {
  std::vector<StableClusterChain> chains;
  chains.reserve(paths.size());
  for (const StablePath& path : paths) {
    StableClusterChain chain;
    chain.path = path;
    for (NodeId node : path.nodes) {
      chain.clusters.push_back(NodeCluster(node));
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindStableClusters(size_t k, uint32_t l,
                                          FinderKind kind) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  StableFinderResult result;
  if (kind == FinderKind::kBfs) {
    BfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = BfsStableFinder(options).Find(*graph_);
    if (!r.ok()) return r.status();
    result = std::move(r).value();
  } else {
    DfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = DfsStableFinder(options).Find(*graph_);
    if (!r.ok()) return r.status();
    result = std::move(r).value();
  }
  return ToChains(result.paths);
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindNormalizedStableClusters(size_t k,
                                                    uint32_t lmin) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  NormalizedFinderOptions options;
  options.k = k;
  options.lmin = lmin;
  auto r = NormalizedBfsFinder(options).Find(*graph_);
  if (!r.ok()) return r.status();
  return ToChains(r.value().paths);
}

std::string StableClusterPipeline::RenderChain(
    const StableClusterChain& chain, size_t max_keywords) const {
  std::string out = StringPrintf(
      "stable cluster: length=%u weight=%.3f stability=%.3f\n",
      chain.path.length, chain.path.weight, chain.path.stability());
  for (const Cluster* cluster : chain.clusters) {
    out += StringPrintf("  interval %u: %s\n", cluster->interval,
                        cluster->ToString(dict_, max_keywords).c_str());
  }
  return out;
}

}  // namespace stabletext
