#include "core/pipeline.h"

#include <algorithm>
#include <map>

#include "text/corpus.h"
#include "util/strings.h"

namespace stabletext {

StableClusterPipeline::StableClusterPipeline(PipelineOptions options)
    : options_(std::move(options)) {}

Status StableClusterPipeline::AddIntervalText(
    const std::vector<std::string>& posts) {
  const uint32_t interval = interval_count();
  DocumentProcessor processor;
  std::vector<Document> documents;
  documents.reserve(posts.size());
  for (const std::string& post : posts) {
    documents.push_back(processor.Process(interval, post));
  }
  return AddIntervalDocuments(documents);
}

Status StableClusterPipeline::AddIntervalDocuments(
    const std::vector<Document>& documents) {
  const uint32_t interval = interval_count();
  if (graph_ != nullptr) {
    return Status::InvalidArgument(
        "cluster graph already built; create a new pipeline");
  }
  IntervalClusterer clusterer(&dict_, options_.clustering, &io_);
  auto result = clusterer.Run(interval, documents);
  if (!result.ok()) return result.status();
  interval_results_.push_back(std::move(result).value());
  return Status::OK();
}

Status StableClusterPipeline::AddCorpusFile(const std::string& path) {
  CorpusReader reader;
  ST_RETURN_IF_ERROR(reader.Open(path));
  // Group posts by interval; intervals must be contiguous from 0.
  std::map<uint32_t, std::vector<std::string>> by_interval;
  uint32_t interval;
  std::string text;
  while (reader.Next(&interval, &text)) {
    by_interval[interval].push_back(text);
  }
  ST_RETURN_IF_ERROR(reader.status());
  uint32_t expected = interval_count();
  for (const auto& [iv, posts] : by_interval) {
    if (iv != expected) {
      return Status::InvalidArgument(
          "corpus intervals must be contiguous from the pipeline's next "
          "interval");
    }
    ST_RETURN_IF_ERROR(AddIntervalText(posts));
    ++expected;
  }
  return Status::OK();
}

Status StableClusterPipeline::BuildClusterGraph() {
  if (graph_ != nullptr) {
    return Status::InvalidArgument("cluster graph already built");
  }
  const uint32_t m = interval_count();
  if (m == 0) return Status::InvalidArgument("no intervals added");
  graph_ = std::make_unique<ClusterGraph>(m, options_.gap);

  node_of_.assign(m, {});
  for (uint32_t i = 0; i < m; ++i) {
    const auto& clusters = interval_results_[i].clusters;
    node_of_[i].reserve(clusters.size());
    for (uint32_t j = 0; j < clusters.size(); ++j) {
      const NodeId id = graph_->AddNode(i);
      node_of_[i].push_back(id);
      cluster_of_node_.emplace_back(i, j);
    }
  }

  // Affinity joins between interval pairs within the gap window. Raw
  // intersection weights are normalized by the running maximum, per the
  // paper's footnote on affinity functions without a (0, 1] range.
  const bool needs_normalization =
      options_.affinity.measure == AffinityMeasure::kIntersection;
  struct RawEdge {
    NodeId from;
    NodeId to;
    double affinity;
  };
  std::vector<RawEdge> raw;
  SimilarityJoin join(options_.affinity);
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i + 1; j <= std::min(m - 1, i + options_.gap + 1);
         ++j) {
      const auto matches = join.Join(interval_results_[i].clusters,
                                     interval_results_[j].clusters);
      for (const AffinityMatch& match : matches) {
        raw.push_back(RawEdge{node_of_[i][match.left],
                              node_of_[j][match.right], match.affinity});
      }
    }
  }
  double max_affinity = 0;
  for (const RawEdge& e : raw) {
    max_affinity = std::max(max_affinity, e.affinity);
  }
  for (const RawEdge& e : raw) {
    double w = e.affinity;
    if (needs_normalization && max_affinity > 0) w /= max_affinity;
    w = std::min(w, 1.0);
    ST_RETURN_IF_ERROR(graph_->AddEdge(e.from, e.to, w));
  }
  graph_->SortChildren();
  return Status::OK();
}

const Cluster* StableClusterPipeline::NodeCluster(NodeId node) const {
  const auto& [i, j] = cluster_of_node_[node];
  return &interval_results_[i].clusters[j];
}

Result<std::vector<StableClusterChain>> StableClusterPipeline::ToChains(
    const std::vector<StablePath>& paths) const {
  std::vector<StableClusterChain> chains;
  chains.reserve(paths.size());
  for (const StablePath& path : paths) {
    StableClusterChain chain;
    chain.path = path;
    for (NodeId node : path.nodes) {
      chain.clusters.push_back(NodeCluster(node));
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindStableClusters(size_t k, uint32_t l,
                                          FinderKind kind) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  StableFinderResult result;
  if (kind == FinderKind::kBfs) {
    BfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = BfsStableFinder(options).Find(*graph_);
    if (!r.ok()) return r.status();
    result = std::move(r).value();
  } else {
    DfsFinderOptions options;
    options.k = k;
    options.l = l;
    auto r = DfsStableFinder(options).Find(*graph_);
    if (!r.ok()) return r.status();
    result = std::move(r).value();
  }
  return ToChains(result.paths);
}

Result<std::vector<StableClusterChain>>
StableClusterPipeline::FindNormalizedStableClusters(size_t k,
                                                    uint32_t lmin) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("BuildClusterGraph() not called");
  }
  NormalizedFinderOptions options;
  options.k = k;
  options.lmin = lmin;
  auto r = NormalizedBfsFinder(options).Find(*graph_);
  if (!r.ok()) return r.status();
  return ToChains(r.value().paths);
}

std::string StableClusterPipeline::RenderChain(
    const StableClusterChain& chain, size_t max_keywords) const {
  std::string out = StringPrintf(
      "stable cluster: length=%u weight=%.3f stability=%.3f\n",
      chain.path.length, chain.path.weight, chain.path.stability());
  for (const Cluster* cluster : chain.clusters) {
    out += StringPrintf("  interval %u: %s\n", cluster->interval,
                        cluster->ToString(dict_, max_keywords).c_str());
  }
  return out;
}

}  // namespace stabletext
