#include "core/query_cache.h"

#include <algorithm>

namespace stabletext {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

QueryCache::QueryCache(QueryCacheOptions options) : options_(options) {
  const size_t shard_count =
      RoundUpPow2(std::max<size_t>(1, options_.shards));
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t QueryCache::HashKey(const QueryCacheKey& key) {
  uint64_t h = key.epoch;
  const FinderQuery& q = key.query;
  h = Mix(h, static_cast<uint64_t>(q.algorithm));
  h = Mix(h, static_cast<uint64_t>(q.mode));
  h = Mix(h, q.k);
  h = Mix(h, q.l);
  h = Mix(h, (static_cast<uint64_t>(q.diversify_prefix) << 32) |
                 q.diversify_suffix);
  h = Mix(h, q.diversify_candidates);
  h = Mix(h, q.memory_budget_bytes);
  h = Mix(h, q.theorem1_pruning ? 1 : 0);
  h = Mix(h, q.max_probes);
  return h;
}

QueryCache::Shard& QueryCache::ShardFor(const QueryCacheKey& key) {
  return *shards_[HashKey(key) & (shards_.size() - 1)];
}

std::shared_ptr<const QueryResult> QueryCache::Lookup(
    const QueryCacheKey& key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  for (Entry& e : shard.entries) {
    if (e.key == key) {
      e.last_used = ++shard.tick;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return e.value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void QueryCache::Insert(const QueryCacheKey& key,
                        std::shared_ptr<const QueryResult> value) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  for (Entry& e : shard.entries) {
    if (e.key == key) {
      e.value = std::move(value);
      e.last_used = ++shard.tick;
      return;
    }
  }
  if (shard.entries.size() < options_.entries_per_shard) {
    shard.entries.push_back(Entry{key, std::move(value), ++shard.tick});
    return;
  }
  Entry* victim = &shard.entries[0];
  for (Entry& e : shard.entries) {
    // Superseded epochs first, then plain LRU.
    if (e.key.epoch < victim->key.epoch ||
        (e.key.epoch == victim->key.epoch &&
         e.last_used < victim->last_used)) {
      victim = &e;
    }
  }
  *victim = Entry{key, std::move(value), ++shard.tick};
}

void QueryCache::EvictBefore(uint64_t epoch) {
  if (!enabled()) return;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->entries.erase(
        std::remove_if(shard->entries.begin(), shard->entries.end(),
                       [epoch](const Entry& e) {
                         return e.key.epoch < epoch;
                       }),
        shard->entries.end());
  }
}

}  // namespace stabletext
