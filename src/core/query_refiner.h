// QueryRefiner: the query-refinement application motivated in Sections 1
// and 3 — "If a search query for a specific interval falls in a cluster,
// the rest of the keywords in that cluster are good candidates for query
// refinement" and "for a query keyword we may suggest the strongest
// correlation as a refinement".

#ifndef STABLETEXT_CORE_QUERY_REFINER_H_
#define STABLETEXT_CORE_QUERY_REFINER_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace stabletext {

class StableClusterPipeline;

/// One refinement suggestion.
struct Refinement {
  std::string keyword;
  double score;       ///< Correlation (edge weight) or cluster affinity.
  uint32_t interval;  ///< Interval the evidence comes from.
};

/// \brief Suggests query refinements from an engine's interval clusters.
class QueryRefiner {
 public:
  /// \param engine must outlive the refiner; borrowed. Suggestions track
  ///        the engine live: refinements for an interval are available as
  ///        soon as its ingest committed. Reads writer-side state (the
  ///        dictionary and interval clusters), so per the Engine thread
  ///        contract it belongs on the ingest thread or a quiescent
  ///        engine — unlike Engine::Query it is not safe concurrently
  ///        with ingest.
  explicit QueryRefiner(const Engine* engine) : engine_(engine) {}

  /// Deprecated: refine against the legacy pipeline shim's engine.
  explicit QueryRefiner(const StableClusterPipeline* pipeline);

  /// Top refinements for `query` in `interval`: keywords sharing a cluster
  /// with the query keyword, scored by the correlation (edge weight) to
  /// it, strongest first. The query is stemmed with the same preprocessing
  /// as the corpus. Empty if the keyword is unknown or unclustered.
  std::vector<Refinement> Suggest(const std::string& query,
                                  uint32_t interval,
                                  size_t max_suggestions = 10) const;

 private:
  const Engine* engine_;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_QUERY_REFINER_H_
