#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "text/corpus.h"
#include "util/timer.h"

namespace stabletext {

namespace {

// A reader's warm-online request, packed for the lock-free hint slot:
// k in the high 32 bits, l in the low 32. 0 = no hint (k is validated
// positive before packing).
uint64_t PackOnlineHint(size_t k, uint32_t l) {
  if (k == 0 || k > UINT32_MAX) return 0;
  return (static_cast<uint64_t>(k) << 32) | l;
}

// Interval-delta (de)serialization for the durability log. Host-endian,
// like every file the storage layer writes; doubles are copied bit-exact
// (replay must reproduce weights to the last bit).
class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > data_.size() - offset_) return false;
    s->assign(data_.data() + offset_, len);
    offset_ += len;
    return true;
  }
  bool Raw(void* p, size_t n) {
    if (n > data_.size() - offset_) return false;
    std::memcpy(p, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  const std::string& data_;
  size_t offset_ = 0;
};

void WriteIoStats(ByteWriter* w, const IoStats& io) {
  w->U64(io.page_reads);
  w->U64(io.page_writes);
  w->U64(io.logical_reads);
  w->U64(io.random_seeks);
  w->U64(io.bytes_read);
  w->U64(io.bytes_written);
  w->U64(io.fsyncs);
  w->U64(io.sort_runs_spilled);
  w->U64(io.sort_merge_passes);
  w->U64(io.sort_in_memory_sorts);
  w->U64(io.sort_tail_records);
}

bool ReadIoStats(ByteReader* r, IoStats* io) {
  return r->U64(&io->page_reads) && r->U64(&io->page_writes) &&
         r->U64(&io->logical_reads) && r->U64(&io->random_seeks) &&
         r->U64(&io->bytes_read) && r->U64(&io->bytes_written) &&
         r->U64(&io->fsyncs) && r->U64(&io->sort_runs_spilled) &&
         r->U64(&io->sort_merge_passes) &&
         r->U64(&io->sort_in_memory_sorts) &&
         r->U64(&io->sort_tail_records);
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), graph_(0, options_.gap),
      cache_(std::make_unique<QueryCache>(options_.query_cache)) {
  // The constructing thread is the writer until the engine is handed off.
  AssumeRole role(writer_role_);
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  if (options_.affinity.measure == AffinityMeasure::kIntersection) {
    // Raw intersection counts go into the graph unnormalized; reads
    // apply the running-max scale (lazy renormalization).
    graph_.EnableRawWeights();
  }
  Publish();  // Epoch 0: queries are valid before the first ingest.
}

std::vector<Document> Engine::TokenizePosts(
    uint32_t interval, const std::vector<std::string>& posts) {
  std::vector<Document> documents(posts.size());
  if (pool_ != nullptr && posts.size() > 1) {
    // Tokenization is document-independent: fan chunks out, write by
    // index (order, and therefore downstream keyword ids, never depend
    // on scheduling).
    const size_t chunks = std::min(pool_->size() * 4, posts.size());
    const size_t per_chunk = (posts.size() + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t begin = 0; begin < posts.size(); begin += per_chunk) {
      const size_t end = std::min(posts.size(), begin + per_chunk);
      futures.push_back(pool_->Submit([&, begin, end] {
        DocumentProcessor processor;
        for (size_t i = begin; i < end; ++i) {
          documents[i] = processor.Process(interval, posts[i]);
        }
      }));
    }
    pool_->WaitAll(futures);
  } else {
    DocumentProcessor processor;
    for (size_t i = 0; i < posts.size(); ++i) {
      documents[i] = processor.Process(interval, posts[i]);
    }
  }
  return documents;
}

std::vector<std::vector<KeywordId>> Engine::InternDocuments(
    const std::vector<Document>& documents) {
  // Intern on the calling thread, in document order: keyword ids are
  // assigned exactly as a sequential run would assign them, no matter how
  // many workers the heavy phase uses.
  std::vector<std::vector<KeywordId>> interned;
  interned.reserve(documents.size());
  for (const Document& doc : documents) {
    std::vector<KeywordId> ids;
    ids.reserve(doc.keywords.size());
    for (const std::string& w : doc.keywords) {
      ids.push_back(dict_.Intern(w));
    }
    std::sort(ids.begin(), ids.end());
    interned.push_back(std::move(ids));
  }
  return interned;
}

Result<uint32_t> Engine::IngestText(const std::vector<std::string>& posts) {
  AssumeRole role(writer_role_);
  return IngestTextLocked(posts);
}

Result<uint32_t> Engine::IngestTextLocked(
    const std::vector<std::string>& posts) {
  const uint32_t interval = static_cast<uint32_t>(slots_.size());
  return IngestDocumentsLocked(TokenizePosts(interval, posts));
}

Result<uint32_t> Engine::IngestDocuments(
    const std::vector<Document>& documents) {
  AssumeRole role(writer_role_);
  return IngestDocumentsLocked(documents);
}

Result<uint32_t> Engine::IngestDocumentsGlobal(
    const std::vector<Document>& documents,
    uint64_t global_document_count) {
  AssumeRole role(writer_role_);
  return IngestDocumentsLocked(documents, global_document_count);
}

Result<uint32_t> Engine::IngestDocumentsLocked(
    const std::vector<Document>& documents,
    uint64_t document_count_override) {
  if (graph_.frozen()) {
    return Status::InvalidArgument(
        "engine is compacted; create a new engine to ingest");
  }
  if (!broken_.ok()) return broken_;
  // Interning first, vocab snapshot second (argument evaluation order
  // would otherwise be unspecified).
  const size_t vocab_before = dict_.size();
  const auto interned = InternDocuments(documents);
  auto r = IngestInterned(interned, dict_.size(), document_count_override);
  if (!r.ok() && broken_.ok()) {
    // Clustering failed before anything was adopted: roll the interning
    // back so a failed tick leaves no trace in keyword-id assignment (a
    // later successful ingest must be byte-identical to one on an engine
    // that never saw the failed tick). Mid-commit failures keep the
    // words — the adopted slot's watermark already covers them.
    dict_.TruncateTo(vocab_before);
  }
  return r;
}

Result<std::shared_ptr<SnapshotInterval>> Engine::ClusterInterval(
    uint32_t interval, const std::vector<std::vector<KeywordId>>& interned,
    size_t vocab_snapshot, uint64_t document_count_override) {
  auto slot = std::make_shared<SnapshotInterval>();
  slot->vocab_size = vocab_snapshot;
  IntervalClustererOptions clustering = options_.clustering;
  if (document_count_override != 0) {
    clustering.document_count_override = document_count_override;
  }
  // RunInterned never touches the dictionary (see IntervalClusterer):
  // this stage is safe on a worker while the previous interval commits.
  IntervalClusterer clusterer(&dict_, clustering, &slot->io);
  auto result =
      clusterer.RunInterned(interval, interned, vocab_snapshot, pool_.get());
  if (!result.ok()) return result.status();
  slot->result = std::move(result).value();
  return slot;
}

Result<uint32_t> Engine::CommitInterval(
    std::shared_ptr<SnapshotInterval> slot) {
  if (graph_.frozen()) {
    return Status::InvalidArgument(
        "engine is compacted; create a new engine to ingest");
  }
  if (!broken_.ok()) return broken_;
  if (options_.durability.enabled && durability_ == nullptr) {
    return Status::InvalidArgument(
        "durability is enabled but the engine was not built by "
        "Engine::Recover; a plain constructor cannot report log recovery "
        "failures");
  }
  const uint32_t interval = static_cast<uint32_t>(slots_.size());
  if (slot->result.interval != interval) {
    // The slot was tokenized and clustered as a different interval —
    // another ingest ran between the pipeline stages (e.g. from an
    // on_tick callback). Refuse rather than commit misaligned data.
    return Status::InvalidArgument(
        "interval committed out of order: the engine ingested out of "
        "band while a pipelined batch was in flight");
  }
  io_ += slot->io;
  for (const Cluster& cluster : slot->result.clusters) {
    clusters_bytes_ +=
        sizeof(Cluster) + cluster.keywords.size() * sizeof(KeywordId);
  }
  slots_.push_back(std::move(slot));  // Immutable from here on.
  Status commit = ExtendGraph(interval);
  if (commit.ok()) commit = AdvanceWarmOnline(interval);
  if (commit.ok() && durability_ != nullptr) {
    // Log before publish: an epoch readers can observe is always
    // recoverable. The converse tail case — record synced, publish
    // preempted — is why recovery may land one epoch *ahead* of what
    // was published at the crash.
    commit = durability_->LogCommit(SerializeIntervalDelta(interval));
  }
  if (!commit.ok()) {
    // The interval is half-committed in writer state and cannot be
    // rolled back; refusing further ingest keeps the published epochs
    // honest — readers keep serving the last snapshot, which never saw
    // any of this interval.
    broken_ = Status::Internal(
        "a previous ingest failed mid-commit (" + commit.message() +
        "); the engine no longer accepts intervals");
    return commit;
  }
  // The commit point for readers: everything above mutated only private
  // writer state; the swap below makes the new epoch visible atomically.
  Publish();
  if (durability_ != nullptr &&
      durability_->ShouldCheckpoint(slots_.size())) {
    Status ck = durability_->WriteCheckpoint(
        slots_.size(), [this](uint32_t i) {
          // Runs synchronously on this (writer) thread inside
          // WriteCheckpoint; the analysis sees the lambda as a separate
          // function, so restate the role it inherits.
          AssumeRole role(writer_role_);
          return SerializeIntervalDelta(i);
        });
    if (!ck.ok()) {
      // The interval itself is committed, published and WAL-durable;
      // only the checkpoint failed. The on-disk state is still the
      // consistent previous generation, but this writer's next
      // checkpoint boundary would silently drift, so refuse further
      // ingest and surface the failure.
      broken_ = Status::Internal(
          "checkpoint failed (" + ck.message() +
          "); the engine no longer accepts intervals");
      return ck;
    }
  }
  return interval;
}

Result<std::unique_ptr<Engine>> Engine::Recover(EngineOptions options) {
  if (!options.durability.enabled || options.durability.dir.empty()) {
    return Status::InvalidArgument(
        "Engine::Recover requires durability.enabled and a data "
        "directory");
  }
  auto engine = std::make_unique<Engine>(std::move(options));
  Durability::RecoveredState state;
  auto durability = Durability::Open(engine->options_.durability, &state);
  if (!durability.ok()) return durability.status();
  engine->durability_ = std::move(durability).value();
  // The recovering thread is the writer until the engine is handed off.
  AssumeRole role(engine->writer_role_);
  for (const std::string& blob : state.blobs) {
    ST_RETURN_IF_ERROR(engine->ReplayInterval(blob));
  }
  engine->recovered_epoch_ = engine->slots_.size();
  engine->Publish();
  return engine;
}

std::string Engine::SerializeIntervalDelta(uint32_t interval) const {
  ByteWriter w;
  w.U32(interval);
  const uint64_t vocab_before =
      interval == 0 ? 0 : slots_[interval - 1]->vocab_size;
  const uint64_t vocab_after = slots_[interval]->vocab_size;
  w.U64(vocab_before);
  w.U64(vocab_after);
  // Words this interval interned. Replay re-interns them in id order, so
  // a recovered dictionary assigns every id exactly as the original run.
  for (uint64_t id = vocab_before; id < vocab_after; ++id) {
    w.Str(dict_.Word(static_cast<KeywordId>(id)));
  }
  const IntervalResult& res = slots_[interval]->result;
  w.U64(res.graph_summary.document_count);
  w.U64(res.graph_summary.keyword_count);
  w.U64(res.graph_summary.raw_edge_count);
  w.U64(res.graph_summary.prune.input_edges);
  w.U64(res.graph_summary.prune.failed_support);
  w.U64(res.graph_summary.prune.failed_chi_square);
  w.U64(res.graph_summary.prune.failed_rho);
  w.U64(res.graph_summary.prune.surviving_edges);
  w.U64(res.biconnected.components);
  w.U64(res.biconnected.articulation_points);
  w.U64(res.biconnected.max_stack_entries);
  w.U64(res.biconnected.spilled_entries);
  w.U64(res.clusters.size());
  for (const Cluster& cluster : res.clusters) {
    w.U32(static_cast<uint32_t>(cluster.keywords.size()));
    for (KeywordId kw : cluster.keywords) w.U32(kw);
    w.U32(static_cast<uint32_t>(cluster.edges.size()));
    for (const WeightedEdge& e : cluster.edges) {
      w.U32(e.u);
      w.U32(e.v);
      w.F64(e.weight);
    }
  }
  WriteIoStats(&w, slots_[interval]->io);
  // The tick's adjacency delta: every edge added by this interval's
  // commit has its head here (edges only point forward in time), so the
  // parents of this interval's nodes are exactly the delta. Stored
  // (raw) weights — replaying AddEdge with them reproduces the graph
  // bits and the running-max normalizer without rerunning the joins.
  uint64_t edge_count = 0;
  for (NodeId c : graph_.IntervalNodes(interval)) {
    edge_count += graph_.StoredParents(c).size();
  }
  w.U64(edge_count);
  for (NodeId c : graph_.IntervalNodes(interval)) {
    for (const ClusterGraphEdge e : graph_.StoredParents(c)) {
      w.U32(e.target);  // from
      w.U32(c);         // to
      w.F64(e.weight);
    }
  }
  return w.Take();
}

Status Engine::ReplayInterval(const std::string& blob) {
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("interval delta: ") + what);
  };
  ByteReader r(blob);
  uint32_t interval = 0;
  if (!r.U32(&interval)) return corrupt("truncated header");
  if (interval != slots_.size()) {
    return corrupt("interval out of order");
  }
  uint64_t vocab_before = 0;
  uint64_t vocab_after = 0;
  if (!r.U64(&vocab_before) || !r.U64(&vocab_after) ||
      vocab_after < vocab_before) {
    return corrupt("bad vocabulary watermarks");
  }
  if (vocab_before != dict_.size()) {
    return corrupt("vocabulary watermark mismatch");
  }
  for (uint64_t id = vocab_before; id < vocab_after; ++id) {
    std::string word;
    if (!r.Str(&word)) return corrupt("truncated keyword");
    if (dict_.Intern(word) != id) {
      return corrupt("keyword id diverged during replay");
    }
  }
  auto slot = std::make_shared<SnapshotInterval>();
  slot->vocab_size = vocab_after;
  IntervalResult& res = slot->result;
  res.interval = interval;
  uint64_t cluster_count = 0;
  if (!r.U64(&res.graph_summary.document_count) ||
      !r.U64(&res.graph_summary.keyword_count) ||
      !r.U64(&res.graph_summary.raw_edge_count) ||
      !r.U64(&res.graph_summary.prune.input_edges) ||
      !r.U64(&res.graph_summary.prune.failed_support) ||
      !r.U64(&res.graph_summary.prune.failed_chi_square) ||
      !r.U64(&res.graph_summary.prune.failed_rho) ||
      !r.U64(&res.graph_summary.prune.surviving_edges) ||
      !r.U64(&res.biconnected.components) ||
      !r.U64(&res.biconnected.articulation_points) ||
      !r.U64(&res.biconnected.max_stack_entries) ||
      !r.U64(&res.biconnected.spilled_entries) || !r.U64(&cluster_count)) {
    return corrupt("truncated interval summary");
  }
  res.clusters.reserve(cluster_count);
  for (uint64_t j = 0; j < cluster_count; ++j) {
    Cluster cluster;
    cluster.interval = interval;
    uint32_t kw_count = 0;
    if (!r.U32(&kw_count)) return corrupt("truncated cluster");
    cluster.keywords.resize(kw_count);
    for (uint32_t i = 0; i < kw_count; ++i) {
      if (!r.U32(&cluster.keywords[i])) return corrupt("truncated cluster");
      if (cluster.keywords[i] >= vocab_after) {
        return corrupt("cluster keyword beyond watermark");
      }
    }
    uint32_t member_edges = 0;
    if (!r.U32(&member_edges)) return corrupt("truncated cluster");
    cluster.edges.resize(member_edges);
    for (uint32_t i = 0; i < member_edges; ++i) {
      if (!r.U32(&cluster.edges[i].u) || !r.U32(&cluster.edges[i].v) ||
          !r.F64(&cluster.edges[i].weight)) {
        return corrupt("truncated cluster edge");
      }
    }
    res.clusters.push_back(std::move(cluster));
  }
  if (!ReadIoStats(&r, &slot->io)) return corrupt("truncated io stats");
  uint64_t edge_count = 0;
  if (!r.U64(&edge_count)) return corrupt("truncated edge count");
  struct ReplayEdge {
    NodeId from;
    NodeId to;
    double weight;
  };
  std::vector<ReplayEdge> edges;
  edges.reserve(edge_count);
  for (uint64_t i = 0; i < edge_count; ++i) {
    ReplayEdge e;
    if (!r.U32(&e.from) || !r.U32(&e.to) || !r.F64(&e.weight)) {
      return corrupt("truncated adjacency edge");
    }
    edges.push_back(e);
  }
  if (!r.AtEnd()) return corrupt("trailing bytes");

  // Adopt — the mirror of CommitInterval/ExtendGraph, with the logged
  // deltas standing in for clustering and the affinity joins. Warm
  // online state is deliberately not rebuilt (it is reader-visible
  // cache, recreated on demand).
  io_ += slot->io;
  for (const Cluster& cluster : res.clusters) {
    clusters_bytes_ +=
        sizeof(Cluster) + cluster.keywords.size() * sizeof(KeywordId);
  }
  const uint64_t cluster_total = res.clusters.size();
  slots_.push_back(std::move(slot));
  const uint32_t added = graph_.AddInterval();
  assert(added == interval);
  (void)added;
  node_of_.emplace_back();
  node_of_.back().reserve(cluster_total);
  for (uint64_t j = 0; j < cluster_total; ++j) {
    node_of_.back().push_back(graph_.AddNode(interval));
  }
  const bool needs_normalization =
      options_.affinity.measure == AffinityMeasure::kIntersection;
  if (needs_normalization) {
    double tick_max = 0;
    for (const ReplayEdge& e : edges) {
      tick_max = std::max(tick_max, e.weight);
    }
    if (tick_max > running_max_affinity_) {
      if (running_max_affinity_ > 0) online_rescale_needed_ = true;
      running_max_affinity_ = tick_max;
      graph_.set_weight_scale(1.0 / running_max_affinity_);
    }
    for (const ReplayEdge& e : edges) {
      ST_RETURN_IF_ERROR(graph_.AddEdge(e.from, e.to, e.weight));
    }
  } else {
    for (const ReplayEdge& e : edges) {
      ST_RETURN_IF_ERROR(
          graph_.AddEdge(e.from, e.to, std::min(e.weight, 1.0)));
    }
  }
  graph_.SortTouched();
  return Status::OK();
}

Result<uint32_t> Engine::IngestInterned(
    const std::vector<std::vector<KeywordId>>& interned,
    size_t vocab_snapshot, uint64_t document_count_override) {
  const uint32_t interval = static_cast<uint32_t>(slots_.size());
  auto slot = ClusterInterval(interval, interned, vocab_snapshot,
                              document_count_override);
  if (!slot.ok()) return slot.status();
  return CommitInterval(std::move(slot).value());
}

Result<uint32_t> Engine::IngestTicks(
    const std::vector<std::vector<std::string>>& ticks,
    const TickCallback& on_tick) {
  AssumeRole role(writer_role_);
  return IngestTicksLocked(ticks, on_tick);
}

Result<uint32_t> Engine::IngestTicksLocked(
    const std::vector<std::vector<std::string>>& ticks,
    const TickCallback& on_tick) {
  if (graph_.frozen()) {
    return Status::InvalidArgument(
        "engine is compacted; create a new engine to ingest");
  }
  if (!broken_.ok()) return broken_;
  const bool pipelined =
      options_.pipeline_ingest && pool_ != nullptr && ticks.size() > 1;
  if (!pipelined) {
    uint32_t ingested = 0;
    for (const auto& posts : ticks) {
      auto r = IngestTextLocked(posts);
      if (!r.ok()) return r.status();
      ++ingested;
      if (on_tick != nullptr) {
        ST_RETURN_IF_ERROR(on_tick(r.value(), posts));
      }
    }
    return ingested;
  }

  // Two-stage pipeline. The caller thread owns every dictionary access
  // (tokenize+intern interval t+1, then commit interval t, in that
  // order), so interning for t+1 finishes before commit t publishes —
  // the snapshot's keyword table is capped at the committed interval's
  // vocab watermark to stay byte-identical to serial ingest. Stage A
  // (clustering) runs on the pool and never touches writer state.
  struct StageA {
    Result<std::shared_ptr<SnapshotInterval>> slot =
        Status::Internal("clustering stage never ran");
    std::future<void> done;
  };
  auto launch = [&](uint32_t interval, const std::vector<std::string>& posts)
      -> std::unique_ptr<StageA> {
    auto interned = std::make_shared<std::vector<std::vector<KeywordId>>>(
        InternDocuments(TokenizePosts(interval, posts)));
    const size_t vocab = dict_.size();
    auto stage = std::make_unique<StageA>();
    StageA* raw = stage.get();
    raw->done = pool_->Submit([this, raw, interned, interval, vocab] {
      raw->slot = ClusterInterval(interval, *interned, vocab);
    });
    return stage;
  };

  const uint32_t base = static_cast<uint32_t>(slots_.size());
  uint32_t ingested = 0;
  std::unique_ptr<StageA> inflight = launch(base, ticks[0]);
  for (size_t t = 0; t < ticks.size(); ++t) {
    std::unique_ptr<StageA> stage = std::move(inflight);
    pool_->Wait(stage->done);
    if (!stage->slot.ok()) {
      RollbackInterning();
      return stage->slot.status();
    }
    if (t + 1 < ticks.size()) {
      inflight = launch(base + static_cast<uint32_t>(t) + 1, ticks[t + 1]);
    }
    // Serial commit of tick t overlaps tick t+1's clustering.
    auto committed = CommitInterval(std::move(stage->slot).value());
    if (!committed.ok()) {
      if (inflight != nullptr) pool_->Wait(inflight->done);
      RollbackInterning();
      return committed.status();
    }
    ++ingested;
    if (on_tick != nullptr) {
      Status s = on_tick(committed.value(), ticks[t]);
      if (!s.ok()) {
        if (inflight != nullptr) pool_->Wait(inflight->done);
        RollbackInterning();
        return s;
      }
    }
  }
  return ingested;
}

Result<uint32_t> Engine::IngestCorpusFile(const std::filesystem::path& path,
                                          const TickCallback& on_tick) {
  AssumeRole role(writer_role_);
  CorpusReader reader;
  ST_RETURN_IF_ERROR(reader.Open(path.string()));
  // Group posts by interval; intervals must be contiguous from the
  // engine's next interval.
  std::map<uint32_t, std::vector<std::string>> by_interval;
  uint32_t interval;
  std::string text;
  while (reader.Next(&interval, &text)) {
    by_interval[interval].push_back(text);
  }
  ST_RETURN_IF_ERROR(reader.status());
  uint32_t expected = static_cast<uint32_t>(slots_.size());
  std::vector<std::vector<std::string>> ticks;
  ticks.reserve(by_interval.size());
  for (auto& [iv, posts] : by_interval) {
    if (iv != expected) {
      return Status::InvalidArgument(
          "corpus intervals must be contiguous from the engine's next "
          "interval");
    }
    ++expected;
    ticks.push_back(std::move(posts));
  }
  return IngestTicksLocked(ticks, on_tick);
}

// Abort path of a pipelined batch: a tick ahead of the failure may
// already have interned its words. Roll the dictionary back to the last
// committed interval's watermark so an aborted batch leaves keyword-id
// assignment exactly where a serial run would — a later ingest then
// stays byte-identical to the unpipelined engine. (A mid-commit failure
// keeps the words: the adopted slot's watermark covers them, and the
// engine is broken anyway.)
void Engine::RollbackInterning() {
  if (broken_.ok()) {
    dict_.TruncateTo(slots_.empty() ? 0 : slots_.back()->vocab_size);
  }
}

Status Engine::ExtendGraph(uint32_t interval) {
  const uint32_t added = graph_.AddInterval();
  assert(added == interval);
  (void)added;
  const auto& clusters = slots_[interval]->result.clusters;
  node_of_.emplace_back();
  node_of_.back().reserve(clusters.size());
  for (uint32_t j = 0; j < clusters.size(); ++j) {
    node_of_.back().push_back(graph_.AddNode(interval));
  }
  if (interval == 0) return Status::OK();

  // Affinity joins between the new interval and the gap-window frontier.
  // Window intervals are independent, so they fan out; per-interval match
  // lists land in fixed slots and are stitched in ascending interval
  // order, keeping edge insertion deterministic.
  const uint32_t window_begin =
      interval > options_.gap + 1 ? interval - options_.gap - 1 : 0;
  struct JoinJob {
    uint32_t iv;
    std::vector<AffinityMatch> matches;
  };
  std::vector<JoinJob> jobs;
  for (uint32_t iv = window_begin; iv < interval; ++iv) {
    jobs.push_back(JoinJob{iv, {}});
  }
  // Per-window-slot scratch, reused tick over tick (allocation-free once
  // warm); slot i is touched only by job i, so pool workers never share.
  while (join_scratch_.size() < jobs.size()) {
    join_scratch_.push_back(std::make_unique<JoinScratch>());
  }
  if (pool_ != nullptr && jobs.size() > 1) {
    // Workers read only immutable slot payloads: alias the guarded
    // vector once, under the role, and capture the alias — a captured
    // `this` would put the reads outside the analysis's view of the
    // held role.
    const auto& slots = slots_;
    const AffinityOptions& affinity = options_.affinity;
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (size_t jidx = 0; jidx < jobs.size(); ++jidx) {
      JoinJob* job = &jobs[jidx];
      JoinScratch* scratch = join_scratch_[jidx].get();
      futures.push_back(
          pool_->Submit([job, scratch, &clusters, &slots, &affinity] {
            SimilarityJoin join(affinity);
            job->matches = join.Join(slots[job->iv]->result.clusters,
                                     clusters, nullptr, scratch);
          }));
    }
    pool_->WaitAll(futures);
  } else {
    SimilarityJoin join(options_.affinity);
    for (size_t jidx = 0; jidx < jobs.size(); ++jidx) {
      JoinJob& job = jobs[jidx];
      job.matches = join.Join(slots_[job.iv]->result.clusters, clusters,
                              nullptr, join_scratch_[jidx].get());
    }
  }

  struct RawEdge {
    NodeId from;
    NodeId to;
    double affinity;
  };
  std::vector<RawEdge> raw;
  for (const JoinJob& job : jobs) {
    for (const AffinityMatch& match : job.matches) {
      raw.push_back(RawEdge{node_of_[job.iv][match.left],
                            node_of_[interval][match.right],
                            match.affinity});
    }
  }

  // Measures without a (0, 1] range (raw intersection counts) are
  // normalized by the running maximum, per the paper's footnote on
  // affinity functions — lazily: edges keep their raw weight and every
  // read applies the shared scale 1/max, so a growing maximum updates one
  // double instead of rewriting O(E) edges. At any point every edge is
  // normalized by the same constant, so path rankings are unaffected.
  const bool needs_normalization =
      options_.affinity.measure == AffinityMeasure::kIntersection;
  if (needs_normalization) {
    double tick_max = 0;
    for (const RawEdge& e : raw) {
      tick_max = std::max(tick_max, e.affinity);
    }
    if (tick_max > running_max_affinity_) {
      if (running_max_affinity_ > 0) {
        // The warm online finder holds paths built from the old scale;
        // rebuild it at the new scale before the next publish.
        online_rescale_needed_ = true;
      }
      running_max_affinity_ = tick_max;
      graph_.set_weight_scale(1.0 / running_max_affinity_);
    }
    for (const RawEdge& e : raw) {
      ST_RETURN_IF_ERROR(graph_.AddEdge(e.from, e.to, e.affinity));
    }
  } else {
    for (const RawEdge& e : raw) {
      ST_RETURN_IF_ERROR(
          graph_.AddEdge(e.from, e.to, std::min(e.affinity, 1.0)));
    }
  }
  graph_.SortTouched();
  return Status::OK();
}

Status Engine::FeedOnline(uint32_t interval) {
  online_->BeginInterval();
  for (size_t j = 0; j < graph_.IntervalNodes(interval).size(); ++j) {
    auto node = online_->AddNode();
    if (!node.ok()) return node.status();
  }
  for (NodeId c : graph_.IntervalNodes(interval)) {
    for (const ClusterGraphEdge& pe : graph_.Parents(c)) {
      ST_RETURN_IF_ERROR(online_->AddEdge(pe.target, c, pe.weight));
    }
  }
  return online_->EndInterval();
}

void Engine::ResetOnlineFinder(size_t k, uint32_t l) {
  OnlineFinderOptions opts;
  opts.k = k;
  opts.l = l;
  opts.gap = options_.gap;
  online_ = std::make_unique<OnlineStableFinder>(opts);
  online_k_ = k;
  online_l_ = l;
  online_fed_ = 0;
}

Status Engine::AdvanceWarmOnline(uint32_t interval) {
  if (online_ != nullptr && online_rescale_needed_) {
    // Weights were rescaled: the warm paths are at the old scale. Rebuild
    // from interval 0 at the current scale (one replay, then marginal
    // cost again).
    ResetOnlineFinder(online_k_, online_l_);
  }
  online_rescale_needed_ = false;
  // Adopt a reader's requested configuration (set when an online query
  // missed the published warm state).
  const uint64_t hint =
      online_hint_.exchange(0, std::memory_order_relaxed);
  if (hint != 0) {
    const size_t k = static_cast<size_t>(hint >> 32);
    const uint32_t l = static_cast<uint32_t>(hint & 0xffffffffULL);
    if (online_ == nullptr || online_k_ != k || online_l_ != l) {
      ResetOnlineFinder(k, l);
    }
  }
  if (online_ == nullptr) return Status::OK();
  for (uint32_t iv = online_fed_; iv <= interval; ++iv) {
    ST_RETURN_IF_ERROR(FeedOnline(iv));
  }
  online_fed_ = interval + 1;
  return Status::OK();
}

void Engine::Publish() {
  WallTimer publish_timer;
  auto snap = std::make_shared<GraphSnapshot>();
  snap->epoch = slots_.size();
  // Seal the adjacency delta: only chunks this tick touched are rebuilt;
  // every other chunk pointer is shared with the previous epoch's graph.
  // The full-rebuild baseline (cow_publish=false) dirties everything
  // first, restoring the old O(graph) publish for comparison.
  if (!options_.cow_publish) graph_.MarkAllSealDirty();
  ClusterGraph::SealStats seal;
  snap->graph = std::make_shared<const ClusterGraph>(
      graph_.SealedCopy(!options_.lazy_renormalize, &seal));
  snap->intervals = slots_;
  // The keyword table is append-only: completed chunks are shared with
  // every earlier snapshot; only the partial tail chunk is copied. The
  // table is capped at the committed interval's vocab watermark — with
  // pipelined ingest the dictionary may already hold the next interval's
  // words.
  const size_t vocab =
      slots_.empty() ? dict_.size() : slots_.back()->vocab_size;
  constexpr size_t kChunk = SnapshotWords::kChunkWords;
  while ((word_chunks_.size() + 1) * kChunk <= vocab) {
    auto chunk = std::make_shared<std::vector<std::string>>();
    chunk->reserve(kChunk);
    const KeywordId base =
        static_cast<KeywordId>(word_chunks_.size() * kChunk);
    for (KeywordId id = base; id < base + kChunk; ++id) {
      chunk->push_back(dict_.Word(id));
      words_bytes_ += sizeof(std::string) + chunk->back().size();
    }
    word_chunks_.push_back(std::move(chunk));
  }
  snap->words.chunks = word_chunks_;
  const size_t full = word_chunks_.size() * kChunk;
  size_t tail_bytes = 0;
  if (vocab > full) {
    // Rebuild the tail chunk only when the vocabulary actually changed
    // since the last publish (e.g. a Compact republish reuses it). The
    // base offset guards against a stale tail from before a chunk
    // boundary was crossed.
    if (word_tail_ == nullptr || word_tail_base_ != full ||
        full + word_tail_->size() != vocab) {
      auto tail = std::make_shared<std::vector<std::string>>();
      tail->reserve(vocab - full);
      for (KeywordId id = static_cast<KeywordId>(full); id < vocab; ++id) {
        tail->push_back(dict_.Word(id));
      }
      word_tail_ = std::move(tail);
      word_tail_base_ = full;
    }
    for (const std::string& w : *word_tail_) {
      tail_bytes += sizeof(std::string) + w.size();
    }
    snap->words.chunks.push_back(word_tail_);
  } else {
    word_tail_.reset();
  }
  snap->words.total = vocab;
  if (online_ != nullptr && online_fed_ == snap->epoch) {
    snap->has_online = true;
    snap->online_k = online_k_;
    snap->online_l = online_l_;
    snap->online_topk = online_->TopK();
  }
  snap->compacted = graph_.frozen();
  snap->stats.intervals = static_cast<uint32_t>(snap->epoch);
  snap->stats.clusters = graph_.node_count();
  snap->stats.edges = graph_.edge_count();
  snap->stats.keywords = vocab;
  snap->stats.graph_bytes = graph_.MemoryBytes();
  snap->stats.io = io_;
  if (durability_ != nullptr) {
    // WAL + checkpoint traffic (fsyncs included). Kept out of io_ so the
    // ingest-side counters a recovered engine replays stay exact.
    snap->stats.io += durability_->io();
    snap->stats.wal_bytes = durability_->wal_bytes();
    snap->stats.checkpoint_ns = durability_->checkpoint_ns();
  }
  snap->stats.recovered_epoch = recovered_epoch_;
  snap->stats.shared_chunk_count = seal.shared_chunks;
  snap->stats.copied_chunk_count = seal.copied_chunks;
  snap->stats.resident_bytes = snap->graph->MemoryBytes() + words_bytes_ +
                               tail_bytes + clusters_bytes_;
  // Answers computed at superseded epochs can never be served again
  // (keys carry the epoch); drop them so the cache holds only live
  // entries.
  cache_->EvictBefore(snap->epoch);
  snap->stats.publish_ns =
      static_cast<uint64_t>(publish_timer.ElapsedNanos());
  std::shared_ptr<const GraphSnapshot> published = std::move(snap);
  std::atomic_store_explicit(&snapshot_, published,
                             std::memory_order_release);
  if (on_publish_) on_publish_(published);
}

std::shared_ptr<const GraphSnapshot> Engine::snapshot() const {
  return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
}

Result<QueryResult> Engine::Query(const stabletext::Query& query) const {
  return QueryAt(snapshot(), query);
}

Result<QueryResult> Engine::QueryAt(
    const std::shared_ptr<const GraphSnapshot>& snap,
    const stabletext::Query& query) const {
  if (snap == nullptr) {
    return Status::InvalidArgument("QueryAt requires a snapshot");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  // Whether `snap` is the live epoch is decided *before* the finder
  // runs: a publish racing a long cold query must not make the warm-up
  // hint below un-storable, or the warm path could never engage under
  // continuous ingest.
  const bool snap_is_latest = snap == snapshot();
  const QueryCacheKey key{snap->epoch, query};
  if (cache_->enabled()) {
    if (auto hit = cache_->Lookup(key)) return *hit;
  }
  auto r = QuerySnapshot(*snap, query);
  if (!r.ok()) return r.status();
  QueryResult out = std::move(r).value();
  const bool diversify =
      query.diversify_prefix > 0 || query.diversify_suffix > 0;
  if (query.algorithm == FinderAlgorithm::kOnline &&
      query.mode == FinderMode::kKlStable && !diversify &&
      !out.warm_online && query.l != 0 && snap->epoch >= 2 &&
      snap_is_latest) {
    // Cold online query: ask the writer to keep this configuration warm
    // from the next tick on (lock-free; last writer wins). Not for
    // l = 0 ("full length") queries — their effective l changes every
    // epoch, so warming one value would force a full replay per tick —
    // and not from stale pinned snapshots, which must not evict the
    // configuration serving live readers.
    const uint64_t hint = PackOnlineHint(query.k, query.l);
    if (hint != 0) {
      online_hint_.store(hint, std::memory_order_relaxed);
    }
  }
  if (cache_->enabled()) {
    cache_->Insert(key, std::make_shared<const QueryResult>(out));
  }
  return out;
}

Status Engine::Compact() {
  AssumeRole role(writer_role_);
  graph_.SortChildren();
  // Republish so readers serve the frozen CSR directly; warm online
  // state is carried over only if it is caught up with the final epoch
  // (Publish checks), which defines the post-compact online contract.
  Publish();
  return Status::OK();
}

EngineStats Engine::stats() const {
  EngineStats stats = snapshot()->stats;
  stats.query_cache_hits = cache_->hits();
  stats.query_cache_misses = cache_->misses();
  if (durability_ != nullptr) {
    // Live atomics, like the cache counters: a checkpoint runs *after*
    // its epoch's publish, so the published point-in-time copy would
    // otherwise lag one boundary behind.
    stats.wal_bytes = durability_->wal_bytes();
    stats.checkpoint_ns = durability_->checkpoint_ns();
  }
  return stats;
}

std::string Engine::RenderChain(const StableClusterChain& chain,
                                size_t max_keywords) const {
  // Rendering resolves keywords through the published word table, not
  // the growing writer-side dictionary, so it is reader-safe. Append-
  // only ids make any snapshot at or after the chain's epoch correct.
  return snapshot()->RenderChain(chain, max_keywords);
}

}  // namespace stabletext
