#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "text/corpus.h"
#include "util/strings.h"

namespace stabletext {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), graph_(0, options_.gap) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

Result<uint32_t> Engine::IngestText(const std::vector<std::string>& posts) {
  const uint32_t interval = interval_count();
  std::vector<Document> documents(posts.size());
  if (pool_ != nullptr && posts.size() > 1) {
    // Tokenization is document-independent: fan chunks out, write by
    // index (order, and therefore downstream keyword ids, never depend
    // on scheduling).
    const size_t chunks = std::min(pool_->size() * 4, posts.size());
    const size_t per_chunk = (posts.size() + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t begin = 0; begin < posts.size(); begin += per_chunk) {
      const size_t end = std::min(posts.size(), begin + per_chunk);
      futures.push_back(pool_->Submit([&, begin, end] {
        DocumentProcessor processor;
        for (size_t i = begin; i < end; ++i) {
          documents[i] = processor.Process(interval, posts[i]);
        }
      }));
    }
    pool_->WaitAll(futures);
  } else {
    DocumentProcessor processor;
    for (size_t i = 0; i < posts.size(); ++i) {
      documents[i] = processor.Process(interval, posts[i]);
    }
  }
  return IngestDocuments(documents);
}

Result<uint32_t> Engine::IngestDocuments(
    const std::vector<Document>& documents) {
  if (graph_.frozen()) {
    return Status::InvalidArgument(
        "engine is compacted; create a new engine to ingest");
  }
  // Intern on the calling thread, in document order: keyword ids are
  // assigned exactly as a sequential run would assign them, no matter how
  // many workers the heavy phase uses.
  std::vector<std::vector<KeywordId>> interned;
  interned.reserve(documents.size());
  for (const Document& doc : documents) {
    std::vector<KeywordId> ids;
    ids.reserve(doc.keywords.size());
    for (const std::string& w : doc.keywords) {
      ids.push_back(dict_.Intern(w));
    }
    std::sort(ids.begin(), ids.end());
    interned.push_back(std::move(ids));
  }
  return IngestInterned(interned, dict_.size());
}

Result<uint32_t> Engine::IngestInterned(
    const std::vector<std::vector<KeywordId>>& interned,
    size_t vocab_snapshot) {
  const uint32_t interval = interval_count();
  auto slot = std::make_unique<IntervalSlot>();
  IntervalClusterer clusterer(&dict_, options_.clustering, &slot->io);
  auto result =
      clusterer.RunInterned(interval, interned, vocab_snapshot, pool_.get());
  if (!result.ok()) return result.status();
  slot->result = std::move(result).value();
  io_ += slot->io;
  slots_.push_back(std::move(slot));
  ST_RETURN_IF_ERROR(ExtendGraph(interval));
  {
    std::lock_guard<std::mutex> lock(online_mutex_);
    if (online_ != nullptr) {
      ST_RETURN_IF_ERROR(FeedOnline(interval));
      online_fed_ = interval + 1;
    }
  }
  return interval;
}

Result<uint32_t> Engine::IngestCorpusFile(const std::filesystem::path& path,
                                          const TickCallback& on_tick) {
  CorpusReader reader;
  ST_RETURN_IF_ERROR(reader.Open(path.string()));
  // Group posts by interval; intervals must be contiguous from the
  // engine's next interval.
  std::map<uint32_t, std::vector<std::string>> by_interval;
  uint32_t interval;
  std::string text;
  while (reader.Next(&interval, &text)) {
    by_interval[interval].push_back(text);
  }
  ST_RETURN_IF_ERROR(reader.status());
  uint32_t expected = interval_count();
  uint32_t ingested = 0;
  for (const auto& [iv, posts] : by_interval) {
    if (iv != expected) {
      return Status::InvalidArgument(
          "corpus intervals must be contiguous from the engine's next "
          "interval");
    }
    auto r = IngestText(posts);
    if (!r.ok()) return r.status();
    ++expected;
    ++ingested;
    if (on_tick != nullptr) {
      ST_RETURN_IF_ERROR(on_tick(r.value(), posts));
    }
  }
  return ingested;
}

Status Engine::ExtendGraph(uint32_t interval) {
  const uint32_t added = graph_.AddInterval();
  assert(added == interval);
  (void)added;
  const auto& clusters = slots_[interval]->result.clusters;
  node_of_.emplace_back();
  node_of_.back().reserve(clusters.size());
  for (uint32_t j = 0; j < clusters.size(); ++j) {
    const NodeId id = graph_.AddNode(interval);
    node_of_.back().push_back(id);
    cluster_of_node_.emplace_back(interval, j);
  }
  if (interval == 0) return Status::OK();

  // Affinity joins between the new interval and the gap-window frontier.
  // Window intervals are independent, so they fan out; per-interval match
  // lists land in fixed slots and are stitched in ascending interval
  // order, keeping edge insertion deterministic.
  const uint32_t window_begin =
      interval > options_.gap + 1 ? interval - options_.gap - 1 : 0;
  struct JoinJob {
    uint32_t iv;
    std::vector<AffinityMatch> matches;
  };
  std::vector<JoinJob> jobs;
  for (uint32_t iv = window_begin; iv < interval; ++iv) {
    jobs.push_back(JoinJob{iv, {}});
  }
  if (pool_ != nullptr && jobs.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (JoinJob& job : jobs) {
      futures.push_back(pool_->Submit([this, &job, &clusters] {
        SimilarityJoin join(options_.affinity);
        job.matches =
            join.Join(slots_[job.iv]->result.clusters, clusters);
      }));
    }
    pool_->WaitAll(futures);
  } else {
    SimilarityJoin join(options_.affinity);
    for (JoinJob& job : jobs) {
      job.matches = join.Join(slots_[job.iv]->result.clusters, clusters);
    }
  }

  struct RawEdge {
    NodeId from;
    NodeId to;
    double affinity;
  };
  std::vector<RawEdge> raw;
  for (const JoinJob& job : jobs) {
    for (const AffinityMatch& match : job.matches) {
      raw.push_back(RawEdge{node_of_[job.iv][match.left],
                            node_of_[interval][match.right],
                            match.affinity});
    }
  }

  // Measures without a (0, 1] range (raw intersection counts) are
  // normalized by the running maximum, per the paper's footnote on
  // affinity functions. When a new tick raises the maximum, the weights
  // already in the graph are rescaled in place, so at any point every
  // edge is normalized by the same constant — path rankings are
  // unaffected by the shared scale.
  const bool needs_normalization =
      options_.affinity.measure == AffinityMeasure::kIntersection;
  if (needs_normalization) {
    double tick_max = 0;
    for (const RawEdge& e : raw) {
      tick_max = std::max(tick_max, e.affinity);
    }
    if (tick_max > running_max_affinity_) {
      if (running_max_affinity_ > 0) {
        ST_RETURN_IF_ERROR(
            graph_.ScaleEdgeWeights(running_max_affinity_ / tick_max));
        // The warm online finder holds paths built from the old scale.
        online_.reset();
      }
      running_max_affinity_ = tick_max;
    }
  }
  for (const RawEdge& e : raw) {
    double w = e.affinity;
    if (needs_normalization && running_max_affinity_ > 0) {
      w /= running_max_affinity_;
    }
    w = std::min(w, 1.0);
    ST_RETURN_IF_ERROR(graph_.AddEdge(e.from, e.to, w));
  }
  graph_.SortTouched();
  return Status::OK();
}

Status Engine::FeedOnline(uint32_t interval) const {
  online_->BeginInterval();
  for (size_t j = 0; j < graph_.IntervalNodes(interval).size(); ++j) {
    auto node = online_->AddNode();
    if (!node.ok()) return node.status();
  }
  for (NodeId c : graph_.IntervalNodes(interval)) {
    for (const ClusterGraphEdge& pe : graph_.Parents(c)) {
      ST_RETURN_IF_ERROR(online_->AddEdge(pe.target, c, pe.weight));
    }
  }
  return online_->EndInterval();
}

Result<QueryResult> Engine::QueryOnline(
    const stabletext::Query& query) const {
  const uint32_t m = interval_count();
  QueryResult out;
  if (m < 2) return out;
  const uint32_t l = query.l == 0 ? m - 1 : query.l;
  // The stream simply has no length-l paths yet: an empty answer, not an
  // error — the monitor keeps polling as intervals arrive.
  if (l > m - 1) return out;
  std::lock_guard<std::mutex> lock(online_mutex_);
  if (online_ == nullptr || online_k_ != query.k || online_l_ != l) {
    OnlineFinderOptions options;
    options.k = query.k;
    options.l = l;
    options.gap = options_.gap;
    online_ = std::make_unique<OnlineStableFinder>(options);
    online_k_ = query.k;
    online_l_ = l;
    online_fed_ = 0;
  }
  // Catch up on intervals not yet fed (0 after a post-ingest query: the
  // ingest already did the marginal Section 4.6 work). Report only this
  // query's marginal I/O, like every other algorithm — a fully warm
  // query costs nothing.
  const IoStats before = online_->io();
  for (uint32_t iv = online_fed_; iv < m; ++iv) {
    ST_RETURN_IF_ERROR(FeedOnline(iv));
  }
  online_fed_ = m;
  out.finder.paths = online_->TopK();
  out.finder.io = online_->io() - before;
  ST_ASSIGN_OR_RETURN(out.chains, ToChains(out.finder.paths));
  return out;
}

Result<QueryResult> Engine::Query(const stabletext::Query& query) const {
  if (query.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  // Serving semantics: asking for chains of (minimum) length l before
  // l+1 intervals exist is not an error, the stream just has no such
  // chains yet — in either mode. (The graph-level RunFinder keeps strict
  // validation.)
  if (query.l != 0 && interval_count() > 0 &&
      query.l > interval_count() - 1) {
    return QueryResult{};
  }
  const bool diversify =
      query.diversify_prefix > 0 || query.diversify_suffix > 0;
  if (query.algorithm == FinderAlgorithm::kOnline &&
      query.mode == FinderMode::kKlStable && !diversify) {
    // The warm streaming path; everything else goes through the registry
    // (a diversified online query replays, trading the warm cache for the
    // enlarged candidate pool).
    return QueryOnline(query);
  }
  auto r = RunFinder(graph_, query);
  if (!r.ok()) return r.status();
  QueryResult out;
  out.finder = std::move(r).value();
  ST_ASSIGN_OR_RETURN(out.chains, ToChains(out.finder.paths));
  return out;
}

Status Engine::Compact() {
  graph_.SortChildren();
  return Status::OK();
}

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.intervals = interval_count();
  stats.clusters = graph_.node_count();
  stats.edges = graph_.edge_count();
  stats.keywords = dict_.size();
  stats.graph_bytes = graph_.MemoryBytes();
  stats.io = io_;
  return stats;
}

const Cluster* Engine::NodeCluster(NodeId node) const {
  const auto& [i, j] = cluster_of_node_[node];
  return &slots_[i]->result.clusters[j];
}

Result<std::vector<StableClusterChain>> Engine::ToChains(
    const std::vector<StablePath>& paths) const {
  std::vector<StableClusterChain> chains;
  chains.reserve(paths.size());
  for (const StablePath& path : paths) {
    StableClusterChain chain;
    chain.path = path;
    for (NodeId node : path.nodes) {
      chain.clusters.push_back(NodeCluster(node));
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::string Engine::RenderChain(const StableClusterChain& chain,
                                size_t max_keywords) const {
  std::string out = StringPrintf(
      "stable cluster: length=%u weight=%.3f stability=%.3f\n",
      chain.path.length, chain.path.weight, chain.path.stability());
  for (const Cluster* cluster : chain.clusters) {
    out += StringPrintf("  interval %u: %s\n", cluster->interval,
                        cluster->ToString(dict_, max_keywords).c_str());
  }
  return out;
}

}  // namespace stabletext
