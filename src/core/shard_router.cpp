#include "core/shard_router.h"

namespace stabletext {

uint64_t ShardHashKeyword(std::string_view keyword) {
  // FNV-1a 64: tiny, allocation-free, and stable — this value is a
  // persistence contract (shard directory membership), not just a load
  // balancer, so no std::hash (implementation-defined) here.
  uint64_t h = 14695981039346656037ull;
  for (const char c : keyword) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t ShardOfKeyword(std::string_view keyword, uint32_t shards) {
  if (shards <= 1) return 0;
  return static_cast<uint32_t>(ShardHashKeyword(keyword) % shards);
}

uint32_t ShardOfDocument(const Document& document, uint32_t shards) {
  if (shards <= 1 || document.keywords.empty()) return 0;
  return ShardOfKeyword(document.keywords.front(), shards);
}

RoutedTick RouteTick(const std::vector<Document>& documents,
                     uint32_t shards) {
  RoutedTick routed;
  routed.shards.resize(shards == 0 ? 1 : shards);
  routed.total_documents = documents.size();
  for (const Document& doc : documents) {
    routed.shards[ShardOfDocument(doc, shards)].push_back(doc);
  }
  return routed;
}

}  // namespace stabletext
