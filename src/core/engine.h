// Engine: the library's public serving API, shaped for the paper's online
// scenario (Section 4.6) — intervals arrive continuously from a crawler and
// queries may be asked at any time. Ingest(interval) commits one interval:
// it clusters the documents (Section 3), affinity-joins the new clusters
// against the gap-window frontier (Section 4.1), and extends the cluster
// graph in place. Query() is valid between any two ingests — there is no
// build barrier — and reaches every finder (bfs, dfs, ta, brute-force,
// online; kl-stable and normalized modes; optional diversification)
// through the finder registry.
//
// With options.threads > 1 the heavy per-tick work (tokenization, pair
// counting, external sort, pruning, biconnected decomposition, and the
// per-window affinity joins) fans out on a thread pool. Output is
// deterministic across thread counts.
//
// The legacy batch facade (StableClusterPipeline in core/pipeline.h) is a
// deprecated shim over this class.

#ifndef STABLETEXT_CORE_ENGINE_H_
#define STABLETEXT_CORE_ENGINE_H_

#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "affinity/similarity_join.h"
#include "core/interval_clusterer.h"
#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/online_finder.h"
#include "util/thread_pool.h"

namespace stabletext {

/// Options for the engine.
struct EngineOptions {
  IntervalClustererOptions clustering;
  AffinityOptions affinity;
  uint32_t gap = 0;  ///< g of Section 4: edges span <= gap+1 intervals.
  /// Worker threads for tokenization, interval clustering internals and
  /// the per-tick affinity joins. 1 = fully sequential (no pool).
  /// Results are byte-identical for every value.
  size_t threads = 1;
};

/// The library-wide query type: algorithm, mode, k, l, diversification.
/// (Defined next to the finder registry; the gap is an ingest-time
/// property fixed by EngineOptions, not a query-time knob.)
using Query = FinderQuery;

/// A stable cluster rendered for consumption: the chain of clusters plus
/// the path's weight/length/stability.
struct StableClusterChain {
  StablePath path;
  std::vector<const Cluster*> clusters;  ///< Borrowed from the engine.
};

/// \brief Answer to one Query: resolved chains plus the finder's raw
/// paths and cost counters.
struct QueryResult {
  std::vector<StableClusterChain> chains;
  StableFinderResult finder;  ///< paths mirror chains; io/memory/work.
};

/// Aggregate engine state for monitoring endpoints.
struct EngineStats {
  uint32_t intervals = 0;
  size_t clusters = 0;       ///< Graph nodes.
  size_t edges = 0;
  size_t keywords = 0;       ///< Dictionary size.
  size_t graph_bytes = 0;    ///< Resident adjacency bytes.
  IoStats io;                ///< Ingest-side traffic, all ticks summed.
};

/// \brief Incremental stable-cluster engine.
///
/// Usage:
///   Engine engine(options);
///   engine.IngestText(day0_posts);        // one call per arriving tick
///   auto r = engine.Query({...});         // valid at any time
///   engine.IngestText(day1_posts);
///   r = engine.Query({...});              // reflects both intervals
///
/// Ingest commits synchronously: when it returns OK the interval is
/// queryable. Query never mutates observable state (the warm online-finder
/// cache is invisible). Compact() optionally freezes the graph into CSR
/// for read-only serving; ingest is an error afterwards.
///
/// Thread contract: Ingest*/Compact are writers and must be externally
/// exclusive with every other call; between ingests, any number of
/// Query() calls may run concurrently (the warm online cache is
/// internally synchronized).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Preprocesses, clusters and commits one interval of raw posts.
  /// Intervals are implicitly numbered 0, 1, ... in arrival order.
  /// Returns the interval index.
  Result<uint32_t> IngestText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Result<uint32_t> IngestDocuments(const std::vector<Document>& documents);

  /// Invoked after each corpus interval commits: the interval index and
  /// its raw posts. A non-OK return aborts the ingest.
  using TickCallback =
      std::function<Status(uint32_t interval,
                           const std::vector<std::string>& posts)>;

  /// Streams a whole corpus file (CorpusWriter format; intervals must be
  /// contiguous from the engine's next interval) tick by tick. Returns
  /// the number of intervals ingested. `on_tick`, when non-null, runs
  /// after each committed interval (per-tick reporting, interleaved
  /// queries).
  Result<uint32_t> IngestCorpusFile(const std::filesystem::path& path,
                                    const TickCallback& on_tick = nullptr);

  /// Answers `query` on everything ingested so far. Algorithms: bfs, dfs,
  /// ta (full paths, gap 0), brute-force, online (kept warm across
  /// ingests). Modes: kl-stable, normalized. See FinderQuery for the
  /// diversification and tuning knobs.
  Result<QueryResult> Query(const stabletext::Query& query) const;

  /// Freezes the cluster graph into immutable CSR adjacency for read-only
  /// serving. Idempotent; Ingest* fails afterwards.
  Status Compact();

  /// True once Compact() has been called.
  bool compacted() const { return graph_.frozen(); }

  // Introspection.
  uint32_t interval_count() const {
    return static_cast<uint32_t>(slots_.size());
  }
  const IntervalResult& interval_result(uint32_t i) const {
    return slots_[i]->result;
  }
  const KeywordDict& dict() const { return dict_; }
  const ClusterGraph& graph() const { return graph_; }
  /// Ingest-side I/O accounting (per-interval stats summed in order).
  const IoStats& io() const { return io_; }
  EngineStats stats() const;

  /// Renders a chain like the paper's stable-cluster figures: one line per
  /// interval with the cluster's keywords.
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const;

 private:
  // One committed interval's outputs.
  struct IntervalSlot {
    IntervalResult result;
    IoStats io;
  };

  // Clusters `interned` documents as interval interval_count() and
  // commits: node allocation, frontier joins, graph extension, online
  // cache feed.
  Result<uint32_t> IngestInterned(
      const std::vector<std::vector<KeywordId>>& interned,
      size_t vocab_snapshot);
  // Joins the new interval's clusters against the gap window and extends
  // the graph in place (the incremental half of the old BuildClusterGraph).
  Status ExtendGraph(uint32_t interval);
  // Feeds interval `interval`'s nodes and parent edges into the warm
  // online finder, if one is active.
  Status FeedOnline(uint32_t interval) const;
  Result<QueryResult> QueryOnline(const stabletext::Query& query) const;
  Result<std::vector<StableClusterChain>> ToChains(
      const std::vector<StablePath>& paths) const;
  const Cluster* NodeCluster(NodeId node) const;

  EngineOptions options_;
  KeywordDict dict_;
  IoStats io_;
  std::vector<std::unique_ptr<IntervalSlot>> slots_;
  std::unique_ptr<ThreadPool> pool_;  // Null when threads <= 1.
  ClusterGraph graph_;
  // node_of_[i][j] = cluster graph node of cluster j in interval i.
  std::vector<std::vector<NodeId>> node_of_;
  // Reverse map: node -> (interval, index).
  std::vector<std::pair<uint32_t, uint32_t>> cluster_of_node_;
  // Running maximum raw affinity, for measures without a (0, 1] range
  // (kIntersection): edge weights are stored normalized by this value and
  // rescaled in place whenever it grows.
  double running_max_affinity_ = 0;

  // Warm streaming-finder state (Section 4.6). Created by the first
  // online query; subsequent ingests feed it incrementally, so online
  // queries after a tick cost O(1). Invisible to callers: the cached
  // answer is identical to a from-scratch replay. Guarded by
  // online_mutex_ so concurrent (const) queries do not race on the lazy
  // build/catch-up.
  mutable std::mutex online_mutex_;
  mutable std::unique_ptr<OnlineStableFinder> online_;
  mutable size_t online_k_ = 0;
  mutable uint32_t online_l_ = 0;
  mutable uint32_t online_fed_ = 0;  // Intervals already fed.
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_ENGINE_H_
