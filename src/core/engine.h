// Engine: the library's public serving API, shaped for the paper's online
// scenario (Section 4.6) — intervals arrive continuously from a crawler and
// queries may be asked at any time, from any number of reader threads.
// Ingest(interval) commits one interval: it clusters the documents
// (Section 3), affinity-joins the new clusters against the gap-window
// frontier (Section 4.1), extends the cluster graph in place, and then
// publishes an immutable GraphSnapshot (chunked CSR adjacency + interval
// metadata + warm streaming-finder state) with an atomic shared_ptr swap.
// Publishing is O(delta): only the adjacency chunks the tick touched are
// sealed; every untouched chunk is shared by shared_ptr with the previous
// epoch, and raw-intersection weights renormalize lazily through a
// per-snapshot scale instead of an O(E) rewrite.
// Query() runs entirely against the snapshot — read-only EdgeSpan
// traversal — so readers never wait on ingest work and never observe a
// half-committed interval. The only synchronization on the query path is
// the snapshot pointer load itself (C++17 atomic shared_ptr operations:
// a briefly held pooled lock, never the writer's tick) plus, when
// enabled, a short query-cache shard lock. The cache (core/query_cache.h)
// is a small sharded LRU keyed by (epoch, query), swept at every
// publish, absorbing repeated hot queries.
//
// With options.threads > 1 the heavy per-tick work (tokenization, pair
// counting, external sort, pruning, biconnected decomposition, and the
// per-window affinity joins) fans out on a thread pool. Output is
// deterministic across thread counts.
//
// The legacy batch facade (StableClusterPipeline in core/pipeline.h) is a
// deprecated shim over this class.

#ifndef STABLETEXT_CORE_ENGINE_H_
#define STABLETEXT_CORE_ENGINE_H_

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "affinity/similarity_join.h"
#include "core/durability.h"
#include "core/interval_clusterer.h"
#include "core/query_cache.h"
#include "core/snapshot.h"
#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/online_finder.h"
#include "util/annotated_mutex.h"
#include "util/thread_pool.h"

namespace stabletext {

/// Options for the engine.
struct EngineOptions {
  IntervalClustererOptions clustering;
  AffinityOptions affinity;
  uint32_t gap = 0;  ///< g of Section 4: edges span <= gap+1 intervals.
  /// Worker threads for tokenization, interval clustering internals and
  /// the per-tick affinity joins. 1 = fully sequential (no pool).
  /// Results are byte-identical for every value.
  size_t threads = 1;
  /// Query-cache knobs (entries_per_shard = 0 disables caching).
  QueryCacheOptions query_cache;
  /// Chunk-shared copy-on-write publish: each committed interval seals
  /// only the adjacency chunks it touched and shares the rest with the
  /// previous epoch (O(delta) publish). false rebuilds every chunk per
  /// publish — the old full-copy cost model, kept as the bench_publish
  /// baseline. Results are byte-identical either way.
  bool cow_publish = true;
  /// Lazy running-max renormalization for raw-intersection affinities:
  /// the graph stores raw weights and every snapshot carries the epoch's
  /// normalizer, applied at edge-read time (a rescale is O(1) instead of
  /// an O(E) rewrite). false materializes normalized weights into every
  /// rebuilt chunk at publish (the eager baseline). Byte-identical
  /// results either way; only measures without a (0, 1] range
  /// (kIntersection) are affected at all.
  bool lazy_renormalize = true;
  /// Two-stage batch ingest (IngestTicks/IngestCorpusFile with
  /// threads > 1): tokenization+clustering of interval t+1 runs on the
  /// pool while the serial affinity-join/graph-extension of interval t
  /// commits. Byte-identical to serial ingest at any thread count.
  bool pipeline_ingest = true;
  /// Crash durability (WAL + checkpoints; see core/durability.h). When
  /// enabled the engine must be built with Engine::Recover — a plain
  /// constructor refuses to ingest, because it has no way to report a
  /// failed log/checkpoint recovery. Disabled: no file is ever touched.
  DurabilityOptions durability;
};

/// The library-wide query type: algorithm, mode, k, l, diversification.
/// (Defined next to the finder registry; the gap is an ingest-time
/// property fixed by EngineOptions, not a query-time knob.)
using Query = FinderQuery;

/// \brief Incremental stable-cluster engine with snapshot-isolated serving.
///
/// Usage:
///   Engine engine(options);
///   engine.IngestText(day0_posts);        // one call per arriving tick
///   auto r = engine.Query({...});         // valid at any time
///   engine.IngestText(day1_posts);
///   r = engine.Query({...});              // reflects both intervals
///
/// Ingest commits synchronously: when it returns OK the interval is
/// queryable (the commit's last step publishes the new epoch's snapshot).
/// A failed ingest publishes nothing — readers keep serving the last
/// epoch — and, if the failure hit mid-commit, further ingest is
/// refused (the half-committed writer state can never become visible).
/// Query never mutates observable state. Compact() optionally freezes the
/// writer graph into CSR for read-only serving; ingest is an error
/// afterwards.
///
/// Thread contract: Ingest*/Compact are writers and must be externally
/// exclusive with each other; Query()/QueryAt()/snapshot()/stats()/
/// compacted()/RenderChain() may run concurrently with them — and with
/// each other —
/// from any number of threads. Each query reads one published epoch: it
/// sees either the state before an in-flight ingest or the state after
/// it, never a partial interval. The remaining introspection accessors
/// (graph(), dict(), interval_result(), io()) read writer-side state
/// and are only safe on the ingest thread, or when ingest is quiescent.
///
/// The writer side of this contract is machine-checked (Clang
/// -Wthread-safety): `writer_role_` is a ThreadRole capability
/// (util/annotated_mutex.h). Every writer-side field is
/// GUARDED_BY(writer_role_) and every commit-path method REQUIRES it;
/// public entry points assume the role and delegate to private *Locked
/// implementations, so "CommitInterval runs on the writer thread only"
/// is a compile-time statement, not a comment.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// \brief Opens (or creates) a durable engine from its data directory.
  ///
  /// Restores the newest checkpoint, replays the write-ahead log's valid
  /// tail (a torn or corrupt tail is truncated, never replayed), and
  /// resumes ingest exactly where the crash left off: the recovered
  /// engine is byte-identical to one that ingested the same intervals
  /// uninterrupted — same keyword ids, clusters, adjacency bits and
  /// query answers (warm online state is the one deliberate exception:
  /// it is reader-visible cache, rebuilt on demand, never persisted).
  /// Recovery lands on the epoch that was published at the crash, or one
  /// later when the crash hit between the WAL fsync and the publish.
  /// Requires options.durability.enabled and a directory; this is the
  /// only way to construct an engine that accepts durable ingest.
  static Result<std::unique_ptr<Engine>> Recover(EngineOptions options);

  /// Preprocesses, clusters and commits one interval of raw posts.
  /// Intervals are implicitly numbered 0, 1, ... in arrival order.
  /// Returns the interval index.
  Result<uint32_t> IngestText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Result<uint32_t> IngestDocuments(const std::vector<Document>& documents);

  /// IngestDocuments for one shard of a partitioned tick: `documents`
  /// are this engine's partition, but the chi-squared/rho independence
  /// tests run against `global_document_count` — the whole tick's n
  /// across every shard — so partitioning a tick does not shift the
  /// Section 3 statistics (see
  /// IntervalClustererOptions::document_count_override). With
  /// global_document_count == documents.size() this is exactly
  /// IngestDocuments. Used by ShardedEngine.
  Result<uint32_t> IngestDocumentsGlobal(
      const std::vector<Document>& documents,
      uint64_t global_document_count);

  /// Invoked after each corpus interval commits: the interval index and
  /// its raw posts. A non-OK return aborts the ingest.
  using TickCallback =
      std::function<Status(uint32_t interval,
                           const std::vector<std::string>& posts)>;

  /// Ingests a batch of ticks (one interval per element) in order, with
  /// the two-stage pipeline when options.threads > 1 and
  /// options.pipeline_ingest: while interval t runs its serial
  /// affinity-join/graph-extension/publish, interval t+1's tokenization
  /// and clustering already execute on the worker pool — the
  /// cross-interval overlap of the old batch pipeline, with results
  /// byte-identical to one IngestText call per tick. Commit semantics
  /// per tick match IngestText (each interval is queryable before
  /// `on_tick` runs for it). Returns the number of intervals ingested.
  Result<uint32_t> IngestTicks(
      const std::vector<std::vector<std::string>>& ticks,
      const TickCallback& on_tick = nullptr);

  /// Streams a whole corpus file (CorpusWriter format; intervals must be
  /// contiguous from the engine's next interval) tick by tick through
  /// IngestTicks (pipelined when configured). Returns the number of
  /// intervals ingested. `on_tick`, when non-null, runs after each
  /// committed interval (per-tick reporting, interleaved queries).
  Result<uint32_t> IngestCorpusFile(const std::filesystem::path& path,
                                    const TickCallback& on_tick = nullptr);

  /// Answers `query` on the latest published epoch. Algorithms: bfs, dfs,
  /// ta (full paths, gap 0), brute-force, online (kept warm across
  /// ingests). Modes: kl-stable, normalized. See FinderQuery for the
  /// diversification and tuning knobs. Safe to call concurrently with
  /// ingest from any number of threads; the answer's epoch is recorded in
  /// QueryResult::epoch.
  Result<QueryResult> Query(const stabletext::Query& query) const;

  /// Answers `query` on a pinned snapshot (from snapshot(), possibly
  /// several epochs old) — several queries against the same pointer see
  /// one consistent epoch even while ingest advances. Uses the query
  /// cache and records warm-online hints exactly like Query().
  Result<QueryResult> QueryAt(
      const std::shared_ptr<const GraphSnapshot>& snap,
      const stabletext::Query& query) const;

  /// The latest published epoch's read view. Never null; epoch 0 (an
  /// empty snapshot) before the first ingest. Holding the pointer pins
  /// every structure the epoch references.
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Invoked on the writer thread right after every epoch publish
  /// (constructor, Ingest*, Recover, Compact), with the snapshot just
  /// made visible. The callback runs inside the ingest path, so it must
  /// be O(1) — hand the pointer to another thread, don't query on it.
  using PublishCallback =
      std::function<void(const std::shared_ptr<const GraphSnapshot>&)>;

  /// Installs (or, with nullptr, clears) the publish callback. Writer-
  /// side: must not race Ingest*/Compact — install before ingest starts,
  /// clear after it stops. The serving layer (net::Server) uses this to
  /// learn about new epochs for subscription pushes.
  void SetPublishCallback(PublishCallback cb) {
    AssumeRole role(writer_role_);
    on_publish_ = std::move(cb);
  }

  /// Freezes the writer's cluster graph into immutable CSR adjacency and
  /// publishes a final snapshot. Idempotent; Ingest* fails afterwards.
  ///
  /// Post-compact online semantics (defined): warm streaming-finder
  /// state survives into the final snapshot only if it is caught up with
  /// the final epoch; a post-compact online query for any other (k, l)
  /// replays the frozen graph through the registry — identical paths,
  /// replay cost — and can no longer be warmed (there are no further
  /// ingests to consume the warm-up hint).
  Status Compact();

  /// True once Compact() has been called. Reader-safe (reads the
  /// published snapshot, not the writer graph).
  bool compacted() const { return snapshot()->compacted; }

  // Introspection. interval_count/stats are reader-safe; the borrowed
  // references below are writer-side (see the thread contract above).
  // They carry NO_THREAD_SAFETY_ANALYSIS as a *documented escape*: the
  // caller, not the engine, guarantees quiescence, which the analysis
  // cannot see.
  uint32_t interval_count() const {
    return static_cast<uint32_t>(snapshot()->epoch);
  }
  const IntervalResult& interval_result(uint32_t i) const
      NO_THREAD_SAFETY_ANALYSIS {
    return slots_[i]->result;
  }
  const KeywordDict& dict() const { return dict_; }
  const ClusterGraph& graph() const NO_THREAD_SAFETY_ANALYSIS {
    return graph_;
  }
  /// Ingest-side I/O accounting (per-interval stats summed in order).
  const IoStats& io() const NO_THREAD_SAFETY_ANALYSIS { return io_; }
  /// Point-in-time stats of the latest epoch plus live cache counters.
  EngineStats stats() const;

  /// Renders a chain like the paper's stable-cluster figures: one line per
  /// interval with the cluster's keywords. Resolves keywords through the
  /// published snapshot's word table, so it is safe from reader threads
  /// while ingest runs.
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const;

 private:
  // *Locked bodies of the public writer entry points: public methods
  // assume writer_role_ once and delegate here, so writer methods can
  // call each other without re-acquiring (the analysis rejects a
  // double-assume).
  Result<uint32_t> IngestTextLocked(const std::vector<std::string>& posts)
      REQUIRES(writer_role_);
  // document_count_override threads the tick-global n of a sharded
  // ingest into the clustering statistics; 0 (every non-sharded path)
  // keeps the local document count.
  Result<uint32_t> IngestDocumentsLocked(
      const std::vector<Document>& documents,
      uint64_t document_count_override = 0) REQUIRES(writer_role_);
  Result<uint32_t> IngestTicksLocked(
      const std::vector<std::vector<std::string>>& ticks,
      const TickCallback& on_tick) REQUIRES(writer_role_);
  // Pool-parallel tokenization of raw posts (document order preserved).
  // No REQUIRES: touches only unguarded state (options_, pool_), so the
  // pipelined stage-A lambda may call it off the writer role.
  std::vector<Document> TokenizePosts(
      uint32_t interval, const std::vector<std::string>& posts);
  // Serial keyword interning in document order (dictionary ids must be
  // assigned exactly as a sequential run would assign them). dict_ is
  // deliberately outside writer_role_ (see its comment below).
  std::vector<std::vector<KeywordId>> InternDocuments(
      const std::vector<Document>& documents);
  // Stage A of a tick: the Section 3 clustering of `interned` as interval
  // `interval`. Pure with respect to writer state (never touches the
  // dictionary or graph), so the pipeline may run it on the pool while
  // the previous interval commits — hence no REQUIRES(writer_role_).
  Result<std::shared_ptr<SnapshotInterval>> ClusterInterval(
      uint32_t interval, const std::vector<std::vector<KeywordId>>& interned,
      size_t vocab_snapshot, uint64_t document_count_override = 0);
  // Stage B of a tick (serial): slot adoption, frontier joins, graph
  // extension, warm-online feed, snapshot publish.
  Result<uint32_t> CommitInterval(std::shared_ptr<SnapshotInterval> slot)
      REQUIRES(writer_role_);
  // ClusterInterval + CommitInterval (the unpipelined tick).
  Result<uint32_t> IngestInterned(
      const std::vector<std::vector<KeywordId>>& interned,
      size_t vocab_snapshot,
      uint64_t document_count_override = 0) REQUIRES(writer_role_);
  // Joins the new interval's clusters against the gap window and extends
  // the graph in place (the incremental half of the old BuildClusterGraph).
  Status ExtendGraph(uint32_t interval) REQUIRES(writer_role_);
  // Feeds interval `interval`'s nodes and parent edges into the warm
  // online finder. Writer-side.
  Status FeedOnline(uint32_t interval) REQUIRES(writer_role_);
  // Replaces the warm online finder with a fresh (k, l) instance that
  // will be fed from interval 0.
  void ResetOnlineFinder(size_t k, uint32_t l) REQUIRES(writer_role_);
  // Creates/advances the warm online finder up to `interval` (consuming
  // any reader hint), writer-side.
  Status AdvanceWarmOnline(uint32_t interval) REQUIRES(writer_role_);
  // Builds and atomically publishes the snapshot for the current state.
  void Publish() REQUIRES(writer_role_);
  // Rolls the dictionary back to the last committed interval's vocab
  // watermark after an aborted pipelined batch (IngestTicksLocked).
  void RollbackInterning() REQUIRES(writer_role_);
  // Serializes committed interval `interval`'s delta — new keywords
  // since the previous watermark, clusters, per-tick I/O, and its
  // adjacency edges at stored weights — into the blob ReplayInterval
  // consumes. Used for both the per-commit WAL record and the
  // checkpoint payload (the adjacency is read back from the graph, so
  // nothing per-tick needs retaining).
  std::string SerializeIntervalDelta(uint32_t interval) const
      REQUIRES(writer_role_);
  // Replays one serialized delta: re-interns the words (validating id
  // assignment), adopts the slot, extends the graph with the logged
  // edges and re-derives the running-max scale. The write-side mirror
  // of CommitInterval minus durability, warm-online and publish.
  Status ReplayInterval(const std::string& blob) REQUIRES(writer_role_);

  // The writer-thread capability: held (via AssumeRole) by whichever
  // single thread is currently allowed to ingest. Zero-cost — it only
  // exists so the annotations below are checkable.
  ThreadRole writer_role_;

  EngineOptions options_;
  // Deliberately NOT guarded by writer_role_: with pipelined ingest the
  // stage-A lambda interns interval t+1's words on the caller thread
  // while CommitInterval(t) runs, and ClusterInterval reads it from pool
  // workers. Its own contract (append-only ids, single interning thread)
  // is enforced by IngestTicks' structure, not by a capability.
  KeywordDict dict_;
  IoStats io_ GUARDED_BY(writer_role_);
  std::vector<std::shared_ptr<const SnapshotInterval>> slots_
      GUARDED_BY(writer_role_);
  std::unique_ptr<ThreadPool> pool_;  // Null when threads <= 1.
  ClusterGraph graph_ GUARDED_BY(writer_role_);
  // node_of_[i][j] = cluster graph node of cluster j in interval i.
  // (The reverse mapping needs no table: an interval's node ids are
  // dense and contiguous in cluster order — see
  // GraphSnapshot::NodeCluster.)
  std::vector<std::vector<NodeId>> node_of_ GUARDED_BY(writer_role_);
  // Arena discipline for the per-tick gap-window joins (the CommitInterval
  // hot path): one JoinScratch per window position, created on first use
  // and reused every tick, so the flat inverted index and the seen set
  // stop allocating once they reach the stream's high-water mark. Slot i
  // is owned by window job i for the duration of ExtendGraph (jobs may
  // run on pool workers; the per-slot ownership keeps them disjoint).
  std::vector<std::unique_ptr<JoinScratch>> join_scratch_
      GUARDED_BY(writer_role_);
  // Completed immutable chunks of the keyword table, shared by every
  // snapshot that includes them (see SnapshotWords), plus the last
  // published partial tail chunk (reused when the vocabulary did not
  // change between publishes).
  std::vector<std::shared_ptr<const std::vector<std::string>>>
      word_chunks_ GUARDED_BY(writer_role_);
  std::shared_ptr<const std::vector<std::string>> word_tail_
      GUARDED_BY(writer_role_);
  // First keyword id covered by the tail.
  size_t word_tail_base_ GUARDED_BY(writer_role_) = 0;
  // Running maximum raw affinity, for measures without a (0, 1] range
  // (kIntersection): edges store the *raw* weight and reads apply the
  // scale 1/max (ClusterGraph::set_weight_scale), so a growing maximum is
  // an O(1) scale update instead of an O(E) rewrite. With
  // options_.lazy_renormalize=false, publishes additionally materialize
  // the scaled weights into the rebuilt chunks (eager baseline).
  double running_max_affinity_ GUARDED_BY(writer_role_) = 0;
  // Incremental byte accounting for EngineStats::resident_bytes:
  // completed word chunks and committed cluster payloads.
  size_t words_bytes_ GUARDED_BY(writer_role_) = 0;
  size_t clusters_bytes_ GUARDED_BY(writer_role_) = 0;

  // The published read view; swapped with std::atomic_store at every
  // commit. Readers pin it with std::atomic_load (Engine::snapshot()).
  std::shared_ptr<const GraphSnapshot> snapshot_;

  // Writer-side epoch-publish hook (SetPublishCallback); invoked after
  // every atomic snapshot swap.
  PublishCallback on_publish_ GUARDED_BY(writer_role_);

  // Repeated-query absorber; internally synchronized (sharded).
  mutable std::unique_ptr<QueryCache> cache_;

  // Warm streaming-finder state (Section 4.6), owned by the writer. A
  // reader's online query that misses the published warm state stores its
  // (k, l) here (lock-free hint); the next ingest adopts it, and from
  // then on every tick pays only the marginal Section 4.6 work while the
  // published snapshot carries the materialized top-k. 0 = no hint.
  mutable std::atomic<uint64_t> online_hint_{0};
  std::unique_ptr<OnlineStableFinder> online_ GUARDED_BY(writer_role_);
  size_t online_k_ GUARDED_BY(writer_role_) = 0;
  uint32_t online_l_ GUARDED_BY(writer_role_) = 0;
  // Intervals already fed.
  uint32_t online_fed_ GUARDED_BY(writer_role_) = 0;
  // Set when a weight rescale invalidated the warm finder's paths; the
  // next ingest rebuilds it from scratch at the new scale.
  bool online_rescale_needed_ GUARDED_BY(writer_role_) = false;
  // Non-OK after an ingest failed mid-commit: the writer state holds a
  // half-committed interval that must never be published, so further
  // ingest is refused while queries keep serving the last epoch.
  Status broken_ GUARDED_BY(writer_role_);

  // Durability (null unless built by Engine::Recover with
  // options_.durability.enabled): WAL + checkpoint writer, plus the
  // epoch recovery restored (0 for a fresh directory).
  std::unique_ptr<Durability> durability_;
  uint64_t recovered_epoch_ GUARDED_BY(writer_role_) = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_ENGINE_H_
