#include "core/interval_clusterer.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace stabletext {

namespace {

Result<IntervalResult> BuildFromTable(
    const IntervalClustererOptions& options, IoStats* stats,
    uint32_t interval, CooccurrenceTable* table) {
  if (options.document_count_override != 0) {
    table->document_count = options.document_count_override;
  }
  IntervalResult result;
  result.interval = interval;

  GraphBuilder builder(options.pruning);
  KeywordGraph graph = builder.Build(*table, &result.graph_summary);

  ClusterExtractorOptions extraction = options.extraction;
  extraction.biconnected.io_stats = stats;
  ClusterExtractor extractor(extraction);
  auto clusters = extractor.Extract(graph, interval, &result.biconnected);
  if (!clusters.ok()) return clusters.status();
  result.clusters = std::move(clusters).value();
  return result;
}

}  // namespace

Result<IntervalResult> IntervalClusterer::Run(
    uint32_t interval, const std::vector<Document>& documents) const {
  CooccurrenceCounter counter(dict_, options_.counting, stats_);
  for (const Document& doc : documents) {
    ST_RETURN_IF_ERROR(counter.Add(doc));
  }
  CooccurrenceTable table;
  ST_RETURN_IF_ERROR(counter.Finish(&table));
  return BuildFromTable(options_, stats_, interval, &table);
}

Result<IntervalResult> IntervalClusterer::RunInterned(
    uint32_t interval,
    const std::vector<std::vector<KeywordId>>& documents,
    size_t vocab_size, ThreadPool* sort_pool) const {
  CooccurrenceCounterOptions counting = options_.counting;
  counting.sort_pool = sort_pool;
  CooccurrenceCounter counter(dict_, counting, stats_);
  for (const std::vector<KeywordId>& ids : documents) {
    ST_RETURN_IF_ERROR(counter.AddInterned(ids));
  }
  CooccurrenceTable table;
  ST_RETURN_IF_ERROR(counter.Finish(&table, vocab_size));
  return BuildFromTable(options_, stats_, interval, &table);
}

}  // namespace stabletext
