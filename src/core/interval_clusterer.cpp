#include "core/interval_clusterer.h"

namespace stabletext {

Result<IntervalResult> IntervalClusterer::Run(
    uint32_t interval, const std::vector<Document>& documents) const {
  IntervalResult result;
  result.interval = interval;

  CooccurrenceCounter counter(dict_, options_.counting, stats_);
  for (const Document& doc : documents) {
    ST_RETURN_IF_ERROR(counter.Add(doc));
  }
  CooccurrenceTable table;
  ST_RETURN_IF_ERROR(counter.Finish(&table));

  GraphBuilder builder(options_.pruning);
  KeywordGraph graph = builder.Build(table, &result.graph_summary);

  ClusterExtractorOptions extraction = options_.extraction;
  extraction.biconnected.io_stats = stats_;
  ClusterExtractor extractor(extraction);
  auto clusters = extractor.Extract(graph, interval, &result.biconnected);
  if (!clusters.ok()) return clusters.status();
  result.clusters = std::move(clusters).value();
  return result;
}

}  // namespace stabletext
