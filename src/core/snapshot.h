// GraphSnapshot: the immutable per-epoch read view that makes concurrent
// serving possible. After every committed interval the Engine seals its
// private mutable ClusterGraph into chunked CSR adjacency
// (ClusterGraph::SealedCopy — only the fixed-size chunks the tick touched
// are rebuilt; every untouched chunk is shared by shared_ptr with the
// previous epoch, so publishing costs O(delta), not O(graph)), bundles it
// with the interval metadata a query answer needs (clusters, keyword
// table) and the warm streaming-finder state, and publishes the bundle
// with an atomic shared_ptr swap. Readers pin an epoch by grabbing the
// pointer (the only query-path synchronization; C++17 shared_ptr atomics
// use a briefly held pooled lock, never the writer's tick), and nothing
// the snapshot references is ever mutated afterwards, so any number of
// queries can run while the next interval commits.
//
// The shared result types of the serving API (StableClusterChain,
// QueryResult, EngineStats) live here so both the Engine facade and the
// query cache can name them without a dependency cycle.

#ifndef STABLETEXT_CORE_SNAPSHOT_H_
#define STABLETEXT_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/interval_clusterer.h"
#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "storage/io_stats.h"

namespace stabletext {

/// A stable cluster rendered for consumption: the chain of clusters plus
/// the path's weight/length/stability.
struct StableClusterChain {
  StablePath path;
  /// Borrowed from the engine; valid for the engine's lifetime (committed
  /// intervals are immutable and never dropped).
  std::vector<const Cluster*> clusters;
};

/// \brief Answer to one Query: resolved chains plus the finder's raw
/// paths and cost counters.
struct QueryResult {
  std::vector<StableClusterChain> chains;
  StableFinderResult finder;  ///< paths mirror chains; io/memory/work.
  /// The epoch (committed-interval count) this answer was computed at.
  /// Monotone across queries on one Engine; constant for a pinned
  /// snapshot.
  uint64_t epoch = 0;
  /// True when the answer came from the snapshot's warm streaming-finder
  /// state (Section 4.6) instead of a finder run.
  bool warm_online = false;
};

/// Aggregate engine state for monitoring endpoints. Captured at publish
/// time, so concurrent readers see a consistent point-in-time view.
struct EngineStats {
  uint32_t intervals = 0;
  size_t clusters = 0;       ///< Graph nodes.
  size_t edges = 0;
  size_t keywords = 0;       ///< Dictionary size.
  size_t graph_bytes = 0;    ///< Resident adjacency bytes (writer graph).
  IoStats io;                ///< Ingest-side traffic, all ticks summed.
  uint64_t query_cache_hits = 0;    ///< Live counter, not point-in-time.
  uint64_t query_cache_misses = 0;  ///< Live counter, not point-in-time.
  /// Wall-clock nanoseconds the publish of this epoch took (seal + bundle,
  /// up to the atomic swap). O(delta) under chunk-shared publishing.
  uint64_t publish_ns = 0;
  /// Adjacency chunks this epoch shares with the previous one (pointer
  /// reuse) vs. chunks the publish rebuilt — the copy-on-write ratio.
  size_t shared_chunk_count = 0;
  size_t copied_chunk_count = 0;
  /// Estimated resident bytes of the published epoch: chunked graph
  /// (shared chunks counted once), keyword table and cluster payloads.
  /// Readers pinning old epochs retain their unshared chunks on top.
  size_t resident_bytes = 0;
  // Durability counters, all zero when durability is off. WAL and
  // checkpoint traffic (including IoStats::fsyncs) is folded into `io`
  // at publish; the engine keeps its ingest-side accounting separate
  // internally so a recovered engine reproduces the ingest counters
  // exactly.
  uint64_t wal_bytes = 0;       ///< WAL record bytes appended (live).
  uint64_t checkpoint_ns = 0;   ///< Wall clock of the latest checkpoint.
  uint64_t recovered_epoch = 0; ///< Epoch Engine::Recover restored.
  // Serving-layer counters, filled by net::Server::FillServingStats when
  // the engine sits behind the network server (zero otherwise — the
  // engine itself has no connections to count).
  uint64_t subscriptions_active = 0;  ///< Standing queries registered.
  uint64_t pushes_sent = 0;           ///< Per-epoch DELTA frames pushed.
  uint64_t queries_rejected = 0;      ///< Admission-control RETRYs.
  uint64_t queries_failed = 0;        ///< Queries that errored or whose
                                      ///< worker died mid-query.
};

/// One committed interval's immutable outputs, shared between the writer
/// and every snapshot that includes it.
struct SnapshotInterval {
  IntervalResult result;
  IoStats io;
  /// Dictionary size when this interval was interned: the keyword-table
  /// watermark its epoch publishes. With pipelined ingest the dictionary
  /// may already contain the *next* interval's words at publish time;
  /// capping the snapshot here keeps epochs byte-identical to serial
  /// ingest.
  size_t vocab_size = 0;
};

/// \brief Immutable keyword table (id -> string) shared across epochs.
///
/// The dictionary is append-only, so completed fixed-size chunks are
/// shared by every later snapshot; only the growing tail chunk is copied
/// at publish time. Keeps the per-tick publish cost marginal (new words
/// only) instead of O(vocabulary).
class SnapshotWords {
 public:
  static constexpr size_t kChunkWords = 4096;

  /// Precondition: id < size().
  const std::string& Word(KeywordId id) const {
    return (*chunks[id / kChunkWords])[id % kChunkWords];
  }
  size_t size() const { return total; }

  // Built by the engine at publish; immutable afterwards.
  std::vector<std::shared_ptr<const std::vector<std::string>>> chunks;
  size_t total = 0;
};

/// \brief Immutable read view of the engine at one epoch.
///
/// Published by the writer after every commit; all fields are frozen at
/// publish time. Hold it by shared_ptr<const GraphSnapshot> to pin the
/// epoch across several queries.
struct GraphSnapshot {
  /// Number of committed intervals (== graph->interval_count()).
  uint64_t epoch = 0;
  /// Frozen chunked-CSR adjacency; every finder traverses this via
  /// EdgeSpan. Chunks untouched by this epoch's tick are shared with the
  /// previous snapshot's graph.
  std::shared_ptr<const ClusterGraph> graph;
  /// Per-interval cluster outputs, in interval order.
  std::vector<std::shared_ptr<const SnapshotInterval>> intervals;
  /// Keyword id -> string, for rendering without touching the (growing)
  /// writer-side dictionary.
  SnapshotWords words;
  /// Warm streaming-finder state (Section 4.6) at this epoch: the top-k
  /// for one (k, l) configuration, maintained incrementally by the
  /// writer. Queries matching the configuration are answered from here
  /// without running a finder.
  bool has_online = false;
  size_t online_k = 0;
  uint32_t online_l = 0;
  std::vector<StablePath> online_topk;
  /// True when this snapshot was published by (or after) Compact() —
  /// i.e. the writer graph itself is frozen, not just this copy.
  bool compacted = false;
  /// Point-in-time stats (cache counters filled in by Engine::stats()).
  EngineStats stats;

  /// Node ids are dense and contiguous per interval (the writer adds an
  /// interval's nodes in cluster order), so the cluster is recovered
  /// from the graph itself — no per-tick map copy.
  const Cluster* NodeCluster(NodeId node) const {
    const uint32_t interval = graph->Interval(node);
    const uint32_t j = node - graph->IntervalNodes(interval).front();
    return &intervals[interval]->result.clusters[j];
  }

  /// Resolves finder paths to cluster chains against this snapshot.
  Result<std::vector<StableClusterChain>> ToChains(
      const std::vector<StablePath>& paths) const;

  /// Renders a chain like the paper's stable-cluster figures, resolving
  /// keywords through this snapshot's word table — safe from any reader
  /// thread while ingest runs (Engine::RenderChain delegates here).
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const;
};

/// \brief Answers `query` on the snapshot view — the lock-free read path
/// shared by Engine::Query and any caller that pinned an epoch.
///
/// Semantics match Engine::Query: asking for chains longer than the
/// stream is an empty answer (serving grace), warm online state answers
/// matching streaming queries directly, and everything else dispatches
/// through the finder registry over the frozen CSR graph. Does not
/// consult the query cache or record warm-up hints — Engine layers those
/// on top.
Result<QueryResult> QuerySnapshot(const GraphSnapshot& snapshot,
                                  const FinderQuery& query);

}  // namespace stabletext

#endif  // STABLETEXT_CORE_SNAPSHOT_H_
