// StableClusterPipeline: the library's end-to-end public API. Feed it raw
// posts (or a corpus file); it produces per-interval keyword clusters
// (Section 3), links them into a cluster graph via a threshold affinity
// join (Section 4.1), and answers kl-stable and normalized stable cluster
// queries with any of the finders (Sections 4.2-4.5).
//
// With options.threads > 1 the heavy per-interval work (pair counting,
// external sort, pruning, biconnected decomposition) and the affinity
// joins run on a thread pool. Output is deterministic across thread
// counts: keyword ids are interned on the submitting thread in document
// order, every interval writes its own result slot, and per-pair join
// results are stitched in interval order.

#ifndef STABLETEXT_CORE_PIPELINE_H_
#define STABLETEXT_CORE_PIPELINE_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "affinity/similarity_join.h"
#include "core/interval_clusterer.h"
#include "stable/bfs_finder.h"
#include "stable/cluster_graph.h"
#include "stable/dfs_finder.h"
#include "stable/normalized_bfs_finder.h"
#include "util/thread_pool.h"

namespace stabletext {

/// Which traversal answers stable-cluster queries.
enum class FinderKind { kBfs, kDfs };

/// Options for the full pipeline.
struct PipelineOptions {
  IntervalClustererOptions clustering;
  AffinityOptions affinity;
  uint32_t gap = 0;  ///< g of Section 4.
  /// Worker threads for interval clustering, tokenization, external-sort
  /// run generation and affinity joins. 1 = fully sequential (no pool).
  /// Results are byte-identical for every value.
  size_t threads = 1;
};

/// A stable cluster rendered for consumption: the chain of clusters plus
/// the path's weight/length/stability.
struct StableClusterChain {
  StablePath path;
  std::vector<const Cluster*> clusters;  ///< Borrowed from the pipeline.
};

/// \brief End-to-end blogosphere stable-cluster analysis.
///
/// Usage:
///   StableClusterPipeline pipeline(options);
///   pipeline.AddInterval(0, documents0);  // one call per interval
///   ...
///   pipeline.BuildClusterGraph();
///   auto top = pipeline.FindStableClusters(k, l, FinderKind::kBfs);
///
/// With threads > 1, AddInterval* returns once the interval is scheduled;
/// clustering errors surface from BuildClusterGraph(), and
/// interval_result()/io() are valid only after BuildClusterGraph().
class StableClusterPipeline {
 public:
  explicit StableClusterPipeline(PipelineOptions options = {});

  /// Preprocesses and clusters one interval's raw posts. Intervals must be
  /// added in increasing order starting at 0.
  Status AddIntervalText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Status AddIntervalDocuments(const std::vector<Document>& documents);

  /// Loads a whole corpus file (CorpusWriter format; intervals contiguous
  /// from 0) and clusters every interval.
  Status AddCorpusFile(const std::string& path);

  /// Computes cluster affinities and assembles the cluster graph. Must be
  /// called after the last interval and before any Find*. Joins all
  /// outstanding interval work first.
  Status BuildClusterGraph();

  /// Top-k stable clusters with paths of length l (0 = full). Requires
  /// BuildClusterGraph().
  Result<std::vector<StableClusterChain>> FindStableClusters(
      size_t k, uint32_t l, FinderKind kind = FinderKind::kBfs) const;

  /// Top-k normalized stable clusters with length >= lmin.
  Result<std::vector<StableClusterChain>> FindNormalizedStableClusters(
      size_t k, uint32_t lmin) const;

  // Introspection.
  uint32_t interval_count() const {
    return static_cast<uint32_t>(slots_.size());
  }
  const IntervalResult& interval_result(uint32_t i) const {
    return slots_[i]->result;
  }
  const KeywordDict& dict() const { return dict_; }
  const ClusterGraph* cluster_graph() const { return graph_.get(); }
  /// Merged I/O accounting (per-interval stats summed in interval order,
  /// plus graph-build traffic). Complete after BuildClusterGraph().
  const IoStats& io() const { return io_; }

  /// Renders a chain like the paper's stable-cluster figures: one line per
  /// interval with the cluster's keywords.
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const;

 private:
  // One interval's deferred outputs; workers write only their own slot.
  struct IntervalSlot {
    IntervalResult result;
    Status status;
    IoStats io;
  };

  Result<std::vector<StableClusterChain>> ToChains(
      const std::vector<StablePath>& paths) const;
  const Cluster* NodeCluster(NodeId node) const;
  // Blocks until all scheduled interval tasks finished; returns the first
  // failure in interval order and folds per-interval IoStats into io_.
  Status JoinIntervals();

  PipelineOptions options_;
  KeywordDict dict_;
  IoStats io_;
  std::vector<std::unique_ptr<IntervalSlot>> slots_;
  std::vector<std::future<void>> pending_;
  // Declared after slots_/pending_ so it is destroyed first: ~ThreadPool
  // drains queued interval tasks, which write into the slots — those must
  // still be alive if the pipeline is destroyed mid-flight.
  std::unique_ptr<ThreadPool> pool_;  // Null when threads <= 1.
  bool intervals_joined_ = false;
  Status join_status_;
  // node_of_[i][j] = cluster graph node of cluster j in interval i.
  std::vector<std::vector<NodeId>> node_of_;
  // Reverse map: node -> (interval, index).
  std::vector<std::pair<uint32_t, uint32_t>> cluster_of_node_;
  std::unique_ptr<ClusterGraph> graph_;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_PIPELINE_H_
