// StableClusterPipeline: the library's end-to-end public API. Feed it raw
// posts (or a corpus file); it produces per-interval keyword clusters
// (Section 3), links them into a cluster graph via a threshold affinity
// join (Section 4.1), and answers kl-stable and normalized stable cluster
// queries with any of the finders (Sections 4.2-4.5).

#ifndef STABLETEXT_CORE_PIPELINE_H_
#define STABLETEXT_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "affinity/similarity_join.h"
#include "core/interval_clusterer.h"
#include "stable/bfs_finder.h"
#include "stable/cluster_graph.h"
#include "stable/dfs_finder.h"
#include "stable/normalized_bfs_finder.h"

namespace stabletext {

/// Which traversal answers stable-cluster queries.
enum class FinderKind { kBfs, kDfs };

/// Options for the full pipeline.
struct PipelineOptions {
  IntervalClustererOptions clustering;
  AffinityOptions affinity;
  uint32_t gap = 0;  ///< g of Section 4.
};

/// A stable cluster rendered for consumption: the chain of clusters plus
/// the path's weight/length/stability.
struct StableClusterChain {
  StablePath path;
  std::vector<const Cluster*> clusters;  ///< Borrowed from the pipeline.
};

/// \brief End-to-end blogosphere stable-cluster analysis.
///
/// Usage:
///   StableClusterPipeline pipeline(options);
///   pipeline.AddInterval(0, documents0);  // one call per interval
///   ...
///   pipeline.BuildClusterGraph();
///   auto top = pipeline.FindStableClusters(k, l, FinderKind::kBfs);
class StableClusterPipeline {
 public:
  explicit StableClusterPipeline(PipelineOptions options = {});

  /// Preprocesses and clusters one interval's raw posts. Intervals must be
  /// added in increasing order starting at 0.
  Status AddIntervalText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Status AddIntervalDocuments(const std::vector<Document>& documents);

  /// Loads a whole corpus file (CorpusWriter format; intervals contiguous
  /// from 0) and clusters every interval.
  Status AddCorpusFile(const std::string& path);

  /// Computes cluster affinities and assembles the cluster graph. Must be
  /// called after the last interval and before any Find*.
  Status BuildClusterGraph();

  /// Top-k stable clusters with paths of length l (0 = full). Requires
  /// BuildClusterGraph().
  Result<std::vector<StableClusterChain>> FindStableClusters(
      size_t k, uint32_t l, FinderKind kind = FinderKind::kBfs) const;

  /// Top-k normalized stable clusters with length >= lmin.
  Result<std::vector<StableClusterChain>> FindNormalizedStableClusters(
      size_t k, uint32_t lmin) const;

  // Introspection.
  uint32_t interval_count() const {
    return static_cast<uint32_t>(interval_results_.size());
  }
  const IntervalResult& interval_result(uint32_t i) const {
    return interval_results_[i];
  }
  const KeywordDict& dict() const { return dict_; }
  const ClusterGraph* cluster_graph() const { return graph_.get(); }
  const IoStats& io() const { return io_; }

  /// Renders a chain like the paper's stable-cluster figures: one line per
  /// interval with the cluster's keywords.
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const;

 private:
  Result<std::vector<StableClusterChain>> ToChains(
      const std::vector<StablePath>& paths) const;
  const Cluster* NodeCluster(NodeId node) const;

  PipelineOptions options_;
  KeywordDict dict_;
  IoStats io_;
  std::vector<IntervalResult> interval_results_;
  // node_of_[i][j] = cluster graph node of cluster j in interval i.
  std::vector<std::vector<NodeId>> node_of_;
  // Reverse map: node -> (interval, index).
  std::vector<std::pair<uint32_t, uint32_t>> cluster_of_node_;
  std::unique_ptr<ClusterGraph> graph_;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_PIPELINE_H_
