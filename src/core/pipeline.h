// StableClusterPipeline: the legacy batch facade, kept as a thin
// DEPRECATED shim over the incremental Engine (core/engine.h). New code
// should use Engine directly — it has no build barrier, reaches every
// finder (bfs/dfs/ta/brute-force/online, diversified, normalized) through
// one Query surface, and serves queries between ingests.
//
// Mapping:
//   AddIntervalText/AddIntervalDocuments  -> Engine::IngestText/Documents
//   AddCorpusFile                         -> Engine::IngestCorpusFile
//   BuildClusterGraph                     -> Engine::Compact (the barrier
//                                            is now only a freeze)
//   FindStableClusters(k, l, kind)        -> Engine::Query({bfs|dfs,
//                                            kl-stable, k, l})
//   FindNormalizedStableClusters(k, lmin) -> Engine::Query({bfs,
//                                            normalized, k, lmin})
//
// The shim preserves the historical lifecycle contract (queries are an
// error before BuildClusterGraph, ingest is an error after) so existing
// callers keep their validation semantics; the Engine underneath imposes
// neither restriction.

#ifndef STABLETEXT_CORE_PIPELINE_H_
#define STABLETEXT_CORE_PIPELINE_H_

#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"

namespace stabletext {

/// Which traversal answers stable-cluster queries (deprecated; use
/// Query::algorithm, which also reaches ta/brute-force/online).
enum class FinderKind { kBfs, kDfs };

/// Options for the full pipeline (same fields as EngineOptions).
using PipelineOptions = EngineOptions;

/// \brief Deprecated batch facade over Engine.
///
/// Usage:
///   StableClusterPipeline pipeline(options);
///   pipeline.AddInterval(0, documents0);  // one call per interval
///   ...
///   pipeline.BuildClusterGraph();
///   auto top = pipeline.FindStableClusters(k, l, FinderKind::kBfs);
class StableClusterPipeline {
 public:
  explicit StableClusterPipeline(PipelineOptions options = {})
      : engine_(std::move(options)) {}

  /// Preprocesses and clusters one interval's raw posts. Intervals must be
  /// added in increasing order starting at 0.
  Status AddIntervalText(const std::vector<std::string>& posts);

  /// Same, for already-preprocessed documents.
  Status AddIntervalDocuments(const std::vector<Document>& documents);

  /// Loads a whole corpus file (CorpusWriter format; intervals contiguous
  /// from 0) and clusters every interval. Returns the number of intervals
  /// loaded.
  Result<uint32_t> AddCorpusFile(const std::filesystem::path& path);

  /// Freezes the engine's cluster graph. Must be called after the last
  /// interval and before any Find* (the historical contract; the Engine
  /// itself answers queries at any time).
  Status BuildClusterGraph();

  /// Top-k stable clusters with paths of length l (0 = full). Requires
  /// BuildClusterGraph().
  Result<std::vector<StableClusterChain>> FindStableClusters(
      size_t k, uint32_t l, FinderKind kind = FinderKind::kBfs) const;

  /// Top-k normalized stable clusters with length >= lmin.
  Result<std::vector<StableClusterChain>> FindNormalizedStableClusters(
      size_t k, uint32_t lmin) const;

  // Introspection (forwarded to the engine).
  uint32_t interval_count() const { return engine_.interval_count(); }
  const IntervalResult& interval_result(uint32_t i) const {
    return engine_.interval_result(i);
  }
  const KeywordDict& dict() const { return engine_.dict(); }
  const ClusterGraph* cluster_graph() const {
    return built_ ? &engine_.graph() : nullptr;
  }
  const IoStats& io() const { return engine_.io(); }

  /// The engine underneath, for incremental callers migrating off the
  /// shim.
  const Engine& engine() const { return engine_; }

  /// Renders a chain like the paper's stable-cluster figures.
  std::string RenderChain(const StableClusterChain& chain,
                          size_t max_keywords = 8) const {
    return engine_.RenderChain(chain, max_keywords);
  }

 private:
  Engine engine_;
  bool built_ = false;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_PIPELINE_H_
