// IntervalClusterer: the Section 3 pipeline for a single temporal interval
// — documents in, keyword clusters out (pair counting, chi-squared and rho
// pruning, biconnected decomposition).

#ifndef STABLETEXT_CORE_INTERVAL_CLUSTERER_H_
#define STABLETEXT_CORE_INTERVAL_CLUSTERER_H_

#include <vector>

#include "cluster/cluster_extractor.h"
#include "cooccur/cooccurrence_counter.h"
#include "graph/graph_builder.h"

namespace stabletext {

/// Options for one interval's cluster generation.
struct IntervalClustererOptions {
  CooccurrenceCounterOptions counting;
  GraphPrunerOptions pruning;
  ClusterExtractorOptions extraction;
  /// When non-zero, the chi-squared/rho statistics use this as the
  /// interval's total document count n instead of the number of
  /// documents this clusterer saw. A sharded engine feeds each shard
  /// only its partition of a tick's documents but the independence
  /// tests are defined against the tick-global n — without the
  /// override, splitting a tick would change every edge's statistic.
  /// 0 (the default) keeps the local count; single-engine behavior is
  /// untouched.
  uint64_t document_count_override = 0;
};

/// Everything produced for one interval (summary + clusters).
struct IntervalResult {
  uint32_t interval = 0;
  KeywordGraphSummary graph_summary;
  BiconnectedStats biconnected;
  std::vector<Cluster> clusters;
};

/// \brief Runs the Section 3 pipeline over one interval's documents.
class IntervalClusterer {
 public:
  /// \param dict shared dictionary (ids stable across intervals); must
  ///        outlive the clusterer.
  IntervalClusterer(KeywordDict* dict,
                    IntervalClustererOptions options = {},
                    IoStats* stats = nullptr)
      : dict_(dict), options_(options), stats_(stats) {}

  /// Clusters the documents of interval `interval`.
  Result<IntervalResult> Run(uint32_t interval,
                             const std::vector<Document>& documents) const;

  /// Same, for documents already interned to sorted keyword-id sets.
  /// Never touches the dictionary, so it is safe to run on a worker
  /// thread while later intervals intern. `vocab_size` is the dictionary
  /// size snapshot taken when this interval was submitted (keeps the
  /// unary table identical to a sequential run). `sort_pool` may be null.
  Result<IntervalResult> RunInterned(
      uint32_t interval,
      const std::vector<std::vector<KeywordId>>& documents,
      size_t vocab_size, ThreadPool* sort_pool) const;

 private:
  KeywordDict* dict_;
  IntervalClustererOptions options_;
  IoStats* stats_;
};

}  // namespace stabletext

#endif  // STABLETEXT_CORE_INTERVAL_CLUSTERER_H_
