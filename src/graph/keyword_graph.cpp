#include "graph/keyword_graph.h"

#include <algorithm>
#include <cassert>

namespace stabletext {

KeywordGraph KeywordGraph::FromEdges(
    size_t vertex_count, const std::vector<WeightedEdge>& edges) {
  KeywordGraph g;
  g.offsets_.assign(vertex_count + 1, 0);
  for (const WeightedEdge& e : edges) {
    assert(e.u < vertex_count && e.v < vertex_count);
    assert(e.u != e.v && "self-loops are not allowed");
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t i = 1; i <= vertex_count; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.targets_.resize(edges.size() * 2);
  g.weights_.resize(edges.size() * 2);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const WeightedEdge& e : edges) {
    g.targets_[cursor[e.u]] = e.v;
    g.weights_[cursor[e.u]] = e.weight;
    ++cursor[e.u];
    g.targets_[cursor[e.v]] = e.u;
    g.weights_[cursor[e.v]] = e.weight;
    ++cursor[e.v];
  }
  // Sort each adjacency list by target id, keeping weights aligned.
  for (size_t u = 0; u < vertex_count; ++u) {
    const size_t begin = g.offsets_[u];
    const size_t end = g.offsets_[u + 1];
    std::vector<std::pair<KeywordId, double>> adj;
    adj.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      adj.emplace_back(g.targets_[i], g.weights_[i]);
    }
    std::sort(adj.begin(), adj.end());
    for (size_t i = begin; i < end; ++i) {
      g.targets_[i] = adj[i - begin].first;
      g.weights_[i] = adj[i - begin].second;
    }
  }
  return g;
}

size_t KeywordGraph::NonIsolatedCount() const {
  size_t n = 0;
  for (size_t u = 0; u < vertex_count(); ++u) {
    if (Degree(static_cast<KeywordId>(u)) > 0) ++n;
  }
  return n;
}

}  // namespace stabletext
