#include "graph/keyword_graph.h"

#include <cassert>

namespace stabletext {

KeywordGraph KeywordGraph::FromEdges(
    size_t vertex_count, const std::vector<WeightedEdge>& edges) {
  std::vector<CsrGraph::Arc> arcs;
  arcs.reserve(edges.size() * 2);
  for (const WeightedEdge& e : edges) {
    assert(e.u < vertex_count && e.v < vertex_count);
    assert(e.u != e.v && "self-loops are not allowed");
    arcs.push_back(CsrGraph::Arc{e.u, e.v, e.weight});
    arcs.push_back(CsrGraph::Arc{e.v, e.u, e.weight});
  }
  KeywordGraph g;
  g.csr_ = CsrGraph::FromArcs(vertex_count, std::move(arcs));
  return g;
}

size_t KeywordGraph::NonIsolatedCount() const {
  size_t n = 0;
  for (size_t u = 0; u < vertex_count(); ++u) {
    if (Degree(static_cast<KeywordId>(u)) > 0) ++n;
  }
  return n;
}

}  // namespace stabletext
