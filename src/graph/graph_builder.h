// GraphBuilder: convenience assembly of the pruned keyword graph G' from a
// co-occurrence table, with the summary numbers Table 1 of the paper reports
// (keyword and edge counts before pruning).

#ifndef STABLETEXT_GRAPH_GRAPH_BUILDER_H_
#define STABLETEXT_GRAPH_GRAPH_BUILDER_H_

#include "graph/graph_pruner.h"

namespace stabletext {

/// Summary of one interval's keyword graph, before and after pruning.
struct KeywordGraphSummary {
  uint64_t document_count = 0;
  size_t keyword_count = 0;       ///< Distinct keywords with A(u) > 0.
  size_t raw_edge_count = 0;      ///< Triplets, i.e. edges of G (Table 1).
  PruneStats prune;               ///< chi^2 / rho stage counters.
};

/// \brief Builds G' from a CooccurrenceTable.
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphPrunerOptions options = {})
      : pruner_(options) {}

  /// Builds the pruned graph. `summary` may be null.
  KeywordGraph Build(const CooccurrenceTable& table,
                     KeywordGraphSummary* summary = nullptr) const;

 private:
  GraphPruner pruner_;
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_GRAPH_BUILDER_H_
