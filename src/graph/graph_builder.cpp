#include "graph/graph_builder.h"

namespace stabletext {

KeywordGraph GraphBuilder::Build(const CooccurrenceTable& table,
                                 KeywordGraphSummary* summary) const {
  KeywordGraphSummary local;
  local.document_count = table.document_count;
  local.raw_edge_count = table.triplets.size();
  for (uint32_t a : table.unary) {
    if (a > 0) ++local.keyword_count;
  }
  std::vector<WeightedEdge> edges = pruner_.Prune(table, &local.prune);
  if (summary != nullptr) *summary = local;
  return KeywordGraph::FromEdges(table.unary.size(), edges);
}

}  // namespace stabletext
