#include "graph/chi_square.h"

namespace stabletext {

double ChiSquare::Statistic(uint64_t a_u, uint64_t a_v, uint64_t a_uv,
                            uint64_t n) {
  const double dn = static_cast<double>(n);
  if (n == 0) return 0;
  // Observed 2x2 table.
  const double o_uv = static_cast<double>(a_uv);
  const double o_unv = static_cast<double>(a_u) - o_uv;   // u, not v
  const double o_nuv = static_cast<double>(a_v) - o_uv;   // not u, v
  const double o_nunv = dn - static_cast<double>(a_u) -
                        static_cast<double>(a_v) + o_uv;  // neither
  // Expected under independence.
  const double pu = static_cast<double>(a_u) / dn;
  const double pv = static_cast<double>(a_v) / dn;
  const double e_uv = dn * pu * pv;
  const double e_unv = dn * pu * (1 - pv);
  const double e_nuv = dn * (1 - pu) * pv;
  const double e_nunv = dn * (1 - pu) * (1 - pv);
  if (e_uv <= 0 || e_unv < 0 || e_nuv < 0 || e_nunv < 0) return 0;
  double stat = 0;
  auto cell = [](double o, double e) {
    if (e <= 0) return 0.0;
    const double d = e - o;
    return d * d / e;
  };
  stat += cell(o_uv, e_uv);
  stat += cell(o_unv, e_unv);
  stat += cell(o_nuv, e_nuv);
  stat += cell(o_nunv, e_nunv);
  return stat;
}

double ChiSquare::StatisticClosedForm(uint64_t a_u, uint64_t a_v,
                                      uint64_t a_uv, uint64_t n) {
  if (n == 0 || a_u == 0 || a_v == 0 || a_u >= n || a_v >= n) return 0;
  const double dn = static_cast<double>(n);
  const double du = static_cast<double>(a_u);
  const double dv = static_cast<double>(a_v);
  const double duv = static_cast<double>(a_uv);
  const double num = dn * duv - du * dv;
  return dn * num * num / (du * dv * (dn - du) * (dn - dv));
}

}  // namespace stabletext
