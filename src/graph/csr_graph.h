// Immutable compressed-sparse-row adjacency over dense uint32 vertex ids.
// One flat offsets array plus parallel target/weight arrays: traversal
// touches contiguous memory instead of chasing per-vertex heap nodes, and
// the structure is safely shared read-only across threads. Built once (from
// the pruned co-occurrence edge list, or any arc list) and never mutated.

#ifndef STABLETEXT_GRAPH_CSR_GRAPH_H_
#define STABLETEXT_GRAPH_CSR_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stabletext {

/// \brief Immutable CSR adjacency structure.
///
/// Directed arcs grouped by source vertex, each group sorted by target id.
/// Undirected graphs store every edge twice (one arc per direction).
class CsrGraph {
 public:
  /// One directed arc used during construction.
  struct Arc {
    uint32_t from;
    uint32_t to;
    double weight;
  };

  CsrGraph() = default;

  /// Builds from a directed arc list (consumed). Every endpoint must be
  /// < vertex_count.
  static CsrGraph FromArcs(size_t vertex_count, std::vector<Arc> arcs);

  /// Builds from an undirected edge list: each (u, v, w) contributes arcs
  /// u->v and v->u.
  static CsrGraph FromUndirected(size_t vertex_count,
                                 const Arc* edges, size_t edge_count);

  size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t arc_count() const { return targets_.size(); }

  size_t Degree(uint32_t u) const {
    return offsets_[u + 1] - offsets_[u];
  }
  const uint32_t* Targets(uint32_t u) const {
    return targets_.data() + offsets_[u];
  }
  const double* Weights(uint32_t u) const {
    return weights_.data() + offsets_[u];
  }

  /// Resident bytes of the adjacency arrays.
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(size_t) +
           targets_.capacity() * sizeof(uint32_t) +
           weights_.capacity() * sizeof(double);
  }

 private:
  std::vector<size_t> offsets_;   // size vertex_count + 1
  std::vector<uint32_t> targets_;
  std::vector<double> weights_;
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_CSR_GRAPH_H_
