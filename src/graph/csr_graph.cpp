#include "graph/csr_graph.h"

#include <algorithm>
#include <cassert>

namespace stabletext {

CsrGraph CsrGraph::FromArcs(size_t vertex_count, std::vector<Arc> arcs) {
  // One global sort by (from, to) yields grouped, per-vertex-sorted arcs
  // in a single cache-friendly pass — no per-vertex scratch allocations.
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  CsrGraph g;
  g.offsets_.assign(vertex_count + 1, 0);
  g.targets_.resize(arcs.size());
  g.weights_.resize(arcs.size());
  for (size_t i = 0; i < arcs.size(); ++i) {
    assert(arcs[i].from < vertex_count && arcs[i].to < vertex_count);
    ++g.offsets_[arcs[i].from + 1];
    g.targets_[i] = arcs[i].to;
    g.weights_[i] = arcs[i].weight;
  }
  for (size_t v = 1; v <= vertex_count; ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  return g;
}

CsrGraph CsrGraph::FromUndirected(size_t vertex_count, const Arc* edges,
                                  size_t edge_count) {
  std::vector<Arc> arcs;
  arcs.reserve(edge_count * 2);
  for (size_t i = 0; i < edge_count; ++i) {
    assert(edges[i].from != edges[i].to && "self-loops are not allowed");
    arcs.push_back(edges[i]);
    arcs.push_back(Arc{edges[i].to, edges[i].from, edges[i].weight});
  }
  return FromArcs(vertex_count, std::move(arcs));
}

}  // namespace stabletext
