// Correlation coefficient rho for binary keyword-presence variables
// (Section 3, Equations 2 and 3). While the chi-squared test detects
// dependence, rho measures its strength; the paper prunes edges with
// rho < 0.2.

#ifndef STABLETEXT_GRAPH_CORRELATION_H_
#define STABLETEXT_GRAPH_CORRELATION_H_

#include <cstdint>

namespace stabletext {

/// \brief Pearson correlation of keyword-presence indicators.
class Correlation {
 public:
  /// The paper's pruning threshold ("focusing on edges with rho > 0.2 will
  /// further eliminate any non truly correlated vertex pair").
  static constexpr double kDefaultThreshold = 0.2;

  /// Equation 3, the single-pass form:
  ///   rho = (n A(u,v) - A(u) A(v)) /
  ///         (sqrt((n - A(u)) A(u)) sqrt((n - A(v)) A(v))).
  /// Returns 0 for degenerate marginals (keyword in no or all documents).
  static double Rho(uint64_t a_u, uint64_t a_v, uint64_t a_uv, uint64_t n);

  /// Equation 2 computed literally from indicator vectors; O(n). Exists as
  /// the test oracle for Rho().
  /// \param u_present u_present[i] == true iff document i contains u.
  /// \param v_present likewise for v; same length as u_present.
  static double RhoFromIndicators(const bool* u_present,
                                  const bool* v_present, uint64_t n);
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_CORRELATION_H_
