// KeywordGraph: the undirected weighted graph G' of Section 3 — vertices
// are keywords, edges connect strongly correlated pairs, weights are rho.
// Stored in CSR form for cache-friendly traversal by Algorithm 1.

#ifndef STABLETEXT_GRAPH_KEYWORD_GRAPH_H_
#define STABLETEXT_GRAPH_KEYWORD_GRAPH_H_

#include <cstdint>
#include <vector>

#include "cooccur/keyword_dict.h"
#include "graph/csr_graph.h"

namespace stabletext {

/// A weighted undirected edge between keyword vertices.
struct WeightedEdge {
  KeywordId u;
  KeywordId v;
  double weight;

  friend bool operator==(const WeightedEdge& a, const WeightedEdge& b) {
    return a.u == b.u && a.v == b.v && a.weight == b.weight;
  }
};

/// \brief Compressed-sparse-row undirected graph over keyword ids.
///
/// Vertex ids are dense in [0, vertex_count). Each undirected edge is
/// stored twice (once per endpoint). Neighbor lists are sorted by target.
class KeywordGraph {
 public:
  KeywordGraph() = default;

  /// Builds from an edge list. `vertex_count` must exceed every endpoint.
  /// Self-loops are rejected; duplicate edges are an error the caller must
  /// avoid (the co-occurrence pipeline produces each pair once).
  static KeywordGraph FromEdges(size_t vertex_count,
                                const std::vector<WeightedEdge>& edges);

  size_t vertex_count() const { return csr_.vertex_count(); }
  size_t edge_count() const { return csr_.arc_count() / 2; }

  /// Degree of vertex u.
  size_t Degree(KeywordId u) const { return csr_.Degree(u); }

  /// Neighbors of u (ids), parallel to Weights(u).
  const KeywordId* Neighbors(KeywordId u) const { return csr_.Targets(u); }
  const double* Weights(KeywordId u) const { return csr_.Weights(u); }

  /// True if u has any incident edge.
  bool HasEdges(KeywordId u) const { return Degree(u) > 0; }

  /// Vertices with at least one incident edge.
  size_t NonIsolatedCount() const;

 private:
  CsrGraph csr_;
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_KEYWORD_GRAPH_H_
