#include "graph/correlation.h"

#include <cmath>

namespace stabletext {

double Correlation::Rho(uint64_t a_u, uint64_t a_v, uint64_t a_uv,
                        uint64_t n) {
  if (n == 0) return 0;
  const double dn = static_cast<double>(n);
  const double du = static_cast<double>(a_u);
  const double dv = static_cast<double>(a_v);
  const double duv = static_cast<double>(a_uv);
  const double denom_u = (dn - du) * du;
  const double denom_v = (dn - dv) * dv;
  if (denom_u <= 0 || denom_v <= 0) return 0;
  return (dn * duv - du * dv) / (std::sqrt(denom_u) * std::sqrt(denom_v));
}

double Correlation::RhoFromIndicators(const bool* u_present,
                                      const bool* v_present, uint64_t n) {
  if (n == 0) return 0;
  const double dn = static_cast<double>(n);
  double a_u = 0, a_v = 0, a_uv = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (u_present[i]) ++a_u;
    if (v_present[i]) ++a_v;
    if (u_present[i] && v_present[i]) ++a_uv;
  }
  const double mu_u = a_u / dn;
  const double mu_v = a_v / dn;
  // Variance of a Bernoulli indicator: mu (1 - mu).
  const double var_u = mu_u * (1 - mu_u);
  const double var_v = mu_v * (1 - mu_v);
  if (var_u <= 0 || var_v <= 0) return 0;
  double cov = 0;
  for (uint64_t i = 0; i < n; ++i) {
    cov += ((u_present[i] ? 1.0 : 0.0) - mu_u) *
           ((v_present[i] ? 1.0 : 0.0) - mu_v);
  }
  cov /= dn;
  return cov / std::sqrt(var_u * var_v);
}

}  // namespace stabletext
