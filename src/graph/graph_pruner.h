// GraphPruner: the two-stage edge filter of Section 3. Stage one drops
// edges that fail the chi-squared independence test; stage two drops edges
// whose correlation coefficient is below a threshold. "Let G' be the graph
// induced by G after pruning edges based on chi^2 and rho."

#ifndef STABLETEXT_GRAPH_GRAPH_PRUNER_H_
#define STABLETEXT_GRAPH_GRAPH_PRUNER_H_

#include <vector>

#include "cooccur/pair_aggregator.h"
#include "graph/chi_square.h"
#include "graph/correlation.h"
#include "graph/keyword_graph.h"

namespace stabletext {

/// Options controlling pruning.
struct GraphPrunerOptions {
  /// Chi-squared critical value; pairs with a statistic at or below it are
  /// treated as independent.
  double chi_square_critical = ChiSquare::kCritical95;
  /// Minimum correlation coefficient (exclusive bound: edges survive when
  /// rho > threshold, matching "focusing on edges with rho > 0.2").
  double rho_threshold = Correlation::kDefaultThreshold;
  /// When false, the chi-squared stage is skipped (ablation knob).
  bool apply_chi_square = true;
  /// When false, the rho stage is skipped (ablation knob).
  bool apply_rho = true;
  /// Minimum co-occurrence count A(u,v) for an edge to be considered.
  /// 0 keeps everything (the paper's formulation). At small corpus sizes
  /// a support floor suppresses chance co-occurrences of rare keywords,
  /// whose sample rho is spuriously high; at the paper's scale (hundreds
  /// of thousands of posts per interval) the statistical tests alone
  /// suffice.
  uint32_t min_pair_support = 0;
};

/// Per-stage pruning counters for reporting.
struct PruneStats {
  size_t input_edges = 0;
  size_t failed_support = 0;
  size_t failed_chi_square = 0;
  size_t failed_rho = 0;
  size_t surviving_edges = 0;
};

/// \brief Filters co-occurrence triplets into the weighted edge list of G'.
class GraphPruner {
 public:
  explicit GraphPruner(GraphPrunerOptions options = {})
      : options_(options) {}

  /// Filters `table`'s triplets. Surviving edges are weighted by rho.
  /// `stats` may be null.
  std::vector<WeightedEdge> Prune(const CooccurrenceTable& table,
                                  PruneStats* stats = nullptr) const;

 private:
  GraphPrunerOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_GRAPH_PRUNER_H_
