// Chi-squared independence test for keyword pairs (Section 3, Equation 1).
// Used as the first-stage filter: edges whose co-occurrence is consistent
// with keyword independence are dropped.

#ifndef STABLETEXT_GRAPH_CHI_SQUARE_H_
#define STABLETEXT_GRAPH_CHI_SQUARE_H_

#include <cstdint>

namespace stabletext {

/// \brief Chi-squared statistic over the 2x2 contingency table of two
/// keywords.
class ChiSquare {
 public:
  /// The paper's default: 3.84 is the 95% critical value at 1 dof
  /// ("only 5% of the time does chi^2 exceed 3.84 if the variables are
  /// independent").
  static constexpr double kCritical95 = 3.841;
  /// 99% critical value at 1 dof.
  static constexpr double kCritical99 = 6.635;
  /// 90% critical value at 1 dof.
  static constexpr double kCritical90 = 2.706;

  /// Computes Equation 1: the four-cell sum over observed vs expected
  /// counts for (uv, u~v, ~uv, ~u~v).
  ///
  /// \param a_u   A(u), documents containing u.
  /// \param a_v   A(v), documents containing v.
  /// \param a_uv  A(u,v), documents containing both.
  /// \param n     total documents.
  /// \return the chi-squared statistic; 0 when any expected cell is 0
  ///         (degenerate table, no evidence either way).
  static double Statistic(uint64_t a_u, uint64_t a_v, uint64_t a_uv,
                          uint64_t n);

  /// Closed-form equivalent: chi^2 = n (n A(uv) - A(u)A(v))^2 /
  /// (A(u) A(v) (n - A(u)) (n - A(v))). Tested equal to Statistic().
  static double StatisticClosedForm(uint64_t a_u, uint64_t a_v,
                                    uint64_t a_uv, uint64_t n);

  /// True if the pair is correlated at the given critical value.
  static bool Significant(uint64_t a_u, uint64_t a_v, uint64_t a_uv,
                          uint64_t n, double critical = kCritical95) {
    return Statistic(a_u, a_v, a_uv, n) > critical;
  }
};

}  // namespace stabletext

#endif  // STABLETEXT_GRAPH_CHI_SQUARE_H_
