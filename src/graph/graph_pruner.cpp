#include "graph/graph_pruner.h"

namespace stabletext {

std::vector<WeightedEdge> GraphPruner::Prune(const CooccurrenceTable& table,
                                             PruneStats* stats) const {
  std::vector<WeightedEdge> out;
  PruneStats local;
  local.input_edges = table.triplets.size();
  for (const Triplet& t : table.triplets) {
    const uint64_t a_u = table.unary[t.u];
    const uint64_t a_v = table.unary[t.v];
    if (t.count < options_.min_pair_support) {
      ++local.failed_support;
      continue;
    }
    if (options_.apply_chi_square &&
        !ChiSquare::Significant(a_u, a_v, t.count, table.document_count,
                                options_.chi_square_critical)) {
      ++local.failed_chi_square;
      continue;
    }
    const double rho =
        Correlation::Rho(a_u, a_v, t.count, table.document_count);
    if (options_.apply_rho && !(rho > options_.rho_threshold)) {
      ++local.failed_rho;
      continue;
    }
    out.push_back(WeightedEdge{t.u, t.v, rho});
  }
  local.surviving_edges = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace stabletext
