// Explicit memory accounting for data structures whose footprint the paper
// compares (Section 5.2: "DFS required less than 2MB RAM as compared to 35MB
// for BFS"). Algorithms charge/release bytes against a tracker; the tracker
// records the high-water mark and can enforce a budget, which is how the
// block-nested-loop fallback of the BFS finder is triggered.

#ifndef STABLETEXT_UTIL_MEMORY_TRACKER_H_
#define STABLETEXT_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace stabletext {

/// \brief Byte-level accounting with a high-water mark and optional budget.
///
/// Not thread-safe; each algorithm instance owns (or is lent) one tracker.
class MemoryTracker {
 public:
  static constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

  /// \param budget_bytes maximum live bytes allowed; kUnlimited disables
  ///        enforcement (tracking still happens).
  explicit MemoryTracker(size_t budget_bytes = kUnlimited)
      : budget_(budget_bytes) {}

  /// Charges bytes. Returns OutOfMemoryBudget (leaving usage unchanged) if
  /// the budget would be exceeded.
  Status Charge(size_t bytes);

  /// Charges bytes unconditionally (used where the caller has already
  /// decided to spill and only wants the peak recorded).
  void ForceCharge(size_t bytes);

  /// Releases previously charged bytes. Releasing more than is live clamps
  /// to zero (and is a bug in the caller, asserted in debug builds).
  void Release(size_t bytes);

  /// Returns true if charging `bytes` more would stay within budget.
  bool WouldFit(size_t bytes) const {
    return budget_ == kUnlimited || live_ + bytes <= budget_;
  }

  size_t live_bytes() const { return live_; }
  size_t peak_bytes() const { return peak_; }
  size_t budget_bytes() const { return budget_; }

  /// Resets live and peak usage to zero (budget is retained).
  void Reset() {
    live_ = 0;
    peak_ = 0;
  }

 private:
  size_t budget_;
  size_t live_ = 0;
  size_t peak_ = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_MEMORY_TRACKER_H_
