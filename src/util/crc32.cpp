#include "util/crc32.h"

#include <array>

namespace stabletext {

namespace {

// Slice-by-one table for the reflected polynomial 0xEDB88320, generated
// once at startup (256 * 4 bytes; the durability paths that use this are
// I/O bound, not CRC bound).
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace stabletext
