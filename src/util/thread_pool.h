// Fixed-size thread pool used to parallelize per-interval work (Section 3
// counting passes are independent across intervals) and external-sort run
// generation. Waiting helpers let a blocked submitter execute queued tasks
// itself, so nested submission (an interval task spawning sort-run tasks)
// cannot deadlock the fixed worker set.

#ifndef STABLETEXT_UTIL_THREAD_POOL_H_
#define STABLETEXT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotated_mutex.h"

namespace stabletext {

/// \brief Fixed-size pool of worker threads with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue was empty.
  bool TryRunOneTask();

  /// Blocks until `future` is ready, draining queued tasks on this thread
  /// while waiting (deadlock-free when called from inside a pool task).
  void Wait(std::future<void>& future);

  /// Wait() over a batch.
  void WaitAll(std::vector<std::future<void>>& futures);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stop_ GUARDED_BY(mu_) = false;
};

/// \brief A fleet of dedicated reader threads for concurrent serving.
///
/// Runs `fn(0) .. fn(n-1)` on n dedicated threads, started immediately.
/// Unlike ThreadPool (the writer's worker set, whose queue an ingest may
/// be draining), fleet threads are not shared with ingest work, so a
/// reader blocked on a long query can never starve the commit path. The
/// concurrency tests, bench_concurrent and the CLI serve mode all drive
/// their readers through this instead of hand-rolled thread vectors.
class ReaderFleet {
 public:
  ReaderFleet(size_t n, std::function<void(size_t)> fn);
  ~ReaderFleet() { Join(); }

  ReaderFleet(const ReaderFleet&) = delete;
  ReaderFleet& operator=(const ReaderFleet&) = delete;

  size_t size() const { return threads_.size(); }

  /// Readers whose fn exited by throwing. A throw ends that reader only
  /// (the exception is swallowed here instead of std::terminate-ing the
  /// process); callers that care check this after Join().
  size_t failed() const { return failed_.load(std::memory_order_acquire); }

  /// Blocks until every reader returns. Idempotent.
  void Join();

 private:
  std::vector<std::thread> threads_;
  std::atomic<size_t> failed_{0};
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_THREAD_POOL_H_
