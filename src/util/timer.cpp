#include "util/timer.h"

namespace stabletext {

double WallTimer::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

int64_t WallTimer::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

int64_t WallTimer::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
      .count();
}

}  // namespace stabletext
