#include "util/random.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace stabletext {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard values in the biased tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextWeight() {
  // (0, 1]: flip the half-open interval.
  return 1.0 - NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double x = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // Floating-point tail.
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Rejection-inversion (Hörmann) would be ideal; for the corpus sizes used
  // here a simple inverse-CDF walk over the harmonic distribution with an
  // early-exit is fast enough and exact.
  // P(k) ∝ 1 / (k+1)^s.
  double h = 0;
  for (size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(double(k), s);
  double x = NextDouble() * h;
  double acc = 0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (x < acc) return k - 1;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector prefix.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Uniform(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    // Sparse case: rejection with a hash set.
    std::unordered_set<size_t> seen;
    while (out.size() < k) {
      size_t v = Uniform(n);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(double(k + 1), s);
    cdf_[k] = acc;
  }
  for (size_t k = 0; k < n; ++k) cdf_[k] /= acc;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double x = rng->NextDouble();
  // First index with cdf_[k] > x.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] > x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace stabletext
