#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace stabletext {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return future;
}

bool ThreadPool::TryRunOneTask() {
  std::packaged_task<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::Wait(std::future<void>& future) {
  while (future.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!TryRunOneTask()) {
      // Nothing to steal: the task is running on a worker; block briefly.
      future.wait_for(std::chrono::milliseconds(1));
    }
  }
  // Rethrow anything the task threw; otherwise the exception dies in the
  // shared state and the failure is silently swallowed. Tasks that must
  // not throw across this boundary catch internally and report a Status.
  future.get();
}

void ThreadPool::WaitAll(std::vector<std::future<void>>& futures) {
  for (std::future<void>& f : futures) Wait(f);
}

ReaderFleet::ReaderFleet(size_t n, std::function<void(size_t)> fn) {
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, fn, i] {
      try {
        fn(i);
      } catch (...) {
        // A throwing reader ends itself, not the process: an uncaught
        // exception on a std::thread would std::terminate. Count it so
        // Join() callers can notice the early exit.
        failed_.fetch_add(1, std::memory_order_release);
      }
    });
  }
}

void ReaderFleet::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      // Spelled-out wait loop: a predicate lambda would read the guarded
      // fields outside the analysis's view of the held lock.
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace stabletext
