// Sorted-set intersection kernels for the per-tick hot path. Every
// sorted keyword-set intersection in the system routes through this
// library: KeywordIntersectionSize / ClusterAffinity, the SimilarityJoin
// candidate verification, and Cluster::Contains membership probes.
//
// Three kernel tiers behind one dispatched entry point:
//   scalar     — branchy two-pointer merge; the reference everything
//                else must match byte-for-byte.
//   galloping  — doubling search of the larger set, for skewed size
//                ratios (|large| / |small| >= kGallopRatio).
//   sse / avx2 — 4- / 8-wide all-pairs block compares (unaligned loads,
//                scalar tails), selected at runtime from CPUID.
//
// All variants return identical results on identical inputs — sizes,
// contents and output order — enforced by tests/setops_test.cpp the
// same way pipeline_parallel_test enforces thread-count invariance.
//
// Compile-time off-switch: configure with -DSTABLETEXT_SIMD=OFF (CMake
// option) to strip the vectorized paths entirely; dispatch then resolves
// to scalar/galloping only. Runtime override: setops::ForceKernel() or
// the STABLETEXT_SETOPS environment variable (scalar | galloping | sse |
// avx2 | auto), with silent fallback to the best available tier when the
// requested one is not supported by the build or the CPU.

#ifndef STABLETEXT_UTIL_SETOPS_H_
#define STABLETEXT_UTIL_SETOPS_H_

#include <cstddef>
#include <cstdint>

namespace stabletext {
namespace setops {

/// Kernel tiers, in increasing preference order for balanced inputs.
enum class Kernel : uint8_t {
  kAuto = 0,   ///< Dispatch: galloping for skewed sizes, else best SIMD.
  kScalar,     ///< Two-pointer merge.
  kGalloping,  ///< Doubling search of the larger set.
  kSse,        ///< 4-wide SSE4.1 block compare.
  kAvx2,       ///< 8-wide AVX2 block compare.
};

/// Size ratio at or above which kAuto prefers galloping over the block
/// kernels (the smaller set's elements are then rare in the larger one,
/// so searching beats scanning).
inline constexpr size_t kGallopRatio = 32;

/// Output slack IntersectInto requires: the vector kernels store whole
/// registers, so `out` must have room for min(na, nb) +
/// kIntersectIntoPad elements. Slots past the returned size hold
/// scratch, never touched input memory.
inline constexpr size_t kIntersectIntoPad = 8;

/// |a ∩ b| for two strictly-ascending sorted arrays. Dispatched.
size_t IntersectionSize(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb);

/// Writes a ∩ b (ascending) to `out` and returns its size. `out` must
/// have room for min(na, nb) + kIntersectIntoPad elements and must not
/// alias the inputs. Dispatched.
size_t IntersectInto(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out);

/// Membership probe in a sorted array (branch-reduced binary search).
bool ContainsSorted(const uint32_t* a, size_t n, uint32_t key);

// ---------------------------------------------------------------------
// Direct per-kernel entry points (property tests and bench_setops; the
// SIMD variants fall back to scalar when the tier is unavailable — gate
// on KernelAvailable() to measure what you think you measure).

size_t IntersectionSizeScalar(const uint32_t* a, size_t na,
                              const uint32_t* b, size_t nb);
size_t IntersectionSizeGalloping(const uint32_t* a, size_t na,
                                 const uint32_t* b, size_t nb);
size_t IntersectionSizeSse(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb);
size_t IntersectionSizeAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb);

size_t IntersectIntoScalar(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out);
size_t IntersectIntoGalloping(const uint32_t* a, size_t na,
                              const uint32_t* b, size_t nb, uint32_t* out);
size_t IntersectIntoSse(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb, uint32_t* out);
size_t IntersectIntoAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, uint32_t* out);

// ---------------------------------------------------------------------
// Dispatch control / introspection.

/// True if `kernel` is compiled in and supported by this CPU.
bool KernelAvailable(Kernel kernel);

/// The tier kAuto resolves to for balanced (non-skewed) inputs.
Kernel ActiveKernel();

/// Overrides dispatch for this process (tests, benches, the
/// STABLETEXT_SETOPS env var at startup). kAuto restores the default.
/// An unavailable kernel silently degrades to the best available tier.
void ForceKernel(Kernel kernel);

const char* KernelName(Kernel kernel);

/// Parses "scalar" | "galloping" | "sse" | "avx2" | "auto"; returns
/// kAuto for anything else.
Kernel ParseKernelName(const char* name);

}  // namespace setops
}  // namespace stabletext

#endif  // STABLETEXT_UTIL_SETOPS_H_
