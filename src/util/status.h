// Status / Result error handling, following the RocksDB idiom: no exceptions
// cross public API boundaries; fallible operations return a Status (or a
// Result<T> carrying a value on success).

#ifndef STABLETEXT_UTIL_STATUS_H_
#define STABLETEXT_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace stabletext {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfMemoryBudget,
  kCorruption,
  kNotSupported,
  kInternal,
  kDataLoss,
};

/// \brief Lightweight status object returned by fallible operations.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Copying is cheap for OK (empty message).
///
/// [[nodiscard]]: silently dropping a Status is how a failed fsync turns
/// into data loss — every call site must check, propagate, or explicitly
/// discard with a justifying comment and a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemoryBudget(std::string msg) {
    return Status(StatusCode::kOutOfMemoryBudget, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicit, greppable discard for the few places that genuinely have
  /// nowhere to report (destructors). `Close().IgnoreError()` states the
  /// intent; a bare `Close()` is a compile error.
  void IgnoreError() const {}

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing value() on an error (or status() never) is a programming error
/// guarded by assert in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(implicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(implicit)
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Returns the error status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(payload_) : fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define ST_RETURN_IF_ERROR(expr)           \
  do {                                     \
    ::stabletext::Status st_s_ = (expr);   \
    if (!st_s_.ok()) return st_s_;         \
  } while (0)

/// Assigns the value of a Result expression to lhs or propagates the error.
#define ST_ASSIGN_OR_RETURN(lhs, expr)          \
  auto st_r_##__LINE__ = (expr);                \
  if (!st_r_##__LINE__.ok()) {                  \
    return st_r_##__LINE__.status();            \
  }                                             \
  lhs = std::move(st_r_##__LINE__).value()

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_STATUS_H_
