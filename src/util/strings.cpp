#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace stabletext {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

void ToLowerAscii(std::string* s) {
  for (char& c : *s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%zu%s", bytes, units[0]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace stabletext
