// Clang thread-safety-annotated synchronization primitives. Every lock in
// the library goes through these wrappers instead of <mutex> directly, so
// the locking conventions the engine's correctness rests on (snapshot-
// isolated readers, a single serial writer, loop-thread-affine serving
// state) are statements the compiler checks, not comments TSan hopes to
// catch at runtime.
//
// Vocabulary (see README "Static analysis"):
//   - Mutex / SharedMutex / CondVar: drop-in wrappers over the std types,
//     carrying CAPABILITY annotations.
//   - MutexLock / ReaderMutexLock / WriterMutexLock: RAII guards
//     (SCOPED_CAPABILITY) replacing std::lock_guard / std::unique_lock.
//   - GUARDED_BY(mu) on a field: every access must hold mu.
//   - REQUIRES(mu) on a function: callers must already hold mu.
//   - ThreadRole / AssumeRole: a zero-cost fake capability expressing
//     thread-affinity contracts ("writer thread only", "loop thread
//     only") in the same machine-checked language. Acquiring a role is
//     an assertion about which thread is executing, not a lock.
//
// The attribute macros expand to nothing outside Clang, so GCC builds are
// byte-identical; the CI `analysis` job builds with clang
// -Wthread-safety -Werror and fails on any violation. Known-safe escapes
// use NO_THREAD_SAFETY_ANALYSIS with a comment justifying each one.

#ifndef STABLETEXT_UTIL_ANNOTATED_MUTEX_H_
#define STABLETEXT_UTIL_ANNOTATED_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define ST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ST_THREAD_ANNOTATION(x)  // GCC et al.: annotations compile away.
#endif

#define CAPABILITY(x) ST_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY ST_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) ST_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) ST_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  ST_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  ST_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  ST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) ST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ST_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) ST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ST_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  ST_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  ST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ST_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) ST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) ST_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  ST_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) ST_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  ST_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace stabletext {

/// \brief std::mutex with a thread-safety capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief RAII exclusive lock over Mutex (replaces std::lock_guard /
/// std::unique_lock). CondVar can wait on it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}  // lock_'s destructor unlocks.

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief std::shared_mutex with a thread-safety capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII shared (read) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Condition variable paired with Mutex/MutexLock.
///
/// Deliberately predicate-less: call sites spell the wait loop out
/// (`while (!cond) cv.Wait(lock);`) so the guarded reads in the predicate
/// are visible to the analysis in a scope that provably holds the lock —
/// a predicate lambda would be analyzed as an unlocked function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, sleeps, and reacquires before returning.
  /// The caller's capability is held again on return, matching what the
  /// analysis assumes across the call.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief Zero-cost fake capability for thread-affinity contracts.
///
/// A ThreadRole models statements like "Engine's commit path runs on the
/// single writer thread" or "connection state is loop-thread only" as a
/// capability: affine fields are GUARDED_BY(role), affine methods
/// REQUIRES(role), and each thread's entry point (or a callback known to
/// run on that thread) holds the role via AssumeRole. Acquiring a role
/// has no runtime effect — it is an assertion about which thread is
/// executing, enforced by the caller's structure (externally-exclusive
/// ingest, the event loop's single dispatch thread), not a lock. The
/// payoff is that the compiler rejects any new code path that reaches
/// role-guarded state from the wrong side.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() ACQUIRE() {}
  void Release() RELEASE() {}
};

/// \brief Scoped assertion that the current thread holds `role`.
class SCOPED_CAPABILITY AssumeRole {
 public:
  explicit AssumeRole(ThreadRole& role) ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~AssumeRole() RELEASE() { role_.Release(); }

  AssumeRole(const AssumeRole&) = delete;
  AssumeRole& operator=(const AssumeRole&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_ANNOTATED_MUTEX_H_
