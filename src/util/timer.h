// Wall-clock timing used by the benchmark harnesses.

#ifndef STABLETEXT_UTIL_TIMER_H_
#define STABLETEXT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace stabletext {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const;

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_TIMER_H_
