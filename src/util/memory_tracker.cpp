#include "util/memory_tracker.h"

#include <cassert>

namespace stabletext {

Status MemoryTracker::Charge(size_t bytes) {
  if (budget_ != kUnlimited && live_ + bytes > budget_) {
    return Status::OutOfMemoryBudget(
        "memory budget exceeded: live=" + std::to_string(live_) +
        " request=" + std::to_string(bytes) +
        " budget=" + std::to_string(budget_));
  }
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
  return Status::OK();
}

void MemoryTracker::ForceCharge(size_t bytes) {
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
}

void MemoryTracker::Release(size_t bytes) {
  assert(bytes <= live_ && "releasing more memory than is live");
  live_ = bytes <= live_ ? live_ - bytes : 0;
}

}  // namespace stabletext
