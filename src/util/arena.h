// Allocation discipline for the per-tick hot path: reusable scratch
// containers that are allocated once and rebuilt in place every tick,
// instead of per-call unordered_map/unordered_set churn.
//
// Lifetime rules (see README "Hot-path kernels"): a scratch object is
// owned by exactly one long-lived writer-side component (e.g. one
// affinity-join slot per gap-window position), is NOT thread-safe, and
// holds no pointers into tick data after the call that filled it
// returns — it may be reused or destroyed freely between ticks.

#ifndef STABLETEXT_UTIL_ARENA_H_
#define STABLETEXT_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace stabletext {

/// \brief Minimal aligned allocator: every allocation starts on a cache
/// line and is padded to whole cache lines, so flat sorted keyword
/// arrays never split a SIMD block across an unnecessary line boundary.
template <typename T, size_t Alignment = 64>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    if (n == 0) n = 1;
    size_t bytes = n * sizeof(T);
    bytes = (bytes + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, size_t) { std::free(p); }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U, Alignment>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheAlignedAllocator<U, Alignment>&) const {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = CacheAlignedAllocator<U, Alignment>;
  };
};

/// \brief Epoch-stamped membership set over dense ids [0, n).
///
/// Clear() is O(1): it bumps the epoch instead of touching the stamp
/// array, so a per-probe "seen" set costs nothing to reset. The array
/// only grows (never shrinks) — reuse across ticks is allocation-free
/// once it has reached the high-water mark.
class EpochStampedSet {
 public:
  /// Makes the set empty and able to hold ids [0, n). O(1) unless the
  /// capacity grows or the 32-bit epoch wraps (once per 2^32 clears).
  void Clear(size_t n) {
    if (stamps_.size() < n) stamps_.resize(n, 0);
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Inserts `id`; returns true if it was not yet a member.
  bool Insert(uint32_t id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

  bool Contains(uint32_t id) const { return stamps_[id] == epoch_; }

  size_t MemoryBytes() const {
    return sizeof(*this) + stamps_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

/// \brief Epoch-stamped map from dense ids to a POD value, same O(1)
/// reset discipline as EpochStampedSet. Reading an unset key yields the
/// default value without touching the stamp.
template <typename V>
class EpochStampedArray {
 public:
  void Clear(size_t n) {
    if (stamps_.size() < n) {
      stamps_.resize(n, 0);
      values_.resize(n);
    }
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Current value for `id` (default-constructed if unset this epoch).
  V Get(uint32_t id) const {
    return stamps_[id] == epoch_ ? values_[id] : V{};
  }

  bool IsSet(uint32_t id) const { return stamps_[id] == epoch_; }

  void Set(uint32_t id, V value) {
    stamps_[id] = epoch_;
    values_[id] = value;
  }

  size_t MemoryBytes() const {
    return sizeof(*this) + stamps_.capacity() * sizeof(uint32_t) +
           values_.capacity() * sizeof(V);
  }

 private:
  std::vector<uint32_t> stamps_;
  std::vector<V> values_;
  uint32_t epoch_ = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_ARENA_H_
