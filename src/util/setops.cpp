#include "util/setops.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

// Compile-time SIMD off-switch (CMake option STABLETEXT_SIMD, default
// ON). When off — or on a non-x86 target — only the scalar and galloping
// tiers are compiled and dispatch never selects a vector kernel.
#ifndef STABLETEXT_SIMD
#define STABLETEXT_SIMD 1
#endif

#if STABLETEXT_SIMD && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define STABLETEXT_SETOPS_X86 1
#include <immintrin.h>
#else
#define STABLETEXT_SETOPS_X86 0
#endif

namespace stabletext {
namespace setops {

namespace {

std::atomic<Kernel> g_forced{Kernel::kAuto};

#if STABLETEXT_SETOPS_X86
bool CpuHasSse41() {
  static const bool has = __builtin_cpu_supports("sse4.1");
  return has;
}
bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

// mask (one bit per matched 32-bit lane) -> byte shuffle that compacts
// the matched lanes of an SSE register to the front. Unmatched tail
// lanes shuffle in zeros; the caller advances by popcount and treats
// them as scratch (hence kIntersectIntoPad).
struct Compact4Table {
  alignas(16) uint8_t bytes[16][16];
  Compact4Table() {
    for (int mask = 0; mask < 16; ++mask) {
      int packed = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) {
          for (int byte = 0; byte < 4; ++byte) {
            bytes[mask][4 * packed + byte] =
                static_cast<uint8_t>(4 * lane + byte);
          }
          ++packed;
        }
      }
      for (int k = 4 * packed; k < 16; ++k) bytes[mask][k] = 0x80;
    }
  }
};
const Compact4Table kCompact4;

// mask -> lane permutation compacting matched AVX2 lanes to the front.
struct Compact8Table {
  alignas(32) uint32_t lanes[256][8];
  Compact8Table() {
    for (int mask = 0; mask < 256; ++mask) {
      int packed = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if (mask & (1 << lane)) {
          lanes[mask][packed++] = static_cast<uint32_t>(lane);
        }
      }
      for (; packed < 8; ++packed) lanes[mask][packed] = 0;
    }
  }
};
const Compact8Table kCompact8;
#endif  // STABLETEXT_SETOPS_X86

// Smallest index >= pos with arr[idx] >= key (or n): doubling search
// from pos, then binary search inside the bracketed window.
size_t GallopLowerBound(const uint32_t* arr, size_t n, size_t pos,
                        uint32_t key) {
  if (pos >= n || arr[pos] >= key) return pos;
  size_t step = 1;
  size_t prev = pos;
  size_t cur = pos + 1;
  while (cur < n && arr[cur] < key) {
    prev = cur;
    step <<= 1;
    cur = pos + step;
  }
  const size_t hi = cur + 1 < n ? cur + 1 : n;
  return static_cast<size_t>(
      std::lower_bound(arr + prev + 1, arr + hi, key) - arr);
}

Kernel BestKernel() {
#if STABLETEXT_SETOPS_X86
  if (CpuHasAvx2()) return Kernel::kAvx2;
  if (CpuHasSse41()) return Kernel::kSse;
#endif
  return Kernel::kScalar;
}

// Degrades an unavailable request to the best tier at or below it.
Kernel Clamp(Kernel kernel) {
  switch (kernel) {
    case Kernel::kAvx2:
      if (KernelAvailable(Kernel::kAvx2)) return Kernel::kAvx2;
      [[fallthrough]];
    case Kernel::kSse:
      if (KernelAvailable(Kernel::kSse)) return Kernel::kSse;
      return Kernel::kScalar;
    default:
      return kernel;
  }
}

// One-time STABLETEXT_SETOPS environment override, applied before main.
struct EnvForce {
  EnvForce() {
    const char* env = std::getenv("STABLETEXT_SETOPS");
    if (env != nullptr && env[0] != '\0') {
      ForceKernel(ParseKernelName(env));
    }
  }
};
const EnvForce g_env_force;

}  // namespace

size_t IntersectionSizeScalar(const uint32_t* a, size_t na,
                              const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t IntersectIntoScalar(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[n++] = a[i];
      ++i;
      ++j;
    }
  }
  return n;
}

size_t IntersectionSizeGalloping(const uint32_t* a, size_t na,
                                 const uint32_t* b, size_t nb) {
  const uint32_t* small = a;
  const uint32_t* large = b;
  size_t ns = na, nl = nb;
  if (ns > nl) {
    std::swap(small, large);
    std::swap(ns, nl);
  }
  size_t pos = 0, count = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large, nl, pos, small[i]);
    if (pos == nl) break;
    if (large[pos] == small[i]) {
      ++count;
      ++pos;
    }
  }
  return count;
}

size_t IntersectIntoGalloping(const uint32_t* a, size_t na,
                              const uint32_t* b, size_t nb, uint32_t* out) {
  const uint32_t* small = a;
  const uint32_t* large = b;
  size_t ns = na, nl = nb;
  if (ns > nl) {
    std::swap(small, large);
    std::swap(ns, nl);
  }
  size_t pos = 0, n = 0;
  for (size_t i = 0; i < ns; ++i) {
    pos = GallopLowerBound(large, nl, pos, small[i]);
    if (pos == nl) break;
    if (large[pos] == small[i]) {
      out[n++] = small[i];
      ++pos;
    }
  }
  return n;
}

#if STABLETEXT_SETOPS_X86

// 4-wide block kernel: compare an SSE register of a against all four
// rotations of a register of b (16 pairwise compares), then advance the
// block whose maximum is smaller — the vector analogue of the scalar
// merge step. Elements are unique within a sorted set, so each matched
// a-lane pairs with exactly one b element and popcount(mask) is exact.
__attribute__((target("sse4.1"))) size_t IntersectionSizeSseImpl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));  // rot 2
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    count += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + IntersectionSizeScalar(a + i, na - i, b + j, nb - j);
}

__attribute__((target("sse4.1"))) size_t IntersectIntoSseImpl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    // Compact matched lanes to the front of the register and store; the
    // store covers a whole register, which is why `out` carries
    // kIntersectIntoPad slack beyond min(na, nb).
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompact4.bytes[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                     _mm_shuffle_epi8(va, shuf));
    n += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return n + IntersectIntoScalar(a + i, na - i, b + j, nb - j, out + n);
}

// 8-wide block kernel: a against all eight rotations of b (64 pairwise
// compares per iteration).
__attribute__((target("avx2"))) size_t IntersectionSizeAvx2Impl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  size_t i = 0, j = 0, count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    count += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + IntersectionSizeScalar(a + i, na - i, b + j, nb - j);
}

__attribute__((target("avx2"))) size_t IntersectIntoAvx2Impl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  size_t i = 0, j = 0, n = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompact8.lanes[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n),
                        _mm256_permutevar8x32_epi32(va, perm));
    n += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return n + IntersectIntoScalar(a + i, na - i, b + j, nb - j, out + n);
}

#endif  // STABLETEXT_SETOPS_X86

size_t IntersectionSizeSse(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb) {
#if STABLETEXT_SETOPS_X86
  if (CpuHasSse41()) return IntersectionSizeSseImpl(a, na, b, nb);
#endif
  return IntersectionSizeScalar(a, na, b, nb);
}

size_t IntersectionSizeAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb) {
#if STABLETEXT_SETOPS_X86
  if (CpuHasAvx2()) return IntersectionSizeAvx2Impl(a, na, b, nb);
#endif
  return IntersectionSizeScalar(a, na, b, nb);
}

size_t IntersectIntoSse(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb, uint32_t* out) {
#if STABLETEXT_SETOPS_X86
  if (CpuHasSse41()) return IntersectIntoSseImpl(a, na, b, nb, out);
#endif
  return IntersectIntoScalar(a, na, b, nb, out);
}

size_t IntersectIntoAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, uint32_t* out) {
#if STABLETEXT_SETOPS_X86
  if (CpuHasAvx2()) return IntersectIntoAvx2Impl(a, na, b, nb, out);
#endif
  return IntersectIntoScalar(a, na, b, nb, out);
}

size_t IntersectionSize(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb) {
  if (na == 0 || nb == 0) return 0;
  Kernel kernel = g_forced.load(std::memory_order_relaxed);
  if (kernel == Kernel::kAuto) {
    const size_t lo = na < nb ? na : nb;
    const size_t hi = na < nb ? nb : na;
    kernel = hi >= lo * kGallopRatio ? Kernel::kGalloping : BestKernel();
  }
  switch (kernel) {
    case Kernel::kGalloping:
      return IntersectionSizeGalloping(a, na, b, nb);
    case Kernel::kSse:
      return IntersectionSizeSse(a, na, b, nb);
    case Kernel::kAvx2:
      return IntersectionSizeAvx2(a, na, b, nb);
    case Kernel::kScalar:
    case Kernel::kAuto:
      break;
  }
  return IntersectionSizeScalar(a, na, b, nb);
}

size_t IntersectInto(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out) {
  if (na == 0 || nb == 0) return 0;
  Kernel kernel = g_forced.load(std::memory_order_relaxed);
  if (kernel == Kernel::kAuto) {
    const size_t lo = na < nb ? na : nb;
    const size_t hi = na < nb ? nb : na;
    kernel = hi >= lo * kGallopRatio ? Kernel::kGalloping : BestKernel();
  }
  switch (kernel) {
    case Kernel::kGalloping:
      return IntersectIntoGalloping(a, na, b, nb, out);
    case Kernel::kSse:
      return IntersectIntoSse(a, na, b, nb, out);
    case Kernel::kAvx2:
      return IntersectIntoAvx2(a, na, b, nb, out);
    case Kernel::kScalar:
    case Kernel::kAuto:
      break;
  }
  return IntersectIntoScalar(a, na, b, nb, out);
}

bool ContainsSorted(const uint32_t* a, size_t n, uint32_t key) {
  if (n == 0) return false;
  size_t lo = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    if (a[lo + half - 1] < key) lo += half;
    len -= half;
  }
  return a[lo] == key;
}

bool KernelAvailable(Kernel kernel) {
  switch (kernel) {
    case Kernel::kAuto:
    case Kernel::kScalar:
    case Kernel::kGalloping:
      return true;
    case Kernel::kSse:
#if STABLETEXT_SETOPS_X86
      return CpuHasSse41();
#else
      return false;
#endif
    case Kernel::kAvx2:
#if STABLETEXT_SETOPS_X86
      return CpuHasAvx2();
#else
      return false;
#endif
  }
  return false;
}

Kernel ActiveKernel() {
  const Kernel forced = g_forced.load(std::memory_order_relaxed);
  return forced == Kernel::kAuto ? BestKernel() : forced;
}

void ForceKernel(Kernel kernel) {
  g_forced.store(kernel == Kernel::kAuto ? Kernel::kAuto : Clamp(kernel),
                 std::memory_order_relaxed);
}

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kAuto:
      return "auto";
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kGalloping:
      return "galloping";
    case Kernel::kSse:
      return "sse";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Kernel ParseKernelName(const char* name) {
  if (name == nullptr) return Kernel::kAuto;
  if (std::strcmp(name, "scalar") == 0) return Kernel::kScalar;
  if (std::strcmp(name, "galloping") == 0) return Kernel::kGalloping;
  if (std::strcmp(name, "sse") == 0) return Kernel::kSse;
  if (std::strcmp(name, "avx2") == 0) return Kernel::kAvx2;
  return Kernel::kAuto;
}

}  // namespace setops
}  // namespace stabletext
