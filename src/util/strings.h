// Small string utilities shared across modules.

#ifndef STABLETEXT_UTIL_STRINGS_H_
#define STABLETEXT_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace stabletext {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lowercase in place.
void ToLowerAscii(std::string* s);

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// True iff s begins with prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Human-readable byte count, e.g. "1.5MB".
std::string HumanBytes(size_t bytes);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_STRINGS_H_
