// Deterministic pseudo-random number generation. All synthetic-data paths in
// the library use this generator so that experiments and tests are exactly
// reproducible from a seed, independent of the standard library's
// distribution implementations.

#ifndef STABLETEXT_UTIL_RANDOM_H_
#define STABLETEXT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stabletext {

/// \brief xoshiro256** PRNG with splitmix64 seeding.
///
/// Fast, high-quality, and fully deterministic across platforms. Not
/// cryptographically secure (not needed here).
class Rng {
 public:
  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1] — matches the paper's edge-weight domain,
  /// where weights of zero are disallowed.
  double NextWeight();

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Zipf-distributed value in [0, n) with exponent s (s >= 0). O(n) per
  /// draw; use ZipfDistribution for repeated draws from the same (n, s).
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws k distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// \brief Zipf sampler with a precomputed CDF and O(log n) draws.
///
/// Rank 0 is the most frequent outcome: P(k) ∝ 1 / (k+1)^s.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k), cdf_.back() == 1.
};

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_RANDOM_H_
