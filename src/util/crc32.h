// CRC32 (IEEE 802.3 polynomial, reflected) for on-disk integrity checks:
// write-ahead-log records, checkpoint payloads and record-file pages all
// carry a checksum so bit rot and torn writes are detected instead of
// silently replayed.

#ifndef STABLETEXT_UTIL_CRC32_H_
#define STABLETEXT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace stabletext {

/// Extends a running CRC32 with `size` bytes. Seed a fresh computation
/// with crc = 0; the returned value is the standard (zlib-compatible)
/// CRC-32 of the concatenated input.
uint32_t Crc32(uint32_t crc, const void* data, size_t size);

/// One-shot CRC32 of a buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32(0, data, size);
}

}  // namespace stabletext

#endif  // STABLETEXT_UTIL_CRC32_H_
