// English stop-word filtering (Section 3: keyword pairs are emitted "after
// stemming and removal of stop words").

#ifndef STABLETEXT_TEXT_STOPWORDS_H_
#define STABLETEXT_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace stabletext {

/// \brief Set of stop words with an embedded default English list.
class StopWords {
 public:
  /// Constructs with the built-in English list (SMART-style, ~170 words).
  StopWords();

  /// Constructs from an explicit list (tests, other languages).
  explicit StopWords(const std::vector<std::string>& words);

  /// True if `word` (already lowercased) is a stop word.
  bool Contains(std::string_view word) const;

  /// Adds a word to the set.
  void Add(std::string_view word);

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace stabletext

#endif  // STABLETEXT_TEXT_STOPWORDS_H_
