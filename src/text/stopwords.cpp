#include "text/stopwords.h"

namespace stabletext {

namespace {
// A compact English stop-word list (function words + web-text noise).
const char* const kDefaultStopWords[] = {
    "a",       "about",   "above",  "after",   "again",   "against",
    "all",     "also",    "am",     "an",      "and",     "any",
    "are",     "arent",   "as",     "at",      "be",      "because",
    "been",    "before",  "being",  "below",   "between", "both",
    "but",     "by",      "can",    "cant",    "cannot",  "could",
    "couldnt", "did",     "didnt",  "do",      "does",    "doesnt",
    "doing",   "dont",    "down",   "during",  "each",    "few",
    "for",     "from",    "further","get",     "got",     "had",
    "hadnt",   "has",     "hasnt",  "have",    "havent",  "having",
    "he",      "hed",     "hell",   "hes",     "her",     "here",
    "heres",   "hers",    "herself","him",     "himself", "his",
    "how",     "hows",    "i",      "id",      "ill",     "im",
    "ive",     "if",      "in",     "into",    "is",      "isnt",
    "it",      "its",     "itself", "just",    "lets",    "like",
    "me",      "more",    "most",   "mustnt",  "my",      "myself",
    "no",      "nor",     "not",    "now",     "of",      "off",
    "on",      "once",    "one",    "only",    "or",      "other",
    "ought",   "our",     "ours",   "ourselves", "out",   "over",
    "own",     "really",  "same",   "shant",   "she",     "shed",
    "shell",   "shes",    "should", "shouldnt","so",      "some",
    "such",    "than",    "that",   "thats",   "the",     "their",
    "theirs",  "them",    "themselves", "then","there",   "theres",
    "these",   "they",    "theyd",  "theyll",  "theyre",  "theyve",
    "this",    "those",   "through","to",      "too",     "under",
    "until",   "up",      "us",     "very",    "was",     "wasnt",
    "we",      "wed",     "well",   "were",    "weve",    "werent",
    "what",    "whats",   "when",   "whens",   "where",   "wheres",
    "which",   "while",   "who",    "whos",    "whom",    "why",
    "whys",    "will",    "with",   "wont",    "would",   "wouldnt",
    "you",     "youd",    "youll",  "youre",   "youve",   "your",
    "yours",   "yourself","yourselves",
};
}  // namespace

StopWords::StopWords() {
  for (const char* w : kDefaultStopWords) words_.insert(w);
}

StopWords::StopWords(const std::vector<std::string>& words) {
  for (const auto& w : words) words_.insert(w);
}

bool StopWords::Contains(std::string_view word) const {
  return words_.count(std::string(word)) > 0;
}

void StopWords::Add(std::string_view word) {
  words_.insert(std::string(word));
}

}  // namespace stabletext
