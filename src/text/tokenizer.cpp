#include "text/tokenizer.h"

namespace stabletext {

namespace {
bool IsTokenChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '\'';
}
char LowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

void Tokenizer::Tokenize(std::string_view text,
                         std::vector<std::string>* out) const {
  std::string current;
  bool has_alpha = false;
  auto flush = [&] {
    if (!current.empty()) {
      const bool length_ok = current.size() >= options_.min_token_length &&
                             current.size() <= options_.max_token_length;
      const bool digits_ok = has_alpha || options_.keep_digits;
      if (length_ok && digits_ok) out->push_back(current);
    }
    current.clear();
    has_alpha = false;
  };
  for (char raw : text) {
    if (IsTokenChar(raw)) {
      if (raw == '\'') continue;  // "don't" -> "dont"
      char c = LowerAscii(raw);
      if (c >= 'a' && c <= 'z') has_alpha = true;
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  Tokenize(text, &out);
  return out;
}

}  // namespace stabletext
