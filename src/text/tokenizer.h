// Tokenization of blog-post text: lowercasing, alphanumeric token
// extraction, length filtering. Matches the preprocessing the paper applies
// before stemming and stop-word removal (Section 3).

#ifndef STABLETEXT_TEXT_TOKENIZER_H_
#define STABLETEXT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace stabletext {

/// Options controlling tokenization.
struct TokenizerOptions {
  size_t min_token_length = 2;   ///< Tokens shorter than this are dropped.
  size_t max_token_length = 40;  ///< Tokens longer than this are dropped.
  bool keep_digits = true;       ///< Whether pure-digit tokens are kept.
};

/// \brief Splits raw text into lowercase tokens.
///
/// A token is a maximal run of ASCII letters/digits plus embedded
/// apostrophes (which are removed: "don't" -> "dont"). All other bytes are
/// separators; non-ASCII bytes are treated as separators, which is the
/// behaviour of the original BlogScope tokenizer for the English-dominated
/// 2007 corpus.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text` and appends tokens to *out.
  void Tokenize(std::string_view text, std::vector<std::string>* out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_TEXT_TOKENIZER_H_
