#include "text/corpus.h"

#include <charconv>
#include <filesystem>

#include "util/strings.h"

namespace stabletext {

Status CorpusWriter::Open(const std::filesystem::path& path) {
  path_ = path.string();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) return Status::IOError("cannot open " + path_);
  count_ = 0;
  return Status::OK();
}

Status CorpusWriter::Append(uint32_t interval, std::string_view text) {
  if (!out_.is_open()) return Status::InvalidArgument("writer not open");
  std::string clean(text);
  for (char& c : clean) {
    if (c == '\n' || c == '\t' || c == '\r') c = ' ';
  }
  out_ << interval << '\t' << clean << '\n';
  if (!out_) return Status::IOError("write failed on " + path_);
  ++count_;
  return Status::OK();
}

Status CorpusWriter::Finish() {
  if (!out_.is_open()) return Status::OK();
  out_.flush();
  if (!out_) return Status::IOError("flush failed on " + path_);
  out_.close();
  return Status::OK();
}

Status CorpusReader::Open(const std::filesystem::path& path) {
  path_ = path.string();
  in_.open(path);
  if (!in_) return Status::IOError("cannot open " + path_);
  return Status::OK();
}

bool CorpusReader::Next(uint32_t* interval, std::string* text) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      status_ = Status::Corruption("missing tab in corpus line: " + path_);
      return false;
    }
    uint32_t iv = 0;
    auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + tab, iv);
    if (ec != std::errc() || ptr != line.data() + tab) {
      status_ = Status::Corruption("bad interval in corpus line: " + path_);
      return false;
    }
    *interval = iv;
    text->assign(line, tab + 1, std::string::npos);
    return true;
  }
  return false;
}

Status CorpusReader::ForEach(
    const std::function<void(uint32_t, const std::string&)>& fn) {
  uint32_t interval;
  std::string text;
  while (Next(&interval, &text)) fn(interval, text);
  return status_;
}

uint64_t FileSizeBytes(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace stabletext
