// Corpus: on-disk collection of raw posts, one per line, grouped by
// temporal interval. This is the substitute for the BlogScope crawler feed:
// the pipeline streams posts interval by interval exactly as BlogScope
// "fetches all newly created blog posts at regular time intervals".

#ifndef STABLETEXT_TEXT_CORPUS_H_
#define STABLETEXT_TEXT_CORPUS_H_

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "text/document.h"
#include "util/status.h"

namespace stabletext {

/// \brief Writes posts to a corpus file.
///
/// Format: one post per line, "<interval>\t<raw text>". Lines are the unit
/// of streaming; order within the file is arbitrary.
class CorpusWriter {
 public:
  /// Opens `path` for writing (truncates).
  Status Open(const std::filesystem::path& path);

  /// Appends one raw post. Newlines and tabs in `text` are replaced by
  /// spaces to keep the format line-oriented.
  Status Append(uint32_t interval, std::string_view text);

  /// Flushes and closes.
  Status Finish();

  uint64_t count() const { return count_; }

 private:
  std::ofstream out_;
  std::string path_;
  uint64_t count_ = 0;
};

/// \brief Streams a corpus file.
class CorpusReader {
 public:
  /// Opens `path` for reading.
  Status Open(const std::filesystem::path& path);

  /// Reads the next raw post. Returns false at end of file.
  bool Next(uint32_t* interval, std::string* text);

  /// Streams every post through `fn`. Stops early and returns the error if
  /// the file is malformed.
  Status ForEach(
      const std::function<void(uint32_t, const std::string&)>& fn);

  const Status& status() const { return status_; }

 private:
  std::ifstream in_;
  std::string path_;
  Status status_;
};

/// Returns the size in bytes of the file at `path`, or 0 on error.
uint64_t FileSizeBytes(const std::filesystem::path& path);

}  // namespace stabletext

#endif  // STABLETEXT_TEXT_CORPUS_H_
