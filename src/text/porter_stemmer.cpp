// Direct implementation of the five-step Porter algorithm. Conventions
// follow the 1980 paper: a word is a sequence [C](VC)^m[V]; rules are
// applied longest-suffix-first within a step.

#include "text/porter_stemmer.h"

namespace stabletext {

namespace {

/// Working buffer with the measure/vowel predicates from the paper.
class StemBuffer {
 public:
  explicit StemBuffer(std::string_view w) : b_(w) {}

  const std::string& str() const { return b_; }

  bool IsConsonant(size_t i) const {
    char c = b_[i];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// m() of the prefix b_[0..k] (inclusive): number of VC sequences.
  size_t Measure(size_t k) const {
    size_t n = 0;
    size_t i = 0;
    // Skip initial consonants.
    while (true) {
      if (i > k) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      // Skip vowels.
      while (true) {
        if (i > k) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      // Skip consonants.
      while (true) {
        if (i > k) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  /// m() of the stem that would remain after removing `suffix_len` chars.
  size_t MeasureAfterRemoving(size_t suffix_len) const {
    if (b_.size() <= suffix_len) return 0;
    return Measure(b_.size() - suffix_len - 1);
  }

  bool EndsWith(std::string_view suffix) const {
    return b_.size() >= suffix.size() &&
           std::string_view(b_).substr(b_.size() - suffix.size()) == suffix;
  }

  /// True if the stem before the suffix contains a vowel.
  bool VowelInStem(size_t suffix_len) const {
    if (b_.size() <= suffix_len) return false;
    for (size_t i = 0; i + suffix_len < b_.size(); ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  /// True if the word ends with a double consonant.
  bool DoubleConsonantEnd() const {
    size_t n = b_.size();
    if (n < 2) return false;
    return b_[n - 1] == b_[n - 2] && IsConsonant(n - 1);
  }

  /// *o condition of the paper: stem ends cvc where the final c is not
  /// w, x or y. `suffix_len` chars are imagined removed first.
  bool CvcEnd(size_t suffix_len) const {
    if (b_.size() < suffix_len + 3) return false;
    size_t i = b_.size() - suffix_len - 1;
    if (!IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[i];
    return c != 'w' && c != 'x' && c != 'y';
  }

  void ReplaceSuffix(size_t suffix_len, std::string_view replacement) {
    b_.resize(b_.size() - suffix_len);
    b_.append(replacement);
  }

  void Truncate(size_t n) { b_.resize(b_.size() - n); }

  char Last() const { return b_.empty() ? '\0' : b_.back(); }
  size_t size() const { return b_.size(); }

 private:
  std::string b_;
};

struct Rule {
  std::string_view suffix;
  std::string_view replacement;
  size_t min_measure;  // Applies when m(stem) > min_measure ... see use.
};

/// Applies the first matching rule whose stem measure exceeds
/// rule.min_measure. Returns true if any suffix matched (whether or not the
/// measure condition passed), which ends the step per the paper.
bool ApplyRules(StemBuffer* s, const Rule* rules, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const Rule& r = rules[i];
    if (s->EndsWith(r.suffix)) {
      if (s->MeasureAfterRemoving(r.suffix.size()) > r.min_measure) {
        s->ReplaceSuffix(r.suffix.size(), r.replacement);
      }
      return true;
    }
  }
  return false;
}

void Step1a(StemBuffer* s) {
  if (s->EndsWith("sses")) {
    s->ReplaceSuffix(4, "ss");
  } else if (s->EndsWith("ies")) {
    s->ReplaceSuffix(3, "i");
  } else if (s->EndsWith("ss")) {
    // Unchanged.
  } else if (s->EndsWith("s")) {
    s->Truncate(1);
  }
}

void Step1bCleanup(StemBuffer* s) {
  // After removing "ed"/"ing": at/bl/iz -> add e; double consonant (not
  // l/s/z) -> single letter; m=1 and *o -> add e.
  if (s->EndsWith("at") || s->EndsWith("bl") || s->EndsWith("iz")) {
    s->ReplaceSuffix(0, "e");
  } else if (s->DoubleConsonantEnd() && s->Last() != 'l' &&
             s->Last() != 's' && s->Last() != 'z') {
    s->Truncate(1);
  } else if (s->Measure(s->size() - 1) == 1 && s->CvcEnd(0)) {
    s->ReplaceSuffix(0, "e");
  }
}

void Step1b(StemBuffer* s) {
  if (s->EndsWith("eed")) {
    if (s->MeasureAfterRemoving(3) > 0) s->Truncate(1);
    return;
  }
  if (s->EndsWith("ed")) {
    if (s->VowelInStem(2)) {
      s->Truncate(2);
      Step1bCleanup(s);
    }
    return;
  }
  if (s->EndsWith("ing")) {
    if (s->VowelInStem(3)) {
      s->Truncate(3);
      Step1bCleanup(s);
    }
    return;
  }
}

void Step1c(StemBuffer* s) {
  if (s->EndsWith("y") && s->VowelInStem(1)) {
    s->ReplaceSuffix(1, "i");
  }
}

void Step2(StemBuffer* s) {
  static constexpr Rule kRules[] = {
      {"ational", "ate", 0}, {"tional", "tion", 0}, {"enci", "ence", 0},
      {"anci", "ance", 0},   {"izer", "ize", 0},    {"abli", "able", 0},
      {"alli", "al", 0},     {"entli", "ent", 0},   {"eli", "e", 0},
      {"ousli", "ous", 0},   {"ization", "ize", 0}, {"ation", "ate", 0},
      {"ator", "ate", 0},    {"alism", "al", 0},    {"iveness", "ive", 0},
      {"fulness", "ful", 0}, {"ousness", "ous", 0}, {"aliti", "al", 0},
      {"iviti", "ive", 0},   {"biliti", "ble", 0},
  };
  // Longest-match: the table above is checked in order; since suffixes can
  // shadow each other (e.g. "ization" vs "ation"), scan for the longest
  // matching suffix explicitly.
  const Rule* best = nullptr;
  for (const Rule& r : kRules) {
    if (s->EndsWith(r.suffix) &&
        (best == nullptr || r.suffix.size() > best->suffix.size())) {
      best = &r;
    }
  }
  if (best != nullptr && s->MeasureAfterRemoving(best->suffix.size()) > 0) {
    s->ReplaceSuffix(best->suffix.size(), best->replacement);
  }
}

void Step3(StemBuffer* s) {
  static constexpr Rule kRules[] = {
      {"icate", "ic", 0}, {"ative", "", 0}, {"alize", "al", 0},
      {"iciti", "ic", 0}, {"ical", "ic", 0}, {"ful", "", 0},
      {"ness", "", 0},
  };
  ApplyRules(s, kRules, sizeof(kRules) / sizeof(kRules[0]));
}

void Step4(StemBuffer* s) {
  static constexpr std::string_view kSuffixes[] = {
      "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant",
      "ement", "ment", "ent",  "ou",  "ism", "ate",  "iti",  "ous",
      "ive",   "ize",
  };
  const std::string_view* best = nullptr;
  for (const auto& suf : kSuffixes) {
    if (s->EndsWith(suf) && (best == nullptr || suf.size() > best->size())) {
      best = &suf;
    }
  }
  // "ion" only when preceded by s or t.
  bool ion = false;
  if ((best == nullptr || best->size() < 3) && s->EndsWith("ion") &&
      s->size() >= 4) {
    char prev = s->str()[s->size() - 4];
    if (prev == 's' || prev == 't') {
      ion = true;
    }
  }
  if (ion) {
    if (s->MeasureAfterRemoving(3) > 1) s->Truncate(3);
    return;
  }
  if (best != nullptr && s->MeasureAfterRemoving(best->size()) > 1) {
    s->Truncate(best->size());
  }
}

void Step5a(StemBuffer* s) {
  if (s->EndsWith("e")) {
    size_t m = s->MeasureAfterRemoving(1);
    if (m > 1 || (m == 1 && !s->CvcEnd(1))) s->Truncate(1);
  }
}

void Step5b(StemBuffer* s) {
  if (s->Measure(s->size() - 1) > 1 && s->DoubleConsonantEnd() &&
      s->Last() == 'l') {
    s->Truncate(1);
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  StemBuffer s(word);
  Step1a(&s);
  Step1b(&s);
  Step1c(&s);
  Step2(&s);
  Step3(&s);
  Step4(&s);
  Step5a(&s);
  Step5b(&s);
  return s.str();
}

}  // namespace stabletext
