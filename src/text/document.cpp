#include "text/document.h"

#include <algorithm>

namespace stabletext {

DocumentProcessor::DocumentProcessor(TokenizerOptions tokenizer_options,
                                     StopWords stopwords)
    : tokenizer_(tokenizer_options), stopwords_(std::move(stopwords)) {}

Document DocumentProcessor::Process(uint32_t interval,
                                    std::string_view text) const {
  Document doc;
  doc.interval = interval;
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  doc.keywords.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    if (stopwords_.Contains(tok)) continue;
    std::string stem = PorterStemmer::Stem(tok);
    if (stem.size() < 2) continue;
    doc.keywords.push_back(std::move(stem));
  }
  std::sort(doc.keywords.begin(), doc.keywords.end());
  doc.keywords.erase(
      std::unique(doc.keywords.begin(), doc.keywords.end()),
      doc.keywords.end());
  return doc;
}

}  // namespace stabletext
