// Document model: a blog post is a bag of (preprocessed) keywords stamped
// with the temporal interval it was created in.

#ifndef STABLETEXT_TEXT_DOCUMENT_H_
#define STABLETEXT_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace stabletext {

/// \brief A single post, preprocessed to a *set* of distinct keywords.
///
/// The paper's co-occurrence count A(u,v) is the number of documents
/// containing both u and v, so within one document each keyword counts
/// once; Document therefore stores distinct keywords, sorted.
struct Document {
  uint32_t interval = 0;           ///< Temporal interval index (e.g. day).
  std::vector<std::string> keywords;  ///< Distinct, sorted, stemmed.
};

/// \brief Turns raw post text into a Document: tokenize, drop stop words,
/// stem, deduplicate.
class DocumentProcessor {
 public:
  DocumentProcessor(TokenizerOptions tokenizer_options = {},
                    StopWords stopwords = StopWords());

  /// Preprocesses `text` posted in `interval`.
  Document Process(uint32_t interval, std::string_view text) const;

 private:
  Tokenizer tokenizer_;
  StopWords stopwords_;
};

}  // namespace stabletext

#endif  // STABLETEXT_TEXT_DOCUMENT_H_
