// Porter stemming algorithm (M.F. Porter, 1980), implemented from the
// original paper's rule tables. The blog-cluster pipeline stems every
// keyword ("after stemming and removal of stop words", Section 3), and the
// paper's figures show stemmed keywords ("beckham", "galaxi", "madrid").

#ifndef STABLETEXT_TEXT_PORTER_STEMMER_H_
#define STABLETEXT_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace stabletext {

/// \brief Stateless Porter stemmer for lowercase ASCII words.
///
/// Words of length <= 2 are returned unchanged, as in the reference
/// implementation. Input is assumed already lowercased (the Tokenizer
/// guarantees this).
class PorterStemmer {
 public:
  /// Returns the stem of `word`.
  static std::string Stem(std::string_view word);
};

}  // namespace stabletext

#endif  // STABLETEXT_TEXT_PORTER_STEMMER_H_
