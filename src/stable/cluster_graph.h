// The cluster graph G of Section 4.1: nodes are per-interval keyword
// clusters, directed edges connect clusters of nearby intervals (within the
// gap bound) whose affinity exceeds the threshold theta. Edge length is the
// interval distance; edge weight is the affinity, normalized to (0, 1].

#ifndef STABLETEXT_STABLE_CLUSTER_GRAPH_H_
#define STABLETEXT_STABLE_CLUSTER_GRAPH_H_

#include <cstdint>
#include <vector>

#include "stable/path.h"
#include "util/status.h"

namespace stabletext {

/// A directed edge to `target` with affinity `weight`.
struct ClusterGraphEdge {
  NodeId target;
  double weight;
};

/// \brief Interval-partitioned weighted DAG over cluster nodes.
///
/// Nodes are added per interval; edges may only go forward in time by at
/// most gap+1 intervals and must carry weight in (0, 1]. Children lists are
/// kept sorted by descending weight — the DFS finder's exploration
/// heuristic (Section 4.3: "while precomputing the list of children for all
/// nodes, we sort them in the descending order of edge weights").
class ClusterGraph {
 public:
  /// \param interval_count m, the number of temporal intervals.
  /// \param gap g >= 0; edges span at most gap+1 intervals.
  ClusterGraph(uint32_t interval_count, uint32_t gap)
      : interval_count_(interval_count), gap_(gap),
        intervals_(interval_count) {}

  /// Adds a node to interval `interval` (0-based). Returns its id.
  NodeId AddNode(uint32_t interval);

  /// Adds a directed edge. Requires interval(from) < interval(to),
  /// interval distance <= gap+1, and weight in (0, 1].
  Status AddEdge(NodeId from, NodeId to, double weight);

  /// Re-sorts all children lists by descending weight (stable order:
  /// weight desc, then target asc). Called automatically by AddEdge-heavy
  /// builders once at the end; idempotent.
  void SortChildren();

  uint32_t interval_count() const { return interval_count_; }
  uint32_t gap() const { return gap_; }
  size_t node_count() const { return node_interval_.size(); }
  size_t edge_count() const { return edge_count_; }

  uint32_t Interval(NodeId n) const { return node_interval_[n]; }
  const std::vector<NodeId>& IntervalNodes(uint32_t interval) const {
    return intervals_[interval];
  }

  const std::vector<ClusterGraphEdge>& Children(NodeId n) const {
    return children_[n];
  }
  const std::vector<ClusterGraphEdge>& Parents(NodeId n) const {
    return parents_[n];
  }

  /// Length of the edge (a, b) in intervals.
  uint32_t EdgeLength(NodeId a, NodeId b) const {
    return node_interval_[b] - node_interval_[a];
  }

  /// Maximum out-degree (the d of Section 4.4's cost analysis).
  size_t MaxOutDegree() const;

  /// Approximate resident bytes of the adjacency structure.
  size_t MemoryBytes() const;

 private:
  uint32_t interval_count_;
  uint32_t gap_;
  size_t edge_count_ = 0;
  std::vector<std::vector<NodeId>> intervals_;
  std::vector<uint32_t> node_interval_;
  std::vector<std::vector<ClusterGraphEdge>> children_;
  std::vector<std::vector<ClusterGraphEdge>> parents_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_CLUSTER_GRAPH_H_
