// The cluster graph G of Section 4.1: nodes are per-interval keyword
// clusters, directed edges connect clusters of nearby intervals (within the
// gap bound) whose affinity exceeds the threshold theta. Edge length is the
// interval distance; edge weight is the affinity, normalized to (0, 1].
//
// Storage model (streaming-first): while building, adjacency lives in
// per-node vectors the writer keeps extending. Frozen views — the per-epoch
// snapshots the engine publishes, and the terminal SortChildren() freeze —
// store adjacency and node metadata in immutable fixed-size CSR *chunks*
// held by shared_ptr. Sealing an epoch rebuilds only the chunks touched
// since the previous seal and shares every other chunk pointer with it
// (copy-on-write at chunk granularity), so publishing a tick costs O(delta),
// not O(graph), and any number of pinned old epochs stay byte-stable while
// the writer keeps committing.
//
// Weights can be stored raw (EnableRawWeights): reads through EdgeSpan then
// apply a per-graph scale (min(raw * scale, 1.0)) so a running-max
// renormalization is a single scale update instead of an O(E) rewrite.

#ifndef STABLETEXT_STABLE_CLUSTER_GRAPH_H_
#define STABLETEXT_STABLE_CLUSTER_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "stable/path.h"
#include "util/status.h"

namespace stabletext {

/// A directed edge to `target` with affinity `weight`.
struct ClusterGraphEdge {
  NodeId target;
  double weight;
};

/// Non-owning view of one node's adjacency list.
///
/// Stored entries may hold raw (unnormalized) weights; iteration and
/// indexing return edges with the graph's read-time scale applied
/// (min(stored * scale, 1.0) — bit-identical to the stored weight when the
/// scale is 1). Edges are therefore returned by value; binding the usual
/// `const ClusterGraphEdge&` loop variable works as before.
class EdgeSpan {
 public:
  EdgeSpan(const ClusterGraphEdge* data, size_t size, double scale = 1.0)
      : data_(data), size_(size), scale_(scale) {}

  class Iterator {
   public:
    // Multipass over immutable storage: forward, so vector::assign and
    // std::distance size their result in one pass (the edges are
    // returned by value, which forward consumers here never notice).
    using iterator_category = std::forward_iterator_tag;
    using value_type = ClusterGraphEdge;
    using difference_type = std::ptrdiff_t;
    using pointer = const ClusterGraphEdge*;
    using reference = ClusterGraphEdge;

    Iterator(const ClusterGraphEdge* p, double scale)
        : p_(p), scale_(scale) {}
    ClusterGraphEdge operator*() const {
      return ClusterGraphEdge{p_->target,
                              std::min(p_->weight * scale_, 1.0)};
    }
    Iterator& operator++() {
      ++p_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator old = *this;
      ++p_;
      return old;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.p_ == b.p_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.p_ != b.p_;
    }

   private:
    const ClusterGraphEdge* p_;
    double scale_;
  };

  Iterator begin() const { return Iterator(data_, scale_); }
  Iterator end() const { return Iterator(data_ + size_, scale_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ClusterGraphEdge operator[](size_t i) const {
    return ClusterGraphEdge{data_[i].target,
                            std::min(data_[i].weight * scale_, 1.0)};
  }

 private:
  const ClusterGraphEdge* data_;
  size_t size_;
  double scale_;
};

/// \brief Interval-partitioned weighted DAG over cluster nodes.
///
/// Nodes are added per interval; edges may only go forward in time by at
/// most gap+1 intervals and must carry weight in (0, 1] (or any positive
/// weight once EnableRawWeights() arms read-time normalization). Children
/// lists are kept sorted by descending stored weight — the DFS finder's
/// exploration heuristic (Section 4.3: "while precomputing the list of
/// children for all nodes, we sort them in the descending order of edge
/// weights").
///
/// Two phases: while building, adjacency lives in per-node vectors;
/// SealedCopy() produces an immutable chunked-CSR view per epoch (O(delta):
/// untouched chunks are shared with the previous seal), and SortChildren()
/// (= terminal freeze) converts the graph itself into that representation.
/// AddEdge after the freeze is an error.
class ClusterGraph {
 public:
  /// Nodes per immutable chunk (power of two). A committed tick touches
  /// only the chunks covering its gap window, so per-epoch sealing
  /// rebuilds O(window / kChunkNodes + 1) chunks.
  static constexpr size_t kChunkShift = 9;
  static constexpr size_t kChunkNodes = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkNodes - 1;

  /// One immutable CSR chunk: the adjacency of nodes
  /// [chunk * kChunkNodes, chunk * kChunkNodes + offsets.size() - 1).
  struct AdjChunk {
    std::vector<uint32_t> offsets;  ///< Relative; size = nodes in chunk + 1.
    std::vector<ClusterGraphEdge> edges;

    size_t MemoryBytes() const {
      return sizeof(*this) + offsets.capacity() * sizeof(uint32_t) +
             edges.capacity() * sizeof(ClusterGraphEdge);
    }
  };

  /// Chunk accounting of one SealedCopy() call.
  struct SealStats {
    size_t shared_chunks = 0;  ///< Reused pointers (children + parents).
    size_t copied_chunks = 0;  ///< Rebuilt chunks (children + parents).
  };

  /// \param interval_count m, the number of temporal intervals.
  /// \param gap g >= 0; edges span at most gap+1 intervals.
  ClusterGraph(uint32_t interval_count, uint32_t gap)
      : interval_count_(interval_count), gap_(gap),
        intervals_(interval_count) {}

  /// Appends a new (empty) temporal interval and returns its index. The
  /// streaming entry point: a graph constructed with interval_count 0
  /// grows one interval per ingested tick.
  uint32_t AddInterval();

  /// Adds a node to interval `interval` (0-based). Returns its id.
  NodeId AddNode(uint32_t interval);

  /// Adds a directed edge. Requires interval(from) < interval(to),
  /// interval distance <= gap+1, and weight in (0, 1] — or merely a
  /// positive finite weight in raw-weights mode, where reads normalize.
  /// Fails once the graph has been frozen by SortChildren().
  Status AddEdge(NodeId from, NodeId to, double weight);

  /// Freezes the graph: sorts all children lists by descending stored
  /// weight (stable order: weight desc, then target asc), parents by
  /// source id, and compacts the adjacency into immutable chunks (reusing
  /// any chunk already sealed and untouched). Idempotent.
  void SortChildren();

  /// Build-phase (streaming) variant of SortChildren: re-sorts only the
  /// adjacency lists touched by AddEdge since the last sort, into the same
  /// total order the freeze would produce, without compacting — the graph
  /// stays extendable. Queries between ingests rely on this; a no-op on a
  /// frozen graph. O(touched lists) per call.
  void SortTouched();

  /// Multiplies every stored edge weight by `factor` (> 0), preserving
  /// sort order. Build phase only (error once frozen). Superseded on the
  /// engine's hot path by set_weight_scale (lazy renormalization); kept
  /// for callers that materialize weights in place. Dirties every chunk.
  Status ScaleEdgeWeights(double factor);

  /// Accepts weights outside (0, 1]: AddEdge then only requires a
  /// positive finite weight, and callers are expected to normalize at
  /// read time via set_weight_scale. Build phase only.
  void EnableRawWeights() { raw_weights_ = true; }

  /// Read-time weight scale: every EdgeSpan read returns
  /// min(stored * scale, 1.0). Updating the scale re-normalizes the whole
  /// graph in O(1) — the lazy replacement for ScaleEdgeWeights.
  void set_weight_scale(double scale) { weight_scale_ = scale; }
  double weight_scale() const { return weight_scale_; }

  /// \brief O(delta) frozen chunk-shared copy — the per-epoch seal.
  ///
  /// Returns an immutable (frozen) view of the current graph: chunks
  /// covering nodes untouched since the previous SealedCopy() are shared
  /// by pointer with it; only dirtied chunks are rebuilt. Requires the
  /// adjacency lists to be in sorted order (SortTouched after the last
  /// AddEdge batch). With `materialize_scale` the rebuilt chunks store
  /// min(weight * weight_scale(), 1.0) and the copy reads at scale 1 (the
  /// eager-normalization baseline: a scale change dirties every chunk);
  /// otherwise chunks keep stored weights and the copy inherits the
  /// scale. On an already-frozen graph this is a cheap pointer-sharing
  /// copy. `stats`, when non-null, receives the shared/copied counts.
  ClusterGraph SealedCopy(bool materialize_scale = false,
                          SealStats* stats = nullptr);

  /// Forces the next SealedCopy() to rebuild every chunk (the old
  /// full-copy publish path, kept as a benchmark baseline).
  void MarkAllSealDirty();

  /// True once SortChildren() has compacted the adjacency (or this graph
  /// was produced by SealedCopy()).
  bool frozen() const { return frozen_; }

  uint32_t interval_count() const { return interval_count_; }
  uint32_t gap() const { return gap_; }
  size_t node_count() const { return node_count_; }
  size_t edge_count() const { return edge_count_; }

  uint32_t Interval(NodeId n) const {
    if (frozen_) {
      return (*node_interval_chunks_[n >> kChunkShift])[n & kChunkMask];
    }
    return node_interval_[n];
  }
  const std::vector<NodeId>& IntervalNodes(uint32_t interval) const {
    if (frozen_) return *frozen_intervals_[interval];
    return intervals_[interval];
  }

  EdgeSpan Children(NodeId n) const {
    if (frozen_) return ChunkSpan(child_chunks_, n);
    return EdgeSpan(build_children_[n].data(), build_children_[n].size(),
                    weight_scale_);
  }
  EdgeSpan Parents(NodeId n) const {
    if (frozen_) return ChunkSpan(parent_chunks_, n);
    return EdgeSpan(build_parents_[n].data(), build_parents_[n].size(),
                    weight_scale_);
  }
  /// Parents at *stored* weights (scale 1), bypassing the read-time
  /// normalization. The durability log serializes these so replaying
  /// AddEdge reproduces the stored bits — and the running-max scale —
  /// exactly.
  EdgeSpan StoredParents(NodeId n) const {
    if (frozen_) {
      const AdjChunk& c = *parent_chunks_[n >> kChunkShift];
      const uint32_t i = static_cast<uint32_t>(n & kChunkMask);
      return EdgeSpan(c.edges.data() + c.offsets[i],
                      c.offsets[i + 1] - c.offsets[i], 1.0);
    }
    return EdgeSpan(build_parents_[n].data(), build_parents_[n].size(),
                    1.0);
  }

  /// Length of the edge (a, b) in intervals.
  uint32_t EdgeLength(NodeId a, NodeId b) const {
    return Interval(b) - Interval(a);
  }

  /// Maximum out-degree (the d of Section 4.4's cost analysis).
  size_t MaxOutDegree() const;

  /// Approximate resident bytes of the adjacency structure. Chunks shared
  /// with other epochs are counted once per graph (the paper's streaming
  /// setting shares them across every live snapshot).
  size_t MemoryBytes() const;

  // Chunk introspection (frozen graphs), for the chunk-sharing tests and
  // the engine's publish accounting.
  size_t chunk_count() const { return child_chunks_.size(); }
  std::shared_ptr<const AdjChunk> child_chunk(size_t chunk) const {
    return child_chunks_[chunk];
  }
  std::shared_ptr<const AdjChunk> parent_chunk(size_t chunk) const {
    return parent_chunks_[chunk];
  }

 private:
  using AdjChunkPtr = std::shared_ptr<const AdjChunk>;
  using IntervalChunkPtr = std::shared_ptr<const std::vector<uint32_t>>;
  using IntervalNodesPtr = std::shared_ptr<const std::vector<NodeId>>;

  EdgeSpan ChunkSpan(const std::vector<AdjChunkPtr>& chunks,
                     NodeId n) const {
    const AdjChunk& c = *chunks[n >> kChunkShift];
    const uint32_t i = static_cast<uint32_t>(n & kChunkMask);
    return EdgeSpan(c.edges.data() + c.offsets[i],
                    c.offsets[i + 1] - c.offsets[i], weight_scale_);
  }

  // Builds the chunk covering nodes [chunk*kChunkNodes, ...) from the
  // build-phase `lists`, optionally materializing the read scale.
  AdjChunkPtr BuildChunk(
      const std::vector<std::vector<ClusterGraphEdge>>& lists,
      size_t chunk, bool materialize_scale) const;

  // Refreshes the seal cache (sealed_* members) from the build-phase
  // state, rebuilding only dirty chunks. Returns chunk accounting.
  SealStats RefreshSeal(bool materialize_scale);

  // Marks node `n`'s chunk dirty in `flags` (growing it as needed).
  void MarkChunkDirty(std::vector<uint8_t>* flags, NodeId n);

  uint32_t interval_count_;
  uint32_t gap_;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
  bool frozen_ = false;
  bool raw_weights_ = false;
  double weight_scale_ = 1.0;

  // ---- build-phase state (cleared by the terminal freeze) ----
  std::vector<std::vector<NodeId>> intervals_;
  std::vector<uint32_t> node_interval_;
  std::vector<std::vector<ClusterGraphEdge>> build_children_;
  std::vector<std::vector<ClusterGraphEdge>> build_parents_;
  // Nodes whose build-phase lists gained edges since the last sort.
  std::vector<NodeId> touched_children_;
  std::vector<NodeId> touched_parents_;
  std::vector<uint8_t> child_touched_flag_;
  std::vector<uint8_t> parent_touched_flag_;

  // ---- seal cache: the chunks of the last SealedCopy, shared with every
  // epoch that still pins them; per-chunk dirty bits track what the next
  // seal must rebuild. ----
  std::vector<AdjChunkPtr> sealed_children_;
  std::vector<AdjChunkPtr> sealed_parents_;
  std::vector<IntervalChunkPtr> sealed_node_intervals_;
  std::vector<IntervalNodesPtr> sealed_intervals_;
  std::vector<uint8_t> seal_child_dirty_;
  std::vector<uint8_t> seal_parent_dirty_;
  std::vector<uint8_t> seal_meta_dirty_;
  // Leading intervals whose node lists are unchanged since the last seal.
  uint32_t seal_clean_intervals_ = 0;
  bool sealed_materialized_ = false;
  double sealed_scale_ = 1.0;

  // ---- frozen (chunked CSR) state ----
  std::vector<AdjChunkPtr> child_chunks_;
  std::vector<AdjChunkPtr> parent_chunks_;
  std::vector<IntervalChunkPtr> node_interval_chunks_;
  std::vector<IntervalNodesPtr> frozen_intervals_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_CLUSTER_GRAPH_H_
