// The cluster graph G of Section 4.1: nodes are per-interval keyword
// clusters, directed edges connect clusters of nearby intervals (within the
// gap bound) whose affinity exceeds the threshold theta. Edge length is the
// interval distance; edge weight is the affinity, normalized to (0, 1].

#ifndef STABLETEXT_STABLE_CLUSTER_GRAPH_H_
#define STABLETEXT_STABLE_CLUSTER_GRAPH_H_

#include <cstdint>
#include <vector>

#include "stable/path.h"
#include "util/status.h"

namespace stabletext {

/// A directed edge to `target` with affinity `weight`.
struct ClusterGraphEdge {
  NodeId target;
  double weight;
};

/// Non-owning view of one node's adjacency list.
class EdgeSpan {
 public:
  EdgeSpan(const ClusterGraphEdge* data, size_t size)
      : data_(data), size_(size) {}

  const ClusterGraphEdge* begin() const { return data_; }
  const ClusterGraphEdge* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const ClusterGraphEdge& operator[](size_t i) const { return data_[i]; }

 private:
  const ClusterGraphEdge* data_;
  size_t size_;
};

/// \brief Interval-partitioned weighted DAG over cluster nodes.
///
/// Nodes are added per interval; edges may only go forward in time by at
/// most gap+1 intervals and must carry weight in (0, 1]. Children lists are
/// kept sorted by descending weight — the DFS finder's exploration
/// heuristic (Section 4.3: "while precomputing the list of children for all
/// nodes, we sort them in the descending order of edge weights").
///
/// Two phases: while building, adjacency lives in per-node vectors;
/// SortChildren() (= freeze) sorts them and compacts everything into
/// immutable CSR arrays, which every finder then traverses without pointer
/// chasing. AddEdge after the freeze is an error.
class ClusterGraph {
 public:
  /// \param interval_count m, the number of temporal intervals.
  /// \param gap g >= 0; edges span at most gap+1 intervals.
  ClusterGraph(uint32_t interval_count, uint32_t gap)
      : interval_count_(interval_count), gap_(gap),
        intervals_(interval_count) {}

  /// Appends a new (empty) temporal interval and returns its index. The
  /// streaming entry point: a graph constructed with interval_count 0
  /// grows one interval per ingested tick.
  uint32_t AddInterval();

  /// Adds a node to interval `interval` (0-based). Returns its id.
  NodeId AddNode(uint32_t interval);

  /// Adds a directed edge. Requires interval(from) < interval(to),
  /// interval distance <= gap+1, and weight in (0, 1]. Fails once the
  /// graph has been frozen by SortChildren().
  Status AddEdge(NodeId from, NodeId to, double weight);

  /// Freezes the graph: sorts all children lists by descending weight
  /// (stable order: weight desc, then target asc), parents by source id,
  /// and compacts the adjacency into CSR arrays. Called automatically by
  /// AddEdge-heavy builders once at the end; idempotent.
  void SortChildren();

  /// Build-phase (streaming) variant of SortChildren: re-sorts only the
  /// adjacency lists touched by AddEdge since the last sort, into the same
  /// total order the freeze would produce, without compacting — the graph
  /// stays extendable. Queries between ingests rely on this; a no-op on a
  /// frozen graph. O(touched lists) per call.
  void SortTouched();

  /// Multiplies every edge weight by `factor` (> 0), preserving sort
  /// order. Build phase only (error once frozen). Used by streaming
  /// ingestion to renormalize raw-intersection affinities when the
  /// running maximum grows.
  Status ScaleEdgeWeights(double factor);

  /// Returns a frozen (CSR) copy of the current graph without mutating
  /// *this — the streaming freeze-to-snapshot path: the writer keeps
  /// extending its build-phase adjacency while every published epoch
  /// traverses its own immutable CSR arrays. Requires the adjacency lists
  /// to be in sorted order (SortTouched after the last AddEdge batch);
  /// the copy is then byte-identical to what SortChildren() would freeze.
  ClusterGraph FrozenCopy() const;

  /// True once SortChildren() has compacted the adjacency.
  bool frozen() const { return frozen_; }

  uint32_t interval_count() const { return interval_count_; }
  uint32_t gap() const { return gap_; }
  size_t node_count() const { return node_interval_.size(); }
  size_t edge_count() const { return edge_count_; }

  uint32_t Interval(NodeId n) const { return node_interval_[n]; }
  const std::vector<NodeId>& IntervalNodes(uint32_t interval) const {
    return intervals_[interval];
  }

  EdgeSpan Children(NodeId n) const {
    if (frozen_) {
      return EdgeSpan(child_edges_.data() + child_offsets_[n],
                      child_offsets_[n + 1] - child_offsets_[n]);
    }
    return EdgeSpan(build_children_[n].data(), build_children_[n].size());
  }
  EdgeSpan Parents(NodeId n) const {
    if (frozen_) {
      return EdgeSpan(parent_edges_.data() + parent_offsets_[n],
                      parent_offsets_[n + 1] - parent_offsets_[n]);
    }
    return EdgeSpan(build_parents_[n].data(), build_parents_[n].size());
  }

  /// Length of the edge (a, b) in intervals.
  uint32_t EdgeLength(NodeId a, NodeId b) const {
    return node_interval_[b] - node_interval_[a];
  }

  /// Maximum out-degree (the d of Section 4.4's cost analysis).
  size_t MaxOutDegree() const;

  /// Approximate resident bytes of the adjacency structure.
  size_t MemoryBytes() const;

 private:
  // Flattens sorted per-node lists into offsets + one contiguous array,
  // leaving `lists` untouched (shared by the destructive freeze and the
  // copying FrozenCopy so the CSR layout cannot diverge).
  static void Compact(
      const std::vector<std::vector<ClusterGraphEdge>>& lists,
      std::vector<size_t>* offsets, std::vector<ClusterGraphEdge>* edges);

  uint32_t interval_count_;
  uint32_t gap_;
  size_t edge_count_ = 0;
  bool frozen_ = false;
  std::vector<std::vector<NodeId>> intervals_;
  std::vector<uint32_t> node_interval_;
  // Build-phase adjacency; cleared by the freeze.
  std::vector<std::vector<ClusterGraphEdge>> build_children_;
  std::vector<std::vector<ClusterGraphEdge>> build_parents_;
  // Nodes whose build-phase lists gained edges since the last sort.
  std::vector<NodeId> touched_children_;
  std::vector<NodeId> touched_parents_;
  std::vector<uint8_t> child_touched_flag_;
  std::vector<uint8_t> parent_touched_flag_;
  // Frozen CSR adjacency.
  std::vector<size_t> child_offsets_;
  std::vector<ClusterGraphEdge> child_edges_;
  std::vector<size_t> parent_offsets_;
  std::vector<ClusterGraphEdge> parent_edges_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_CLUSTER_GRAPH_H_
