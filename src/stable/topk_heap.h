// Fixed-capacity top-k container for paths, with duplicate rejection and a
// pluggable total order. Used for the per-node heaps h^x_ij of Algorithm 2,
// the bestpaths structures of Algorithm 3, and the global heap H everywhere.

#ifndef STABLETEXT_STABLE_TOPK_HEAP_H_
#define STABLETEXT_STABLE_TOPK_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

#include "stable/path.h"

namespace stabletext {

/// \brief Keeps the k best paths under a strict total order `Better`.
///
/// Backed by a sorted vector (best first); k is small in all of the paper's
/// experiments (top-5), so O(k) inserts beat a real heap in practice and
/// give deterministic iteration order for free.
template <typename Better = PathBetter>
class TopKHeap {
 public:
  explicit TopKHeap(size_t k = 0, Better better = Better())
      : k_(k), better_(better) {}

  /// Offers a path. Returns true if it was admitted (strictly better than
  /// the current k-th or capacity not yet reached, and not a duplicate).
  bool Offer(const StablePath& path) {
    if (k_ == 0) return false;
    if (paths_.size() == k_ && !better_(path, paths_.back())) return false;
    // Duplicate rejection (identical node sequences).
    for (const StablePath& p : paths_) {
      if (p == path) return false;
    }
    auto pos = std::lower_bound(
        paths_.begin(), paths_.end(), path,
        [&](const StablePath& a, const StablePath& b) {
          return better_(a, b);
        });
    paths_.insert(pos, path);
    if (paths_.size() > k_) paths_.pop_back();
    return true;
  }

  bool empty() const { return paths_.empty(); }
  bool full() const { return paths_.size() == k_; }
  size_t size() const { return paths_.size(); }
  size_t capacity() const { return k_; }

  /// Weight of the worst retained path; the "min-k" of Algorithm 3.
  /// For a non-full heap (including empty, and any k = 0 heap) there is
  /// no k-th path yet, so the pruning bound is the documented sentinel
  /// -infinity — reading paths_.back() here was UB before. Current
  /// finders call this only under full(); the sentinel keeps future
  /// call sites from silently reading garbage.
  double MinWeight() const {
    assert(k_ > 0 && "MinWeight on a k=0 heap is always -infinity");
    if (paths_.size() < k_ || paths_.empty()) {
      return -std::numeric_limits<double>::infinity();
    }
    return paths_.back().weight;
  }

  /// Best-first view.
  const std::vector<StablePath>& paths() const { return paths_; }

  /// Bytes used by retained paths (memory experiments).
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const StablePath& p : paths_) {
      bytes += sizeof(StablePath) + p.nodes.size() * sizeof(NodeId);
    }
    return bytes;
  }

  void Clear() { paths_.clear(); }

 private:
  size_t k_;
  Better better_;
  std::vector<StablePath> paths_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_TOPK_HEAP_H_
