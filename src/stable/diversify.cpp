#include "stable/diversify.h"

#include <algorithm>

namespace stabletext {

bool PathsConflict(const StablePath& a, const StablePath& b,
                   const DiversifyOptions& options) {
  if (options.prefix_nodes >= 2) {
    const size_t n = options.prefix_nodes;
    if (a.nodes.size() >= n && b.nodes.size() >= n &&
        std::equal(a.nodes.begin(), a.nodes.begin() + n,
                   b.nodes.begin())) {
      return true;
    }
  }
  if (options.suffix_nodes >= 2) {
    const size_t n = options.suffix_nodes;
    if (a.nodes.size() >= n && b.nodes.size() >= n &&
        std::equal(a.nodes.end() - n, a.nodes.end(), b.nodes.end() - n)) {
      return true;
    }
  }
  return false;
}

std::vector<StablePath> DiversifyPaths(const std::vector<StablePath>& ranked,
                                       size_t k,
                                       const DiversifyOptions& options) {
  std::vector<StablePath> out;
  for (const StablePath& candidate : ranked) {
    if (out.size() >= k) break;
    bool conflicts = false;
    for (const StablePath& kept : out) {
      if (PathsConflict(candidate, kept, options)) {
        conflicts = true;
        break;
      }
    }
    if (!conflicts) out.push_back(candidate);
  }
  return out;
}

Result<StableFinderResult> FindDiversifiedStableClusters(
    const ClusterGraph& graph, const BfsFinderOptions& finder_options,
    const DiversifyOptions& diversify_options,
    size_t candidate_multiplier) {
  BfsFinderOptions enlarged = finder_options;
  enlarged.k = std::max<size_t>(1, finder_options.k) *
               std::max<size_t>(1, candidate_multiplier);
  auto result = BfsStableFinder(enlarged).Find(graph);
  if (!result.ok()) return result.status();
  StableFinderResult out = std::move(result).value();
  out.paths =
      DiversifyPaths(out.paths, finder_options.k, diversify_options);
  return out;
}

}  // namespace stabletext
