// Paths in the cluster graph (Section 4). A path's *length* is measured in
// temporal intervals ("the length of an edge over a single gap of length g
// is considered to be g+1"), its *weight* is the sum of its edge weights,
// and its *stability* is weight / length (Section 4.5).

#ifndef STABLETEXT_STABLE_PATH_H_
#define STABLETEXT_STABLE_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stabletext {

/// Node id in a cluster graph. Dense in [0, node_count).
using NodeId = uint32_t;

/// Sentinel node id.
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// \brief A weighted path through cluster-graph nodes, earliest first.
struct StablePath {
  std::vector<NodeId> nodes;
  double weight = 0;     ///< Sum of edge weights.
  uint32_t length = 0;   ///< interval(back) - interval(front).

  double stability() const {
    return length == 0 ? 0 : weight / static_cast<double>(length);
  }

  bool empty() const { return nodes.empty(); }

  std::string ToString() const;

  friend bool operator==(const StablePath& a, const StablePath& b) {
    return a.nodes == b.nodes;
  }
};

/// Total order used by every finder and the brute-force oracle so top-k
/// results are uniquely determined even under weight ties: higher weight
/// first, then lexicographically smaller node sequence first.
///
/// The comparator is prefix- and suffix-monotone: extending two equal-
/// weight paths by the same edge preserves their relative order, which is
/// what makes per-node top-k pruning exact.
struct PathBetter {
  bool operator()(const StablePath& a, const StablePath& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.nodes < b.nodes;
  }
};

/// Total order by stability (Problem 2), with the same tie-breaking.
struct PathMoreStable {
  bool operator()(const StablePath& a, const StablePath& b) const {
    const double sa = a.stability();
    const double sb = b.stability();
    if (sa != sb) return sa > sb;
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.nodes < b.nodes;
  }
};

/// True if `sub`'s node sequence occurs contiguously inside `super`'s.
bool IsSubpath(const StablePath& sub, const StablePath& super);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_PATH_H_
