#include "stable/cluster_graph_io.h"

#include <cstdio>
#include <fstream>

#include "util/strings.h"

namespace stabletext {

Status SaveClusterGraph(const ClusterGraph& graph,
                        const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out << "G " << graph.interval_count() << ' ' << graph.gap() << '\n';
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    out << "N " << graph.Interval(v) << '\n';
  }
  char buf[64];
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      std::snprintf(buf, sizeof(buf), "E %u %u %a\n", v, e.target,
                    e.weight);
      out << buf;
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Result<ClusterGraph> LoadClusterGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption(path + ": empty file");
  }
  uint32_t m = 0, gap = 0;
  if (std::sscanf(line.c_str(), "G %u %u", &m, &gap) != 2) {
    return Status::Corruption(path + ": bad header");
  }
  ClusterGraph graph(m, gap);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == 'N') {
      uint32_t interval = 0;
      if (std::sscanf(line.c_str(), "N %u", &interval) != 1 ||
          interval >= m) {
        return Status::Corruption(path + ": bad node at line " +
                                  std::to_string(line_no));
      }
      graph.AddNode(interval);
    } else if (line[0] == 'E') {
      uint32_t from = 0, to = 0;
      double weight = 0;
      if (std::sscanf(line.c_str(), "E %u %u %la", &from, &to,
                      &weight) != 3) {
        return Status::Corruption(path + ": bad edge at line " +
                                  std::to_string(line_no));
      }
      Status s = graph.AddEdge(from, to, weight);
      if (!s.ok()) {
        return Status::Corruption(path + ": invalid edge at line " +
                                  std::to_string(line_no) + " (" +
                                  s.message() + ")");
      }
    } else {
      return Status::Corruption(path + ": unknown record at line " +
                                std::to_string(line_no));
    }
  }
  graph.SortChildren();
  return graph;
}

}  // namespace stabletext
