// Depth-first solution to the normalized stable clusters problem. The
// paper sketches it ("The above algorithm can be used with the DFS
// framework as well... Details are omitted for brevity"); this is the
// worked-out version: a single DFS pass maintaining, per node, top-k
// by-weight heaps of suffix paths (paths starting at the node) for every
// feasible length, with a global stability-ranked heap over all generated
// paths of length >= lmin. Weight-based subtree pruning is not effective
// under stability ranking (any low prefix can be diluted), so none is
// applied; the DFS variant's value, as in Section 4.3, is its small
// memory footprint.

#ifndef STABLETEXT_STABLE_NORMALIZED_DFS_FINDER_H_
#define STABLETEXT_STABLE_NORMALIZED_DFS_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/normalized_bfs_finder.h"
#include "stable/topk_heap.h"

namespace stabletext {

/// \brief Depth-first normalized-stable-cluster finder.
class NormalizedDfsFinder {
 public:
  explicit NormalizedDfsFinder(NormalizedFinderOptions options = {})
      : options_(options) {}

  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  NormalizedFinderOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_NORMALIZED_DFS_FINDER_H_
