#include "stable/dfs_finder.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace stabletext {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// On-disk (simulated) annotation of one node: visited flag, the best known
// weight of a length-x path ending here (maxweight), and the top-k paths of
// each feasible length starting here (bestpaths).
struct NodeState {
  bool visited = false;
  std::vector<double> maxweight;       // Index x in [0, l].
  std::vector<TopKHeap<>> bestpaths;   // Index x in [0, feasible_max].
  size_t cached_bytes = 0;

  size_t ComputeBytes() const {
    size_t bytes = sizeof(*this) + maxweight.capacity() * sizeof(double);
    for (const auto& h : bestpaths) bytes += h.MemoryBytes();
    return bytes;
  }
};

// DFS stack frame. entry_* describe the tree edge used to reach the node
// (needed to update the parent's bestpaths when this node retires).
struct Frame {
  NodeId node;            // kInvalidNode encodes the virtual source.
  size_t child_idx = 0;
  double entry_weight = 0;
  uint32_t entry_len = 0;
};

}  // namespace

Result<StableFinderResult> DfsStableFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t l = options_.l == 0 ? m - 1 : options_.l;
  if (l < 1 || l > m - 1) {
    return Status::InvalidArgument("path length l out of range");
  }
  const size_t k = options_.k;
  const size_t n = graph.node_count();

  // Children lists. The graph keeps them sorted by descending weight (the
  // Section 4.3 heuristic); the ablation path re-sorts by target id.
  std::vector<std::vector<ClusterGraphEdge>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    children[v].assign(graph.Children(v).begin(),
                       graph.Children(v).end());
    if (!options_.sort_children_by_weight) {
      std::sort(children[v].begin(), children[v].end(),
                [](const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
                  return a.target < b.target;
                });
    }
  }
  // The virtual source is connected to every node that could begin a
  // length-l path or that needs to be reached at all; connecting it to all
  // nodes guarantees complete exploration (full-path mode restricts the
  // answer through the maxweight feasibility below, not reachability).
  std::vector<ClusterGraphEdge> source_children;
  source_children.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    source_children.push_back(ClusterGraphEdge{v, 0.0});
  }

  std::vector<NodeState> states(n);
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t i = graph.Interval(v);
    NodeState& st = states[v];
    st.maxweight.assign(l + 1, kNegInf);
    // A length-l path may *start* at v iff it fits before the horizon.
    if (i + l <= m - 1) st.maxweight[0] = 0;
    const uint32_t max_start = std::min<uint32_t>(l, (m - 1) - i);
    st.bestpaths.assign(max_start + 1, TopKHeap<>(k));
    st.cached_bytes = st.ComputeBytes();
  }

  TopKHeap<> global(k);

  // Memory model of Section 4.3: resident state = the stack, the states of
  // stacked nodes, and H. Everything else is on disk.
  size_t resident_state_bytes = 0;
  auto note_peak = [&](size_t frames) {
    const size_t live = frames * sizeof(Frame) + resident_state_bytes +
                        global.MemoryBytes();
    result.peak_memory_bytes = std::max(result.peak_memory_bytes, live);
  };
  auto refresh_bytes = [&](NodeId v) {
    const size_t now = states[v].ComputeBytes();
    resident_state_bytes += now - states[v].cached_bytes;
    states[v].cached_bytes = now;
  };

  // Offers a path to a node heap and to H when it has full length.
  auto offer = [&](NodeState& st, const StablePath& path) {
    ++result.heap_offers;
    if (path.length < st.bestpaths.size()) {
      st.bestpaths[path.length].Offer(path);
    }
    if (path.length == l) {
      ++result.heap_offers;
      global.Offer(path);
    }
  };

  // Folds a finished/visited child c2 into parent c1's bestpaths through
  // edge e (c1 -> c2). Covers the bare edge and all extendable suffixes.
  auto update_bestpaths = [&](NodeId c1, const ClusterGraphEdge& e) {
    NodeState& st = states[c1];
    const NodeId c2 = e.target;
    const uint32_t len = graph.EdgeLength(c1, c2);
    {
      StablePath bare;
      bare.nodes = {c1, c2};
      bare.weight = e.weight;
      bare.length = len;
      offer(st, bare);
    }
    const NodeState& child = states[c2];
    for (uint32_t x = 1; x + len <= l && x < child.bestpaths.size(); ++x) {
      for (const StablePath& pi : child.bestpaths[x].paths()) {
        StablePath extended;
        extended.nodes.reserve(pi.nodes.size() + 1);
        extended.nodes.push_back(c1);
        extended.nodes.insert(extended.nodes.end(), pi.nodes.begin(),
                              pi.nodes.end());
        extended.weight = e.weight + pi.weight;
        extended.length = len + pi.length;
        offer(st, extended);
      }
    }
    refresh_bytes(c1);
  };

  auto can_prune = [&](NodeId c2) {
    if (!global.full()) return false;
    const double min_k = global.MinWeight();
    const uint32_t i = graph.Interval(c2);
    const NodeState& st = states[c2];
    // Feasible prefix lengths x for a length-l path passing through c2:
    // the remaining l-x intervals must fit before the horizon, and a
    // prefix cannot be longer than the elapsed intervals. x == l (path
    // ends here) needs no subtree and is excluded, as in CanPrune.
    const uint32_t x_lo = (l + i > m - 1) ? (l + i) - (m - 1) : 0;
    const uint32_t x_hi = std::min<uint32_t>(l - 1, i);
    for (uint32_t x = x_lo; x <= x_hi; ++x) {
      if (st.maxweight[x] + static_cast<double>(l - x) >= min_k) {
        return false;
      }
    }
    return true;  // Also prunes nodes with no feasible role (empty range).
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{kInvalidNode, 0, 0, 0});  // Virtual source.
  note_peak(stack.size());

  while (!stack.empty()) {
    Frame& top = stack.back();
    const bool at_source = (top.node == kInvalidNode);
    const auto& child_list =
        at_source ? source_children : children[top.node];

    if (top.child_idx < child_list.size()) {
      const ClusterGraphEdge e = child_list[top.child_idx++];
      const NodeId c2 = e.target;
      // Line 8: read the child's annotations from disk (random I/O).
      ++result.io.page_reads;
      ++result.io.random_seeks;

      if (states[c2].visited) {
        if (!at_source) update_bestpaths(top.node, e);
        continue;
      }
      // Push c2.
      states[c2].visited = true;
      ++result.nodes_pushed;
      const uint32_t len = at_source ? 0 : graph.EdgeLength(top.node, c2);
      // Update maxweight(c2, .) from the parent's maxweight (line 16).
      if (!at_source) {
        const NodeState& pst = states[top.node];
        NodeState& cst = states[c2];
        for (uint32_t x = 0; x + len <= l; ++x) {
          if (pst.maxweight[x] == kNegInf) continue;
          cst.maxweight[x + len] =
              std::max(cst.maxweight[x + len], pst.maxweight[x] + e.weight);
        }
      }
      stack.push_back(Frame{c2, 0, e.weight, len});
      resident_state_bytes += states[c2].cached_bytes;
      note_peak(stack.size());

      if (options_.enable_pruning && can_prune(c2)) {
        ++result.prunes;
        // Unmark the visited flag of every stacked node including c2
        // (their subtrees are no longer guaranteed fully considered).
        for (const Frame& f : stack) {
          if (f.node != kInvalidNode) states[f.node].visited = false;
        }
        stack.pop_back();
        resident_state_bytes -= states[c2].cached_bytes;
        // Save c2 back to disk (line 20).
        ++result.io.page_writes;
        ++result.io.random_seeks;
        // The bare edge (and any stale suffixes) still contribute.
        if (!at_source) {
          Frame& parent = stack.back();
          update_bestpaths(parent.node, e);
        }
      }
      continue;
    }

    // Children exhausted: retire the node (lines 24-29).
    const Frame finished = stack.back();
    stack.pop_back();
    if (finished.node != kInvalidNode) {
      resident_state_bytes -= states[finished.node].cached_bytes;
      ++result.io.page_writes;
      ++result.io.random_seeks;
      if (!stack.empty() && stack.back().node != kInvalidNode) {
        update_bestpaths(
            stack.back().node,
            ClusterGraphEdge{finished.node, finished.entry_weight});
      }
    }
  }

  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
