#include "stable/normalized_literal_finder.h"

#include <algorithm>

#include "stable/topk_heap.h"

namespace stabletext {

namespace {

// Weight of edge (a, b) in the graph; -1 when absent.
double EdgeWeight(const ClusterGraph& graph, NodeId a, NodeId b) {
  for (const ClusterGraphEdge& e : graph.Children(a)) {
    if (e.target == b) return e.weight;
  }
  return -1;
}

// Applies Theorem 1 repeatedly: strips the longest reducible prefix.
// Returns the (possibly reduced) path.
StablePath Theorem1Reduce(StablePath path, const ClusterGraph& graph,
                          uint32_t lmin) {
  bool changed = true;
  while (changed && path.nodes.size() >= 3) {
    changed = false;
    double prefix_weight = 0;
    for (size_t split = 1; split + 1 < path.nodes.size(); ++split) {
      prefix_weight += EdgeWeight(graph, path.nodes[split - 1],
                                  path.nodes[split]);
      const uint32_t prefix_len = graph.Interval(path.nodes[split]) -
                                  graph.Interval(path.nodes.front());
      const uint32_t curr_len = path.length - prefix_len;
      if (curr_len < lmin) break;
      const double curr_weight = path.weight - prefix_weight;
      if (prefix_weight * static_cast<double>(curr_len) <=
          curr_weight * static_cast<double>(prefix_len)) {
        path.nodes.erase(path.nodes.begin(),
                         path.nodes.begin() + static_cast<long>(split));
        path.weight = curr_weight;
        path.length = curr_len;
        changed = true;
        break;
      }
    }
  }
  return path;
}

}  // namespace

Result<StableFinderResult> NormalizedLiteralFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t lmin = options_.lmin;
  if (lmin < 1 || lmin > m - 1) {
    return Status::InvalidArgument("lmin out of range");
  }
  const size_t k = options_.k;

  // smallpaths[c][x]: all paths of length x (1 <= x < lmin) ending at c.
  std::vector<std::vector<std::vector<StablePath>>> smallpaths(
      graph.node_count());
  // bestpaths[c]: candidate list (length >= lmin), paper-pruned.
  std::vector<std::vector<StablePath>> bestpaths(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    smallpaths[v].assign(lmin, {});
  }

  TopKHeap<PathMoreStable> global(k);
  auto offer_global = [&](const StablePath& p) {
    if (p.length >= lmin) {
      ++result.heap_offers;
      global.Offer(p);
    }
  };

  auto add_bestpath = [&](NodeId c, StablePath path) {
    offer_global(path);  // Rank before pruning, as in the paper.
    path = Theorem1Reduce(std::move(path), graph, lmin);
    // Subpath rule: drop the incoming path if it is a subpath of a kept
    // one; drop kept ones that are subpaths of the incoming path.
    auto& list = bestpaths[c];
    for (const StablePath& kept : list) {
      if (kept == path || IsSubpath(path, kept)) return;
    }
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const StablePath& kept) {
                                return IsSubpath(kept, path);
                              }),
               list.end());
    list.push_back(std::move(path));
  };

  size_t live_paths = 0;  // For the memory accounting.
  for (uint32_t i = 1; i < m; ++i) {
    for (NodeId c : graph.IntervalNodes(i)) {
      ++result.io.page_reads;
      for (const ClusterGraphEdge& pe : graph.Parents(c)) {
        const NodeId p = pe.target;
        const uint32_t len = i - graph.Interval(p);
        StablePath bare;
        bare.nodes = {p, c};
        bare.weight = pe.weight;
        bare.length = len;
        if (len < lmin) {
          smallpaths[c][len].push_back(bare);
        } else {
          add_bestpath(c, bare);
        }
        // Extend small paths ending at p.
        for (uint32_t x = 1; x < lmin; ++x) {
          for (const StablePath& pi : smallpaths[p][x]) {
            StablePath ext = pi;
            ext.nodes.push_back(c);
            ext.weight += pe.weight;
            ext.length += len;
            ++result.heap_offers;
            if (ext.length < lmin) {
              smallpaths[c][ext.length].push_back(std::move(ext));
            } else {
              add_bestpath(c, std::move(ext));
            }
          }
        }
        // Extend bestpaths ending at p.
        for (const StablePath& pi : bestpaths[p]) {
          StablePath ext = pi;
          ext.nodes.push_back(c);
          ext.weight += pe.weight;
          ext.length += len;
          ++result.heap_offers;
          add_bestpath(c, std::move(ext));
        }
      }
      ++result.io.page_writes;
      for (uint32_t x = 1; x < lmin; ++x) {
        live_paths += smallpaths[c][x].size();
      }
      live_paths += bestpaths[c].size();
    }
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes,
                 live_paths * (sizeof(StablePath) + 8 * sizeof(NodeId)));
  }

  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
