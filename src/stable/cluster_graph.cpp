#include "stable/cluster_graph.h"

#include <algorithm>

namespace stabletext {

uint32_t ClusterGraph::AddInterval() {
  intervals_.emplace_back();
  return interval_count_++;
}

NodeId ClusterGraph::AddNode(uint32_t interval) {
  const NodeId id = static_cast<NodeId>(node_interval_.size());
  node_interval_.push_back(interval);
  intervals_[interval].push_back(id);
  build_children_.emplace_back();
  build_parents_.emplace_back();
  child_touched_flag_.push_back(0);
  parent_touched_flag_.push_back(0);
  if (frozen_) {
    // Late nodes keep the CSR indexable; they have no adjacency.
    child_offsets_.push_back(child_offsets_.back());
    parent_offsets_.push_back(parent_offsets_.back());
  }
  return id;
}

Status ClusterGraph::AddEdge(NodeId from, NodeId to, double weight) {
  if (frozen_) {
    return Status::InvalidArgument(
        "cluster graph is frozen (SortChildren already called)");
  }
  if (from >= node_count() || to >= node_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const uint32_t fi = node_interval_[from];
  const uint32_t ti = node_interval_[to];
  if (ti <= fi) {
    return Status::InvalidArgument("edges must go forward in time");
  }
  if (ti - fi > gap_ + 1) {
    return Status::InvalidArgument("edge exceeds gap bound");
  }
  if (!(weight > 0) || weight > 1) {
    return Status::InvalidArgument("edge weight must be in (0, 1]");
  }
  build_children_[from].push_back(ClusterGraphEdge{to, weight});
  build_parents_[to].push_back(ClusterGraphEdge{from, weight});
  if (!child_touched_flag_[from]) {
    child_touched_flag_[from] = 1;
    touched_children_.push_back(from);
  }
  if (!parent_touched_flag_[to]) {
    parent_touched_flag_[to] = 1;
    touched_parents_.push_back(to);
  }
  ++edge_count_;
  return Status::OK();
}

void ClusterGraph::Compact(
    const std::vector<std::vector<ClusterGraphEdge>>& lists,
    std::vector<size_t>* offsets, std::vector<ClusterGraphEdge>* edges) {
  offsets->assign(lists.size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < lists.size(); ++v) {
    total += lists[v].size();
    (*offsets)[v + 1] = total;
  }
  edges->clear();
  edges->reserve(total);
  for (const auto& list : lists) {
    edges->insert(edges->end(), list.begin(), list.end());
  }
}

namespace {

// Children: weight desc, then target asc (Section 4.3's exploration
// heuristic, and a total order so incremental re-sorts match the freeze).
bool ByWeightDesc(const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.target < b.target;
}

// Parents sorted by source id: deterministic iteration for the BFS
// finder's parent probes.
bool BySourceAsc(const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
  return a.target < b.target;
}

}  // namespace

void ClusterGraph::SortTouched() {
  if (frozen_) return;
  for (NodeId v : touched_children_) {
    std::sort(build_children_[v].begin(), build_children_[v].end(),
              ByWeightDesc);
    child_touched_flag_[v] = 0;
  }
  for (NodeId v : touched_parents_) {
    std::sort(build_parents_[v].begin(), build_parents_[v].end(),
              BySourceAsc);
    parent_touched_flag_[v] = 0;
  }
  touched_children_.clear();
  touched_parents_.clear();
}

Status ClusterGraph::ScaleEdgeWeights(double factor) {
  if (frozen_) {
    return Status::InvalidArgument(
        "cannot rescale a frozen cluster graph");
  }
  if (!(factor > 0)) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  for (auto& list : build_children_) {
    for (ClusterGraphEdge& e : list) e.weight *= factor;
    // Rounding can collapse two distinct weights into a tie, whose
    // (weight desc, target asc) order differs from the pre-scale one;
    // re-sort so the total order always holds.
    std::sort(list.begin(), list.end(), ByWeightDesc);
  }
  for (auto& list : build_parents_) {
    for (ClusterGraphEdge& e : list) e.weight *= factor;
  }
  return Status::OK();
}

void ClusterGraph::SortChildren() {
  if (frozen_) return;
  for (auto& list : build_children_) {
    std::sort(list.begin(), list.end(), ByWeightDesc);
  }
  for (auto& list : build_parents_) {
    std::sort(list.begin(), list.end(), BySourceAsc);
  }
  Compact(build_children_, &child_offsets_, &child_edges_);
  Compact(build_parents_, &parent_offsets_, &parent_edges_);
  build_children_.clear();
  build_children_.shrink_to_fit();
  build_parents_.clear();
  build_parents_.shrink_to_fit();
  touched_children_.clear();
  touched_parents_.clear();
  frozen_ = true;
}

ClusterGraph ClusterGraph::FrozenCopy() const {
  ClusterGraph out(interval_count_, gap_);
  out.edge_count_ = edge_count_;
  out.intervals_ = intervals_;
  out.node_interval_ = node_interval_;
  out.frozen_ = true;
  if (frozen_) {
    out.child_offsets_ = child_offsets_;
    out.child_edges_ = child_edges_;
    out.parent_offsets_ = parent_offsets_;
    out.parent_edges_ = parent_edges_;
    return out;
  }
  Compact(build_children_, &out.child_offsets_, &out.child_edges_);
  Compact(build_parents_, &out.parent_offsets_, &out.parent_edges_);
  return out;
}

size_t ClusterGraph::MaxOutDegree() const {
  size_t d = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    d = std::max(d, Children(v).size());
  }
  return d;
}

size_t ClusterGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += node_interval_.capacity() * sizeof(uint32_t);
  for (const auto& iv : intervals_) {
    bytes += iv.capacity() * sizeof(NodeId);
  }
  if (frozen_) {
    bytes += (child_offsets_.capacity() + parent_offsets_.capacity()) *
             sizeof(size_t);
    bytes += (child_edges_.capacity() + parent_edges_.capacity()) *
             sizeof(ClusterGraphEdge);
  } else {
    for (const auto& list : build_children_) {
      bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
    }
    for (const auto& list : build_parents_) {
      bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
    }
  }
  return bytes;
}

}  // namespace stabletext
