#include "stable/cluster_graph.h"

#include <algorithm>

namespace stabletext {

NodeId ClusterGraph::AddNode(uint32_t interval) {
  const NodeId id = static_cast<NodeId>(node_interval_.size());
  node_interval_.push_back(interval);
  intervals_[interval].push_back(id);
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

Status ClusterGraph::AddEdge(NodeId from, NodeId to, double weight) {
  if (from >= node_count() || to >= node_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const uint32_t fi = node_interval_[from];
  const uint32_t ti = node_interval_[to];
  if (ti <= fi) {
    return Status::InvalidArgument("edges must go forward in time");
  }
  if (ti - fi > gap_ + 1) {
    return Status::InvalidArgument("edge exceeds gap bound");
  }
  if (!(weight > 0) || weight > 1) {
    return Status::InvalidArgument("edge weight must be in (0, 1]");
  }
  children_[from].push_back(ClusterGraphEdge{to, weight});
  parents_[to].push_back(ClusterGraphEdge{from, weight});
  ++edge_count_;
  return Status::OK();
}

void ClusterGraph::SortChildren() {
  auto by_weight_desc = [](const ClusterGraphEdge& a,
                           const ClusterGraphEdge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.target < b.target;
  };
  for (auto& list : children_) {
    std::sort(list.begin(), list.end(), by_weight_desc);
  }
  // Parents sorted by source id: deterministic iteration for the BFS
  // finder's parent probes.
  for (auto& list : parents_) {
    std::sort(list.begin(), list.end(),
              [](const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
                return a.target < b.target;
              });
  }
}

size_t ClusterGraph::MaxOutDegree() const {
  size_t d = 0;
  for (const auto& list : children_) d = std::max(d, list.size());
  return d;
}

size_t ClusterGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += node_interval_.capacity() * sizeof(uint32_t);
  for (const auto& iv : intervals_) {
    bytes += iv.capacity() * sizeof(NodeId);
  }
  for (const auto& list : children_) {
    bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
  }
  for (const auto& list : parents_) {
    bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
  }
  return bytes;
}

}  // namespace stabletext
