#include "stable/cluster_graph.h"

#include <cmath>

namespace stabletext {

uint32_t ClusterGraph::AddInterval() {
  if (frozen_) {
    frozen_intervals_.push_back(
        std::make_shared<const std::vector<NodeId>>());
  } else {
    intervals_.emplace_back();
  }
  return interval_count_++;
}

NodeId ClusterGraph::AddNode(uint32_t interval) {
  const NodeId id = static_cast<NodeId>(node_count_++);
  if (frozen_) {
    // Late nodes keep the chunked view indexable; they have no adjacency.
    // Cold path: copy-on-write the (partial) tail chunks.
    const size_t chunk = id >> kChunkShift;
    auto append_empty = [&](std::vector<AdjChunkPtr>* chunks) {
      AdjChunk next;
      if (chunk < chunks->size()) {
        next = *(*chunks)[chunk];
        chunks->pop_back();
      } else {
        next.offsets.push_back(0);
      }
      next.offsets.push_back(next.offsets.back());
      chunks->push_back(std::make_shared<const AdjChunk>(std::move(next)));
    };
    append_empty(&child_chunks_);
    append_empty(&parent_chunks_);
    std::vector<uint32_t> meta;
    if (chunk < node_interval_chunks_.size()) {
      meta = *node_interval_chunks_[chunk];
      node_interval_chunks_.pop_back();
    }
    meta.push_back(interval);
    node_interval_chunks_.push_back(
        std::make_shared<const std::vector<uint32_t>>(std::move(meta)));
    std::vector<NodeId> nodes = *frozen_intervals_[interval];
    nodes.push_back(id);
    frozen_intervals_[interval] =
        std::make_shared<const std::vector<NodeId>>(std::move(nodes));
    return id;
  }
  node_interval_.push_back(interval);
  intervals_[interval].push_back(id);
  build_children_.emplace_back();
  build_parents_.emplace_back();
  child_touched_flag_.push_back(0);
  parent_touched_flag_.push_back(0);
  // A new node extends its chunk (and its interval's node list): the next
  // seal must rebuild them.
  MarkChunkDirty(&seal_child_dirty_, id);
  MarkChunkDirty(&seal_parent_dirty_, id);
  MarkChunkDirty(&seal_meta_dirty_, id);
  if (interval < seal_clean_intervals_) seal_clean_intervals_ = interval;
  return id;
}

Status ClusterGraph::AddEdge(NodeId from, NodeId to, double weight) {
  if (frozen_) {
    return Status::InvalidArgument(
        "cluster graph is frozen (SortChildren already called)");
  }
  if (from >= node_count() || to >= node_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const uint32_t fi = node_interval_[from];
  const uint32_t ti = node_interval_[to];
  if (ti <= fi) {
    return Status::InvalidArgument("edges must go forward in time");
  }
  if (ti - fi > gap_ + 1) {
    return Status::InvalidArgument("edge exceeds gap bound");
  }
  if (raw_weights_ ? !(weight > 0) || !std::isfinite(weight)
                   : !(weight > 0) || weight > 1) {
    return Status::InvalidArgument(
        raw_weights_ ? "edge weight must be positive and finite"
                     : "edge weight must be in (0, 1]");
  }
  build_children_[from].push_back(ClusterGraphEdge{to, weight});
  build_parents_[to].push_back(ClusterGraphEdge{from, weight});
  if (!child_touched_flag_[from]) {
    child_touched_flag_[from] = 1;
    touched_children_.push_back(from);
  }
  if (!parent_touched_flag_[to]) {
    parent_touched_flag_[to] = 1;
    touched_parents_.push_back(to);
  }
  MarkChunkDirty(&seal_child_dirty_, from);
  MarkChunkDirty(&seal_parent_dirty_, to);
  ++edge_count_;
  return Status::OK();
}

void ClusterGraph::MarkChunkDirty(std::vector<uint8_t>* flags, NodeId n) {
  const size_t chunk = n >> kChunkShift;
  if (chunk >= flags->size()) flags->resize(chunk + 1, 0);
  (*flags)[chunk] = 1;
}

namespace {

// Children: stored weight desc, then target asc (Section 4.3's exploration
// heuristic, and a total order so incremental re-sorts match the freeze).
bool ByWeightDesc(const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.target < b.target;
}

// Parents sorted by source id: deterministic iteration for the BFS
// finder's parent probes.
bool BySourceAsc(const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
  return a.target < b.target;
}

}  // namespace

void ClusterGraph::SortTouched() {
  if (frozen_) return;
  for (NodeId v : touched_children_) {
    std::sort(build_children_[v].begin(), build_children_[v].end(),
              ByWeightDesc);
    child_touched_flag_[v] = 0;
  }
  for (NodeId v : touched_parents_) {
    std::sort(build_parents_[v].begin(), build_parents_[v].end(),
              BySourceAsc);
    parent_touched_flag_[v] = 0;
  }
  touched_children_.clear();
  touched_parents_.clear();
}

Status ClusterGraph::ScaleEdgeWeights(double factor) {
  if (frozen_) {
    return Status::InvalidArgument(
        "cannot rescale a frozen cluster graph");
  }
  if (!(factor > 0)) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  for (auto& list : build_children_) {
    for (ClusterGraphEdge& e : list) e.weight *= factor;
    // Rounding can collapse two distinct weights into a tie, whose
    // (weight desc, target asc) order differs from the pre-scale one;
    // re-sort so the total order always holds.
    std::sort(list.begin(), list.end(), ByWeightDesc);
  }
  for (auto& list : build_parents_) {
    for (ClusterGraphEdge& e : list) e.weight *= factor;
  }
  MarkAllSealDirty();
  return Status::OK();
}

void ClusterGraph::MarkAllSealDirty() {
  std::fill(seal_child_dirty_.begin(), seal_child_dirty_.end(), 1);
  std::fill(seal_parent_dirty_.begin(), seal_parent_dirty_.end(), 1);
  std::fill(seal_meta_dirty_.begin(), seal_meta_dirty_.end(), 1);
  seal_clean_intervals_ = 0;
}

ClusterGraph::AdjChunkPtr ClusterGraph::BuildChunk(
    const std::vector<std::vector<ClusterGraphEdge>>& lists, size_t chunk,
    bool materialize_scale) const {
  const size_t base = chunk << kChunkShift;
  const size_t end = std::min(node_count_, base + kChunkNodes);
  AdjChunk out;
  out.offsets.reserve(end - base + 1);
  out.offsets.push_back(0);
  size_t total = 0;
  for (size_t v = base; v < end; ++v) {
    total += lists[v].size();
    out.offsets.push_back(static_cast<uint32_t>(total));
  }
  out.edges.reserve(total);
  for (size_t v = base; v < end; ++v) {
    out.edges.insert(out.edges.end(), lists[v].begin(), lists[v].end());
  }
  if (materialize_scale) {
    for (ClusterGraphEdge& e : out.edges) {
      e.weight = std::min(e.weight * weight_scale_, 1.0);
    }
  }
  return std::make_shared<const AdjChunk>(std::move(out));
}

ClusterGraph::SealStats ClusterGraph::RefreshSeal(bool materialize_scale) {
  // A scale-mode change invalidates every materialized chunk (the baked
  // weights differ), as does flipping materialization on or off.
  if (materialize_scale != sealed_materialized_ ||
      (materialize_scale && weight_scale_ != sealed_scale_)) {
    MarkAllSealDirty();
  }
  const size_t chunks = (node_count_ + kChunkNodes - 1) >> kChunkShift;
  SealStats stats;
  sealed_children_.resize(chunks);
  sealed_parents_.resize(chunks);
  sealed_node_intervals_.resize(chunks);
  seal_child_dirty_.resize(chunks, 1);
  seal_parent_dirty_.resize(chunks, 1);
  seal_meta_dirty_.resize(chunks, 1);
  for (size_t c = 0; c < chunks; ++c) {
    if (seal_child_dirty_[c] || sealed_children_[c] == nullptr) {
      sealed_children_[c] = BuildChunk(build_children_, c,
                                       materialize_scale);
      seal_child_dirty_[c] = 0;
      ++stats.copied_chunks;
    } else {
      ++stats.shared_chunks;
    }
    if (seal_parent_dirty_[c] || sealed_parents_[c] == nullptr) {
      sealed_parents_[c] = BuildChunk(build_parents_, c,
                                      materialize_scale);
      seal_parent_dirty_[c] = 0;
      ++stats.copied_chunks;
    } else {
      ++stats.shared_chunks;
    }
    if (seal_meta_dirty_[c] || sealed_node_intervals_[c] == nullptr) {
      const size_t base = c << kChunkShift;
      const size_t end = std::min(node_count_, base + kChunkNodes);
      sealed_node_intervals_[c] =
          std::make_shared<const std::vector<uint32_t>>(
              node_interval_.begin() + base, node_interval_.begin() + end);
      seal_meta_dirty_[c] = 0;
    }
  }
  sealed_intervals_.resize(interval_count_);
  for (uint32_t i = 0; i < interval_count_; ++i) {
    if (i >= seal_clean_intervals_ || sealed_intervals_[i] == nullptr) {
      sealed_intervals_[i] =
          std::make_shared<const std::vector<NodeId>>(intervals_[i]);
    }
  }
  seal_clean_intervals_ = interval_count_;
  sealed_materialized_ = materialize_scale;
  sealed_scale_ = weight_scale_;
  return stats;
}

ClusterGraph ClusterGraph::SealedCopy(bool materialize_scale,
                                      SealStats* stats) {
  ClusterGraph out(0, gap_);
  out.interval_count_ = interval_count_;
  out.node_count_ = node_count_;
  out.edge_count_ = edge_count_;
  out.raw_weights_ = raw_weights_;
  out.frozen_ = true;
  if (frozen_) {
    SealStats local;
    if (materialize_scale && weight_scale_ != 1.0) {
      // Terminal-freeze graphs in lazy mode store raw weights; bake the
      // scale into fresh chunks once (O(E), off the streaming hot path).
      auto bake = [&](const std::vector<AdjChunkPtr>& in,
                      std::vector<AdjChunkPtr>* dst) {
        dst->reserve(in.size());
        for (const AdjChunkPtr& chunk : in) {
          AdjChunk scaled = *chunk;
          for (ClusterGraphEdge& e : scaled.edges) {
            e.weight = std::min(e.weight * weight_scale_, 1.0);
          }
          dst->push_back(
              std::make_shared<const AdjChunk>(std::move(scaled)));
          ++local.copied_chunks;
        }
      };
      bake(child_chunks_, &out.child_chunks_);
      bake(parent_chunks_, &out.parent_chunks_);
      out.weight_scale_ = 1.0;
    } else {
      out.child_chunks_ = child_chunks_;
      out.parent_chunks_ = parent_chunks_;
      out.weight_scale_ = weight_scale_;
      local.shared_chunks = child_chunks_.size() + parent_chunks_.size();
    }
    out.node_interval_chunks_ = node_interval_chunks_;
    out.frozen_intervals_ = frozen_intervals_;
    if (stats != nullptr) *stats = local;
    return out;
  }
  const SealStats local = RefreshSeal(materialize_scale);
  if (stats != nullptr) *stats = local;
  out.child_chunks_ = sealed_children_;
  out.parent_chunks_ = sealed_parents_;
  out.node_interval_chunks_ = sealed_node_intervals_;
  out.frozen_intervals_ = sealed_intervals_;
  out.weight_scale_ = materialize_scale ? 1.0 : weight_scale_;
  return out;
}

void ClusterGraph::SortChildren() {
  if (frozen_) return;
  for (auto& list : build_children_) {
    std::sort(list.begin(), list.end(), ByWeightDesc);
  }
  for (auto& list : build_parents_) {
    std::sort(list.begin(), list.end(), BySourceAsc);
  }
  // The terminal freeze keeps stored weights (lazy scale still applies at
  // read time), so sealed chunks from the streaming path stay valid.
  RefreshSeal(/*materialize_scale=*/false);
  child_chunks_ = std::move(sealed_children_);
  parent_chunks_ = std::move(sealed_parents_);
  node_interval_chunks_ = std::move(sealed_node_intervals_);
  frozen_intervals_ = std::move(sealed_intervals_);
  sealed_children_.clear();
  sealed_parents_.clear();
  sealed_node_intervals_.clear();
  sealed_intervals_.clear();
  seal_child_dirty_.clear();
  seal_parent_dirty_.clear();
  seal_meta_dirty_.clear();
  intervals_.clear();
  intervals_.shrink_to_fit();
  node_interval_.clear();
  node_interval_.shrink_to_fit();
  build_children_.clear();
  build_children_.shrink_to_fit();
  build_parents_.clear();
  build_parents_.shrink_to_fit();
  touched_children_.clear();
  touched_parents_.clear();
  child_touched_flag_.clear();
  parent_touched_flag_.clear();
  frozen_ = true;
}

size_t ClusterGraph::MaxOutDegree() const {
  size_t d = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    d = std::max(d, Children(v).size());
  }
  return d;
}

size_t ClusterGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  if (frozen_) {
    for (const AdjChunkPtr& c : child_chunks_) bytes += c->MemoryBytes();
    for (const AdjChunkPtr& c : parent_chunks_) bytes += c->MemoryBytes();
    for (const IntervalChunkPtr& c : node_interval_chunks_) {
      bytes += c->capacity() * sizeof(uint32_t);
    }
    for (const IntervalNodesPtr& iv : frozen_intervals_) {
      bytes += sizeof(*iv) + iv->capacity() * sizeof(NodeId);
    }
    return bytes;
  }
  // Build phase: a size-based estimate (capacity ~ size) so per-publish
  // stats stay O(chunks), not O(nodes).
  bytes += node_count_ * sizeof(uint32_t);  // node_interval_
  bytes += node_count_ * sizeof(NodeId);    // intervals_ payloads
  bytes += intervals_.size() * sizeof(std::vector<NodeId>);
  bytes += 2 * node_count_ * sizeof(std::vector<ClusterGraphEdge>);
  bytes += 2 * edge_count_ * sizeof(ClusterGraphEdge);
  for (const AdjChunkPtr& c : sealed_children_) {
    if (c != nullptr) bytes += c->MemoryBytes();
  }
  for (const AdjChunkPtr& c : sealed_parents_) {
    if (c != nullptr) bytes += c->MemoryBytes();
  }
  return bytes;
}

}  // namespace stabletext
