#include "stable/cluster_graph.h"

#include <algorithm>

namespace stabletext {

NodeId ClusterGraph::AddNode(uint32_t interval) {
  const NodeId id = static_cast<NodeId>(node_interval_.size());
  node_interval_.push_back(interval);
  intervals_[interval].push_back(id);
  build_children_.emplace_back();
  build_parents_.emplace_back();
  if (frozen_) {
    // Late nodes keep the CSR indexable; they have no adjacency.
    child_offsets_.push_back(child_offsets_.back());
    parent_offsets_.push_back(parent_offsets_.back());
  }
  return id;
}

Status ClusterGraph::AddEdge(NodeId from, NodeId to, double weight) {
  if (frozen_) {
    return Status::InvalidArgument(
        "cluster graph is frozen (SortChildren already called)");
  }
  if (from >= node_count() || to >= node_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const uint32_t fi = node_interval_[from];
  const uint32_t ti = node_interval_[to];
  if (ti <= fi) {
    return Status::InvalidArgument("edges must go forward in time");
  }
  if (ti - fi > gap_ + 1) {
    return Status::InvalidArgument("edge exceeds gap bound");
  }
  if (!(weight > 0) || weight > 1) {
    return Status::InvalidArgument("edge weight must be in (0, 1]");
  }
  build_children_[from].push_back(ClusterGraphEdge{to, weight});
  build_parents_[to].push_back(ClusterGraphEdge{from, weight});
  ++edge_count_;
  return Status::OK();
}

void ClusterGraph::Compact(
    std::vector<std::vector<ClusterGraphEdge>>* lists,
    std::vector<size_t>* offsets, std::vector<ClusterGraphEdge>* edges) {
  offsets->assign(lists->size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < lists->size(); ++v) {
    total += (*lists)[v].size();
    (*offsets)[v + 1] = total;
  }
  edges->clear();
  edges->reserve(total);
  for (auto& list : *lists) {
    edges->insert(edges->end(), list.begin(), list.end());
  }
  lists->clear();
  lists->shrink_to_fit();
}

void ClusterGraph::SortChildren() {
  if (frozen_) return;
  auto by_weight_desc = [](const ClusterGraphEdge& a,
                           const ClusterGraphEdge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.target < b.target;
  };
  for (auto& list : build_children_) {
    std::sort(list.begin(), list.end(), by_weight_desc);
  }
  // Parents sorted by source id: deterministic iteration for the BFS
  // finder's parent probes.
  for (auto& list : build_parents_) {
    std::sort(list.begin(), list.end(),
              [](const ClusterGraphEdge& a, const ClusterGraphEdge& b) {
                return a.target < b.target;
              });
  }
  Compact(&build_children_, &child_offsets_, &child_edges_);
  Compact(&build_parents_, &parent_offsets_, &parent_edges_);
  frozen_ = true;
}

size_t ClusterGraph::MaxOutDegree() const {
  size_t d = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    d = std::max(d, Children(v).size());
  }
  return d;
}

size_t ClusterGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += node_interval_.capacity() * sizeof(uint32_t);
  for (const auto& iv : intervals_) {
    bytes += iv.capacity() * sizeof(NodeId);
  }
  if (frozen_) {
    bytes += (child_offsets_.capacity() + parent_offsets_.capacity()) *
             sizeof(size_t);
    bytes += (child_edges_.capacity() + parent_edges_.capacity()) *
             sizeof(ClusterGraphEdge);
  } else {
    for (const auto& list : build_children_) {
      bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
    }
    for (const auto& list : build_parents_) {
      bytes += sizeof(list) + list.capacity() * sizeof(ClusterGraphEdge);
    }
  }
  return bytes;
}

}  // namespace stabletext
