#include "stable/brute_force_finder.h"

#include <algorithm>

#include "stable/topk_heap.h"

namespace stabletext {

void BruteForceFinder::ForEachPath(
    const ClusterGraph& graph,
    const std::function<void(const StablePath&)>& fn) {
  // Iterative DFS from every node; every partial with >= 1 edge is a path.
  struct Item {
    StablePath path;
  };
  for (NodeId start = 0; start < graph.node_count(); ++start) {
    std::vector<Item> frontier;
    StablePath seed;
    seed.nodes = {start};
    frontier.push_back(Item{seed});
    while (!frontier.empty()) {
      Item cur = std::move(frontier.back());
      frontier.pop_back();
      const NodeId tail = cur.path.nodes.back();
      for (const ClusterGraphEdge& e : graph.Children(tail)) {
        Item ext;
        ext.path.nodes = cur.path.nodes;
        ext.path.nodes.push_back(e.target);
        ext.path.weight = cur.path.weight + e.weight;
        ext.path.length =
            cur.path.length + graph.EdgeLength(tail, e.target);
        fn(ext.path);
        frontier.push_back(std::move(ext));
      }
    }
  }
}

std::vector<StablePath> BruteForceFinder::TopKByWeight(
    const ClusterGraph& graph, size_t k, uint32_t l) {
  const uint32_t m = graph.interval_count();
  if (m < 2) return {};
  const uint32_t target = l == 0 ? m - 1 : l;
  TopKHeap<PathBetter> heap(k);
  ForEachPath(graph, [&](const StablePath& p) {
    if (p.length == target) heap.Offer(p);
  });
  return heap.paths();
}

std::vector<StablePath> BruteForceFinder::TopKByStability(
    const ClusterGraph& graph, size_t k, uint32_t lmin) {
  TopKHeap<PathMoreStable> heap(k);
  ForEachPath(graph, [&](const StablePath& p) {
    if (p.length >= lmin) heap.Offer(p);
  });
  return heap.paths();
}

}  // namespace stabletext
