// Section 4.5, Problem 2: normalized stable clusters — the top-k paths of
// length at least lmin with the highest stability = weight / length.
//
// The finder is the interval sweep of Algorithm 2 extended to maintain, for
// every node, top-k-by-weight heaps for *all* path lengths (not just up to
// a target l): the per-(node, length) weight-optimal substructure is exactly
// what makes the stability ranking exact, and matches the paper's remark
// that "the algorithm seeking normalized stable clusters needs to maintain
// paths of all lengths". A global heap ranks every generated path of length
// >= lmin by stability.
//
// Theorem 1 pruning (drop a prefix whose stability does not exceed that of
// the remaining >= lmin tail) is available as an option: it skips extending
// reducible paths. It preserves the top-1 answer exactly (Theorem 1) but
// for k > 1 may replace a lower-ranked result with its dominating suffix;
// it is off by default and on in the paper-replication benchmarks.

#ifndef STABLETEXT_STABLE_NORMALIZED_BFS_FINDER_H_
#define STABLETEXT_STABLE_NORMALIZED_BFS_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/topk_heap.h"
#include "util/memory_tracker.h"

namespace stabletext {

/// Options for NormalizedBfsFinder.
struct NormalizedFinderOptions {
  size_t k = 5;
  uint32_t lmin = 2;  ///< Minimum path length ("to avoid trivial results").
  /// Theorem 1 prefix pruning; see the header comment for semantics.
  bool theorem1_pruning = false;
};

/// \brief Breadth-first normalized-stable-cluster finder.
class NormalizedBfsFinder {
 public:
  explicit NormalizedBfsFinder(NormalizedFinderOptions options = {})
      : options_(options) {}

  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  NormalizedFinderOptions options_;
};

/// Returns true if `path` is Theorem-1 reducible: it splits as
/// pre + curr with length(curr) >= lmin and stability(pre) <=
/// stability(curr), so every extension of `path` is stability-dominated by
/// the same extension of `curr`.
bool Theorem1Reducible(const StablePath& path, const ClusterGraph& graph,
                       uint32_t lmin);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_NORMALIZED_BFS_FINDER_H_
