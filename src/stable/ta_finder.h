// Section 4.4: adaptation of the Threshold Algorithm (Fagin, Lotem, Naor)
// to full-path discovery. One sorted edge list is kept per pair of temporal
// intervals; edges are consumed round-robin in descending weight order;
// every consumed edge triggers random probes assembling all full paths
// through it; the algorithm stops when the k-th best assembled path weighs
// at least as much as the "virtual tuple" built from each list's next
// unseen edge. Restricted to full paths (l = m-1), as in the paper, and to
// g = 0 (the Table 3 configuration; the paper notes the probe count
// explodes combinatorially otherwise).

#ifndef STABLETEXT_STABLE_TA_FINDER_H_
#define STABLETEXT_STABLE_TA_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/topk_heap.h"

namespace stabletext {

/// Options for TaStableFinder.
struct TaFinderOptions {
  size_t k = 5;
  /// startwts/endwts upper-bound hash tables (the I/O optimization of
  /// Section 4.4). Ablation knob; results are identical either way.
  bool use_bound_tables = true;
  /// Safety valve for the exponential probe count: abort with
  /// NotSupported once this many probes have been issued (0 = no limit).
  uint64_t max_probes = 0;
};

/// \brief Threshold-algorithm kl-stable-cluster finder, full paths only.
class TaStableFinder {
 public:
  explicit TaStableFinder(TaFinderOptions options = {})
      : options_(options) {}

  /// Finds the top-k full paths (t_0 .. t_{m-1}). Requires gap() == 0.
  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  TaFinderOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_TA_FINDER_H_
