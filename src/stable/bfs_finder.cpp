#include "stable/bfs_finder.h"

#include <algorithm>
#include <cassert>

namespace stabletext {

namespace {

// Per-node annotation: heaps_[x] holds the top-k paths of length x ending
// at the node. In full-path mode a single heap is kept (x == interval),
// the "reduces the computation by a factor of l" special case of
// Section 4.2.
struct NodeAnnotation {
  std::vector<TopKHeap<>> heaps;  // Index = path length; [0] unused.
  uint32_t min_length = 0;        // Full mode: the single valid length.
  bool full_mode = false;

  TopKHeap<>* HeapFor(uint32_t length) {
    if (full_mode) {
      return length == min_length && !heaps.empty() ? &heaps[0] : nullptr;
    }
    if (length == 0 || length >= heaps.size()) return nullptr;
    return &heaps[length];
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const auto& h : heaps) bytes += h.MemoryBytes();
    return bytes;
  }
};

}  // namespace

Result<StableFinderResult> BfsStableFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t l = options_.l == 0 ? m - 1 : options_.l;
  if (l < 1 || l > m - 1) {
    return Status::InvalidArgument("path length l out of range");
  }
  const bool full_mode = (l == m - 1);
  const size_t k = options_.k;
  const uint32_t g = graph.gap();

  std::vector<NodeAnnotation> ann(graph.node_count());
  for (NodeId nid = 0; nid < graph.node_count(); ++nid) {
    NodeAnnotation& a = ann[nid];
    const uint32_t i = graph.Interval(nid);
    a.full_mode = full_mode;
    if (full_mode) {
      a.min_length = i;
      if (i >= 1) a.heaps.assign(1, TopKHeap<>(k));
    } else {
      const uint32_t max_len = std::min(l, i);
      a.heaps.assign(max_len + 1, TopKHeap<>(k));
    }
  }

  TopKHeap<> global(k);

  // chunk_of[node] = chunk index within the current window, or -1.
  std::vector<int> chunk_of(graph.node_count(), -1);

  for (uint32_t i = 1; i < m; ++i) {
    // The window: intervals [i-g-1, i-1] — every possible parent interval.
    const uint32_t window_begin = i >= g + 1 ? i - g - 1 : 0;

    // Partition window nodes into chunks that fit the memory budget
    // (block-nested-loop fallback of Section 4.2). With an unlimited
    // budget there is exactly one chunk.
    std::vector<NodeId> window_nodes;
    size_t window_bytes = 0;
    for (uint32_t iv = window_begin; iv < i; ++iv) {
      for (NodeId nid : graph.IntervalNodes(iv)) {
        window_nodes.push_back(nid);
        window_bytes += ann[nid].MemoryBytes();
      }
    }
    int chunk_count = 0;
    {
      size_t acc = 0;
      for (NodeId nid : window_nodes) {
        const size_t bytes = ann[nid].MemoryBytes();
        if (chunk_count == 0 ||
            (acc + bytes > options_.memory_budget_bytes && acc > 0)) {
          ++chunk_count;
          acc = 0;
        }
        acc += bytes;
        chunk_of[nid] = chunk_count - 1;
      }
      if (chunk_count == 0) chunk_count = 1;  // Empty window.
    }
    result.passes = std::max(result.passes, static_cast<size_t>(chunk_count));

    // Bytes of the current interval's annotations (built during the pass).
    auto interval_bytes = [&](uint32_t iv) {
      size_t bytes = 0;
      for (NodeId nid : graph.IntervalNodes(iv)) {
        bytes += ann[nid].MemoryBytes();
      }
      return bytes;
    };

    for (int chunk = 0; chunk < chunk_count; ++chunk) {
      // Read this chunk of window annotations (sequential I/O), plus one
      // sequential read per current-interval node.
      size_t chunk_bytes = 0;
      for (NodeId nid : window_nodes) {
        if (chunk_of[nid] == chunk) {
          ++result.io.page_reads;
          chunk_bytes += ann[nid].MemoryBytes();
        }
      }
      result.io.page_reads += graph.IntervalNodes(i).size();

      for (NodeId c : graph.IntervalNodes(i)) {
        for (const ClusterGraphEdge& pe : graph.Parents(c)) {
          const NodeId p = pe.target;
          if (chunk_of[p] != chunk) continue;
          const uint32_t len = i - graph.Interval(p);
          // Bare edge as a path of length len.
          {
            StablePath path;
            path.nodes = {p, c};
            path.weight = pe.weight;
            path.length = len;
            ++result.heap_offers;
            if (TopKHeap<>* h = ann[c].HeapFor(len)) h->Offer(path);
            if (len == l) {
              ++result.heap_offers;
              global.Offer(path);
            }
          }
          // Extensions of subpaths ending at p.
          const uint32_t x_hi = l - len;
          for (uint32_t x = 1; x <= x_hi; ++x) {
            TopKHeap<>* src = ann[p].HeapFor(x);
            if (src == nullptr) continue;
            for (const StablePath& pi : src->paths()) {
              StablePath extended = pi;
              extended.nodes.push_back(c);
              extended.weight += pe.weight;
              extended.length += len;
              ++result.heap_offers;
              if (TopKHeap<>* h = ann[c].HeapFor(extended.length)) {
                h->Offer(extended);
              }
              if (extended.length == l) {
                ++result.heap_offers;
                global.Offer(extended);
              }
            }
          }
        }
      }

      const size_t live = chunk_bytes + interval_bytes(i) +
                          global.MemoryBytes();
      result.peak_memory_bytes = std::max(result.peak_memory_bytes, live);
    }

    // Save the interval's annotations to disk (line 17 of Algorithm 2).
    result.io.page_writes += graph.IntervalNodes(i).size();
    for (NodeId nid : window_nodes) chunk_of[nid] = -1;
  }

  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
