#include "stable/normalized_bfs_finder.h"

#include <algorithm>

namespace stabletext {

namespace {

// Weight of the edge (a, b); the graphs here have at most one edge per
// ordered pair. Returns -1 when absent (callers pass real path edges).
double EdgeWeightBetween(const ClusterGraph& graph, NodeId a, NodeId b) {
  for (const ClusterGraphEdge& e : graph.Children(a)) {
    if (e.target == b) return e.weight;
  }
  return -1;
}

}  // namespace

bool Theorem1Reducible(const StablePath& path, const ClusterGraph& graph,
                       uint32_t lmin) {
  if (path.nodes.size() < 3) return false;
  // Prefix weight/length accumulated left to right; the remainder is the
  // candidate curr.
  double prefix_weight = 0;
  for (size_t split = 1; split + 1 < path.nodes.size(); ++split) {
    prefix_weight +=
        EdgeWeightBetween(graph, path.nodes[split - 1], path.nodes[split]);
    const uint32_t prefix_len = graph.Interval(path.nodes[split]) -
                                graph.Interval(path.nodes.front());
    const uint32_t curr_len = path.length - prefix_len;
    if (curr_len < lmin) break;  // Later splits only get shorter.
    const double curr_weight = path.weight - prefix_weight;
    // stability(pre) <= stability(curr), cross-multiplied to avoid
    // division: pre_w / pre_len <= curr_w / curr_len.
    if (prefix_weight * static_cast<double>(curr_len) <=
        curr_weight * static_cast<double>(prefix_len)) {
      return true;
    }
  }
  return false;
}

Result<StableFinderResult> NormalizedBfsFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t lmin = options_.lmin;
  if (lmin < 1 || lmin > m - 1) {
    return Status::InvalidArgument("lmin out of range");
  }
  const size_t k = options_.k;
  const uint32_t g = graph.gap();

  // heaps[node][x]: top-k-by-weight paths of length x ending at node, for
  // every x in [1, interval(node)].
  std::vector<std::vector<TopKHeap<>>> heaps(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    heaps[v].assign(graph.Interval(v) + 1, TopKHeap<>(k));
  }
  auto node_bytes = [&](NodeId v) {
    size_t bytes = 0;
    for (const auto& h : heaps[v]) bytes += h.MemoryBytes();
    return bytes;
  };

  TopKHeap<PathMoreStable> global(k);
  auto offer_global = [&](const StablePath& p) {
    if (p.length >= lmin) {
      ++result.heap_offers;
      global.Offer(p);
    }
  };

  for (uint32_t i = 1; i < m; ++i) {
    const uint32_t window_begin = i >= g + 1 ? i - g - 1 : 0;
    size_t window_bytes = 0;
    for (uint32_t iv = window_begin; iv < i; ++iv) {
      for (NodeId nid : graph.IntervalNodes(iv)) {
        ++result.io.page_reads;
        window_bytes += node_bytes(nid);
      }
    }

    for (NodeId c : graph.IntervalNodes(i)) {
      ++result.io.page_reads;
      for (const ClusterGraphEdge& pe : graph.Parents(c)) {
        const NodeId p = pe.target;
        const uint32_t len = i - graph.Interval(p);
        // Bare edge.
        {
          StablePath bare;
          bare.nodes = {p, c};
          bare.weight = pe.weight;
          bare.length = len;
          ++result.heap_offers;
          heaps[c][bare.length].Offer(bare);
          offer_global(bare);
        }
        // Extensions of every length ending at p.
        for (uint32_t x = 1; x < heaps[p].size(); ++x) {
          for (const StablePath& pi : heaps[p][x].paths()) {
            if (options_.theorem1_pruning &&
                Theorem1Reducible(pi, graph, lmin)) {
              continue;  // Extensions dominated by the reduced suffix's.
            }
            StablePath extended = pi;
            extended.nodes.push_back(c);
            extended.weight += pe.weight;
            extended.length += len;
            ++result.heap_offers;
            heaps[c][extended.length].Offer(extended);
            offer_global(extended);
          }
        }
      }
    }

    size_t interval_bytes = 0;
    for (NodeId c : graph.IntervalNodes(i)) interval_bytes += node_bytes(c);
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes,
                 window_bytes + interval_bytes + global.MemoryBytes());
    result.io.page_writes += graph.IntervalNodes(i).size();
  }

  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
