#include "stable/shard_merge.h"

#include <algorithm>
#include <queue>

namespace stabletext {

namespace {

double ChainScore(const QueryResult& result, size_t rank,
                  FinderMode mode) {
  const StablePath& path = result.chains[rank].path;
  return mode == FinderMode::kNormalized ? path.stability() : path.weight;
}

/// Heap entry: the next unpulled chain of one shard's stream.
struct Head {
  double score = 0;
  uint32_t shard = 0;
  size_t rank = 0;
};

/// Max-heap order with the documented tie-break: higher score first,
/// then lower shard index, then lower rank. (std::priority_queue keeps
/// the *largest* under `less`, so this returns true when a is worse.)
struct HeadWorse {
  bool operator()(const Head& a, const Head& b) const {
    if (a.score != b.score) return a.score < b.score;
    if (a.shard != b.shard) return a.shard > b.shard;
    return a.rank > b.rank;
  }
};

}  // namespace

std::vector<MergedChainRef> ThresholdMergeTopK(
    const std::vector<const QueryResult*>& shard_results,
    const FinderQuery& query, ShardMergeStats* stats) {
  const size_t shards = shard_results.size();
  ShardMergeStats local;
  local.paths_pulled.assign(shards, 0);
  local.paths_available.assign(shards, 0);

  // Seed the heap with each shard's best chain. Streams are sorted, so
  // a shard's head is an upper bound on everything it still holds: the
  // heap top is always the global best unpulled chain, and popping k of
  // them IS the TA stopping rule — every other stream's bound is below
  // the k-th emitted score the moment we stop.
  std::priority_queue<Head, std::vector<Head>, HeadWorse> heap;
  for (uint32_t s = 0; s < shards; ++s) {
    const QueryResult* result = shard_results[s];
    const size_t available = result == nullptr ? 0 : result->chains.size();
    local.paths_available[s] = available;
    if (available > 0) {
      heap.push(Head{ChainScore(*result, 0, query.mode), s, 0});
      local.paths_pulled[s] = 1;
    }
  }

  std::vector<MergedChainRef> merged;
  const size_t k = query.k;
  merged.reserve(std::min(k, shards * 4));
  while (!heap.empty() && merged.size() < k) {
    const Head best = heap.top();
    heap.pop();
    merged.push_back(MergedChainRef{best.shard, best.rank});
    const size_t next = best.rank + 1;
    if (next < local.paths_available[best.shard]) {
      heap.push(Head{ChainScore(*shard_results[best.shard], next,
                                query.mode),
                     best.shard, next});
      local.paths_pulled[best.shard] = next + 1;
    } else {
      ++local.shards_exhausted;
    }
  }
  local.paths_merged = merged.size();

  // Anything still on the heap (plus the unpulled tail behind it) was
  // never needed: that shard terminated early.
  for (uint32_t s = 0; s < shards; ++s) {
    if (local.paths_pulled[s] < local.paths_available[s]) {
      ++local.early_terminations;
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return merged;
}

}  // namespace stabletext
