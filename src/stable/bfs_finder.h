// Algorithm 2: breadth-first (interval-sweep) solution to the kl-stable
// clusters problem. Each node cij is annotated with up to l heaps h^x_ij
// holding the top-k subpaths of length x ending at cij; intervals are
// processed left to right keeping a sliding window of g+1 interval's worth
// of annotations in memory; a global heap H accumulates the top-k paths of
// length exactly l.

#ifndef STABLETEXT_STABLE_BFS_FINDER_H_
#define STABLETEXT_STABLE_BFS_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/topk_heap.h"
#include "util/memory_tracker.h"

namespace stabletext {

/// Options for BfsStableFinder.
struct BfsFinderOptions {
  size_t k = 5;       ///< Paths sought.
  uint32_t l = 0;     ///< Path length; 0 means full paths (m-1).
  /// Bytes of window memory available. When the g+1-interval window does
  /// not fit, the finder falls back to block-nested-loop passes over the
  /// window exactly as Section 4.2 describes ("Mreq/M passes will be
  /// required. This situation is very similar to block-nested loops.").
  size_t memory_budget_bytes = MemoryTracker::kUnlimited;
};

/// \brief Breadth-first kl-stable-cluster finder (Section 4.2).
class BfsStableFinder {
 public:
  explicit BfsStableFinder(BfsFinderOptions options = {})
      : options_(options) {}

  /// Finds the top-k paths of length l (or full length when options.l==0).
  /// Single forward pass over intervals; I/O and memory are accounted in
  /// the result.
  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  BfsFinderOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_BFS_FINDER_H_
