#include "stable/ta_finder.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace stabletext {

namespace {

struct ListEdge {
  NodeId from;
  NodeId to;
  double weight;
};

// A partial path with its aggregate weight (nodes in time order).
struct Partial {
  std::vector<NodeId> nodes;
  double weight;
};

}  // namespace

Result<StableFinderResult> TaStableFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  if (graph.gap() != 0) {
    return Status::NotSupported(
        "the TA adaptation is implemented for g = 0 (the paper's Table 3 "
        "configuration); gaps make the probe space combinatorial");
  }
  const size_t k = options_.k;
  const uint32_t l = m - 1;

  // One sorted edge list per pair of consecutive intervals.
  std::vector<std::vector<ListEdge>> lists(m - 1);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const uint32_t i = graph.Interval(v);
    for (const ClusterGraphEdge& e : graph.Children(v)) {
      lists[i].push_back(ListEdge{v, e.target, e.weight});
    }
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end(),
              [](const ListEdge& a, const ListEdge& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
    // Building the sorted lists costs one sequential pass.
    result.io.page_reads += list.size();
  }

  TopKHeap<> global(k);
  // startwts / endwts: aggregate weight of the heaviest full suffix /
  // prefix at a node, memoized after the first probe (Section 4.4's I/O
  // optimization).
  std::unordered_map<NodeId, double> startwts;  // v .. t_{m-1}
  std::unordered_map<NodeId, double> endwts;    // t_0 .. v

  uint64_t probes = 0;
  bool budget_exceeded = false;
  auto charge_probe = [&] {
    ++probes;
    ++result.random_probes;
    ++result.io.page_reads;
    ++result.io.random_seeks;
    if (options_.max_probes != 0 && probes > options_.max_probes) {
      budget_exceeded = true;
    }
  };

  // Enumerates all full prefixes ending at v (paths t_0 .. v). Each
  // adjacency expansion is one random probe.
  auto enumerate_prefixes = [&](NodeId v) {
    std::vector<Partial> done;
    std::vector<Partial> frontier;
    frontier.push_back(Partial{{v}, 0});
    while (!frontier.empty() && !budget_exceeded) {
      Partial cur = std::move(frontier.back());
      frontier.pop_back();
      const NodeId head = cur.nodes.front();
      if (graph.Interval(head) == 0) {
        done.push_back(std::move(cur));
        continue;
      }
      charge_probe();
      for (const ClusterGraphEdge& pe : graph.Parents(head)) {
        Partial ext;
        ext.nodes.reserve(cur.nodes.size() + 1);
        ext.nodes.push_back(pe.target);
        ext.nodes.insert(ext.nodes.end(), cur.nodes.begin(),
                         cur.nodes.end());
        ext.weight = cur.weight + pe.weight;
        frontier.push_back(std::move(ext));
      }
    }
    return done;
  };

  // Enumerates all full suffixes starting at v (paths v .. t_{m-1}).
  auto enumerate_suffixes = [&](NodeId v) {
    std::vector<Partial> done;
    std::vector<Partial> frontier;
    frontier.push_back(Partial{{v}, 0});
    while (!frontier.empty() && !budget_exceeded) {
      Partial cur = std::move(frontier.back());
      frontier.pop_back();
      const NodeId tail = cur.nodes.back();
      if (graph.Interval(tail) == m - 1) {
        done.push_back(std::move(cur));
        continue;
      }
      charge_probe();
      for (const ClusterGraphEdge& ce : graph.Children(tail)) {
        Partial ext = cur;
        ext.nodes.push_back(ce.target);
        ext.weight += ce.weight;
        frontier.push_back(std::move(ext));
      }
    }
    return done;
  };

  std::vector<size_t> pos(lists.size(), 0);
  bool exhausted = false;

  while (!exhausted && !budget_exceeded) {
    bool any_list_done = false;
    for (size_t r = 0; r < lists.size() && !budget_exceeded; ++r) {
      if (pos[r] >= lists[r].size()) {
        // All edges of this list seen: every full path contains one edge
        // per list, so every path has been assembled already.
        any_list_done = true;
        continue;
      }
      const ListEdge e = lists[r][pos[r]++];
      ++result.edges_scanned;
      if (pos[r] >= lists[r].size()) any_list_done = true;

      // Upper-bound pruning from the memoized tables.
      if (options_.use_bound_tables && global.full()) {
        auto it_end = endwts.find(e.from);
        auto it_start = startwts.find(e.to);
        if (it_end != endwts.end() && it_start != startwts.end() &&
            it_end->second + e.weight + it_start->second <
                global.MinWeight()) {
          continue;
        }
      }

      std::vector<Partial> prefixes = enumerate_prefixes(e.from);
      std::vector<Partial> suffixes = enumerate_suffixes(e.to);
      if (budget_exceeded) break;
      double best_prefix = -std::numeric_limits<double>::infinity();
      double best_suffix = -std::numeric_limits<double>::infinity();
      for (const Partial& p : prefixes) {
        best_prefix = std::max(best_prefix, p.weight);
      }
      for (const Partial& s : suffixes) {
        best_suffix = std::max(best_suffix, s.weight);
      }
      if (options_.use_bound_tables) {
        if (!prefixes.empty()) endwts[e.from] = best_prefix;
        if (!suffixes.empty()) startwts[e.to] = best_suffix;
      }
      for (const Partial& p : prefixes) {
        for (const Partial& s : suffixes) {
          StablePath path;
          path.nodes.reserve(p.nodes.size() + s.nodes.size());
          path.nodes = p.nodes;
          path.nodes.insert(path.nodes.end(), s.nodes.begin(),
                            s.nodes.end());
          path.weight = p.weight + e.weight + s.weight;
          path.length = l;
          ++result.heap_offers;
          global.Offer(path);
        }
      }

      // Stopping rule: the virtual tuple is the best conceivable path made
      // of one unseen edge per list; once the k-th best real path is at
      // least as heavy, no unseen path can displace it.
      if (global.full()) {
        double virtual_score = 0;
        bool all_lists_alive = true;
        for (size_t r2 = 0; r2 < lists.size(); ++r2) {
          if (pos[r2] >= lists[r2].size()) {
            all_lists_alive = false;
            break;
          }
          virtual_score += lists[r2][pos[r2]].weight;
        }
        // Strictly greater: an unseen path could tie the k-th weight and
        // still win on the deterministic tie-break order, so ties are not
        // sufficient to stop.
        if (!all_lists_alive || global.MinWeight() > virtual_score) {
          exhausted = true;
          break;
        }
      }
    }
    if (any_list_done) exhausted = true;
  }

  if (budget_exceeded) {
    return Status::NotSupported("TA probe budget exceeded");
  }
  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
