// Shared option/result types for the stable-cluster finders (Sections
// 4.2-4.5), plus the finder registry: every finder (BFS, DFS, TA,
// brute-force, online) is reachable through one FinderQuery/RunFinder
// surface so callers (Engine, CLI, benches) never hard-code a traversal.

#ifndef STABLETEXT_STABLE_FINDER_H_
#define STABLETEXT_STABLE_FINDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "stable/path.h"
#include "storage/io_stats.h"
#include "util/memory_tracker.h"
#include "util/status.h"

namespace stabletext {

class ClusterGraph;

/// \brief Answer plus cost counters from one finder run.
struct StableFinderResult {
  /// Top paths, best first, under the finder's total order.
  std::vector<StablePath> paths;
  /// Simulated-disk traffic (node reads/writes, spills).
  IoStats io;
  /// Peak bytes of finder-resident state (per the paper's memory model:
  /// node annotations not currently needed count as on-disk).
  size_t peak_memory_bytes = 0;
  /// Block-nested-loop passes (BFS under a memory budget; 1 otherwise).
  size_t passes = 1;
  /// Candidate paths offered to any heap (work proxy).
  uint64_t heap_offers = 0;
  /// DFS: stack pushes (node activations, counting re-visits).
  uint64_t nodes_pushed = 0;
  /// DFS: CanPrune firings.
  uint64_t prunes = 0;
  /// TA: edges consumed from the sorted lists.
  uint64_t edges_scanned = 0;
  /// TA: random probes into adjacency during path assembly.
  uint64_t random_probes = 0;
};

/// Which traversal answers a query.
enum class FinderAlgorithm {
  kBfs,         ///< Interval sweep (Algorithm 2, Section 4.2).
  kDfs,         ///< Depth-first (Algorithm 3, Section 4.3).
  kTa,          ///< Threshold algorithm (Section 4.4); full paths, g = 0.
  kBruteForce,  ///< Exhaustive enumeration (testing oracle).
  kOnline,      ///< Streaming sweep (Section 4.6), replayed per interval.
};

/// What the query ranks by.
enum class FinderMode {
  kKlStable,    ///< Problem 1: top-k by weight, length exactly l.
  kNormalized,  ///< Problem 2: top-k by stability, length >= lmin.
};

/// \brief One self-contained stable-cluster query against a ClusterGraph.
///
/// The single query surface for all finders: pick an algorithm and a mode,
/// set k and l, and RunFinder() dispatches through the registry. Unsupported
/// combinations (TA with gaps, online normalized, ...) come back as
/// NotSupported statuses, never as silent fallbacks.
struct FinderQuery {
  FinderAlgorithm algorithm = FinderAlgorithm::kBfs;
  FinderMode mode = FinderMode::kKlStable;
  size_t k = 5;  ///< Paths sought.
  /// kKlStable: exact path length, 0 = full (m-1).
  /// kNormalized: minimum path length lmin.
  uint32_t l = 0;
  /// Diversified selection (Section 4's affix-constraint variant): run the
  /// finder with an enlarged k, then greedily drop paths sharing the first
  /// `diversify_prefix` / last `diversify_suffix` nodes with a better kept
  /// path. 0/0 disables diversification.
  uint32_t diversify_prefix = 0;
  uint32_t diversify_suffix = 0;
  /// Candidate pool multiplier for diversified selection.
  size_t diversify_candidates = 8;
  /// BFS: window memory budget (block-nested-loop fallback when exceeded).
  size_t memory_budget_bytes = MemoryTracker::kUnlimited;
  /// Normalized BFS/DFS: Theorem 1 prefix pruning.
  bool theorem1_pruning = false;
  /// TA: probe budget safety valve (0 = unlimited).
  uint64_t max_probes = 0;

  /// Field-wise identity — two equal queries at the same epoch have the
  /// same answer, which is what the engine's query cache keys on.
  friend bool operator==(const FinderQuery& a, const FinderQuery& b) {
    return a.algorithm == b.algorithm && a.mode == b.mode && a.k == b.k &&
           a.l == b.l && a.diversify_prefix == b.diversify_prefix &&
           a.diversify_suffix == b.diversify_suffix &&
           a.diversify_candidates == b.diversify_candidates &&
           a.memory_budget_bytes == b.memory_budget_bytes &&
           a.theorem1_pruning == b.theorem1_pruning &&
           a.max_probes == b.max_probes;
  }
  friend bool operator!=(const FinderQuery& a, const FinderQuery& b) {
    return !(a == b);
  }
};

/// Registry entry: one finder algorithm with its capabilities.
struct FinderInfo {
  FinderAlgorithm algorithm;
  const char* name;  ///< Stable identifier ("bfs", "dfs", "ta", ...).
  bool supports_kl_stable;
  bool supports_normalized;
  /// Runs this finder; `query.algorithm` is ignored (already dispatched).
  Result<StableFinderResult> (*run)(const ClusterGraph& graph,
                                    const FinderQuery& query);
};

/// All registered finders, in a stable order (bfs first).
const std::vector<FinderInfo>& FinderRegistry();

/// Registry lookup; never null (every FinderAlgorithm is registered).
const FinderInfo& GetFinderInfo(FinderAlgorithm algorithm);

/// Parses "bfs" | "dfs" | "ta" | "brute-force" | "online" (also accepts
/// "brute"). InvalidArgument on anything else.
Result<FinderAlgorithm> ParseFinderAlgorithm(std::string_view name);

/// The registered name of `algorithm`.
const char* FinderAlgorithmName(FinderAlgorithm algorithm);

/// Parses "kl-stable" | "normalized" (also accepts "stable").
Result<FinderMode> ParseFinderMode(std::string_view name);

/// The canonical name of `mode`.
const char* FinderModeName(FinderMode mode);

/// \brief Runs `query` against `graph` through the registry.
///
/// Validates the (algorithm, mode) combination, dispatches, and applies the
/// diversification post-pass when requested. The graph's children lists
/// must be sorted (ClusterGraph::SortTouched or SortChildren).
Result<StableFinderResult> RunFinder(const ClusterGraph& graph,
                                     const FinderQuery& query);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_FINDER_H_
