// Shared option/result types for the stable-cluster finders (Sections
// 4.2-4.5): BFS, DFS, TA, and the normalized variants all report their
// answers and costs through these structures so benchmarks can compare them
// uniformly.

#ifndef STABLETEXT_STABLE_FINDER_H_
#define STABLETEXT_STABLE_FINDER_H_

#include <cstdint>
#include <vector>

#include "stable/path.h"
#include "storage/io_stats.h"

namespace stabletext {

/// \brief Answer plus cost counters from one finder run.
struct StableFinderResult {
  /// Top paths, best first, under the finder's total order.
  std::vector<StablePath> paths;
  /// Simulated-disk traffic (node reads/writes, spills).
  IoStats io;
  /// Peak bytes of finder-resident state (per the paper's memory model:
  /// node annotations not currently needed count as on-disk).
  size_t peak_memory_bytes = 0;
  /// Block-nested-loop passes (BFS under a memory budget; 1 otherwise).
  size_t passes = 1;
  /// Candidate paths offered to any heap (work proxy).
  uint64_t heap_offers = 0;
  /// DFS: stack pushes (node activations, counting re-visits).
  uint64_t nodes_pushed = 0;
  /// DFS: CanPrune firings.
  uint64_t prunes = 0;
  /// TA: edges consumed from the sorted lists.
  uint64_t edges_scanned = 0;
  /// TA: random probes into adjacency during path assembly.
  uint64_t random_probes = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_FINDER_H_
