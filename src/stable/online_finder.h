// Section 4.6: online (streaming) stable-cluster discovery. New temporal
// intervals arrive continuously; per-node heaps are computed once when a
// node's interval arrives and never revisited, so appending interval m+1
// costs the same as the last step of the batch BFS run — no past work is
// redone. The global top-k (paths of length exactly l) grows monotonically
// and is maintained incrementally.

#ifndef STABLETEXT_STABLE_ONLINE_FINDER_H_
#define STABLETEXT_STABLE_ONLINE_FINDER_H_

#include <vector>

#include "stable/finder.h"
#include "stable/topk_heap.h"
#include "util/status.h"

namespace stabletext {

/// Options for OnlineStableFinder.
struct OnlineFinderOptions {
  size_t k = 5;
  uint32_t l = 3;  ///< Subpath length sought (fixed across the stream).
  uint32_t gap = 0;
};

/// \brief Streaming kl-stable-cluster finder.
///
/// Usage per arriving interval:
///   BeginInterval(); AddNode()...; AddEdge()...; EndInterval();
/// After any EndInterval(), TopK() equals what the batch BFS finder would
/// return on the data seen so far (verified by the test suite).
class OnlineStableFinder {
 public:
  explicit OnlineStableFinder(OnlineFinderOptions options = {});

  /// Opens interval number interval_count(); nodes/edges may then be added.
  uint32_t BeginInterval();

  /// Adds a cluster node to the open interval. Returns its id.
  Result<NodeId> AddNode();

  /// Adds an edge from an earlier-interval node `from` to `to` in the open
  /// interval. Enforces the gap bound and weight domain, like
  /// ClusterGraph::AddEdge.
  Status AddEdge(NodeId from, NodeId to, double weight);

  /// Closes the open interval and integrates its nodes into the result:
  /// heaps for the new nodes are computed from the g+1 window, and new
  /// length-l paths are offered to the global top-k.
  Status EndInterval();

  /// Current top-k paths of length exactly l, best first.
  const std::vector<StablePath>& TopK() const { return global_.paths(); }

  uint32_t interval_count() const { return interval_count_; }
  size_t node_count() const { return node_interval_.size(); }
  const IoStats& io() const { return io_; }

 private:
  struct NodeData {
    uint32_t interval;
    std::vector<TopKHeap<>> heaps;  // heaps[x]: top-k length-x paths
                                    // ending here, x in [1, min(l, i)].
    std::vector<std::pair<NodeId, double>> parents;
  };

  OnlineFinderOptions options_;
  uint32_t interval_count_ = 0;
  bool interval_open_ = false;
  std::vector<uint32_t> node_interval_;
  std::vector<NodeData> nodes_;
  std::vector<std::vector<NodeId>> intervals_;
  TopKHeap<> global_;
  IoStats io_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_ONLINE_FINDER_H_
