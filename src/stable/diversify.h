// Diversified kl-stable clusters. Section 4 of the paper: "the top-k
// paths produced may share common subpaths which, depending on the
// context, may not be very informative from an information discovery
// perspective. Variants of the kl-stable cluster problem with additional
// constraints are possible to discard paths with the same prefix or
// suffix." This implements that variant: a greedy diversified selection
// over a (larger) ranked candidate list, rejecting paths that share a
// constrained affix with an already-selected better path.

#ifndef STABLETEXT_STABLE_DIVERSIFY_H_
#define STABLETEXT_STABLE_DIVERSIFY_H_

#include <vector>

#include "stable/bfs_finder.h"
#include "stable/finder.h"

namespace stabletext {

/// Constraints for diversified selection.
struct DiversifyOptions {
  /// No two results may share their first `prefix_nodes` nodes
  /// (0 disables the prefix constraint).
  uint32_t prefix_nodes = 2;
  /// No two results may share their last `suffix_nodes` nodes
  /// (0 disables the suffix constraint).
  uint32_t suffix_nodes = 2;
};

/// Greedily selects up to `k` paths from `ranked` (best first) such that
/// no selected pair violates the affix constraints. The standard greedy
/// rule: walk the ranking, keep a path iff it conflicts with no
/// already-kept path.
std::vector<StablePath> DiversifyPaths(const std::vector<StablePath>& ranked,
                                       size_t k,
                                       const DiversifyOptions& options);

/// True if `a` and `b` share a constrained prefix or suffix.
bool PathsConflict(const StablePath& a, const StablePath& b,
                   const DiversifyOptions& options);

/// Convenience: runs the BFS finder with an enlarged internal k
/// (candidate_multiplier * k) and diversifies the result. The selection
/// is exact whenever the diversified top-k is contained in the enlarged
/// candidate ranking (increase the multiplier for highly redundant
/// graphs).
Result<StableFinderResult> FindDiversifiedStableClusters(
    const ClusterGraph& graph, const BfsFinderOptions& finder_options,
    const DiversifyOptions& diversify_options,
    size_t candidate_multiplier = 8);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_DIVERSIFY_H_
