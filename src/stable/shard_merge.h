// Threshold merge for scatter-gather queries (ShardedEngine's read
// path). Each shard answers the query independently, producing a
// best-first chain list under the finder's total order; the merge pulls
// from the per-shard streams with a k-way heap, which is exactly the
// sorted-access half of the Threshold Algorithm (Section 4.4's TA,
// applied across shards instead of across edge lists): once k chains are
// emitted, every stream whose next-best possible score is at or below
// the global k-th is never pulled again. The counters record how much of
// each shard's list the merge actually consumed, so early termination is
// measured, not assumed.
//
// Tie-break relaxation (documented, pinned by sharded_engine_test): a
// single engine breaks score ties by node sequence (PathBetter); node
// ids are shard-local, so the merged order breaks ties by
// (shard index, local rank) instead. Chains with distinct scores are
// ordered identically to a single engine; equal-score chains may appear
// in a different relative order.

#ifndef STABLETEXT_STABLE_SHARD_MERGE_H_
#define STABLETEXT_STABLE_SHARD_MERGE_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "core/snapshot.h"
#include "stable/finder.h"

namespace stabletext {

/// Early-termination accounting for one merged query.
struct ShardMergeStats {
  /// Chains consumed from each shard's stream.
  std::vector<uint64_t> paths_pulled;
  /// Chains each shard had available.
  std::vector<uint64_t> paths_available;
  /// Chains emitted into the merged top-k.
  uint64_t paths_merged = 0;
  /// Shards whose stream ran dry before the merge stopped.
  uint32_t shards_exhausted = 0;
  /// Shards abandoned with chains still unpulled — the merge stopped
  /// before reading them. This is the measured TA win.
  uint32_t early_terminations = 0;
};

/// A merged chain: which shard produced it and its rank in that shard's
/// best-first list. The chain itself (with its shard-local node ids)
/// stays in the shard's QueryResult.
struct MergedChainRef {
  uint32_t shard = 0;
  size_t rank = 0;
};

/// \brief Merges per-shard best-first answers into the global top-k.
///
/// `shard_results` are the per-shard answers to the same `query`, one
/// per shard, already sorted best-first (finders guarantee this). The
/// score is query.mode-dependent: path weight for kKlStable, stability
/// for kNormalized — matching the order the finders sorted by. Returns
/// at most query.k refs, best first under (score desc, shard asc,
/// rank asc). `stats`, when non-null, is overwritten with this merge's
/// counters.
std::vector<MergedChainRef> ThresholdMergeTopK(
    const std::vector<const QueryResult*>& shard_results,
    const FinderQuery& query, ShardMergeStats* stats);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_SHARD_MERGE_H_
