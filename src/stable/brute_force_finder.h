// Exhaustive path enumeration: the testing oracle for every other finder.
// Exponential in the graph size; use on small graphs only.

#ifndef STABLETEXT_STABLE_BRUTE_FORCE_FINDER_H_
#define STABLETEXT_STABLE_BRUTE_FORCE_FINDER_H_

#include <functional>

#include "stable/cluster_graph.h"
#include "stable/finder.h"

namespace stabletext {

/// \brief Brute-force solutions to Problems 1 and 2.
class BruteForceFinder {
 public:
  /// Top-k paths of length exactly `l` (l == 0 means full, m-1) under the
  /// shared PathBetter order.
  static std::vector<StablePath> TopKByWeight(const ClusterGraph& graph,
                                              size_t k, uint32_t l);

  /// Top-k paths of length >= lmin under PathMoreStable (Problem 2).
  static std::vector<StablePath> TopKByStability(const ClusterGraph& graph,
                                                 size_t k, uint32_t lmin);

  /// Invokes `fn` for every path (>= 1 edge) in the graph.
  static void ForEachPath(const ClusterGraph& graph,
                          const std::function<void(const StablePath&)>& fn);
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_BRUTE_FORCE_FINDER_H_
