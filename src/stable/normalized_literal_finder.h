// The *literal* Section 4.5 algorithm for normalized stable clusters,
// kept alongside the exact NormalizedBfsFinder as a faithful-ablation
// implementation:
//
//  - smallpaths(c, x): ALL paths of length x < lmin ending at c (no
//    top-k truncation — this is what makes the paper's running time grow
//    with lmin, Figure 14);
//  - bestpaths(c): a list of candidate paths of length >= lmin ending at
//    c, pruned by the paper's two rules — drop a path that is a subpath
//    of another in the list, and apply Theorem 1 (replace pre+curr by
//    curr when len(curr) >= lmin and stability(pre) <= stability(curr));
//  - a global top-k heap ranked by stability over every generated path.
//
// Semantics: the global top-1 is exact (Theorem 1 guarantees the
// reduced path dominates); lower ranks may be replaced by their
// dominating suffixes, exactly as in the paper. The update equations are
// the paper's, which enumerate prefix length x = lmin - len only; with
// gaps (len > 1) intermediate lengths are also folded in so no candidate
// crossing the lmin boundary is missed.

#ifndef STABLETEXT_STABLE_NORMALIZED_LITERAL_FINDER_H_
#define STABLETEXT_STABLE_NORMALIZED_LITERAL_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/normalized_bfs_finder.h"

namespace stabletext {

/// \brief Paper-literal normalized stable-cluster finder (Section 4.5).
class NormalizedLiteralFinder {
 public:
  explicit NormalizedLiteralFinder(NormalizedFinderOptions options = {})
      : options_(options) {}

  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  NormalizedFinderOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_NORMALIZED_LITERAL_FINDER_H_
