#include "stable/finder.h"

#include <algorithm>

#include "stable/bfs_finder.h"
#include "stable/brute_force_finder.h"
#include "stable/cluster_graph.h"
#include "stable/dfs_finder.h"
#include "stable/diversify.h"
#include "stable/normalized_bfs_finder.h"
#include "stable/normalized_dfs_finder.h"
#include "stable/online_finder.h"
#include "stable/ta_finder.h"

namespace stabletext {

namespace {

Result<StableFinderResult> RunBfs(const ClusterGraph& graph,
                                  const FinderQuery& query) {
  if (query.mode == FinderMode::kNormalized) {
    NormalizedFinderOptions options;
    options.k = query.k;
    options.lmin = query.l;
    options.theorem1_pruning = query.theorem1_pruning;
    return NormalizedBfsFinder(options).Find(graph);
  }
  BfsFinderOptions options;
  options.k = query.k;
  options.l = query.l;
  options.memory_budget_bytes = query.memory_budget_bytes;
  return BfsStableFinder(options).Find(graph);
}

Result<StableFinderResult> RunDfs(const ClusterGraph& graph,
                                  const FinderQuery& query) {
  if (query.mode == FinderMode::kNormalized) {
    NormalizedFinderOptions options;
    options.k = query.k;
    options.lmin = query.l;
    options.theorem1_pruning = query.theorem1_pruning;
    return NormalizedDfsFinder(options).Find(graph);
  }
  DfsFinderOptions options;
  options.k = query.k;
  options.l = query.l;
  return DfsStableFinder(options).Find(graph);
}

Result<StableFinderResult> RunTa(const ClusterGraph& graph,
                                 const FinderQuery& query) {
  const uint32_t m = graph.interval_count();
  if (query.l != 0 && (m < 2 || query.l != m - 1)) {
    return Status::NotSupported(
        "the TA finder answers full-path queries only (l = 0 or m-1)");
  }
  TaFinderOptions options;
  options.k = query.k;
  options.max_probes = query.max_probes;
  return TaStableFinder(options).Find(graph);
}

Result<StableFinderResult> RunBruteForce(const ClusterGraph& graph,
                                         const FinderQuery& query) {
  StableFinderResult result;
  if (query.mode == FinderMode::kNormalized) {
    result.paths =
        BruteForceFinder::TopKByStability(graph, query.k, query.l);
  } else {
    result.paths = BruteForceFinder::TopKByWeight(graph, query.k, query.l);
  }
  return result;
}

// Replays the graph interval by interval through the streaming finder —
// the same code path Engine feeds incrementally, so a batch caller can
// cross-check the online answer against bfs/dfs on any static graph.
Result<StableFinderResult> RunOnline(const ClusterGraph& graph,
                                     const FinderQuery& query) {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t l = query.l == 0 ? m - 1 : query.l;
  if (l < 1 || l > m - 1) {
    return Status::InvalidArgument("path length l out of range");
  }
  OnlineFinderOptions options;
  options.k = query.k;
  options.l = l;
  options.gap = graph.gap();
  OnlineStableFinder finder(options);
  for (uint32_t i = 0; i < m; ++i) {
    finder.BeginInterval();
    for (size_t j = 0; j < graph.IntervalNodes(i).size(); ++j) {
      auto node = finder.AddNode();
      if (!node.ok()) return node.status();
    }
    for (NodeId c : graph.IntervalNodes(i)) {
      for (const ClusterGraphEdge& pe : graph.Parents(c)) {
        ST_RETURN_IF_ERROR(finder.AddEdge(pe.target, c, pe.weight));
      }
    }
    ST_RETURN_IF_ERROR(finder.EndInterval());
  }
  result.paths = finder.TopK();
  result.io = finder.io();
  return result;
}

}  // namespace

const std::vector<FinderInfo>& FinderRegistry() {
  static const std::vector<FinderInfo> registry = {
      {FinderAlgorithm::kBfs, "bfs", true, true, &RunBfs},
      {FinderAlgorithm::kDfs, "dfs", true, true, &RunDfs},
      {FinderAlgorithm::kTa, "ta", true, false, &RunTa},
      {FinderAlgorithm::kBruteForce, "brute-force", true, true,
       &RunBruteForce},
      {FinderAlgorithm::kOnline, "online", true, false, &RunOnline},
  };
  return registry;
}

const FinderInfo& GetFinderInfo(FinderAlgorithm algorithm) {
  for (const FinderInfo& info : FinderRegistry()) {
    if (info.algorithm == algorithm) return info;
  }
  return FinderRegistry().front();  // Unreachable: all enums registered.
}

Result<FinderAlgorithm> ParseFinderAlgorithm(std::string_view name) {
  for (const FinderInfo& info : FinderRegistry()) {
    if (name == info.name) return info.algorithm;
  }
  if (name == "brute") return FinderAlgorithm::kBruteForce;
  return Status::InvalidArgument(
      "unknown algorithm \"" + std::string(name) +
      "\" (known: bfs, dfs, ta, brute-force, online)");
}

const char* FinderAlgorithmName(FinderAlgorithm algorithm) {
  return GetFinderInfo(algorithm).name;
}

Result<FinderMode> ParseFinderMode(std::string_view name) {
  if (name == "kl-stable" || name == "stable") {
    return FinderMode::kKlStable;
  }
  if (name == "normalized") return FinderMode::kNormalized;
  return Status::InvalidArgument(
      "unknown mode \"" + std::string(name) +
      "\" (known: kl-stable, normalized)");
}

const char* FinderModeName(FinderMode mode) {
  return mode == FinderMode::kKlStable ? "kl-stable" : "normalized";
}

Result<StableFinderResult> RunFinder(const ClusterGraph& graph,
                                     const FinderQuery& query) {
  const FinderInfo& info = GetFinderInfo(query.algorithm);
  if (query.mode == FinderMode::kNormalized && !info.supports_normalized) {
    return Status::NotSupported(std::string(info.name) +
                                " does not answer normalized queries");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const bool diversify =
      query.diversify_prefix > 0 || query.diversify_suffix > 0;
  if (!diversify) return info.run(graph, query);

  // Diversified selection: enlarge the candidate pool, then apply the
  // greedy affix filter. Exact whenever the diversified top-k lies in the
  // enlarged ranking (raise diversify_candidates for redundant graphs).
  FinderQuery enlarged = query;
  enlarged.k = query.k * std::max<size_t>(1, query.diversify_candidates);
  auto r = info.run(graph, enlarged);
  if (!r.ok()) return r.status();
  StableFinderResult result = std::move(r).value();
  DiversifyOptions dopt;
  dopt.prefix_nodes = query.diversify_prefix;
  dopt.suffix_nodes = query.diversify_suffix;
  result.paths = DiversifyPaths(result.paths, query.k, dopt);
  return result;
}

}  // namespace stabletext
