#include "stable/normalized_dfs_finder.h"

#include <algorithm>

namespace stabletext {

namespace {

struct Frame {
  NodeId node;  // kInvalidNode encodes the virtual source.
  size_t child_idx = 0;
  size_t charged_bytes = 0;  // Resident bytes charged for this node.
};

}  // namespace

Result<StableFinderResult> NormalizedDfsFinder::Find(
    const ClusterGraph& graph) const {
  const uint32_t m = graph.interval_count();
  StableFinderResult result;
  if (m < 2) return result;
  const uint32_t lmin = options_.lmin;
  if (lmin < 1 || lmin > m - 1) {
    return Status::InvalidArgument("lmin out of range");
  }
  const size_t k = options_.k;
  const size_t n = graph.node_count();

  // bestpaths[v][x]: top-k-by-weight paths of length x starting at v.
  std::vector<std::vector<TopKHeap<>>> bestpaths(n);
  std::vector<bool> visited(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t horizon = (m - 1) - graph.Interval(v);
    bestpaths[v].assign(horizon + 1, TopKHeap<>(k));
  }
  auto node_bytes = [&](NodeId v) {
    size_t bytes = 0;
    for (const auto& h : bestpaths[v]) bytes += h.MemoryBytes();
    return bytes;
  };

  TopKHeap<PathMoreStable> global(k);

  // Folds child c2 (already fully explored) into c1's suffix heaps via the
  // edge (c1, c2) and offers every generated path of length >= lmin.
  auto update = [&](NodeId c1, const ClusterGraphEdge& e) {
    const NodeId c2 = e.target;
    const uint32_t len = graph.EdgeLength(c1, c2);
    auto offer = [&](const StablePath& p) {
      ++result.heap_offers;
      if (p.length < bestpaths[c1].size()) {
        bestpaths[c1][p.length].Offer(p);
      }
      if (p.length >= lmin) {
        ++result.heap_offers;
        global.Offer(p);
      }
    };
    StablePath bare;
    bare.nodes = {c1, c2};
    bare.weight = e.weight;
    bare.length = len;
    offer(bare);
    for (uint32_t x = 1; x < bestpaths[c2].size(); ++x) {
      for (const StablePath& pi : bestpaths[c2][x].paths()) {
        if (options_.theorem1_pruning) {
          // In suffix orientation Theorem 1 prunes from the *other* end;
          // reuse the prefix test on the would-be extended path instead.
          StablePath probe;
          probe.nodes.reserve(pi.nodes.size() + 1);
          probe.nodes.push_back(c1);
          probe.nodes.insert(probe.nodes.end(), pi.nodes.begin(),
                             pi.nodes.end());
          probe.weight = e.weight + pi.weight;
          probe.length = len + pi.length;
          if (Theorem1Reducible(probe, graph, lmin)) {
            // Still rank the path itself; only suppress keeping it for
            // further extension.
            if (probe.length >= lmin) {
              ++result.heap_offers;
              global.Offer(probe);
            }
            continue;
          }
          offer(probe);
          continue;
        }
        StablePath extended;
        extended.nodes.reserve(pi.nodes.size() + 1);
        extended.nodes.push_back(c1);
        extended.nodes.insert(extended.nodes.end(), pi.nodes.begin(),
                              pi.nodes.end());
        extended.weight = e.weight + pi.weight;
        extended.length = len + pi.length;
        offer(extended);
      }
    }
  };

  size_t resident = 0;
  auto note_peak = [&](size_t frames) {
    result.peak_memory_bytes =
        std::max(result.peak_memory_bytes,
                 frames * sizeof(Frame) + resident + global.MemoryBytes());
  };

  std::vector<Frame> stack;
  stack.push_back(Frame{kInvalidNode, 0});
  note_peak(1);

  while (!stack.empty()) {
    Frame& top = stack.back();
    const bool at_source = (top.node == kInvalidNode);
    const size_t degree =
        at_source ? n : graph.Children(top.node).size();
    if (top.child_idx < degree) {
      const size_t idx = top.child_idx++;
      const ClusterGraphEdge e =
          at_source ? ClusterGraphEdge{static_cast<NodeId>(idx), 0.0}
                    : graph.Children(top.node)[idx];
      const NodeId c2 = e.target;
      ++result.io.page_reads;
      ++result.io.random_seeks;
      if (visited[c2]) {
        if (!at_source) update(top.node, e);
        continue;
      }
      visited[c2] = true;
      ++result.nodes_pushed;
      const size_t charged = node_bytes(c2);
      stack.push_back(Frame{c2, 0, charged});
      resident += charged;
      note_peak(stack.size());
      continue;
    }
    const Frame finished = stack.back();
    stack.pop_back();
    if (finished.node == kInvalidNode) continue;
    // Account growth of this node's heaps during its tenure before
    // releasing it.
    resident += node_bytes(finished.node) - finished.charged_bytes;
    note_peak(stack.size() + 1);
    resident -= node_bytes(finished.node);
    ++result.io.page_writes;
    ++result.io.random_seeks;
    if (!stack.empty() && stack.back().node != kInvalidNode) {
      const NodeId parent = stack.back().node;
      // Recover the entry edge weight from the adjacency list.
      double w = 0;
      for (const ClusterGraphEdge& ce : graph.Children(parent)) {
        if (ce.target == finished.node) {
          w = ce.weight;
          break;
        }
      }
      update(parent, ClusterGraphEdge{finished.node, w});
    }
  }

  result.paths = global.paths();
  return result;
}

}  // namespace stabletext
