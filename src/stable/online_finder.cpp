#include "stable/online_finder.h"

#include <algorithm>

namespace stabletext {

OnlineStableFinder::OnlineStableFinder(OnlineFinderOptions options)
    : options_(options), global_(options.k) {}

uint32_t OnlineStableFinder::BeginInterval() {
  interval_open_ = true;
  intervals_.emplace_back();
  return interval_count_++;
}

Result<NodeId> OnlineStableFinder::AddNode() {
  if (!interval_open_) {
    return Status::InvalidArgument("no interval open");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const uint32_t i = interval_count_ - 1;
  NodeData data;
  data.interval = i;
  const uint32_t max_len = std::min(options_.l, i);
  data.heaps.assign(max_len + 1, TopKHeap<>(options_.k));
  nodes_.push_back(std::move(data));
  node_interval_.push_back(i);
  intervals_.back().push_back(id);
  return id;
}

Status OnlineStableFinder::AddEdge(NodeId from, NodeId to, double weight) {
  if (!interval_open_) return Status::InvalidArgument("no interval open");
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  const uint32_t fi = nodes_[from].interval;
  const uint32_t ti = nodes_[to].interval;
  if (ti != interval_count_ - 1) {
    return Status::InvalidArgument("edges must target the open interval");
  }
  if (fi >= ti) {
    return Status::InvalidArgument("edges must go forward in time");
  }
  if (ti - fi > options_.gap + 1) {
    return Status::InvalidArgument("edge exceeds gap bound");
  }
  if (!(weight > 0) || weight > 1) {
    return Status::InvalidArgument("edge weight must be in (0, 1]");
  }
  nodes_[to].parents.emplace_back(from, weight);
  return Status::OK();
}

Status OnlineStableFinder::EndInterval() {
  if (!interval_open_) return Status::InvalidArgument("no interval open");
  interval_open_ = false;
  const uint32_t i = interval_count_ - 1;
  if (i == 0) return Status::OK();
  const uint32_t l = options_.l;

  // Read the g+1 window from disk (the only annotations ever needed).
  const uint32_t window_begin =
      i >= options_.gap + 1 ? i - options_.gap - 1 : 0;
  for (uint32_t iv = window_begin; iv < i; ++iv) {
    io_.page_reads += intervals_[iv].size();
  }

  for (NodeId c : intervals_[i]) {
    ++io_.page_reads;
    // Deterministic parent order (matches ClusterGraph::SortChildren).
    std::sort(nodes_[c].parents.begin(), nodes_[c].parents.end());
    for (const auto& [p, w] : nodes_[c].parents) {
      const uint32_t len = i - nodes_[p].interval;
      {
        StablePath bare;
        bare.nodes = {p, c};
        bare.weight = w;
        bare.length = len;
        if (len <= std::min(l, i)) nodes_[c].heaps[len].Offer(bare);
        if (len == l) global_.Offer(bare);
      }
      if (len >= l) continue;
      const uint32_t x_hi = l - len;
      for (uint32_t x = 1;
           x <= x_hi && x < nodes_[p].heaps.size(); ++x) {
        for (const StablePath& pi : nodes_[p].heaps[x].paths()) {
          StablePath extended = pi;
          extended.nodes.push_back(c);
          extended.weight += w;
          extended.length += len;
          nodes_[c].heaps[extended.length].Offer(extended);
          if (extended.length == l) global_.Offer(extended);
        }
      }
    }
    ++io_.page_writes;  // Save the node's heaps (line 17 of Algorithm 2).
  }
  return Status::OK();
}

}  // namespace stabletext
