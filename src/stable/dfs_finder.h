// Algorithm 3: depth-first solution to the kl-stable clusters problem,
// designed for memory-constrained environments. Node annotations
// (maxweight, bestpaths, visited flag) conceptually live on disk; only the
// DFS stack (bounded by m) and the global heap are memory-resident. Each
// child consideration costs one random read, each node retirement one
// random write. CanPrune postpones subtrees that provably cannot contribute
// a top-k path given the best prefix weight seen so far, unmarking the
// visited flags of all stacked nodes so those subtrees are re-explored if a
// heavier prefix is found later.

#ifndef STABLETEXT_STABLE_DFS_FINDER_H_
#define STABLETEXT_STABLE_DFS_FINDER_H_

#include "stable/cluster_graph.h"
#include "stable/finder.h"
#include "stable/topk_heap.h"

namespace stabletext {

/// Options for DfsStableFinder.
struct DfsFinderOptions {
  size_t k = 5;     ///< Paths sought.
  uint32_t l = 0;   ///< Path length; 0 means full paths (m-1).
  /// CanPrune-based subtree postponement (Section 4.3). Disabling it is an
  /// ablation knob; results are identical either way.
  bool enable_pruning = true;
  /// Children sorted by descending edge weight ("this heuristic is for
  /// efficient execution, and correctness ... is unaffected"). When false,
  /// children are visited in graph insertion order. Ablation knob.
  bool sort_children_by_weight = true;
};

/// \brief Depth-first kl-stable-cluster finder (Section 4.3).
class DfsStableFinder {
 public:
  explicit DfsStableFinder(DfsFinderOptions options = {})
      : options_(options) {}

  /// Finds the top-k paths of length l (or full length when options.l==0).
  Result<StableFinderResult> Find(const ClusterGraph& graph) const;

 private:
  DfsFinderOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_DFS_FINDER_H_
