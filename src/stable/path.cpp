#include "stable/path.h"

#include <algorithm>

#include "util/strings.h"

namespace stabletext {

std::string StablePath::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += "-";
    out += std::to_string(nodes[i]);
  }
  out += StringPrintf("] w=%.4f len=%u", weight, length);
  return out;
}

bool IsSubpath(const StablePath& sub, const StablePath& super) {
  if (sub.nodes.empty() || sub.nodes.size() > super.nodes.size()) {
    return false;
  }
  return std::search(super.nodes.begin(), super.nodes.end(),
                     sub.nodes.begin(), sub.nodes.end()) !=
         super.nodes.end();
}

}  // namespace stabletext
