// Persistence for cluster graphs: save once after the affinity join,
// reload for repeated stable-cluster queries with different k / l / lmin.
//
// Format: line-oriented text.
//   G <interval_count> <gap>
//   N <interval>            (one per node, in node-id order)
//   E <from> <to> <weight>  (hex float; exact round trip)

#ifndef STABLETEXT_STABLE_CLUSTER_GRAPH_IO_H_
#define STABLETEXT_STABLE_CLUSTER_GRAPH_IO_H_

#include <string>

#include "stable/cluster_graph.h"

namespace stabletext {

/// Writes `graph` to `path` (truncates).
Status SaveClusterGraph(const ClusterGraph& graph, const std::string& path);

/// Loads a graph previously written by SaveClusterGraph. Children lists
/// come back sorted (SortChildren is applied after loading).
Result<ClusterGraph> LoadClusterGraph(const std::string& path);

}  // namespace stabletext

#endif  // STABLETEXT_STABLE_CLUSTER_GRAPH_IO_H_
