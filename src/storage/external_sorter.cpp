// ExternalSorter is a header-only template (external_sorter.h). This
// translation unit anchors the component and instantiates the sorter for a
// representative record type to catch template errors at library build time.

#include "storage/external_sorter.h"

namespace stabletext {

namespace {
struct U64Pair {
  uint64_t first;
  uint64_t second;
  friend bool operator<(const U64Pair& a, const U64Pair& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  }
};
}  // namespace

template class ExternalSorter<U64Pair>;

}  // namespace stabletext
