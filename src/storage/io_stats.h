// I/O accounting. The paper's performance claims are fundamentally about
// access patterns (sequential passes for BFS, random probes for DFS and TA),
// so every storage primitive in this library reports its physical operations
// through an IoStats instance. Benchmarks report these counters alongside
// wall-clock time.

#ifndef STABLETEXT_STORAGE_IO_STATS_H_
#define STABLETEXT_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace stabletext {

/// \brief Counters for physical storage operations.
///
/// "Physical" means the operation missed every cache in front of it and
/// touched the (simulated) disk. Logical (cache-absorbed) accesses are
/// counted separately.
struct IoStats {
  uint64_t page_reads = 0;        ///< Physical page reads.
  uint64_t page_writes = 0;       ///< Physical page writes.
  uint64_t logical_reads = 0;     ///< Page reads absorbed by cache.
  uint64_t random_seeks = 0;      ///< Non-sequential repositionings.
  uint64_t bytes_read = 0;        ///< Physical bytes read.
  uint64_t bytes_written = 0;     ///< Physical bytes written.
  uint64_t fsyncs = 0;            ///< fsync(2) barriers (durability).
  // External-sort phase accounting (ExternalSorter).
  uint64_t sort_runs_spilled = 0;      ///< Sorted runs written to disk.
  uint64_t sort_merge_passes = 0;      ///< Intermediate merge passes.
  uint64_t sort_in_memory_sorts = 0;   ///< Sorts that never touched disk.
  uint64_t sort_tail_records = 0;      ///< Records merged straight from the
                                       ///< in-memory tail (spill avoided).

  void Reset() { *this = IoStats(); }

  /// Element-wise sum.
  IoStats& operator+=(const IoStats& other);

  /// Renders a one-line human-readable summary.
  std::string ToString() const;
};

/// Element-wise difference: counters are monotonic, so subtracting an
/// earlier snapshot yields the cost of the span between them.
IoStats operator-(IoStats a, const IoStats& b);

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_IO_STATS_H_
