// External-memory merge sort, exactly the technique Section 3 of the paper
// uses for the keyword-pair file: "This file is sorted lexicographically
// (using external memory merge sort) such that all identical keyword pairs
// appear together in the output."
//
// The sorter buffers records up to a memory budget, spills sorted runs to a
// scratch directory, and merges them with a k-way loser-tree-style merge
// (std::priority_queue over run cursors). All spill I/O is charged to the
// caller's IoStats.

#ifndef STABLETEXT_STORAGE_EXTERNAL_SORTER_H_
#define STABLETEXT_STORAGE_EXTERNAL_SORTER_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "storage/record_file.h"
#include "storage/temp_dir.h"
#include "util/status.h"

namespace stabletext {

/// Options for ExternalSorter.
struct ExternalSorterOptions {
  /// Maximum bytes of records buffered in memory before a run is spilled.
  size_t memory_budget_bytes = 16 << 20;
  /// Page size for run files.
  size_t page_size = 4096;
  /// Maximum runs merged at once. When more runs exist, intermediate
  /// merge passes combine them in batches of this size first (bounding
  /// open file handles and matching classic multi-pass merge sort).
  size_t max_merge_fanin = 64;
  /// Fault injection for tests; applies per spill/run file. See
  /// PagedFileOptions.
  uint64_t fail_after_physical_ops = 0;
};

/// \brief Sorts a stream of trivially-copyable records under a memory budget.
///
/// Usage: Add() records, then Sort(), then iterate with Next(). Comparator
/// must be a strict weak ordering. Duplicate records are preserved (stable
/// within a run; run merge is not stable, which is fine for the multiset
/// semantics needed by pair aggregation).
template <typename Record, typename Less = std::less<Record>>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "ExternalSorter requires trivially copyable records");

 public:
  explicit ExternalSorter(ExternalSorterOptions options = {},
                          IoStats* stats = nullptr, Less less = Less())
      : options_(options), stats_(stats), less_(less) {
    max_buffered_ = std::max<size_t>(
        1, options_.memory_budget_bytes / sizeof(Record));
  }

  /// Adds one record, spilling a sorted run if the buffer is full.
  Status Add(const Record& r) {
    buffer_.push_back(r);
    if (buffer_.size() >= max_buffered_) return SpillRun();
    return Status::OK();
  }

  /// Finishes input and prepares the merged iterator.
  Status Sort() {
    if (runs_.empty()) {
      // Fully in-memory case: no spill happened.
      std::sort(buffer_.begin(), buffer_.end(), less_);
      mem_pos_ = 0;
      in_memory_ = true;
      return Status::OK();
    }
    if (!buffer_.empty()) ST_RETURN_IF_ERROR(SpillRun());
    in_memory_ = false;
    // Intermediate merge passes until the final fan-in is acceptable.
    const size_t fanin = std::max<size_t>(2, options_.max_merge_fanin);
    while (runs_.size() > fanin) {
      std::vector<std::string> next;
      for (size_t begin = 0; begin < runs_.size(); begin += fanin) {
        const size_t end = std::min(runs_.size(), begin + fanin);
        if (end - begin == 1) {
          next.push_back(runs_[begin]);
          continue;
        }
        const std::string merged = scratch_.FilePath(
            "merge." + std::to_string(merge_counter_++));
        ST_RETURN_IF_ERROR(MergeRuns(
            std::vector<std::string>(runs_.begin() + begin,
                                     runs_.begin() + end),
            merged));
        next.push_back(merged);
      }
      runs_ = std::move(next);
    }
    // Open one reader per run and seed the merge heap.
    readers_.resize(runs_.size());
    for (size_t i = 0; i < runs_.size(); ++i) {
      readers_[i] = std::make_unique<RecordReader<Record>>();
      ST_RETURN_IF_ERROR(
          readers_[i]->Open(runs_[i], stats_, options_.page_size, 1,
                          options_.fail_after_physical_ops));
      Record r;
      if (readers_[i]->Next(&r)) {
        heap_.push(HeapItem{r, i});
      } else {
        ST_RETURN_IF_ERROR(readers_[i]->status());
      }
    }
    return Status::OK();
  }

  /// Produces the next record in sorted order; false at end.
  bool Next(Record* out) {
    if (in_memory_) {
      if (mem_pos_ >= buffer_.size()) return false;
      *out = buffer_[mem_pos_++];
      return true;
    }
    if (heap_.empty()) return false;
    HeapItem top = heap_.top();
    heap_.pop();
    *out = top.record;
    Record next;
    if (readers_[top.run]->Next(&next)) {
      heap_.push(HeapItem{next, top.run});
    } else {
      status_ = readers_[top.run]->status();
    }
    return true;
  }

  /// Number of runs spilled to disk (0 means the sort was in-memory).
  /// Counts initial spills, not intermediate merge outputs.
  size_t run_count() const { return spilled_runs_; }

  const Status& status() const { return status_; }

 private:
  struct HeapItem {
    Record record;
    size_t run;
  };
  struct HeapGreater {
    Less less;
    // priority_queue is a max-heap; invert to get the minimum on top.
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return less(b.record, a.record);
    }
  };

  // Merges `inputs` (each individually sorted) into one sorted run file.
  Status MergeRuns(const std::vector<std::string>& inputs,
                   const std::string& out_path) {
    std::vector<std::unique_ptr<RecordReader<Record>>> readers(
        inputs.size());
    std::priority_queue<HeapItem, std::vector<HeapItem>, HeapGreater> heap;
    for (size_t i = 0; i < inputs.size(); ++i) {
      readers[i] = std::make_unique<RecordReader<Record>>();
      ST_RETURN_IF_ERROR(
          readers[i]->Open(inputs[i], stats_, options_.page_size, 1,
                          options_.fail_after_physical_ops));
      Record r;
      if (readers[i]->Next(&r)) {
        heap.push(HeapItem{r, i});
      } else {
        ST_RETURN_IF_ERROR(readers[i]->status());
      }
    }
    RecordWriter<Record> writer;
    ST_RETURN_IF_ERROR(writer.Open(out_path, stats_, options_.page_size));
    while (!heap.empty()) {
      HeapItem top = heap.top();
      heap.pop();
      ST_RETURN_IF_ERROR(writer.Append(top.record));
      Record next;
      if (readers[top.run]->Next(&next)) {
        heap.push(HeapItem{next, top.run});
      } else {
        ST_RETURN_IF_ERROR(readers[top.run]->status());
      }
    }
    ST_RETURN_IF_ERROR(writer.Finish());
    // Free the consumed run files promptly.
    for (const std::string& path : inputs) {
      std::remove(path.c_str());
    }
    return Status::OK();
  }

  Status SpillRun() {
    std::sort(buffer_.begin(), buffer_.end(), less_);
    const std::string path =
        scratch_.FilePath("run." + std::to_string(runs_.size()));
    RecordWriter<Record> writer;
    ST_RETURN_IF_ERROR(writer.Open(path, stats_, options_.page_size, 1,
                                   options_.fail_after_physical_ops));
    for (const Record& r : buffer_) ST_RETURN_IF_ERROR(writer.Append(r));
    ST_RETURN_IF_ERROR(writer.Finish());
    runs_.push_back(path);
    ++spilled_runs_;
    buffer_.clear();
    return Status::OK();
  }

  ExternalSorterOptions options_;
  IoStats* stats_;
  Less less_;
  TempDir scratch_{"st_sort"};
  std::vector<Record> buffer_;
  size_t max_buffered_;
  std::vector<std::string> runs_;
  size_t spilled_runs_ = 0;
  size_t merge_counter_ = 0;
  std::vector<std::unique_ptr<RecordReader<Record>>> readers_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapGreater> heap_;
  bool in_memory_ = true;
  size_t mem_pos_ = 0;
  Status status_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_EXTERNAL_SORTER_H_
