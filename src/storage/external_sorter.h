// External-memory merge sort, exactly the technique Section 3 of the paper
// uses for the keyword-pair file: "This file is sorted lexicographically
// (using external memory merge sort) such that all identical keyword pairs
// appear together in the output."
//
// The sorter buffers records up to a memory budget and spills sorted runs
// to a scratch directory. Run generation (sort + write) can be offloaded to
// a ThreadPool so the producer keeps emitting while previous runs are
// written. Runs are merged with a k-way loser tree (storage/loser_tree.h);
// the final partial buffer is merged straight from memory instead of being
// rewritten through a temp file. All spill I/O is charged to the caller's
// IoStats, including the sort-phase counters (runs spilled, merge passes,
// in-memory tail records).

#ifndef STABLETEXT_STORAGE_EXTERNAL_SORTER_H_
#define STABLETEXT_STORAGE_EXTERNAL_SORTER_H_

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "storage/loser_tree.h"
#include "storage/record_file.h"
#include "storage/temp_dir.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace stabletext {

/// Options for ExternalSorter.
struct ExternalSorterOptions {
  /// Maximum bytes of records buffered in memory before a run is spilled.
  /// With a pool attached the budget is split across the live buffer and
  /// the in-flight spill buffers.
  size_t memory_budget_bytes = 16 << 20;
  /// Page size for run files.
  size_t page_size = 4096;
  /// Maximum runs merged at once. When more runs exist, intermediate
  /// merge passes combine them in batches of this size first (bounding
  /// open file handles and matching classic multi-pass merge sort).
  size_t max_merge_fanin = 64;
  /// Fault injection for tests; applies per spill/run file. See
  /// PagedFileOptions.
  uint64_t fail_after_physical_ops = 0;
  /// When set, run generation (sorting + writing spilled runs) happens on
  /// this pool, overlapping with record production. Owned by the caller;
  /// must outlive the sorter.
  ThreadPool* pool = nullptr;
  /// Spill tasks allowed in flight before Add() blocks (pool mode only).
  size_t max_inflight_spills = 2;
};

/// \brief Sorts a stream of trivially-copyable records under a memory budget.
///
/// Usage: Add() records, then Sort(), then iterate with Next(). Comparator
/// must be a strict weak ordering. Duplicate records are preserved (stable
/// within a run; the loser-tree merge breaks ties by run index, which keeps
/// the merged order deterministic for the multiset semantics needed by pair
/// aggregation).
template <typename Record, typename Less = std::less<Record>>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "ExternalSorter requires trivially copyable records");

 public:
  explicit ExternalSorter(ExternalSorterOptions options = {},
                          IoStats* stats = nullptr, Less less = Less())
      : options_(options), stats_(stats), less_(less) {
    size_t budget_records =
        std::max<size_t>(1, options_.memory_budget_bytes / sizeof(Record));
    if (options_.pool != nullptr) {
      // The live buffer and up to max_inflight_spills frozen buffers share
      // the budget.
      budget_records = std::max<size_t>(
          1, budget_records / (1 + std::max<size_t>(1,
                                     options_.max_inflight_spills)));
    }
    max_buffered_ = budget_records;
  }

  /// Adds one record, spilling a sorted run if the buffer is full.
  Status Add(const Record& r) {
    buffer_.push_back(r);
    if (buffer_.size() >= max_buffered_) return SpillRun();
    return Status::OK();
  }

  /// Finishes input and prepares the merged iterator.
  Status Sort() {
    if (runs_.empty()) {
      // Fully in-memory case: no spill happened.
      std::sort(buffer_.begin(), buffer_.end(), less_);
      mem_pos_ = 0;
      in_memory_ = true;
      if (stats_ != nullptr) ++stats_->sort_in_memory_sorts;
      return Status::OK();
    }
    ST_RETURN_IF_ERROR(DrainSpills());
    in_memory_ = false;
    if (stats_ != nullptr) {
      stats_->sort_runs_spilled += spilled_runs_;
      stats_->sort_tail_records += buffer_.size();
    }
    // Intermediate merge passes until the final fan-in is acceptable. The
    // in-memory tail costs no file handle, so only disk runs count.
    const size_t fanin = std::max<size_t>(2, options_.max_merge_fanin);
    while (runs_.size() > fanin) {
      if (stats_ != nullptr) ++stats_->sort_merge_passes;
      std::vector<std::string> next;
      for (size_t begin = 0; begin < runs_.size(); begin += fanin) {
        const size_t end = std::min(runs_.size(), begin + fanin);
        if (end - begin == 1) {
          next.push_back(runs_[begin]);
          continue;
        }
        const std::string merged = scratch_.FilePath(
            "merge." + std::to_string(merge_counter_++));
        ST_RETURN_IF_ERROR(MergeRuns(
            std::vector<std::string>(runs_.begin() + begin,
                                     runs_.begin() + end),
            merged));
        next.push_back(merged);
      }
      runs_ = std::move(next);
    }
    // The final merge streams from the run files plus the sorted tail that
    // never left memory (the degenerate all-in-one-run case opens a single
    // reader and rewrites nothing).
    std::sort(buffer_.begin(), buffer_.end(), less_);
    readers_.resize(runs_.size());
    std::vector<MergeSource> sources;
    sources.reserve(runs_.size() + 1);
    for (size_t i = 0; i < runs_.size(); ++i) {
      readers_[i] = std::make_unique<RecordReader<Record>>();
      ST_RETURN_IF_ERROR(
          readers_[i]->Open(runs_[i], stats_, options_.page_size, 1,
                            options_.fail_after_physical_ops));
      sources.push_back(MergeSource::FromReader(readers_[i].get(),
                                                &status_));
    }
    if (!buffer_.empty()) {
      sources.push_back(MergeSource::FromMemory(
          buffer_.data(), buffer_.data() + buffer_.size()));
    }
    tree_ = std::make_unique<Tree>(std::move(sources), less_);
    return Status::OK();
  }

  /// Produces the next record in sorted order; false at end.
  bool Next(Record* out) {
    if (in_memory_) {
      if (mem_pos_ >= buffer_.size()) return false;
      *out = buffer_[mem_pos_++];
      return true;
    }
    if (tree_ == nullptr) return false;
    return tree_->Next(out);
  }

  /// Number of runs spilled to disk (0 means the sort was in-memory).
  /// Counts initial spills, not intermediate merge outputs.
  size_t run_count() const { return spilled_runs_; }

  const Status& status() const { return status_; }

 private:
  // One merge input: either a run file reader or a span of the in-memory
  // tail. Reader errors surface through the shared error slot (mirroring
  // the old heap-merge behavior where a failed reader looks exhausted and
  // status() reports the cause).
  struct MergeSource {
    RecordReader<Record>* reader = nullptr;
    const Record* mem_pos = nullptr;
    const Record* mem_end = nullptr;
    Status* error = nullptr;

    static MergeSource FromReader(RecordReader<Record>* r, Status* err) {
      MergeSource s;
      s.reader = r;
      s.error = err;
      return s;
    }
    static MergeSource FromMemory(const Record* begin, const Record* end) {
      MergeSource s;
      s.mem_pos = begin;
      s.mem_end = end;
      return s;
    }

    bool Next(Record* out) {
      if (reader != nullptr) {
        if (reader->Next(out)) return true;
        if (error != nullptr && !reader->status().ok()) {
          *error = reader->status();
        }
        return false;
      }
      if (mem_pos == mem_end) return false;
      *out = *mem_pos++;
      return true;
    }
  };
  using Tree = LoserTree<Record, MergeSource, Less>;

  // An asynchronously generated run (pool mode).
  struct SpillTask {
    std::vector<Record> records;
    std::string path;
    Status status;
    IoStats io;
    std::future<void> future;
  };

  Status WriteRun(const std::vector<Record>& records,
                  const std::string& path, IoStats* stats) {
    RecordWriter<Record> writer;
    ST_RETURN_IF_ERROR(writer.Open(path, stats, options_.page_size, 1,
                                   options_.fail_after_physical_ops));
    for (const Record& r : records) ST_RETURN_IF_ERROR(writer.Append(r));
    return writer.Finish();
  }

  // Merges `inputs` (each individually sorted) into one sorted run file.
  Status MergeRuns(const std::vector<std::string>& inputs,
                   const std::string& out_path) {
    std::vector<std::unique_ptr<RecordReader<Record>>> readers(
        inputs.size());
    Status read_error;
    std::vector<MergeSource> sources;
    sources.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      readers[i] = std::make_unique<RecordReader<Record>>();
      ST_RETURN_IF_ERROR(
          readers[i]->Open(inputs[i], stats_, options_.page_size, 1,
                           options_.fail_after_physical_ops));
      sources.push_back(MergeSource::FromReader(readers[i].get(),
                                                &read_error));
    }
    Tree tree(std::move(sources), less_);
    RecordWriter<Record> writer;
    ST_RETURN_IF_ERROR(writer.Open(out_path, stats_, options_.page_size));
    Record r;
    while (tree.Next(&r)) {
      ST_RETURN_IF_ERROR(writer.Append(r));
    }
    ST_RETURN_IF_ERROR(read_error);
    ST_RETURN_IF_ERROR(writer.Finish());
    // Free the consumed run files promptly.
    for (const std::string& path : inputs) {
      std::remove(path.c_str());
    }
    return Status::OK();
  }

  Status SpillRun() {
    const std::string path =
        scratch_.FilePath("run." + std::to_string(runs_.size()));
    runs_.push_back(path);
    ++spilled_runs_;
    if (options_.pool == nullptr) {
      std::sort(buffer_.begin(), buffer_.end(), less_);
      ST_RETURN_IF_ERROR(WriteRun(buffer_, path, stats_));
      buffer_.clear();
      return Status::OK();
    }
    // Freeze the buffer and hand it to the pool; cap in-flight tasks so
    // memory stays within (1 + max_inflight_spills) buffers.
    while (inflight_.size() >= std::max<size_t>(
               1, options_.max_inflight_spills)) {
      const size_t oldest = inflight_.front();
      inflight_.pop_front();
      options_.pool->Wait(spills_[oldest]->future);
      ST_RETURN_IF_ERROR(spills_[oldest]->status);
    }
    auto task = std::make_unique<SpillTask>();
    task->records = std::move(buffer_);
    buffer_ = std::vector<Record>();
    buffer_.reserve(max_buffered_);
    task->path = path;
    SpillTask* t = task.get();
    inflight_.push_back(spills_.size());
    spills_.push_back(std::move(task));
    t->future = options_.pool->Submit([this, t] {
      try {
        std::sort(t->records.begin(), t->records.end(), less_);
        t->status = WriteRun(t->records, t->path, &t->io);
      } catch (const std::exception& e) {
        t->status = Status::Internal(std::string("spill task threw: ") +
                                     e.what());
      }
      t->records = std::vector<Record>();  // Release promptly.
    });
    return Status::OK();
  }

  // Joins outstanding spill tasks and folds their I/O accounting into
  // stats_ in run order (deterministic regardless of completion order).
  Status DrainSpills() {
    if (options_.pool == nullptr) return Status::OK();
    while (!inflight_.empty()) {
      const size_t idx = inflight_.front();
      inflight_.pop_front();
      options_.pool->Wait(spills_[idx]->future);
    }
    Status first_error;
    for (const auto& spill : spills_) {
      if (stats_ != nullptr) *stats_ += spill->io;
      if (first_error.ok() && !spill->status.ok()) {
        first_error = spill->status;
      }
    }
    spills_.clear();
    return first_error;
  }

  ExternalSorterOptions options_;
  IoStats* stats_;
  Less less_;
  TempDir scratch_{"st_sort"};
  std::vector<Record> buffer_;
  size_t max_buffered_;
  std::vector<std::string> runs_;
  size_t spilled_runs_ = 0;
  size_t merge_counter_ = 0;
  std::vector<std::unique_ptr<SpillTask>> spills_;
  std::deque<size_t> inflight_;
  std::vector<std::unique_ptr<RecordReader<Record>>> readers_;
  std::unique_ptr<Tree> tree_;
  bool in_memory_ = true;
  size_t mem_pos_ = 0;
  Status status_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_EXTERNAL_SORTER_H_
