#include "storage/io_stats.h"

#include "util/strings.h"

namespace stabletext {

IoStats& IoStats::operator+=(const IoStats& other) {
  page_reads += other.page_reads;
  page_writes += other.page_writes;
  logical_reads += other.logical_reads;
  random_seeks += other.random_seeks;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  fsyncs += other.fsyncs;
  sort_runs_spilled += other.sort_runs_spilled;
  sort_merge_passes += other.sort_merge_passes;
  sort_in_memory_sorts += other.sort_in_memory_sorts;
  sort_tail_records += other.sort_tail_records;
  return *this;
}

IoStats operator-(IoStats a, const IoStats& b) {
  a.page_reads -= b.page_reads;
  a.page_writes -= b.page_writes;
  a.logical_reads -= b.logical_reads;
  a.random_seeks -= b.random_seeks;
  a.bytes_read -= b.bytes_read;
  a.bytes_written -= b.bytes_written;
  a.fsyncs -= b.fsyncs;
  a.sort_runs_spilled -= b.sort_runs_spilled;
  a.sort_merge_passes -= b.sort_merge_passes;
  a.sort_in_memory_sorts -= b.sort_in_memory_sorts;
  a.sort_tail_records -= b.sort_tail_records;
  return a;
}

std::string IoStats::ToString() const {
  return StringPrintf(
      "reads=%llu writes=%llu cached=%llu seeks=%llu read=%s written=%s "
      "fsyncs=%llu sort[runs=%llu passes=%llu memsorts=%llu tail=%llu]",
      static_cast<unsigned long long>(page_reads),
      static_cast<unsigned long long>(page_writes),
      static_cast<unsigned long long>(logical_reads),
      static_cast<unsigned long long>(random_seeks),
      HumanBytes(bytes_read).c_str(), HumanBytes(bytes_written).c_str(),
      static_cast<unsigned long long>(fsyncs),
      static_cast<unsigned long long>(sort_runs_spilled),
      static_cast<unsigned long long>(sort_merge_passes),
      static_cast<unsigned long long>(sort_in_memory_sorts),
      static_cast<unsigned long long>(sort_tail_records));
}

}  // namespace stabletext
