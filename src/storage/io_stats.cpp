#include "storage/io_stats.h"

#include "util/strings.h"

namespace stabletext {

IoStats& IoStats::operator+=(const IoStats& other) {
  page_reads += other.page_reads;
  page_writes += other.page_writes;
  logical_reads += other.logical_reads;
  random_seeks += other.random_seeks;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  sort_runs_spilled += other.sort_runs_spilled;
  sort_merge_passes += other.sort_merge_passes;
  sort_in_memory_sorts += other.sort_in_memory_sorts;
  sort_tail_records += other.sort_tail_records;
  return *this;
}

std::string IoStats::ToString() const {
  return StringPrintf(
      "reads=%llu writes=%llu cached=%llu seeks=%llu read=%s written=%s "
      "sort[runs=%llu passes=%llu memsorts=%llu tail=%llu]",
      static_cast<unsigned long long>(page_reads),
      static_cast<unsigned long long>(page_writes),
      static_cast<unsigned long long>(logical_reads),
      static_cast<unsigned long long>(random_seeks),
      HumanBytes(bytes_read).c_str(), HumanBytes(bytes_written).c_str(),
      static_cast<unsigned long long>(sort_runs_spilled),
      static_cast<unsigned long long>(sort_merge_passes),
      static_cast<unsigned long long>(sort_in_memory_sorts),
      static_cast<unsigned long long>(sort_tail_records));
}

}  // namespace stabletext
