// Loser-tree k-way merge (Knuth TAOCP Vol. 3, replacement selection). The
// tree keeps the loser of each internal match and replays only the root
// path when the winner's source advances: ceil(log2 k) comparisons per
// record versus ~2 log2 k for a binary heap, and no per-record heap-node
// shuffling. Used by ExternalSorter to merge spilled runs (plus the final
// in-memory tail) in one pass.

#ifndef STABLETEXT_STORAGE_LOSER_TREE_H_
#define STABLETEXT_STORAGE_LOSER_TREE_H_

#include <cstddef>
#include <vector>

namespace stabletext {

/// \brief Merges k sorted sources into one sorted stream.
///
/// `Source` must provide `bool Next(Record* out)` yielding its records in
/// `Less` order; false means exhausted. Ties between sources break toward
/// the lower source index, making the merged order deterministic.
template <typename Record, typename Source, typename Less>
class LoserTree {
 public:
  /// Takes ownership of `sources` and plays the initial tournament.
  LoserTree(std::vector<Source> sources, Less less)
      : sources_(std::move(sources)),
        less_(less),
        k_(sources_.size()),
        current_(k_),
        exhausted_(k_, false),
        tree_(k_ > 0 ? k_ : 1, 0) {
    for (size_t i = 0; i < k_; ++i) {
      exhausted_[i] = !sources_[i].Next(&current_[i]);
    }
    if (k_ > 0) tree_[0] = Play(1);
  }

  /// Produces the next record of the merged stream; false at end.
  bool Next(Record* out) {
    if (k_ == 0) return false;
    const size_t w = tree_[0];
    if (exhausted_[w]) return false;
    *out = current_[w];
    if (!sources_[w].Next(&current_[w])) exhausted_[w] = true;
    // Replay the path from w's leaf to the root.
    size_t winner = w;
    for (size_t node = (k_ + w) / 2; node >= 1; node /= 2) {
      if (Beats(tree_[node], winner)) {
        std::swap(tree_[node], winner);
      }
    }
    tree_[0] = winner;
    return true;
  }

  /// Source that produced the last record (for error reporting).
  size_t last_winner() const { return tree_[0]; }

  Source& source(size_t i) { return sources_[i]; }

 private:
  // True if source a's head record wins against source b's.
  bool Beats(size_t a, size_t b) const {
    if (exhausted_[a]) return false;
    if (exhausted_[b]) return true;
    if (less_(current_[a], current_[b])) return true;
    if (less_(current_[b], current_[a])) return false;
    return a < b;
  }

  // Recursively plays the bracket under `node`, storing losers in tree_
  // and returning the winner. Leaves are nodes [k, 2k) mapping to sources.
  size_t Play(size_t node) {
    if (node >= k_) return node - k_;
    const size_t left = Play(2 * node);
    const size_t right = Play(2 * node + 1);
    if (Beats(left, right)) {
      tree_[node] = right;
      return left;
    }
    tree_[node] = left;
    return right;
  }

  std::vector<Source> sources_;
  Less less_;
  size_t k_;
  std::vector<Record> current_;
  std::vector<char> exhausted_;
  // tree_[0] is the overall winner; tree_[1..k) hold match losers.
  std::vector<size_t> tree_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_LOSER_TREE_H_
