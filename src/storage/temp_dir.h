// RAII scratch directory for spill files, sort runs and test fixtures.

#ifndef STABLETEXT_STORAGE_TEMP_DIR_H_
#define STABLETEXT_STORAGE_TEMP_DIR_H_

#include <string>

#include "util/status.h"

namespace stabletext {

/// \brief Creates a unique directory under the system temp path and removes
/// it (recursively) on destruction.
class TempDir {
 public:
  /// \param tag human-readable component embedded in the directory name.
  explicit TempDir(const std::string& tag = "stabletext");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path of the directory (no trailing separator).
  const std::string& path() const { return path_; }

  /// Returns path()/name.
  std::string FilePath(const std::string& name) const;

  /// Removes the directory tree now, reporting failure instead of hiding
  /// it. Idempotent; the destructor becomes a no-op afterwards. Callers
  /// that care whether scratch space was actually reclaimed (tests, the
  /// CLI) should use this; the destructor can only warn on stderr.
  Status Cleanup();

 private:
  std::string path_;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_TEMP_DIR_H_
