// RecordWriter/RecordReader are header-only templates (record_file.h).
// This translation unit exists to anchor the component in the build and to
// hold explicit instantiations for the record types used across module
// boundaries, which keeps those symbols out of every including TU.

#include "storage/record_file.h"

namespace stabletext {

// Pair records emitted by the co-occurrence pipeline (see cooccur/).
struct PairRecordAnchor {
  uint32_t u;
  uint32_t v;
};

template class RecordWriter<PairRecordAnchor>;
template class RecordReader<PairRecordAnchor>;

}  // namespace stabletext
