#include "storage/paged_file.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

namespace stabletext {

// A destructor has nowhere to report a failed flush/close; owners that
// care about the error call Close() themselves first.
PagedFile::~PagedFile() { Close().IgnoreError(); }

Status PagedFile::Open(const std::string& path,
                       const PagedFileOptions& options, IoStats* stats) {
  if (file_ != nullptr) return Status::InvalidArgument("already open");
  if (options.page_size == 0) {
    return Status::InvalidArgument("page_size must be positive");
  }
  options_ = options;
  stats_ = stats;
  path_ = path;

  const char* mode = options.truncate ? "w+b" : "r+b";
  file_ = std::fopen(path.c_str(), mode);
  if (file_ == nullptr && !options.truncate) {
    file_ = std::fopen(path.c_str(), "w+b");  // Create if missing.
  }
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat " + path);
  }
  if (size % options_.page_size != 0) {
    return Status::Corruption(path + " is not page-aligned");
  }
  page_count_ = size / options_.page_size;
  last_physical_page_ = UINT64_MAX;
  return Status::OK();
}

Status PagedFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = Flush();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  cache_.clear();
  lru_.clear();
  if (s.ok() && rc != 0) {
    return Status::IOError("close failed for " + path_);
  }
  return s;
}

void PagedFile::NoteAccess(uint64_t page_no) {
  if (stats_ == nullptr) return;
  if (last_physical_page_ != UINT64_MAX && page_no != last_physical_page_ &&
      page_no != last_physical_page_ + 1) {
    ++stats_->random_seeks;
  }
  last_physical_page_ = page_no;
}

Status PagedFile::PhysicalRead(uint64_t page_no, uint8_t* out) {
  if (options_.fail_after_physical_ops != 0 &&
      ++physical_ops_ > options_.fail_after_physical_ops) {
    return Status::IOError("injected fault in " + path_);
  }
  NoteAccess(page_no);
  if (std::fseek(file_,
                 static_cast<long>(page_no * options_.page_size),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  if (std::fread(out, 1, options_.page_size, file_) != options_.page_size) {
    return Status::IOError("short read in " + path_);
  }
  if (stats_ != nullptr) {
    ++stats_->page_reads;
    stats_->bytes_read += options_.page_size;
  }
  return Status::OK();
}

Status PagedFile::PhysicalWrite(uint64_t page_no, const uint8_t* data) {
  if (options_.fail_after_physical_ops != 0 &&
      ++physical_ops_ > options_.fail_after_physical_ops) {
    return Status::IOError("injected fault in " + path_);
  }
  NoteAccess(page_no);
  if (std::fseek(file_,
                 static_cast<long>(page_no * options_.page_size),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  if (std::fwrite(data, 1, options_.page_size, file_) !=
      options_.page_size) {
    return Status::IOError("short write in " + path_);
  }
  if (stats_ != nullptr) {
    ++stats_->page_writes;
    stats_->bytes_written += options_.page_size;
  }
  return Status::OK();
}

void PagedFile::Touch(uint64_t page_no) {
  auto it = cache_.find(page_no);
  lru_.erase(it->second.second);
  lru_.push_front(page_no);
  it->second.second = lru_.begin();
}

Status PagedFile::EvictIfFull() {
  while (cache_.size() >= options_.cache_pages && !lru_.empty()) {
    uint64_t victim = lru_.back();
    auto it = cache_.find(victim);
    if (it->second.first.dirty) {
      ST_RETURN_IF_ERROR(
          PhysicalWrite(victim, it->second.first.data.data()));
    }
    lru_.pop_back();
    cache_.erase(it);
  }
  return Status::OK();
}

Status PagedFile::ReadPage(uint64_t page_no, std::vector<uint8_t>* out) {
  if (file_ == nullptr) return Status::InvalidArgument("file not open");
  if (page_no >= page_count_) {
    return Status::InvalidArgument("read past end: page " +
                                   std::to_string(page_no));
  }
  out->resize(options_.page_size);
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    std::memcpy(out->data(), it->second.first.data.data(),
                options_.page_size);
    if (stats_ != nullptr) ++stats_->logical_reads;
    Touch(page_no);
    return Status::OK();
  }
  ST_RETURN_IF_ERROR(PhysicalRead(page_no, out->data()));
  if (options_.cache_pages > 0) {
    ST_RETURN_IF_ERROR(EvictIfFull());
    Frame frame;
    frame.data = *out;
    lru_.push_front(page_no);
    cache_.emplace(page_no, std::make_pair(std::move(frame), lru_.begin()));
  }
  return Status::OK();
}

Status PagedFile::WritePage(uint64_t page_no, const uint8_t* data) {
  if (file_ == nullptr) return Status::InvalidArgument("file not open");
  if (page_no > page_count_) {
    return Status::InvalidArgument("write past end: page " +
                                   std::to_string(page_no));
  }
  if (page_no == page_count_) ++page_count_;
  auto it = cache_.find(page_no);
  if (it != cache_.end()) {
    std::memcpy(it->second.first.data.data(), data, options_.page_size);
    it->second.first.dirty = true;
    Touch(page_no);
    return Status::OK();
  }
  if (options_.cache_pages > 0) {
    ST_RETURN_IF_ERROR(EvictIfFull());
    Frame frame;
    frame.data.assign(data, data + options_.page_size);
    frame.dirty = true;
    lru_.push_front(page_no);
    cache_.emplace(page_no, std::make_pair(std::move(frame), lru_.begin()));
    return Status::OK();
  }
  return PhysicalWrite(page_no, data);
}

Status PagedFile::Flush() {
  if (file_ == nullptr) return Status::OK();
  // Write back in page order to keep the write pattern sequential.
  std::vector<uint64_t> dirty;
  for (auto& [page_no, entry] : cache_) {
    if (entry.first.dirty) dirty.push_back(page_no);
  }
  std::sort(dirty.begin(), dirty.end());
  for (uint64_t page_no : dirty) {
    auto& entry = cache_[page_no];
    ST_RETURN_IF_ERROR(PhysicalWrite(page_no, entry.first.data.data()));
    entry.first.dirty = false;
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed for " + path_);
  }
  return Status::OK();
}

Status PagedFile::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("file not open");
  ST_RETURN_IF_ERROR(Flush());
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed for " + path_);
  }
  if (stats_ != nullptr) ++stats_->fsyncs;
  return Status::OK();
}

Status PagedFile::DropCache() {
  ST_RETURN_IF_ERROR(Flush());
  cache_.clear();
  lru_.clear();
  last_physical_page_ = UINT64_MAX;
  return Status::OK();
}

}  // namespace stabletext
