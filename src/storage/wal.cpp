#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace stabletext {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'W', 'A', 'L', '1', '\n', '\0'};
constexpr size_t kMagicSize = sizeof(kMagic);
// Appends are charged one physical op per chunk of this size, so a fault
// budget can expire in the middle of a large record (a torn write).
constexpr size_t kWriteChunk = 4096;

std::string Errno(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

}  // namespace

// A destructor has nowhere to report a failed close; owners that care
// about the error call Close() themselves first.
WalWriter::~WalWriter() { Close().IgnoreError(); }

Status WalWriter::Create(const std::string& path, FaultInjector* faults,
                         IoStats* stats) {
  if (fd_ >= 0) return Status::InvalidArgument("wal already open");
  faults_ = faults;
  stats_ = stats;
  path_ = path;
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) return Status::IOError(Errno("cannot create wal " + path));
  ST_RETURN_IF_ERROR(WriteAll(kMagic, kMagicSize, "wal header write"));
  return Sync();
}

Status WalWriter::OpenForAppend(const std::string& path,
                                FaultInjector* faults, IoStats* stats) {
  if (fd_ >= 0) return Status::InvalidArgument("wal already open");
  faults_ = faults;
  stats_ = stats;
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Status::IOError(Errno("cannot open wal " + path));
  return Status::OK();
}

Status WalWriter::WriteAll(const void* data, size_t size,
                           const char* what) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const size_t chunk = remaining < kWriteChunk ? remaining : kWriteChunk;
    if (faults_ != nullptr) ST_RETURN_IF_ERROR(faults_->Charge(what));
    ssize_t n = ::write(fd_, p, chunk);
    if (n < 0 || static_cast<size_t>(n) != chunk) {
      return Status::IOError(Errno(std::string("short write in ") + path_));
    }
    p += chunk;
    remaining -= chunk;
    if (stats_ != nullptr) stats_->bytes_written += chunk;
  }
  return Status::OK();
}

Status WalWriter::Append(const void* payload, size_t size) {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (size > UINT32_MAX) {
    return Status::InvalidArgument("wal record too large");
  }
  uint8_t header[8];
  const uint32_t len = static_cast<uint32_t>(size);
  const uint32_t crc = Crc32(payload, size);
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  // Header first, payload second: a crash between the two leaves a
  // length that runs past EOF, which the scan detects as a torn tail.
  ST_RETURN_IF_ERROR(WriteAll(header, sizeof(header), "wal record header"));
  ST_RETURN_IF_ERROR(WriteAll(payload, size, "wal record payload"));
  bytes_appended_.fetch_add(sizeof(header) + size,
                            std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (faults_ != nullptr) ST_RETURN_IF_ERROR(faults_->Charge("wal fsync"));
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync failed for " + path_));
  }
  if (stats_ != nullptr) ++stats_->fsyncs;
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IOError(Errno("close failed for " + path_));
  }
  return Status::OK();
}

Status WalScanAndTruncate(const std::string& path,
                          std::vector<std::string>* records,
                          IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("wal not found: " + path);
  }
  std::string data;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      data.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    if (n < 0) return Status::IOError(Errno("cannot read wal " + path));
  }
  if (stats != nullptr) stats->bytes_read += data.size();

  auto truncate_to = [&](size_t offset) -> Status {
    if (offset == data.size()) return Status::OK();  // Nothing to drop.
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return Status::IOError(Errno("cannot truncate wal " + path));
    }
    return Status::OK();
  };

  if (data.size() < kMagicSize) {
    // Header itself was torn (crash during Create): treat as absent.
    ST_RETURN_IF_ERROR(truncate_to(0));
    return Status::NotFound("wal header torn: " + path);
  }
  if (std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("wal has bad magic: " + path);
  }

  size_t offset = kMagicSize;
  while (offset < data.size()) {
    if (offset + 8 > data.size()) break;  // Torn record header.
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, data.data() + offset, 4);
    std::memcpy(&crc, data.data() + offset + 4, 4);
    if (offset + 8 + len > data.size()) break;  // Torn payload.
    const char* payload = data.data() + offset + 8;
    if (Crc32(payload, len) != crc) break;  // Corrupt record.
    records->emplace_back(payload, len);
    offset += 8 + len;
  }
  return truncate_to(offset);
}

}  // namespace stabletext
