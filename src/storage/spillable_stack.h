// SpillableStack: the edge stack of Algorithm 1. Section 3 of the paper:
// "Since the data structure in memory is a stack with well defined access
// patterns, it can be efficiently paged to secondary storage if its size
// exceeds available resources."
//
// The stack keeps a hot window of entries in memory; when the window
// overflows, the coldest (bottom-most) block is spilled to a paged file and
// read back only when the stack shrinks into it.

#ifndef STABLETEXT_STORAGE_SPILLABLE_STACK_H_
#define STABLETEXT_STORAGE_SPILLABLE_STACK_H_

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/paged_file.h"
#include "storage/temp_dir.h"
#include "util/status.h"

namespace stabletext {

/// Options for SpillableStack.
struct SpillableStackOptions {
  /// Maximum in-memory entries before spilling. Must be at least
  /// 2 * block_entries.
  size_t memory_entries = 1 << 16;
  /// Entries moved to/from disk per spill/unspill operation.
  size_t block_entries = 1 << 12;
  size_t page_size = 4096;
  /// Fault injection for tests; see PagedFileOptions.
  uint64_t fail_after_physical_ops = 0;
};

/// \brief LIFO stack of trivially-copyable entries that pages its cold end
/// to secondary storage.
template <typename T>
class SpillableStack {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpillableStack requires trivially copyable entries");

 public:
  explicit SpillableStack(SpillableStackOptions options = {},
                          IoStats* stats = nullptr)
      : options_(options), stats_(stats) {
    assert(options_.memory_entries >= 2 * options_.block_entries);
    per_page_ = options_.page_size / sizeof(T);
    assert(per_page_ > 0);
  }

  /// Pushes an entry, spilling the cold end if the hot window is full.
  Status Push(const T& value) {
    hot_.push_back(value);
    ++size_;
    if (hot_.size() > options_.memory_entries) ST_RETURN_IF_ERROR(Spill());
    return Status::OK();
  }

  /// Pops into *out. Popping an empty stack is an error.
  Status Pop(T* out) {
    if (size_ == 0) return Status::InvalidArgument("pop from empty stack");
    if (hot_.empty()) ST_RETURN_IF_ERROR(Unspill());
    *out = hot_.back();
    hot_.pop_back();
    --size_;
    return Status::OK();
  }

  /// Reads the top entry without popping.
  Status Top(T* out) {
    if (size_ == 0) return Status::InvalidArgument("top of empty stack");
    if (hot_.empty()) ST_RETURN_IF_ERROR(Unspill());
    *out = hot_.back();
    return Status::OK();
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  /// Entries currently resident in memory (for memory experiments).
  size_t hot_entries() const { return hot_.size(); }
  /// Entries currently spilled to disk.
  size_t cold_entries() const { return cold_count_; }

 private:
  Status EnsureFile() {
    if (file_.is_open()) return Status::OK();
    PagedFileOptions opt;
    opt.page_size = options_.page_size;
    opt.cache_pages = 0;  // Spill traffic is always physical.
    opt.truncate = true;
    opt.fail_after_physical_ops = options_.fail_after_physical_ops;
    return file_.Open(scratch_.FilePath("stack.spill"), opt, stats_);
  }

  // Moves the bottom block_entries of the hot window to disk.
  Status Spill() {
    ST_RETURN_IF_ERROR(EnsureFile());
    const size_t n = options_.block_entries;
    std::vector<uint8_t> page(options_.page_size, 0);
    size_t in_page = 0;
    uint64_t page_no = cold_pages_;
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(page.data() + in_page * sizeof(T), &hot_[i], sizeof(T));
      if (++in_page == per_page_ || i + 1 == n) {
        ST_RETURN_IF_ERROR(WritePageAt(page_no, page.data()));
        ++page_no;
        in_page = 0;
        std::fill(page.begin(), page.end(), 0);
      }
    }
    hot_.erase(hot_.begin(), hot_.begin() + static_cast<long>(n));
    cold_count_ += n;
    cold_pages_ = page_no;
    return Status::OK();
  }

  // Reads the most recently spilled block back into memory.
  Status Unspill() {
    assert(cold_count_ > 0);
    const size_t n = std::min(options_.block_entries, cold_count_);
    const size_t pages = (n + per_page_ - 1) / per_page_;
    const uint64_t first_page = cold_pages_ - pages;
    std::vector<T> block(n);
    std::vector<uint8_t> page;
    for (size_t p = 0; p < pages; ++p) {
      ST_RETURN_IF_ERROR(file_.ReadPage(first_page + p, &page));
      const size_t base = p * per_page_;
      const size_t take = std::min(per_page_, n - base);
      std::memcpy(block.data() + base, page.data(), take * sizeof(T));
    }
    hot_.insert(hot_.begin(), block.begin(), block.end());
    cold_count_ -= n;
    cold_pages_ = first_page;
    return Status::OK();
  }

  Status WritePageAt(uint64_t page_no, const uint8_t* data) {
    return file_.WritePage(page_no, data);
  }

  SpillableStackOptions options_;
  IoStats* stats_;
  TempDir scratch_{"st_stack"};
  PagedFile file_;
  std::deque<T> hot_;
  size_t per_page_ = 0;
  size_t size_ = 0;
  size_t cold_count_ = 0;
  uint64_t cold_pages_ = 0;  // Number of pages currently holding cold data.
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_SPILLABLE_STACK_H_
