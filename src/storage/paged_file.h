// PagedFile: the simulated-disk primitive. A real file accessed in fixed-size
// pages through an LRU buffer pool of configurable capacity. Capacity 0
// reproduces the paper's experimental environment ("the page cache was
// disabled during the experiments"): every logical access becomes a physical
// one and is charged to IoStats.

#ifndef STABLETEXT_STORAGE_PAGED_FILE_H_
#define STABLETEXT_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace stabletext {

/// Options controlling a PagedFile.
struct PagedFileOptions {
  size_t page_size = 4096;     ///< Bytes per page.
  size_t cache_pages = 0;      ///< LRU buffer-pool capacity; 0 disables it.
  bool truncate = false;       ///< Start from an empty file.
  /// Fault injection (tests): after this many physical operations, every
  /// further physical read/write fails with IOError. 0 disables.
  uint64_t fail_after_physical_ops = 0;
};

/// \brief Page-granular file with an LRU buffer pool and I/O accounting.
///
/// All reads/writes are whole pages. Dirty pages are written back on
/// eviction and on Flush()/close. Sequentiality is tracked so IoStats can
/// distinguish sequential scans from random probes: an access to page p is a
/// random seek unless the previous physical access was to page p-1 or p.
class PagedFile {
 public:
  PagedFile() = default;
  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Opens (creating if necessary) the file at `path`.
  /// `stats` may be null; if provided it must outlive the PagedFile.
  Status Open(const std::string& path, const PagedFileOptions& options,
              IoStats* stats);

  /// Writes back dirty pages and closes, surfacing flush *and* fclose
  /// failures as Status (a close that loses buffered bytes is an
  /// IOError, not a silent success). Idempotent.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  size_t page_size() const { return options_.page_size; }

  /// Number of pages currently in the file (including cached appends).
  uint64_t PageCount() const { return page_count_; }

  /// Reads page `page_no` into `out` (resized to page_size). Reading a page
  /// at or beyond PageCount() is an error.
  Status ReadPage(uint64_t page_no, std::vector<uint8_t>* out);

  /// Writes a full page. `data` must be exactly page_size bytes. Writing at
  /// PageCount() appends; writing beyond it is an error.
  Status WritePage(uint64_t page_no, const uint8_t* data);

  /// Writes back all dirty cached pages.
  Status Flush();

  /// Flush + fsync(2): the durability barrier checkpoint writes rely on.
  /// Counts one IoStats::fsyncs when it reaches the disk.
  Status Sync();

  /// Drops all cached pages (after writing back dirty ones). Used by tests
  /// and by benchmarks that want cold-cache measurements.
  Status DropCache();

 private:
  struct Frame {
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  Status PhysicalRead(uint64_t page_no, uint8_t* out);
  Status PhysicalWrite(uint64_t page_no, const uint8_t* data);
  Status EvictIfFull();
  void Touch(uint64_t page_no);
  void NoteAccess(uint64_t page_no);

  std::FILE* file_ = nullptr;
  std::string path_;
  PagedFileOptions options_;
  IoStats* stats_ = nullptr;
  uint64_t page_count_ = 0;
  uint64_t physical_ops_ = 0;
  // LRU: front = most recent. Map values point into lru_.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t,
                     std::pair<Frame, std::list<uint64_t>::iterator>>
      cache_;
  uint64_t last_physical_page_ = UINT64_MAX;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_PAGED_FILE_H_
