#include "storage/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

namespace stabletext {

namespace fs = std::filesystem;

namespace {
std::atomic<uint64_t> g_counter{0};
}

TempDir::TempDir(const std::string& tag) {
  const uint64_t id = g_counter.fetch_add(1);
  fs::path base = fs::temp_directory_path();
  fs::path dir;
  // getpid() keeps parallel ctest processes from colliding.
  for (uint64_t attempt = 0;; ++attempt) {
    dir = base / (tag + "." + std::to_string(::getpid()) + "." +
                  std::to_string(id) + "." + std::to_string(attempt));
    std::error_code ec;
    if (fs::create_directory(dir, ec)) break;
  }
  path_ = dir.string();
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  // A destructor cannot return a Status; at least make the leak visible.
  Status s = Cleanup();
  if (!s.ok()) {
    std::fprintf(stderr, "TempDir: %s\n", s.ToString().c_str());
  }
}

Status TempDir::Cleanup() {
  if (path_.empty()) return Status::OK();
  std::error_code ec;
  fs::remove_all(path_, ec);
  if (ec) {
    return Status::IOError("failed to remove " + path_ + ": " +
                           ec.message());
  }
  path_.clear();
  return Status::OK();
}

std::string TempDir::FilePath(const std::string& name) const {
  return (fs::path(path_) / name).string();
}

}  // namespace stabletext
