// SpillableStack is a header-only template (spillable_stack.h). Anchor the
// component and instantiate it for the edge record used by Algorithm 1.

#include "storage/spillable_stack.h"

namespace stabletext {

namespace {
struct EdgeEntry {
  uint32_t u;
  uint32_t v;
};
}  // namespace

template class SpillableStack<EdgeEntry>;

}  // namespace stabletext
