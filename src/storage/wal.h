// Write-ahead interval log: an append-only file of checksummed,
// length-prefixed records. The engine appends one record per committed
// interval (before publishing the epoch) and fsyncs, so a crash loses at
// most the record being written; WalScanAndTruncate detects a torn or
// corrupt tail on open and truncates it — a half-written record is never
// replayed.
//
// On-disk layout:
//   [8-byte magic "STWAL1\n"]
//   repeated records: [u32 payload_len][u32 crc32(payload)][payload]
//
// All multi-byte fields are host-endian (the log is machine-local state,
// like every other file this storage layer writes).
//
// Threading: single-owner, like the rest of the storage layer. In the
// engine the owner is the durability layer, reached only from
// REQUIRES(writer_role_) methods — the writer-thread affinity is
// machine-checked one level up (core/engine.h), so no locking here.

#ifndef STABLETEXT_STORAGE_WAL_H_
#define STABLETEXT_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace stabletext {

/// \brief Shared physical-operation budget for crash-injection tests.
///
/// Every durability-layer physical operation (log write, checkpoint page
/// write, fsync, rename) charges one op; once the budget is exceeded each
/// further operation fails with IOError — simulating a crash at that
/// exact physical-op boundary. A budget of 0 disables injection.
struct FaultInjector {
  uint64_t fail_after_physical_ops = 0;
  uint64_t ops = 0;

  Status Charge(const char* what) {
    if (fail_after_physical_ops != 0 && ++ops > fail_after_physical_ops) {
      return Status::IOError(std::string("injected fault at ") + what);
    }
    return Status::OK();
  }
};

/// \brief Appends checksummed records to a write-ahead log file.
///
/// Writes go through the OS in bounded chunks (one charged physical op
/// per chunk), so fault injection can kill an append mid-record — the
/// torn tail this leaves behind is exactly what WalScanAndTruncate must
/// cope with.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (truncating) a fresh log at `path`: writes and fsyncs the
  /// magic header. `faults` and `stats` may be null; both must outlive
  /// the writer.
  Status Create(const std::string& path, FaultInjector* faults,
                IoStats* stats);

  /// Opens an existing log (already validated/truncated by
  /// WalScanAndTruncate) and positions at its end for appends.
  Status OpenForAppend(const std::string& path, FaultInjector* faults,
                       IoStats* stats);

  /// Appends one length-prefixed, CRC32-checksummed record.
  Status Append(const void* payload, size_t size);

  /// fsyncs the log file.
  Status Sync();

  /// Closes the file. Idempotent; surfaces the close(2) error.
  Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Total record bytes appended through this writer (headers included).
  uint64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }

 private:
  Status WriteAll(const void* data, size_t size, const char* what);

  int fd_ = -1;
  std::string path_;
  FaultInjector* faults_ = nullptr;
  IoStats* stats_ = nullptr;
  std::atomic<uint64_t> bytes_appended_{0};
};

/// \brief Validates a log and returns its record payloads.
///
/// Reads `path`, verifies the magic header, and appends every complete,
/// checksum-valid record payload to `records` in order. The first torn or
/// corrupt record ends the scan and the file is truncated at its start
/// offset, so a later OpenForAppend continues from the last durable
/// record. A file whose header itself is torn is truncated to empty and
/// reported as kNotFound (callers recreate it); a present-but-garbage
/// header is kCorruption.
Status WalScanAndTruncate(const std::string& path,
                          std::vector<std::string>* records,
                          IoStats* stats);

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_WAL_H_
