// Sequential files of fixed-size trivially-copyable records, layered on
// PagedFile. Used for the keyword-pair file of Section 3 and for sort runs.

#ifndef STABLETEXT_STORAGE_RECORD_FILE_H_
#define STABLETEXT_STORAGE_RECORD_FILE_H_

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/paged_file.h"
#include "util/status.h"

namespace stabletext {

/// \brief Appends fixed-size records sequentially to a paged file.
///
/// Records never straddle pages; any per-page slack is wasted (records are
/// small relative to pages everywhere in this library). The record count is
/// stored in a sidecar header page (page 0).
template <typename Record>
class RecordWriter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "RecordWriter requires trivially copyable records");

 public:
  /// Opens `path` for writing, truncating it. `stats` may be null.
  /// `fail_after_physical_ops` injects I/O faults (tests).
  Status Open(const std::string& path, IoStats* stats,
              size_t page_size = 4096, size_t cache_pages = 1,
              uint64_t fail_after_physical_ops = 0) {
    if (page_size < sizeof(Record) + sizeof(uint64_t)) {
      return Status::InvalidArgument("page too small for record");
    }
    PagedFileOptions opt;
    opt.page_size = page_size;
    opt.cache_pages = cache_pages;
    opt.truncate = true;
    opt.fail_after_physical_ops = fail_after_physical_ops;
    ST_RETURN_IF_ERROR(file_.Open(path, opt, stats));
    per_page_ = page_size / sizeof(Record);
    buffer_.assign(page_size, 0);
    in_page_ = 0;
    count_ = 0;
    // Reserve page 0 for the header.
    ST_RETURN_IF_ERROR(file_.WritePage(0, buffer_.data()));
    next_page_ = 1;
    return Status::OK();
  }

  /// Appends one record.
  Status Append(const Record& r) {
    std::memcpy(buffer_.data() + in_page_ * sizeof(Record), &r,
                sizeof(Record));
    ++in_page_;
    ++count_;
    if (in_page_ == per_page_) return FlushPage();
    return Status::OK();
  }

  /// Finalizes the header and closes the file.
  Status Finish() {
    if (in_page_ > 0) ST_RETURN_IF_ERROR(FlushPage());
    std::vector<uint8_t> header(file_.page_size(), 0);
    std::memcpy(header.data(), &count_, sizeof(count_));
    ST_RETURN_IF_ERROR(file_.WritePage(0, header.data()));
    return file_.Close();
  }

  uint64_t count() const { return count_; }

 private:
  Status FlushPage() {
    ST_RETURN_IF_ERROR(file_.WritePage(next_page_, buffer_.data()));
    ++next_page_;
    in_page_ = 0;
    std::fill(buffer_.begin(), buffer_.end(), 0);
    return Status::OK();
  }

  PagedFile file_;
  std::vector<uint8_t> buffer_;
  size_t per_page_ = 0;
  size_t in_page_ = 0;
  uint64_t next_page_ = 1;
  uint64_t count_ = 0;
};

/// \brief Sequentially reads a file produced by RecordWriter.
template <typename Record>
class RecordReader {
  static_assert(std::is_trivially_copyable_v<Record>,
                "RecordReader requires trivially copyable records");

 public:
  /// Opens `path` for reading. `stats` may be null.
  Status Open(const std::string& path, IoStats* stats,
              size_t page_size = 4096, size_t cache_pages = 1,
              uint64_t fail_after_physical_ops = 0) {
    PagedFileOptions opt;
    opt.page_size = page_size;
    opt.cache_pages = cache_pages;
    opt.fail_after_physical_ops = fail_after_physical_ops;
    ST_RETURN_IF_ERROR(file_.Open(path, opt, stats));
    per_page_ = page_size / sizeof(Record);
    std::vector<uint8_t> header;
    ST_RETURN_IF_ERROR(file_.ReadPage(0, &header));
    std::memcpy(&count_, header.data(), sizeof(count_));
    position_ = 0;
    page_no_ = 0;
    return Status::OK();
  }

  /// Reads the next record into *out. Returns false at end of file.
  /// I/O failures surface through status().
  bool Next(Record* out) {
    if (position_ >= count_) return false;
    const uint64_t page = 1 + position_ / per_page_;
    if (page != page_no_) {
      status_ = file_.ReadPage(page, &page_buf_);
      if (!status_.ok()) return false;
      page_no_ = page;
    }
    const size_t slot = position_ % per_page_;
    std::memcpy(out, page_buf_.data() + slot * sizeof(Record),
                sizeof(Record));
    ++position_;
    return true;
  }

  uint64_t count() const { return count_; }
  const Status& status() const { return status_; }

 private:
  PagedFile file_;
  std::vector<uint8_t> page_buf_;
  Status status_;
  size_t per_page_ = 0;
  uint64_t count_ = 0;
  uint64_t position_ = 0;
  uint64_t page_no_ = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_RECORD_FILE_H_
