// Sequential files of fixed-size trivially-copyable records, layered on
// PagedFile. Used for the keyword-pair file of Section 3 and for sort runs.
//
// Every page — header and data alike — carries a CRC32 trailer in its
// last four bytes, verified on read: bit rot or a torn page surfaces as
// Status::DataLoss instead of silently decoding garbage records.

#ifndef STABLETEXT_STORAGE_RECORD_FILE_H_
#define STABLETEXT_STORAGE_RECORD_FILE_H_

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/paged_file.h"
#include "util/crc32.h"
#include "util/status.h"

namespace stabletext {

namespace record_file_internal {

/// Bytes of each page reserved for the CRC32 trailer.
inline constexpr size_t kChecksumBytes = sizeof(uint32_t);

/// Stamps the CRC32 of page[0, page_size-4) into the trailer.
inline void StampPage(uint8_t* page, size_t page_size) {
  const uint32_t crc = Crc32(page, page_size - kChecksumBytes);
  std::memcpy(page + page_size - kChecksumBytes, &crc, kChecksumBytes);
}

/// Verifies the trailer; DataLoss on mismatch.
inline Status VerifyPage(const uint8_t* page, size_t page_size,
                         const std::string& path, uint64_t page_no) {
  uint32_t stored = 0;
  std::memcpy(&stored, page + page_size - kChecksumBytes, kChecksumBytes);
  if (Crc32(page, page_size - kChecksumBytes) != stored) {
    return Status::DataLoss("page checksum mismatch in " + path +
                            " at page " + std::to_string(page_no));
  }
  return Status::OK();
}

}  // namespace record_file_internal

/// \brief Appends fixed-size records sequentially to a paged file.
///
/// Records never straddle pages; any per-page slack is wasted (records are
/// small relative to pages everywhere in this library). The record count is
/// stored in a sidecar header page (page 0). Each page ends in a CRC32
/// trailer that RecordReader verifies.
template <typename Record>
class RecordWriter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "RecordWriter requires trivially copyable records");

 public:
  /// Opens `path` for writing, truncating it. `stats` may be null.
  /// `fail_after_physical_ops` injects I/O faults (tests).
  Status Open(const std::string& path, IoStats* stats,
              size_t page_size = 4096, size_t cache_pages = 1,
              uint64_t fail_after_physical_ops = 0) {
    if (page_size < sizeof(Record) + sizeof(uint64_t) +
                        record_file_internal::kChecksumBytes) {
      return Status::InvalidArgument("page too small for record");
    }
    PagedFileOptions opt;
    opt.page_size = page_size;
    opt.cache_pages = cache_pages;
    opt.truncate = true;
    opt.fail_after_physical_ops = fail_after_physical_ops;
    ST_RETURN_IF_ERROR(file_.Open(path, opt, stats));
    path_ = path;
    per_page_ =
        (page_size - record_file_internal::kChecksumBytes) / sizeof(Record);
    buffer_.assign(page_size, 0);
    in_page_ = 0;
    count_ = 0;
    // Reserve page 0 for the header (stamped so an unfinished file still
    // reads as a valid, empty one rather than a checksum failure).
    record_file_internal::StampPage(buffer_.data(), page_size);
    ST_RETURN_IF_ERROR(file_.WritePage(0, buffer_.data()));
    std::fill(buffer_.begin(), buffer_.end(), 0);
    next_page_ = 1;
    return Status::OK();
  }

  /// Appends one record.
  Status Append(const Record& r) {
    std::memcpy(buffer_.data() + in_page_ * sizeof(Record), &r,
                sizeof(Record));
    ++in_page_;
    ++count_;
    if (in_page_ == per_page_) return FlushPage();
    return Status::OK();
  }

  /// Finalizes the header and closes the file.
  Status Finish() {
    if (in_page_ > 0) ST_RETURN_IF_ERROR(FlushPage());
    std::vector<uint8_t> header(file_.page_size(), 0);
    std::memcpy(header.data(), &count_, sizeof(count_));
    record_file_internal::StampPage(header.data(), file_.page_size());
    ST_RETURN_IF_ERROR(file_.WritePage(0, header.data()));
    return file_.Close();
  }

  uint64_t count() const { return count_; }

 private:
  Status FlushPage() {
    record_file_internal::StampPage(buffer_.data(), file_.page_size());
    ST_RETURN_IF_ERROR(file_.WritePage(next_page_, buffer_.data()));
    ++next_page_;
    in_page_ = 0;
    std::fill(buffer_.begin(), buffer_.end(), 0);
    return Status::OK();
  }

  PagedFile file_;
  std::string path_;
  std::vector<uint8_t> buffer_;
  size_t per_page_ = 0;
  size_t in_page_ = 0;
  uint64_t next_page_ = 1;
  uint64_t count_ = 0;
};

/// \brief Sequentially reads a file produced by RecordWriter, verifying
/// each page's CRC32 trailer (DataLoss on mismatch).
template <typename Record>
class RecordReader {
  static_assert(std::is_trivially_copyable_v<Record>,
                "RecordReader requires trivially copyable records");

 public:
  /// Opens `path` for reading. `stats` may be null.
  Status Open(const std::string& path, IoStats* stats,
              size_t page_size = 4096, size_t cache_pages = 1,
              uint64_t fail_after_physical_ops = 0) {
    PagedFileOptions opt;
    opt.page_size = page_size;
    opt.cache_pages = cache_pages;
    opt.fail_after_physical_ops = fail_after_physical_ops;
    ST_RETURN_IF_ERROR(file_.Open(path, opt, stats));
    path_ = path;
    per_page_ =
        (page_size - record_file_internal::kChecksumBytes) / sizeof(Record);
    std::vector<uint8_t> header;
    ST_RETURN_IF_ERROR(file_.ReadPage(0, &header));
    ST_RETURN_IF_ERROR(record_file_internal::VerifyPage(
        header.data(), page_size, path_, 0));
    std::memcpy(&count_, header.data(), sizeof(count_));
    position_ = 0;
    page_no_ = 0;
    return Status::OK();
  }

  /// Reads the next record into *out. Returns false at end of file.
  /// I/O failures and checksum mismatches surface through status().
  bool Next(Record* out) {
    if (!status_.ok()) return false;
    if (position_ >= count_) return false;
    const uint64_t page = 1 + position_ / per_page_;
    if (page != page_no_) {
      status_ = file_.ReadPage(page, &page_buf_);
      if (!status_.ok()) return false;
      status_ = record_file_internal::VerifyPage(
          page_buf_.data(), file_.page_size(), path_, page);
      if (!status_.ok()) return false;
      page_no_ = page;
    }
    const size_t slot = position_ % per_page_;
    std::memcpy(out, page_buf_.data() + slot * sizeof(Record),
                sizeof(Record));
    ++position_;
    return true;
  }

  uint64_t count() const { return count_; }
  const Status& status() const { return status_; }

 private:
  PagedFile file_;
  std::string path_;
  std::vector<uint8_t> page_buf_;
  Status status_;
  size_t per_page_ = 0;
  uint64_t count_ = 0;
  uint64_t position_ = 0;
  uint64_t page_no_ = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_STORAGE_RECORD_FILE_H_
