#include "affinity/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace stabletext {

namespace {

// Prefix length under the standard prefix-filtering principle: two sets
// with Jaccard >= theta must share a token among the first
// |c| - ceil(theta * |c|) + 1 tokens in any global token order.
size_t JaccardPrefixLength(size_t size, double theta) {
  const size_t required =
      static_cast<size_t>(std::ceil(theta * static_cast<double>(size)));
  if (required == 0) return size;
  return size - required + 1;
}

}  // namespace

std::vector<AffinityMatch> SimilarityJoin::Join(
    const std::vector<Cluster>& left, const std::vector<Cluster>& right,
    SimilarityJoinStats* stats) const {
  const bool jaccard = options_.measure == AffinityMeasure::kJaccard;
  SimilarityJoinStats local;

  // Inverted index over the right side. For Jaccard only the filtering
  // prefix of each cluster is indexed; any measure with affinity > theta
  // >= 0 requires at least one shared keyword, so the index is a complete
  // candidate generator in all cases.
  std::unordered_map<KeywordId, std::vector<uint32_t>> index;
  for (uint32_t r = 0; r < right.size(); ++r) {
    const auto& kws = right[r].keywords;
    const size_t prefix =
        jaccard ? JaccardPrefixLength(kws.size(), options_.theta)
                : kws.size();
    for (size_t i = 0; i < prefix; ++i) index[kws[i]].push_back(r);
  }

  std::vector<AffinityMatch> out;
  std::unordered_set<uint32_t> seen;
  for (uint32_t lidx = 0; lidx < left.size(); ++lidx) {
    const auto& kws = left[lidx].keywords;
    const size_t prefix =
        jaccard ? JaccardPrefixLength(kws.size(), options_.theta)
                : kws.size();
    seen.clear();
    for (size_t i = 0; i < prefix; ++i) {
      auto it = index.find(kws[i]);
      if (it == index.end()) continue;
      for (uint32_t r : it->second) {
        if (!seen.insert(r).second) continue;
        ++local.candidate_pairs;
        const double affinity =
            ClusterAffinity(left[lidx], right[r], options_.measure);
        if (affinity > options_.theta) {
          out.push_back(AffinityMatch{lidx, r, affinity});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AffinityMatch& a, const AffinityMatch& b) {
              return a.left != b.left ? a.left < b.left
                                      : a.right < b.right;
            });
  local.result_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<AffinityMatch> SimilarityJoin::JoinBruteForce(
    const std::vector<Cluster>& left,
    const std::vector<Cluster>& right) const {
  std::vector<AffinityMatch> out;
  for (uint32_t lidx = 0; lidx < left.size(); ++lidx) {
    for (uint32_t r = 0; r < right.size(); ++r) {
      const double affinity =
          ClusterAffinity(left[lidx], right[r], options_.measure);
      if (affinity > options_.theta) {
        out.push_back(AffinityMatch{lidx, r, affinity});
      }
    }
  }
  return out;
}

}  // namespace stabletext
