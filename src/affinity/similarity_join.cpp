#include "affinity/similarity_join.h"

#include <algorithm>
#include <cmath>

namespace stabletext {

namespace {

// Prefix length under the standard prefix-filtering principle: two sets
// with Jaccard >= theta must share a token among the first
// |c| - ceil(theta * |c|) + 1 tokens in any global token order. Derived
// for >= theta on purpose: the join predicate is strictly > theta, so
// the filter admits a superset (including exact-theta pairs, which the
// verification below then rejects) and can never drop a result pair.
size_t JaccardPrefixLength(size_t size, double theta) {
  const size_t required =
      static_cast<size_t>(std::ceil(theta * static_cast<double>(size)));
  if (required == 0) return size;
  return size - required + 1;
}

}  // namespace

std::vector<AffinityMatch> SimilarityJoin::Join(
    const std::vector<Cluster>& left, const std::vector<Cluster>& right,
    SimilarityJoinStats* stats, JoinScratch* scratch) const {
  const bool jaccard = options_.measure == AffinityMeasure::kJaccard;
  SimilarityJoinStats local;
  JoinScratch local_scratch;
  JoinScratch& s = scratch != nullptr ? *scratch : local_scratch;

  const auto prefix_of = [&](const Cluster& c) {
    return jaccard ? JaccardPrefixLength(c.keywords.size(), options_.theta)
                   : c.keywords.size();
  };

  // Inverted index over the right side. For Jaccard only the filtering
  // prefix of each cluster is indexed; any measure with affinity > theta
  // >= 0 requires at least one shared keyword, so the index is a complete
  // candidate generator in all cases.
  //
  // The index is flat and rebuilt in place: postings grouped by keyword
  // in one contiguous pool, addressed through epoch-stamped counts —
  // clearing between ticks is O(1) and the steady state allocates
  // nothing once the scratch has grown to the stream's high-water mark.
  // Keywords are sorted within a cluster, so a prefix's largest id is
  // its last element; one pass bounds the keyword-id space the stamped
  // arrays must cover (left probes index the same arrays).
  KeywordId max_kw = 0;
  for (const Cluster& c : right) {
    const size_t prefix = prefix_of(c);
    if (prefix > 0) max_kw = std::max(max_kw, c.keywords[prefix - 1]);
  }
  for (const Cluster& c : left) {
    const size_t prefix = prefix_of(c);
    if (prefix > 0) max_kw = std::max(max_kw, c.keywords[prefix - 1]);
  }
  const size_t id_space = static_cast<size_t>(max_kw) + 1;
  s.counts.Clear(id_space);
  if (s.offsets.size() < id_space) {
    s.offsets.resize(id_space);
    s.fill.resize(id_space);
  }
  s.touched.clear();
  for (uint32_t r = 0; r < right.size(); ++r) {
    const auto& kws = right[r].keywords;
    const size_t prefix = prefix_of(right[r]);
    for (size_t i = 0; i < prefix; ++i) {
      const KeywordId kw = kws[i];
      if (!s.counts.IsSet(kw)) s.touched.push_back(kw);
      s.counts.Set(kw, s.counts.Get(kw) + 1);
    }
  }
  uint32_t total = 0;
  for (const KeywordId kw : s.touched) {
    s.offsets[kw] = total;
    s.fill[kw] = total;
    total += s.counts.Get(kw);
  }
  if (s.postings.size() < total) s.postings.resize(total);
  for (uint32_t r = 0; r < right.size(); ++r) {
    const auto& kws = right[r].keywords;
    const size_t prefix = prefix_of(right[r]);
    for (size_t i = 0; i < prefix; ++i) s.postings[s.fill[kws[i]]++] = r;
  }

  std::vector<AffinityMatch> out;
  for (uint32_t lidx = 0; lidx < left.size(); ++lidx) {
    const auto& kws = left[lidx].keywords;
    const size_t prefix = prefix_of(left[lidx]);
    s.seen.Clear(right.size());
    for (size_t i = 0; i < prefix; ++i) {
      const KeywordId kw = kws[i];
      if (!s.counts.IsSet(kw)) continue;
      const uint32_t begin = s.offsets[kw];
      const uint32_t end = begin + s.counts.Get(kw);
      for (uint32_t p = begin; p < end; ++p) {
        const uint32_t r = s.postings[p];
        if (!s.seen.Insert(r)) continue;
        ++local.candidate_pairs;
        const double affinity =
            ClusterAffinity(left[lidx], right[r], options_.measure);
        // Strictly greater than theta — the pinned join predicate; an
        // exact-theta pair passed the prefix filter and dies here.
        if (affinity > options_.theta) {
          out.push_back(AffinityMatch{lidx, r, affinity});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AffinityMatch& a, const AffinityMatch& b) {
              return a.left != b.left ? a.left < b.left
                                      : a.right < b.right;
            });
  local.result_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<AffinityMatch> SimilarityJoin::JoinBruteForce(
    const std::vector<Cluster>& left,
    const std::vector<Cluster>& right) const {
  std::vector<AffinityMatch> out;
  for (uint32_t lidx = 0; lidx < left.size(); ++lidx) {
    for (uint32_t r = 0; r < right.size(); ++r) {
      const double affinity =
          ClusterAffinity(left[lidx], right[r], options_.measure);
      if (affinity > options_.theta) {
        out.push_back(AffinityMatch{lidx, r, affinity});
      }
    }
  }
  return out;
}

}  // namespace stabletext
