#include "affinity/affinity.h"

#include <algorithm>

#include "util/setops.h"

namespace stabletext {

size_t KeywordIntersectionSize(const Cluster& a, const Cluster& b) {
  // Dispatched kernel (util/setops.h): galloping for skewed sizes,
  // SSE/AVX2 block compares otherwise, scalar fallback — all variants
  // return identical counts (setops_test property sweep).
  return setops::IntersectionSize(a.keywords.data(), a.keywords.size(),
                                  b.keywords.data(), b.keywords.size());
}

std::vector<KeywordId> KeywordIntersection(const Cluster& a,
                                           const Cluster& b) {
  std::vector<KeywordId> out(
      std::min(a.keywords.size(), b.keywords.size()) +
      setops::kIntersectIntoPad);
  const size_t n =
      setops::IntersectInto(a.keywords.data(), a.keywords.size(),
                            b.keywords.data(), b.keywords.size(),
                            out.data());
  out.resize(n);
  return out;
}

namespace {

double WeightedJaccard(const Cluster& a, const Cluster& b) {
  // Shared edges (same endpoints) contribute min weight to the
  // numerator; the denominator accumulates max over matched edges plus
  // all unmatched ones — the weighted generalization of Jaccard.
  double num = 0, den = 0;
  auto ea = a.edges.begin();
  auto eb = b.edges.begin();
  auto edge_less = [](const WeightedEdge& x, const WeightedEdge& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  };
  while (ea != a.edges.end() && eb != b.edges.end()) {
    if (edge_less(*ea, *eb)) {
      den += ea->weight;
      ++ea;
    } else if (edge_less(*eb, *ea)) {
      den += eb->weight;
      ++eb;
    } else {
      num += std::min(ea->weight, eb->weight);
      den += std::max(ea->weight, eb->weight);
      ++ea;
      ++eb;
    }
  }
  for (; ea != a.edges.end(); ++ea) den += ea->weight;
  for (; eb != b.edges.end(); ++eb) den += eb->weight;
  return den > 0 ? num / den : 0;
}

}  // namespace

double ClusterAffinity(const Cluster& a, const Cluster& b,
                       AffinityMeasure measure) {
  switch (measure) {
    case AffinityMeasure::kJaccard: {
      const size_t inter = KeywordIntersectionSize(a, b);
      const size_t uni = a.keywords.size() + b.keywords.size() - inter;
      return uni > 0 ? static_cast<double>(inter) /
                           static_cast<double>(uni)
                     : 0;
    }
    case AffinityMeasure::kIntersection:
      return static_cast<double>(KeywordIntersectionSize(a, b));
    case AffinityMeasure::kOverlap: {
      const size_t inter = KeywordIntersectionSize(a, b);
      const size_t denom = std::min(a.keywords.size(), b.keywords.size());
      return denom > 0 ? static_cast<double>(inter) /
                             static_cast<double>(denom)
                       : 0;
    }
    case AffinityMeasure::kWeightedJaccard:
      return WeightedJaccard(a, b);
  }
  return 0;
}

const char* AffinityMeasureName(AffinityMeasure measure) {
  switch (measure) {
    case AffinityMeasure::kJaccard:
      return "jaccard";
    case AffinityMeasure::kIntersection:
      return "intersection";
    case AffinityMeasure::kOverlap:
      return "overlap";
    case AffinityMeasure::kWeightedJaccard:
      return "weighted-jaccard";
  }
  return "unknown";
}

}  // namespace stabletext
