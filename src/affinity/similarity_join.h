// All-pairs cluster similarity join: find every pair of clusters (one from
// each of two interval cluster sets) with affinity above theta. Section 4:
// "the problem is easily reduced to that of computing similarity (affinity)
// between all pairs of strings (clusters) for which the similarity is above
// a threshold. Efficient solutions ... are available and can easily be
// adapted [11]." This is that adaptation: an inverted keyword index with
// prefix filtering for Jaccard (clusters sharing no indexed keyword cannot
// reach the threshold), falling back to a full inverted index for the
// other measures.

#ifndef STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_
#define STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "affinity/affinity.h"

namespace stabletext {

/// One matching pair with its affinity.
struct AffinityMatch {
  uint32_t left;    ///< Index into the left cluster set.
  uint32_t right;   ///< Index into the right cluster set.
  double affinity;  ///< Value of the configured measure (> theta).
};

/// Join statistics (candidate-pruning effectiveness).
struct SimilarityJoinStats {
  uint64_t candidate_pairs = 0;  ///< Pairs whose affinity was evaluated.
  uint64_t result_pairs = 0;     ///< Pairs above theta.
};

/// \brief Threshold similarity join between two cluster sets.
class SimilarityJoin {
 public:
  explicit SimilarityJoin(AffinityOptions options = {})
      : options_(options) {}

  /// Returns all pairs with affinity > theta, sorted by (left, right).
  /// `stats` may be null.
  std::vector<AffinityMatch> Join(const std::vector<Cluster>& left,
                                  const std::vector<Cluster>& right,
                                  SimilarityJoinStats* stats = nullptr)
      const;

  /// Reference implementation: evaluates every pair. O(|L||R|); the test
  /// oracle for Join().
  std::vector<AffinityMatch> JoinBruteForce(
      const std::vector<Cluster>& left,
      const std::vector<Cluster>& right) const;

 private:
  AffinityOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_
