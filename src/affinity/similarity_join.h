// All-pairs cluster similarity join: find every pair of clusters (one from
// each of two interval cluster sets) with affinity above theta. Section 4:
// "the problem is easily reduced to that of computing similarity (affinity)
// between all pairs of strings (clusters) for which the similarity is above
// a threshold. Efficient solutions ... are available and can easily be
// adapted [11]." This is that adaptation: an inverted keyword index with
// prefix filtering for Jaccard (clusters sharing no indexed keyword cannot
// reach the threshold), falling back to a full inverted index for the
// other measures.
//
// Threshold semantics (pinned — kernel rewrites must not shift them):
// the join keeps pairs with affinity STRICTLY GREATER than theta. The
// Jaccard filtering prefix is derived for the weaker predicate
// "affinity >= theta", so the candidate set is a superset of the result
// set; a pair at exactly theta survives the filter and is rejected by
// the verification step. affinity_test's ThetaBoundary case enforces
// this for Join and JoinBruteForce alike.

#ifndef STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_
#define STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "affinity/affinity.h"
#include "util/arena.h"

namespace stabletext {

/// One matching pair with its affinity.
struct AffinityMatch {
  uint32_t left;    ///< Index into the left cluster set.
  uint32_t right;   ///< Index into the right cluster set.
  double affinity;  ///< Value of the configured measure (> theta).
};

/// Join statistics (candidate-pruning effectiveness).
struct SimilarityJoinStats {
  uint64_t candidate_pairs = 0;  ///< Pairs whose affinity was evaluated.
  uint64_t result_pairs = 0;     ///< Pairs above theta.
};

/// \brief Reusable per-tick scratch for SimilarityJoin::Join.
///
/// Holds the flat inverted index (rebuilt in place every call; postings
/// grouped by keyword behind epoch-stamped counts, so resetting costs
/// O(1) instead of an unordered_map teardown) and the epoch-stamped
/// candidate-dedup set. Arena lifetime rules (util/arena.h): owned by
/// one writer-side join slot, not thread-safe, reusable indefinitely —
/// Engine keeps one per gap-window position and reuses it every tick.
struct JoinScratch {
  EpochStampedArray<uint32_t> counts;  ///< Postings count per keyword.
  std::vector<uint32_t> offsets;       ///< Postings start per keyword.
  std::vector<uint32_t> fill;          ///< Build cursors.
  std::vector<uint32_t> postings;      ///< Right-cluster ids, grouped.
  std::vector<uint32_t> touched;       ///< Keywords indexed this call.
  EpochStampedSet seen;                ///< Candidate dedup per probe.
};

/// \brief Threshold similarity join between two cluster sets.
class SimilarityJoin {
 public:
  explicit SimilarityJoin(AffinityOptions options = {})
      : options_(options) {}

  /// Returns all pairs with affinity strictly greater than theta, sorted
  /// by (left, right). `stats` may be null. `scratch` may be null (a
  /// call-local scratch is used); pass a persistent one to make the
  /// steady-state call allocation-free.
  std::vector<AffinityMatch> Join(const std::vector<Cluster>& left,
                                  const std::vector<Cluster>& right,
                                  SimilarityJoinStats* stats = nullptr,
                                  JoinScratch* scratch = nullptr) const;

  /// Reference implementation: evaluates every pair (same strict
  /// > theta predicate). O(|L||R|); the test oracle for Join().
  std::vector<AffinityMatch> JoinBruteForce(
      const std::vector<Cluster>& left,
      const std::vector<Cluster>& right) const;

 private:
  AffinityOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_AFFINITY_SIMILARITY_JOIN_H_
