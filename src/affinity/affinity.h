// Cluster-affinity functions (Section 4): quantify keyword overlap between
// clusters of different temporal intervals. "For example, |ckj ∩ ck′j′| or
// Jaccard(ckj, ck′j′) are candidate choices. Other choices are possible
// taking into account the strength of the correlation between the common
// pairs of keywords. Our framework can easily incorporate any of these
// choices."

#ifndef STABLETEXT_AFFINITY_AFFINITY_H_
#define STABLETEXT_AFFINITY_AFFINITY_H_

#include <cstddef>
#include <vector>

#include "cluster/cluster.h"

namespace stabletext {

/// Available affinity measures.
enum class AffinityMeasure {
  kJaccard,          ///< |A ∩ B| / |A ∪ B|; already in (0, 1].
  kIntersection,     ///< |A ∩ B|; needs normalization for path weights.
  kOverlap,          ///< |A ∩ B| / min(|A|, |B|); in (0, 1].
  kWeightedJaccard,  ///< Weight of shared edges over weight of all edges.
};

/// Options for affinity evaluation.
struct AffinityOptions {
  AffinityMeasure measure = AffinityMeasure::kJaccard;
  /// Minimum affinity for an edge in the cluster graph ("clusters with
  /// affinity values greater than a specific threshold θ (θ = 0.1) to
  /// ensure a minimum level of keyword persistence").
  double theta = 0.1;
};

/// Number of shared keywords (both keyword lists are sorted). Routed
/// through the dispatched set-intersection kernels in util/setops.h.
size_t KeywordIntersectionSize(const Cluster& a, const Cluster& b);

/// The shared keywords themselves, ascending (dispatched intersect-into
/// kernel). For callers that need the overlap contents, e.g. rendering
/// why two clusters chain.
std::vector<KeywordId> KeywordIntersection(const Cluster& a,
                                           const Cluster& b);

/// Computes the chosen affinity between two clusters. Intersection is
/// returned raw (callers normalize, see NormalizeIntersectionWeights).
double ClusterAffinity(const Cluster& a, const Cluster& b,
                       AffinityMeasure measure);

/// Name for reports.
const char* AffinityMeasureName(AffinityMeasure measure);

}  // namespace stabletext

#endif  // STABLETEXT_AFFINITY_AFFINITY_H_
