// CooccurrenceCounter: the full Section 3 counting pipeline for one
// temporal interval — stream documents, emit pairs, external-sort, aggregate.

#ifndef STABLETEXT_COOCCUR_COOCCURRENCE_COUNTER_H_
#define STABLETEXT_COOCCUR_COOCCURRENCE_COUNTER_H_

#include <functional>

#include "cooccur/pair_aggregator.h"
#include "storage/io_stats.h"

namespace stabletext {

class ThreadPool;

/// Options for CooccurrenceCounter.
struct CooccurrenceCounterOptions {
  /// Memory budget handed to the external sorter for the pair file.
  size_t sort_memory_bytes = 32 << 20;
  size_t page_size = 4096;
  /// When set, external-sort run generation is offloaded to this pool
  /// (see ExternalSorterOptions::pool). Caller-owned.
  ThreadPool* sort_pool = nullptr;
};

/// \brief Counts keyword co-occurrences for one document collection.
///
/// The dictionary is shared across intervals so keyword ids are stable over
/// the whole analysis window (needed when clusters from different intervals
/// are compared by keyword overlap).
class CooccurrenceCounter {
 public:
  /// \param dict shared dictionary; must outlive the counter.
  /// \param stats I/O accounting; may be null.
  CooccurrenceCounter(KeywordDict* dict,
                      CooccurrenceCounterOptions options = {},
                      IoStats* stats = nullptr);

  /// Adds one preprocessed document (interning its keywords).
  Status Add(const Document& doc);

  /// Adds one document given its distinct keyword ids, ascending. Used by
  /// the parallel pipeline (interning already happened on the submitting
  /// thread); never touches the dictionary.
  Status AddInterned(const std::vector<KeywordId>& sorted_ids);

  /// Finishes the pass: sorts the pair file and aggregates into *out.
  /// The counter cannot be reused afterwards.
  Status Finish(CooccurrenceTable* out);

  /// Same, sizing the unary table to `keyword_count` instead of the
  /// dictionary's current size (which may have grown past this interval's
  /// snapshot while other intervals were interning).
  Status Finish(CooccurrenceTable* out, size_t keyword_count);

  uint64_t document_count() const { return emitter_.document_count(); }
  uint64_t pair_count() const { return emitter_.pair_count(); }
  /// Sorted runs spilled by the pair sorter (0 = stayed in memory).
  size_t spill_runs() const { return sorter_.run_count(); }

 private:
  KeywordDict* dict_;
  PairSorter sorter_;
  PairEmitter emitter_;
};

}  // namespace stabletext

#endif  // STABLETEXT_COOCCUR_COOCCURRENCE_COUNTER_H_
