#include "cooccur/keyword_dict.h"

#include <fstream>

namespace stabletext {

KeywordId KeywordDict::Intern(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

KeywordId KeywordDict::Lookup(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kInvalidKeyword : it->second;
}

Status KeywordDict::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  for (const std::string& w : words_) out << w << '\n';
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status KeywordDict::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  index_.clear();
  words_.clear();
  std::string line;
  while (std::getline(in, line)) {
    const KeywordId id = static_cast<KeywordId>(words_.size());
    words_.push_back(line);
    index_.emplace(words_.back(), id);
  }
  return Status::OK();
}

}  // namespace stabletext
