#include "cooccur/keyword_dict.h"

#include <fstream>

namespace stabletext {

uint64_t KeywordDict::Hash(std::string_view word) {
  // FNV-1a; keywords are short stemmed tokens so the byte loop is cheap
  // and the hash is stable across platforms (ids must not depend on the
  // standard library's std::hash seed).
  uint64_t h = 1469598103934665603ull;
  for (const char c : word) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

size_t KeywordDict::FindSlot(std::string_view word, uint64_t hash) const {
  size_t i = static_cast<size_t>(hash) & slot_mask_;
  for (;;) {
    const KeywordId id = slots_[i];
    if (id == kEmptySlot) return i;
    if (hashes_[id] == hash && words_[id] == word) return i;
    i = (i + 1) & slot_mask_;
  }
}

void KeywordDict::Rehash(size_t new_slots) {
  slots_.assign(new_slots, kEmptySlot);
  slot_mask_ = new_slots - 1;
  for (KeywordId id = 0; id < words_.size(); ++id) {
    size_t i = static_cast<size_t>(hashes_[id]) & slot_mask_;
    while (slots_[i] != kEmptySlot) i = (i + 1) & slot_mask_;
    slots_[i] = id;
  }
}

KeywordId KeywordDict::Intern(std::string_view word) {
  const uint64_t hash = Hash(word);
  const size_t slot = FindSlot(word, hash);
  if (slots_[slot] != kEmptySlot) return slots_[slot];
  const KeywordId id = static_cast<KeywordId>(words_.size());
  words_.emplace_back(word);
  hashes_.push_back(hash);
  slots_[slot] = id;
  // Grow at 70% load.
  if (words_.size() * 10 >= slots_.size() * 7) Rehash(slots_.size() * 2);
  return id;
}

void KeywordDict::TruncateTo(size_t size) {
  if (size >= words_.size()) return;
  words_.resize(size);
  hashes_.resize(size);
  Rehash(slots_.size());
}

KeywordId KeywordDict::Lookup(std::string_view word) const {
  const size_t slot = FindSlot(word, Hash(word));
  return slots_[slot] == kEmptySlot ? kInvalidKeyword : slots_[slot];
}

Status KeywordDict::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  for (const std::string& w : words_) out << w << '\n';
  out.flush();
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status KeywordDict::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  words_.clear();
  hashes_.clear();
  std::string line;
  while (std::getline(in, line)) {
    hashes_.push_back(Hash(line));
    words_.push_back(std::move(line));
  }
  size_t slots = kInitialSlots;
  while (words_.size() * 10 >= slots * 7) slots *= 2;
  Rehash(slots);
  return Status::OK();
}

}  // namespace stabletext
