// Pair aggregation: the "single pass over the output sorted file" of
// Section 3, turning the sorted pair stream into triplets (u, v, A(u,v))
// plus the unary counts A(u).

#ifndef STABLETEXT_COOCCUR_PAIR_AGGREGATOR_H_
#define STABLETEXT_COOCCUR_PAIR_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "cooccur/pair_emitter.h"

namespace stabletext {

/// Aggregated co-occurrence triplet: A(u,v) documents contain both u and v.
struct Triplet {
  KeywordId u;
  KeywordId v;
  uint32_t count;

  friend bool operator==(const Triplet& a, const Triplet& b) {
    return a.u == b.u && a.v == b.v && a.count == b.count;
  }
};

/// \brief Result of aggregating one interval's pair stream.
struct CooccurrenceTable {
  uint64_t document_count = 0;       ///< n = |D|.
  std::vector<uint32_t> unary;       ///< unary[u] = A(u), indexed by id.
  std::vector<Triplet> triplets;     ///< Off-diagonal pairs, u < v, sorted.
};

/// \brief Streams a sorted PairSorter and produces a CooccurrenceTable.
class PairAggregator {
 public:
  /// Consumes `sorter` (Sort() must already have been called) and fills
  /// *out. `document_count` and `keyword_count` come from the emitter/dict.
  static Status Aggregate(PairSorter* sorter, uint64_t document_count,
                          size_t keyword_count, CooccurrenceTable* out);
};

}  // namespace stabletext

#endif  // STABLETEXT_COOCCUR_PAIR_AGGREGATOR_H_
