// Keyword dictionary: bidirectional mapping between keyword strings and
// dense uint32 ids. All downstream graph machinery works on ids; the
// dictionary is only consulted when rendering clusters back to text.
//
// The index is an open-addressing flat hash table (power-of-two capacity,
// linear probing, cached hashes) rather than node-based unordered_map:
// probes are cache-line friendly and lookups never allocate — the old
// implementation built a std::string per Lookup/Intern call, which was the
// single hottest allocation site of the counting pass.
//
// Concurrency contract: Intern() requires external serialization (the
// pipeline interns on the submitting thread, in document order, so ids are
// deterministic across thread counts). Lookup()/Word() are safe to call
// concurrently from many threads once ingest is quiescent.

#ifndef STABLETEXT_COOCCUR_KEYWORD_DICT_H_
#define STABLETEXT_COOCCUR_KEYWORD_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace stabletext {

/// Id type for keywords. Dense, starting at 0.
using KeywordId = uint32_t;

/// Sentinel for "not present".
inline constexpr KeywordId kInvalidKeyword = UINT32_MAX;

/// \brief Append-only keyword interning table.
class KeywordDict {
 public:
  KeywordDict() { Rehash(kInitialSlots); }

  /// Returns the id of `word`, inserting it if new.
  KeywordId Intern(std::string_view word);

  /// Returns the id of `word` or kInvalidKeyword if absent.
  KeywordId Lookup(std::string_view word) const;

  /// Returns the keyword for an id. Precondition: id < size().
  const std::string& Word(KeywordId id) const { return words_[id]; }

  size_t size() const { return words_.size(); }

  /// Drops every keyword with id >= `size`, rolling interning back to a
  /// previous watermark (ids below `size` are untouched). O(size) probe
  /// table rebuild — meant for cold abort paths (an ingest that failed
  /// after interning), never the ingest hot path.
  void TruncateTo(size_t size);

  /// Serializes to a text file (one word per line, line number = id).
  Status Save(const std::string& path) const;

  /// Loads a dictionary previously written by Save into *this (replacing
  /// current contents).
  Status Load(const std::string& path);

 private:
  static constexpr size_t kInitialSlots = 64;
  static constexpr KeywordId kEmptySlot = kInvalidKeyword;

  static uint64_t Hash(std::string_view word);
  void Rehash(size_t new_slots);
  // Probe for `word` with known hash; returns the slot holding its id or
  // the empty slot where it would be inserted.
  size_t FindSlot(std::string_view word, uint64_t hash) const;

  // slots_[probe] = keyword id, or kEmptySlot. Capacity is a power of two.
  std::vector<KeywordId> slots_;
  size_t slot_mask_ = 0;
  std::vector<std::string> words_;
  std::vector<uint64_t> hashes_;  // Cached Hash(words_[id]) for rehashing.
};

}  // namespace stabletext

#endif  // STABLETEXT_COOCCUR_KEYWORD_DICT_H_
