// Keyword dictionary: bidirectional mapping between keyword strings and
// dense uint32 ids. All downstream graph machinery works on ids; the
// dictionary is only consulted when rendering clusters back to text.

#ifndef STABLETEXT_COOCCUR_KEYWORD_DICT_H_
#define STABLETEXT_COOCCUR_KEYWORD_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace stabletext {

/// Id type for keywords. Dense, starting at 0.
using KeywordId = uint32_t;

/// Sentinel for "not present".
inline constexpr KeywordId kInvalidKeyword = UINT32_MAX;

/// \brief Append-only keyword interning table.
class KeywordDict {
 public:
  /// Returns the id of `word`, inserting it if new.
  KeywordId Intern(std::string_view word);

  /// Returns the id of `word` or kInvalidKeyword if absent.
  KeywordId Lookup(std::string_view word) const;

  /// Returns the keyword for an id. Precondition: id < size().
  const std::string& Word(KeywordId id) const { return words_[id]; }

  size_t size() const { return words_.size(); }

  /// Serializes to a text file (one word per line, line number = id).
  Status Save(const std::string& path) const;

  /// Loads a dictionary previously written by Save into *this (replacing
  /// current contents).
  Status Load(const std::string& path);

 private:
  std::unordered_map<std::string, KeywordId> index_;
  std::vector<std::string> words_;
};

}  // namespace stabletext

#endif  // STABLETEXT_COOCCUR_KEYWORD_DICT_H_
