// Pair emission: Section 3's single pass over documents. "For each document
// D, output all pairs of keywords that appear in D ... for each keyword
// u ∈ D, (u,u) is also included as a keyword pair appearing in D." The
// (u,u) pairs yield the per-keyword document frequencies A(u).

#ifndef STABLETEXT_COOCCUR_PAIR_EMITTER_H_
#define STABLETEXT_COOCCUR_PAIR_EMITTER_H_

#include <cstdint>

#include "cooccur/keyword_dict.h"
#include "storage/external_sorter.h"
#include "text/document.h"

namespace stabletext {

/// A single (u, v) keyword-pair occurrence. Canonical form: u <= v; the
/// diagonal (u, u) carries unary document frequency.
struct PairRecord {
  KeywordId u;
  KeywordId v;

  friend bool operator<(const PairRecord& a, const PairRecord& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
  friend bool operator==(const PairRecord& a, const PairRecord& b) {
    return a.u == b.u && a.v == b.v;
  }
};

/// Sorter specialization used for the pair file.
using PairSorter = ExternalSorter<PairRecord>;

/// \brief Emits all canonical keyword pairs of documents into a PairSorter.
///
/// Interns keywords into the dictionary as a side effect and counts
/// processed documents (the n = |D| of the chi-squared test).
class PairEmitter {
 public:
  /// \param dict  dictionary to intern into; must outlive the emitter.
  /// \param sorter destination sorter; must outlive the emitter.
  PairEmitter(KeywordDict* dict, PairSorter* sorter)
      : dict_(dict), sorter_(sorter) {}

  /// Emits pairs for one preprocessed document (interning its keywords).
  Status EmitDocument(const Document& doc);

  /// Emits pairs for a document whose keywords are already interned.
  /// `sorted_ids` must be distinct and ascending. This is the path the
  /// parallel pipeline uses: interning happens deterministically on the
  /// submitting thread, emission on a worker.
  Status EmitIds(const std::vector<KeywordId>& sorted_ids);

  /// Documents processed so far.
  uint64_t document_count() const { return documents_; }
  /// Pair records emitted so far (including diagonal records).
  uint64_t pair_count() const { return pairs_; }

 private:
  KeywordDict* dict_;
  PairSorter* sorter_;
  uint64_t documents_ = 0;
  uint64_t pairs_ = 0;
};

}  // namespace stabletext

#endif  // STABLETEXT_COOCCUR_PAIR_EMITTER_H_
