#include "cooccur/cooccurrence_counter.h"

namespace stabletext {

namespace {
ExternalSorterOptions MakeSorterOptions(
    const CooccurrenceCounterOptions& options) {
  ExternalSorterOptions out;
  out.memory_budget_bytes = options.sort_memory_bytes;
  out.page_size = options.page_size;
  out.pool = options.sort_pool;
  return out;
}
}  // namespace

CooccurrenceCounter::CooccurrenceCounter(
    KeywordDict* dict, CooccurrenceCounterOptions options, IoStats* stats)
    : dict_(dict),
      sorter_(MakeSorterOptions(options), stats),
      emitter_(dict, &sorter_) {}

Status CooccurrenceCounter::Add(const Document& doc) {
  return emitter_.EmitDocument(doc);
}

Status CooccurrenceCounter::AddInterned(
    const std::vector<KeywordId>& sorted_ids) {
  return emitter_.EmitIds(sorted_ids);
}

Status CooccurrenceCounter::Finish(CooccurrenceTable* out) {
  return Finish(out, dict_->size());
}

Status CooccurrenceCounter::Finish(CooccurrenceTable* out,
                                   size_t keyword_count) {
  ST_RETURN_IF_ERROR(sorter_.Sort());
  return PairAggregator::Aggregate(&sorter_, emitter_.document_count(),
                                   keyword_count, out);
}

}  // namespace stabletext
