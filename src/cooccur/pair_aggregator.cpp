#include "cooccur/pair_aggregator.h"

namespace stabletext {

Status PairAggregator::Aggregate(PairSorter* sorter,
                                 uint64_t document_count,
                                 size_t keyword_count,
                                 CooccurrenceTable* out) {
  out->document_count = document_count;
  out->unary.assign(keyword_count, 0);
  out->triplets.clear();

  PairRecord rec;
  bool have_current = false;
  PairRecord current{0, 0};
  uint32_t count = 0;

  auto flush = [&] {
    if (!have_current) return;
    if (current.u == current.v) {
      out->unary[current.u] = count;
    } else {
      out->triplets.push_back(Triplet{current.u, current.v, count});
    }
  };

  while (sorter->Next(&rec)) {
    if (have_current && rec == current) {
      ++count;
      continue;
    }
    flush();
    current = rec;
    count = 1;
    have_current = true;
  }
  ST_RETURN_IF_ERROR(sorter->status());
  flush();
  return Status::OK();
}

}  // namespace stabletext
