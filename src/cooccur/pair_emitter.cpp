#include "cooccur/pair_emitter.h"

#include <algorithm>

namespace stabletext {

Status PairEmitter::EmitDocument(const Document& doc) {
  // Intern all distinct keywords of the document.
  std::vector<KeywordId> ids;
  ids.reserve(doc.keywords.size());
  for (const std::string& w : doc.keywords) ids.push_back(dict_->Intern(w));
  // Canonical pair order requires sorted ids (Document keywords are sorted
  // as strings, which is not id order).
  std::sort(ids.begin(), ids.end());
  return EmitIds(ids);
}

Status PairEmitter::EmitIds(const std::vector<KeywordId>& sorted_ids) {
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    // Diagonal record for A(u).
    ST_RETURN_IF_ERROR(sorter_->Add(PairRecord{sorted_ids[i],
                                               sorted_ids[i]}));
    ++pairs_;
    for (size_t j = i + 1; j < sorted_ids.size(); ++j) {
      ST_RETURN_IF_ERROR(sorter_->Add(PairRecord{sorted_ids[i],
                                                 sorted_ids[j]}));
      ++pairs_;
    }
  }
  ++documents_;
  return Status::OK();
}

}  // namespace stabletext
