#include "cooccur/pair_emitter.h"

#include <algorithm>

namespace stabletext {

Status PairEmitter::EmitDocument(const Document& doc) {
  // Intern all distinct keywords of the document.
  std::vector<KeywordId> ids;
  ids.reserve(doc.keywords.size());
  for (const std::string& w : doc.keywords) ids.push_back(dict_->Intern(w));
  // Canonical pair order requires sorted ids (Document keywords are sorted
  // as strings, which is not id order).
  std::sort(ids.begin(), ids.end());

  for (size_t i = 0; i < ids.size(); ++i) {
    // Diagonal record for A(u).
    ST_RETURN_IF_ERROR(sorter_->Add(PairRecord{ids[i], ids[i]}));
    ++pairs_;
    for (size_t j = i + 1; j < ids.size(); ++j) {
      ST_RETURN_IF_ERROR(sorter_->Add(PairRecord{ids[i], ids[j]}));
      ++pairs_;
    }
  }
  ++documents_;
  return Status::OK();
}

}  // namespace stabletext
