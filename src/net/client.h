// Blocking client for the network serving layer: connects, issues
// one-shot requests (QUERY/STATS/PING), manages subscriptions and reads
// the server-pushed DELTA frames. Pushed frames interleaving a pending
// request's response are buffered and handed out in order through
// NextPush(), so a subscriber can keep issuing one-shot queries on the
// same connection.
//
// Not thread-safe: one Client per thread (the protocol itself multiplexes
// by request id, but this helper keeps a single read cursor).

#ifndef STABLETEXT_NET_CLIENT_H_
#define STABLETEXT_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "net/protocol.h"
#include "stable/finder.h"
#include "util/status.h"

namespace stabletext {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. `attempts` > 1 retries a refused connection
  /// with a short backoff (a just-spawned server may not be listening
  /// yet).
  Status Connect(const std::string& host, uint16_t port,
                 int attempts = 1);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One-shot query. Admission-control shedding is not an error: when
  /// the server answers RETRY, *retry is set true and the returned
  /// result is empty; server-side failures come back as their Status.
  Result<WireResult> Query(const FinderQuery& query, bool render,
                           bool* retry);

  /// Query with bounded RETRY backoff (for CLI/bench convenience).
  Result<WireResult> QueryWithRetry(const FinderQuery& query, bool render,
                                    int max_attempts = 10,
                                    int backoff_ms = 50);

  /// Registers a standing query; returns the subscription id.
  Result<uint64_t> Subscribe(const FinderQuery& query, bool render);

  Status Unsubscribe(uint64_t subscription_id);

  Result<WireStats> Stats();

  /// Round-trip liveness probe; returns the server's latest epoch.
  Result<uint64_t> Ping();

  /// Next pushed frame (kDelta or kBye). Blocks up to `timeout_ms`
  /// (-1 = indefinitely); kNotFound on timeout. A kBye push reports
  /// code kOk via *is_bye and an empty delta.
  Result<WireDelta> NextPush(int timeout_ms, bool* is_bye);

 private:
  /// Sends `body` as `type` and reads until the response to this
  /// request id arrives; pushes seen on the way are buffered.
  Result<Frame> Call(MsgType type, const std::string& body);

  Status SendFrame(MsgType type, uint64_t request_id,
                   const std::string& body);
  /// Reads one frame from the socket (blocking, bounded by timeout).
  Result<Frame> ReadFrame(int timeout_ms);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameReader reader_;
  std::deque<Frame> pending_pushes_;
};

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_CLIENT_H_
