// Single-threaded poll(2) event loop: non-blocking fds registered with a
// read/write interest mask and a per-fd handler, plus a self-pipe wakeup
// so worker and notifier threads can hand results back to the loop
// thread without touching connection state themselves. poll keeps the
// loop portable; the fd counts the serving layer targets (hundreds to a
// few thousand connections) are well inside poll's comfortable range,
// and the registration API would back onto epoll unchanged.
//
// Threading: every method except Wakeup() must be called from the loop
// thread (the thread running PollOnce). Handlers may Add/SetInterest/
// Remove any fd, including their own, during dispatch — a generation
// token per registration keeps a recycled fd number from receiving a
// stale event.
//
// The contract is machine-checked: `role` is the loop-thread capability
// (util/annotated_mutex.h ThreadRole). Loop-affine methods REQUIRES(role)
// and the registration table is GUARDED_BY(role); the thread that runs
// the loop — and, before it starts, the thread setting it up — holds the
// role via AssumeRole. Owners annotate their own loop-affine state
// GUARDED_BY(loop.role), so one capability covers the whole loop-thread
// island (see net::Server).

#ifndef STABLETEXT_NET_EVENT_LOOP_H_
#define STABLETEXT_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/annotated_mutex.h"
#include "util/status.h"

namespace stabletext {
namespace net {

class EventLoop {
 public:
  enum : uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    kError = 1u << 2,  ///< POLLERR/POLLHUP/POLLNVAL; always delivered.
  };

  /// Receives the ready-event bitmask for one registered fd.
  using Handler = std::function<void(uint32_t events)>;

  /// The loop-thread capability: exactly one thread at a time may hold
  /// it (the loop thread, or the owner before/after the loop runs).
  /// Public so owners can hang their own loop-affine state off it with
  /// GUARDED_BY(loop.role).
  ThreadRole role;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the wakeup self-pipe. Must run before PollOnce/Wakeup.
  Status Init() REQUIRES(role);

  /// Registers `fd` (non-blocking) with an interest mask and handler.
  void Add(int fd, uint32_t interest, Handler handler) REQUIRES(role);

  /// Updates the interest mask of a registered fd.
  void SetInterest(int fd, uint32_t interest) REQUIRES(role);

  /// Deregisters `fd` (does not close it).
  void Remove(int fd) REQUIRES(role);

  bool Contains(int fd) const REQUIRES(role) {
    return entries_.count(fd) > 0;
  }

  /// Thread-safe: makes a concurrent/next PollOnce return promptly and
  /// run the wake handler.
  void Wakeup();

  /// Runs after every poll round that consumed a wakeup (and at least
  /// once per PollOnce that was woken).
  void set_wake_handler(std::function<void()> handler) REQUIRES(role) {
    wake_handler_ = std::move(handler);
  }

  /// One poll round: waits up to `timeout_ms` (-1 = indefinitely),
  /// dispatches ready handlers. Returns the number of fds dispatched,
  /// or a status error on a poll(2) failure.
  Result<int> PollOnce(int timeout_ms) REQUIRES(role);

 private:
  struct Entry {
    uint32_t interest = 0;
    uint64_t token = 0;
    Handler handler;
  };

  std::unordered_map<int, Entry> entries_ GUARDED_BY(role);
  uint64_t next_token_ GUARDED_BY(role) = 1;
  // The self-pipe fds are set once by Init and then stable; Wakeup()
  // writes wake_write_ from any thread, so they are not role-guarded.
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::function<void()> wake_handler_ GUARDED_BY(role);
};

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_EVENT_LOOP_H_
