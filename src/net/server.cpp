#include "net/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.h"
#include "util/timer.h"

namespace stabletext {
namespace net {

namespace {
constexpr size_t kReadChunk = 16 * 1024;
}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : backend_(MakeServingBackend(engine)), options_(std::move(options)) {}

Server::Server(ShardedEngine* engine, ServerOptions options)
    : backend_(MakeServingBackend(engine)), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("already started");
  // The loop is not running yet: the starting thread is the loop thread
  // for the duration of setup.
  AssumeRole loop_role(loop_.role);
  auto listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = listener.value();
  auto port = LocalPort(listen_fd_);
  if (!port.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = port.value();
  Status s = loop_.Init();
  if (!s.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  loop_.set_wake_handler([this] {
    AssumeRole role(loop_.role);  // Wake handlers run on the loop thread.
    DrainOutbound();
  });
  loop_.Add(listen_fd_, EventLoop::kReadable, [this](uint32_t) {
    AssumeRole role(loop_.role);  // Dispatched on the loop thread.
    OnAccept();
  });
  const size_t worker_count = std::max<size_t>(1, options_.workers);
  workers_ = std::make_unique<ReaderFleet>(
      worker_count, [this](size_t) { WorkerLoop(); });
  notifier_ = std::make_unique<ReaderFleet>(
      1, [this](size_t) { NotifierLoop(); });
  backend_->SetPublishCallback(
      [this](const std::shared_ptr<const ServingView>& view) {
        OnPublish(view);
      });
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  bool expected = false;
  if (!shutdown_started_.compare_exchange_strong(expected, true)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  if (!running_.load()) return;
  draining_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    MutexLock lock(work_mu_);
    stop_workers_ = true;
  }
  work_cv_.NotifyAll();
  workers_->Join();
  {
    MutexLock lock(snap_mu_);
    stop_notifier_ = true;
  }
  snap_cv_.NotifyAll();
  notifier_->Join();
  // Writer-side deregistration: the caller guarantees ingest is
  // quiescent across Shutdown (see the lifecycle note in the header).
  backend_->SetPublishCallback(nullptr);
  running_.store(false, std::memory_order_release);
}

void Server::FillServingStats(EngineStats* stats) const {
  stats->subscriptions_active = registry_.size();
  stats->pushes_sent = pushes_sent_.load(std::memory_order_relaxed);
  stats->queries_rejected =
      queries_rejected_.load(std::memory_order_relaxed);
  stats->queries_failed = queries_failed();
}

void Server::RunLoop() {
  AssumeRole role(loop_.role);  // This thread IS the loop thread.
  bool listener_closed = false;
  WallTimer drain_timer;
  bool drain_timing = false;
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    auto polled = loop_.PollOnce(draining ? 20 : -1);
    if (!polled.ok()) break;  // poll(2) failure: nothing left to serve.
    DrainOutbound();
    if (!draining) continue;
    if (!listener_closed) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_closed = true;
      drain_timer.Restart();
      drain_timing = true;
    }
    const bool expired =
        drain_timing &&
        drain_timer.ElapsedSeconds() * 1e3 >= options_.drain_timeout_ms;
    if (DrainComplete() || expired) {
      // Farewell: every connection gets a BYE after its drained
      // responses and final deltas, then a bounded flush window.
      for (auto& [id, conn] : connections_) {
        AppendOut(conn.get(), EncodeFrame(MsgType::kBye, 0, ""));
      }
      WallTimer flush_timer;
      while (AnyPendingOutput() && flush_timer.ElapsedSeconds() < 1.0) {
        auto flushed = loop_.PollOnce(20);
        if (!flushed.ok()) break;
      }
      break;
    }
  }
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const uint64_t id : ids) CloseConnection(id);
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool Server::DrainComplete() {
  if (admitted_.load(std::memory_order_acquire) != 0) return false;
  {
    MutexLock lock(work_mu_);
    if (!work_.empty()) return false;
  }
  {
    MutexLock lock(snap_mu_);
    if (!snapshots_.empty() || notifier_busy_) return false;
  }
  MutexLock lock(out_mu_);
  return outbound_.empty();
}

bool Server::AnyPendingOutput() const {
  for (const auto& [id, conn] : connections_) {
    if (conn->out_off < conn->out.size()) return true;
  }
  return false;
}

void Server::OnAccept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EINTR/transient: next poll retries.
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->fd = fd;
    const uint64_t id = conn->id;
    connections_.emplace(id, std::move(conn));
    loop_.Add(fd, EventLoop::kReadable, [this, id](uint32_t events) {
      AssumeRole role(loop_.role);  // Dispatched on the loop thread.
      OnConnEvent(id, events);
    });
  }
}

void Server::OnConnEvent(uint64_t connection_id, uint32_t events) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (events & EventLoop::kError) {
    CloseConnection(connection_id);
    return;
  }
  if (events & EventLoop::kReadable) {
    char buf[kReadChunk];
    for (;;) {
      const IoOutcome io = ReadSome(conn->fd, buf, sizeof(buf));
      if (!io.ok || (io.n == 0 && !io.would_block)) {
        CloseConnection(connection_id);
        return;
      }
      if (io.would_block) break;
      conn->reader.Feed(buf, static_cast<size_t>(io.n));
      if (static_cast<size_t>(io.n) < sizeof(buf)) break;
    }
    // Batch-decode every complete frame this turn delivered.
    Frame frame;
    for (;;) {
      Status s = conn->reader.Next(&frame);
      if (s.code() == StatusCode::kNotFound) break;
      if (!s.ok()) {
        // Torn stream: past this point nothing can be trusted.
        CloseConnection(connection_id);
        return;
      }
      HandleFrame(conn, frame);
      if (connections_.find(connection_id) == connections_.end()) {
        return;  // Handler closed the connection.
      }
    }
  }
  if (events & EventLoop::kWritable) TryFlush(conn);
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPing:
      Reply(conn, MsgType::kPong, frame.request_id,
            EncodeU64Body(backend_->Pin()->epoch()));
      return;
    case MsgType::kStats: {
      const EngineStats engine_stats = backend_->stats();
      WireStats stats;
      stats.epoch = backend_->Pin()->epoch();
      stats.intervals = engine_stats.intervals;
      stats.clusters = engine_stats.clusters;
      stats.edges = engine_stats.edges;
      stats.keywords = engine_stats.keywords;
      stats.resident_bytes = engine_stats.resident_bytes;
      stats.query_cache_hits = engine_stats.query_cache_hits;
      stats.query_cache_misses = engine_stats.query_cache_misses;
      stats.subscriptions_active = registry_.size();
      stats.pushes_sent = pushes_sent_.load(std::memory_order_relaxed);
      stats.queries_rejected =
          queries_rejected_.load(std::memory_order_relaxed);
      stats.queries_served =
          queries_served_.load(std::memory_order_relaxed);
      stats.queries_failed = queries_failed();
      stats.shards = backend_->shard_stats();
      Reply(conn, MsgType::kStatsResult, frame.request_id,
            EncodeStatsBody(stats));
      return;
    }
    case MsgType::kQuery:
      HandleQuery(conn, frame);
      return;
    case MsgType::kSubscribe: {
      FinderQuery query;
      uint8_t flags = 0;
      Status s = DecodeQueryBody(frame.body, &query, &flags);
      if (s.ok() && query.k == 0) {
        s = Status::InvalidArgument("k must be positive");
      }
      if (s.ok()) {
        // Static capability check so an unsupported standing query
        // fails at SUBSCRIBE time instead of silently never pushing.
        const FinderInfo& info = GetFinderInfo(query.algorithm);
        const bool supported = query.mode == FinderMode::kKlStable
                                   ? info.supports_kl_stable
                                   : info.supports_normalized;
        if (!supported) {
          s = Status::NotSupported(
              std::string(info.name) + " does not support mode " +
              FinderModeName(query.mode));
        }
      }
      if (!s.ok()) {
        Reply(conn, MsgType::kError, frame.request_id,
              EncodeErrorBody(s));
        return;
      }
      const uint64_t id = registry_.Add(conn->id, query, flags);
      Reply(conn, MsgType::kSubscribed, frame.request_id,
            EncodeU64Body(id));
      return;
    }
    case MsgType::kUnsubscribe: {
      uint64_t id = 0;
      if (!DecodeU64Body(frame.body, &id).ok()) {
        Reply(conn, MsgType::kError, frame.request_id,
              EncodeErrorBody(
                  Status::Corruption("malformed unsubscribe body")));
        return;
      }
      if (registry_.Remove(conn->id, id)) {
        Reply(conn, MsgType::kUnsubscribed, frame.request_id,
              EncodeU64Body(id));
      } else {
        Reply(conn, MsgType::kError, frame.request_id,
              EncodeErrorBody(Status::NotFound(
                  "no subscription " + std::to_string(id))));
      }
      return;
    }
    default:
      Reply(conn, MsgType::kError, frame.request_id,
            EncodeErrorBody(Status::InvalidArgument(
                "unexpected message type " +
                std::to_string(static_cast<int>(frame.type)))));
      return;
  }
}

void Server::HandleQuery(Connection* conn, const Frame& frame) {
  FinderQuery query;
  uint8_t flags = 0;
  const Status s = DecodeQueryBody(frame.body, &query, &flags);
  if (!s.ok()) {
    Reply(conn, MsgType::kError, frame.request_id, EncodeErrorBody(s));
    return;
  }
  size_t queued;
  {
    MutexLock lock(work_mu_);
    queued = work_.size();
  }
  const size_t admitted = admitted_.load(std::memory_order_acquire);
  if (draining_.load(std::memory_order_acquire) ||
      admitted >= options_.max_inflight || queued >= options_.queue_depth) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    WireRetry retry;
    retry.inflight = static_cast<uint32_t>(admitted);
    retry.queued = static_cast<uint32_t>(queued);
    Reply(conn, MsgType::kRetry, frame.request_id,
          EncodeRetryBody(retry));
    return;
  }
  admitted_.fetch_add(1, std::memory_order_acq_rel);
  {
    MutexLock lock(work_mu_);
    work_.push_back(Job{conn->id, frame.request_id, query, flags});
  }
  work_cv_.NotifyOne();
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(work_mu_);
      while (!stop_workers_ && work_.empty()) work_cv_.Wait(lock);
      if (work_.empty()) return;  // stop_workers_ and drained.
      job = std::move(work_.front());
      work_.pop_front();
    }
    if (options_.worker_test_hook) options_.worker_test_hook();
    // Pin the latest epoch for this query; the finder runs entirely on
    // the pinned view, concurrent with ingest and the other workers.
    const std::shared_ptr<const ServingView> view = backend_->Pin();
    auto result = view->RunQuery(job.query, job.flags);
    std::string frame;
    if (result.ok()) {
      frame = EncodeFrame(MsgType::kResult, job.request_id,
                          EncodeResultBody(result.value()));
      queries_served_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frame = EncodeFrame(MsgType::kError, job.request_id,
                          EncodeErrorBody(result.status()));
      queries_errored_.fetch_add(1, std::memory_order_relaxed);
    }
    EnqueueOutbound(job.connection_id, std::move(frame),
                    /*completes_query=*/true);
  }
}

void Server::OnPublish(const std::shared_ptr<const ServingView>& view) {
  if (draining_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(snap_mu_);
    snapshots_.push_back(view);
  }
  snap_cv_.NotifyOne();
}

void Server::NotifierLoop() {
  for (;;) {
    std::shared_ptr<const ServingView> view;
    {
      MutexLock lock(snap_mu_);
      while (!stop_notifier_ && snapshots_.empty()) snap_cv_.Wait(lock);
      if (snapshots_.empty()) return;  // stop_notifier_ and drained.
      view = std::move(snapshots_.front());
      snapshots_.pop_front();
      notifier_busy_ = true;
    }
    // Every epoch is processed (never coalesced): subscribers see the
    // exact per-epoch delta sequence a serial replay would compute.
    for (const auto& sub : registry_.Snapshot()) {
      auto result = view->RunQuery(sub->query, sub->flags);
      if (!result.ok()) continue;  // Validated at SUBSCRIBE.
      std::vector<WireChain> now = std::move(result.value().chains);
      WireDelta delta = DiffTopK(sub->last, now);
      delta.subscription_id = sub->id;
      delta.epoch = view->epoch();
      sub->last = std::move(now);
      EnqueueOutbound(sub->connection_id,
                      EncodeFrame(MsgType::kDelta, 0,
                                  EncodeDeltaBody(delta)),
                      /*completes_query=*/false);
      pushes_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      MutexLock lock(snap_mu_);
      notifier_busy_ = false;
    }
    loop_.Wakeup();  // Re-evaluate drain progress.
  }
}

void Server::EnqueueOutbound(uint64_t connection_id, std::string bytes,
                             bool completes_query) {
  {
    MutexLock lock(out_mu_);
    outbound_.push_back(
        Outbound{connection_id, std::move(bytes), completes_query});
  }
  loop_.Wakeup();
}

void Server::DrainOutbound() {
  std::deque<Outbound> batch;
  {
    MutexLock lock(out_mu_);
    batch.swap(outbound_);
  }
  for (Outbound& out : batch) {
    // The admission gate frees regardless of whether the connection is
    // still alive — a dead client must not leak in-flight slots.
    if (out.completes_query) {
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
    }
    auto it = connections_.find(out.connection_id);
    if (it == connections_.end()) continue;
    AppendOut(it->second.get(), out.bytes);
  }
}

void Server::Reply(Connection* conn, MsgType type, uint64_t request_id,
                   const std::string& body) {
  AppendOut(conn, EncodeFrame(type, request_id, body));
}

void Server::AppendOut(Connection* conn, const std::string& bytes) {
  conn->out.append(bytes);
  TryFlush(conn);
}

void Server::TryFlush(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const IoOutcome io =
        WriteSome(conn->fd, conn->out.data() + conn->out_off,
                  conn->out.size() - conn->out_off);
    if (!io.ok) {
      CloseConnection(conn->id);
      return;
    }
    if (io.would_block) break;
    conn->out_off += static_cast<size_t>(io.n);
  }
  if (conn->out_off >= conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
    loop_.SetInterest(conn->fd, EventLoop::kReadable);
  } else {
    if (conn->out_off > 256 * 1024) {
      conn->out.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    loop_.SetInterest(conn->fd,
                      EventLoop::kReadable | EventLoop::kWritable);
  }
}

void Server::CloseConnection(uint64_t connection_id) {
  auto it = connections_.find(connection_id);
  if (it == connections_.end()) return;
  const int fd = it->second->fd;
  loop_.Remove(fd);
  ::close(fd);
  registry_.RemoveConnection(connection_id);
  connections_.erase(it);
}

}  // namespace net
}  // namespace stabletext
