// ServingBackend: the server's engine abstraction. net::Server serves
// whatever can pin an immutable epoch view and answer queries on it —
// a single Engine (pinned GraphSnapshot) or a ShardedEngine (pinned
// ShardedSnapshot, an epoch *vector*, with the threshold merge behind
// RunQuery). The server's worker, notifier and stats paths are written
// against these two interfaces only, so sharding never leaks into the
// event loop or the admission gate.
//
// Threading mirrors the engines' contract: Pin()/stats()/shard_stats()
// and every ServingView method are reader-safe (any thread, concurrent
// with ingest); SetPublishCallback is writer-side (install before
// ingest starts, clear after it stops), exactly like
// Engine::SetPublishCallback, which it wraps.

#ifndef STABLETEXT_NET_SERVING_BACKEND_H_
#define STABLETEXT_NET_SERVING_BACKEND_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "net/protocol.h"
#include "util/status.h"

namespace stabletext {
namespace net {

/// \brief One pinned epoch: queries against it see one consistent state
/// no matter how far ingest has advanced. Immutable; hold the
/// shared_ptr to pin everything the epoch references.
class ServingView {
 public:
  virtual ~ServingView() = default;

  /// The pinned (sharded: common) committed-interval count.
  virtual uint64_t epoch() const = 0;

  /// Answers `query` at this view, rendered for the wire (chain text
  /// filled in when `flags` has kFlagRender). Single engine: one finder
  /// run through the query cache. Sharded: scatter-gather with the
  /// threshold merge.
  virtual Result<WireResult> RunQuery(const FinderQuery& query,
                                      uint8_t flags) const = 0;
};

/// \brief What net::Server needs from the thing it serves.
class ServingBackend {
 public:
  using ViewCallback =
      std::function<void(const std::shared_ptr<const ServingView>&)>;

  virtual ~ServingBackend() = default;

  /// Pins the latest published epoch. Never null.
  virtual std::shared_ptr<const ServingView> Pin() const = 0;

  /// Point-in-time engine stats (sharded: fleet aggregate).
  virtual EngineStats stats() const = 0;

  /// Per-shard stat slices for STATS frames; empty for a single engine.
  virtual std::vector<WireShardStats> shard_stats() const = 0;

  /// Installs (or, with nullptr, clears) the publish hook. Writer-side.
  virtual void SetPublishCallback(ViewCallback cb) = 0;
};

/// Backend over a single Engine. `engine` must outlive the backend.
std::unique_ptr<ServingBackend> MakeServingBackend(Engine* engine);

/// Backend over a ShardedEngine. `engine` must outlive the backend.
std::unique_ptr<ServingBackend> MakeServingBackend(ShardedEngine* engine);

/// Renders a QueryResult for the wire: paths, weights, lengths, plus
/// snapshot-rendered chain text when `flags` has kFlagRender.
std::vector<WireChain> ToWireChains(const GraphSnapshot& snapshot,
                                    const QueryResult& result,
                                    uint8_t flags);

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_SERVING_BACKEND_H_
