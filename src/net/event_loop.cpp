#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "net/socket.h"

namespace stabletext {
namespace net {

EventLoop::~EventLoop() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

Status EventLoop::Init() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  Status s = SetNonBlocking(wake_read_);
  if (s.ok()) s = SetNonBlocking(wake_write_);
  return s;
}

void EventLoop::Add(int fd, uint32_t interest, Handler handler) {
  Entry& entry = entries_[fd];
  entry.interest = interest;
  entry.token = next_token_++;
  entry.handler = std::move(handler);
}

void EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = entries_.find(fd);
  if (it != entries_.end()) it->second.interest = interest;
}

void EventLoop::Remove(int fd) { entries_.erase(fd); }

void EventLoop::Wakeup() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  ssize_t rc;
  do {
    rc = ::write(wake_write_, &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

Result<int> EventLoop::PollOnce(int timeout_ms) {
  struct Pending {
    int fd;
    uint64_t token;
    uint32_t events;
  };
  std::vector<pollfd> pfds;
  pfds.reserve(entries_.size() + 1);
  pfds.push_back({wake_read_, POLLIN, 0});
  for (const auto& [fd, entry] : entries_) {
    short events = 0;
    if (entry.interest & kReadable) events |= POLLIN;
    if (entry.interest & kWritable) events |= POLLOUT;
    pfds.push_back({fd, events, 0});
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IOError(std::string("poll: ") + std::strerror(errno));
  }

  bool woken = false;
  if (pfds[0].revents & POLLIN) {
    char drain[256];
    while (::read(wake_read_, drain, sizeof(drain)) > 0) {
    }
    woken = true;
  }

  // Snapshot ready fds with their registration tokens, then dispatch:
  // a handler may remove (or close-and-recycle) any fd, and the token
  // check drops events aimed at a registration that no longer exists.
  std::vector<Pending> ready;
  for (size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    uint32_t events = 0;
    if (pfds[i].revents & POLLIN) events |= kReadable;
    if (pfds[i].revents & POLLOUT) events |= kWritable;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
      events |= kError;
    }
    auto it = entries_.find(pfds[i].fd);
    if (it == entries_.end()) continue;
    ready.push_back({pfds[i].fd, it->second.token, events});
  }
  int dispatched = 0;
  for (const Pending& p : ready) {
    auto it = entries_.find(p.fd);
    if (it == entries_.end() || it->second.token != p.token) continue;
    // Copy the handler: Remove(fd) inside the call destroys the entry.
    Handler handler = it->second.handler;
    handler(p.events);
    ++dispatched;
  }
  if (woken && wake_handler_) wake_handler_();
  return dispatched;
}

}  // namespace net
}  // namespace stabletext
