// Standing-query registry for the serving layer. A SUBSCRIBE frame
// registers an (algorithm, mode, k, l) query for its connection; after
// every epoch publish the server's notifier thread runs each standing
// query against the freshly pinned snapshot, diffs the answer against the
// subscription's last pushed top-k, and pushes one DELTA frame per epoch
// — server-push instead of client re-poll, riding the same per-epoch
// snapshot swap the readers use.
//
// Threading: Add/Remove/RemoveConnection run on the event-loop thread;
// Snapshot() and size() may run from any thread. A Subscription's
// `last` answer is owned by the notifier thread exclusively (the loop
// never reads it), so the registry's lock only guards the table.

#ifndef STABLETEXT_NET_SUBSCRIPTION_H_
#define STABLETEXT_NET_SUBSCRIPTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/protocol.h"
#include "stable/finder.h"
#include "util/annotated_mutex.h"

namespace stabletext {
namespace net {

/// One standing query. `last` is the top-k most recently pushed to the
/// client, notifier-owned (see header comment).
struct Subscription {
  uint64_t id = 0;
  uint64_t connection_id = 0;
  FinderQuery query;
  uint8_t flags = 0;  ///< kFlagRender et al.
  std::vector<WireChain> last;
};

class SubscriptionRegistry {
 public:
  /// Registers a standing query; returns its id (never 0).
  uint64_t Add(uint64_t connection_id, const FinderQuery& query,
               uint8_t flags);

  /// Removes subscription `id` if it belongs to `connection_id`.
  /// Returns false when no such subscription exists.
  bool Remove(uint64_t connection_id, uint64_t id);

  /// Drops every subscription of a closing connection.
  void RemoveConnection(uint64_t connection_id);

  /// Stable view for one notifier pass. Entries removed concurrently
  /// stay alive through the shared_ptr; their pushes target a dead
  /// connection id and are dropped at enqueue.
  std::vector<std::shared_ptr<Subscription>> Snapshot() const;

  size_t size() const;

 private:
  // Reader-writer split: Add/Remove/RemoveConnection (loop thread) take
  // the write side; Snapshot()/size() (notifier, stats, any thread) share
  // the read side. The lock guards only the table — each Subscription's
  // `last` is notifier-owned (see header comment).
  mutable SharedMutex mu_;
  std::map<uint64_t, std::shared_ptr<Subscription>> subscriptions_
      GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_SUBSCRIPTION_H_
