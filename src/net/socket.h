// Thin POSIX TCP helpers shared by the server, the client library and the
// benches: listener/connect setup, non-blocking mode, and EINTR/EAGAIN
// classification for the event loop's partial reads and writes. Everything
// here returns Status instead of raw errno so the callers stay in the
// library's error idiom.

#ifndef STABLETEXT_NET_SOCKET_H_
#define STABLETEXT_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace stabletext {
namespace net {

/// Parses "host:port" (host may be empty for 127.0.0.1). The port must be
/// a decimal number in [1, 65535].
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

/// Creates a non-blocking listening TCP socket bound to host:port with
/// SO_REUSEADDR. port 0 binds an ephemeral port; read it back with
/// LocalPort(). Returns the fd.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      int backlog = 128);

/// Blocking connect to host:port with a bounded wait. The returned fd is
/// left in blocking mode (the client library polls before reads).
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms = 5000);

/// The locally bound port of a socket (e.g. after an ephemeral bind).
Result<uint16_t> LocalPort(int fd);

/// Switches `fd` to non-blocking mode.
Status SetNonBlocking(int fd);

/// One read(2)/write(2) outcome, with EAGAIN folded into `would_block`
/// instead of an error (EINTR is retried internally).
struct IoOutcome {
  long n = 0;               ///< Bytes moved; 0 on read means EOF.
  bool would_block = false; ///< The operation would have blocked.
  bool ok = true;           ///< False on a hard error (errno-level).
};

/// Reads up to `size` bytes from a (possibly non-blocking) fd.
IoOutcome ReadSome(int fd, void* buf, size_t size);

/// Writes up to `size` bytes to a (possibly non-blocking) fd. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a peer reset reports ok = false.
IoOutcome WriteSome(int fd, const void* buf, size_t size);

/// Waits until `fd` is readable. Returns OK when readable, IOError on a
/// poll failure or hangup-without-data, NotFound on timeout.
Status WaitReadable(int fd, int timeout_ms);

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_SOCKET_H_
