#include "net/serving_backend.h"

#include <utility>

namespace stabletext {
namespace net {

std::vector<WireChain> ToWireChains(const GraphSnapshot& snapshot,
                                    const QueryResult& result,
                                    uint8_t flags) {
  std::vector<WireChain> out;
  out.reserve(result.chains.size());
  for (const StableClusterChain& chain : result.chains) {
    WireChain wire;
    wire.nodes = chain.path.nodes;
    wire.weight = chain.path.weight;
    wire.length = chain.path.length;
    if (flags & kFlagRender) {
      wire.rendered = snapshot.RenderChain(chain);
    }
    out.push_back(std::move(wire));
  }
  return out;
}

namespace {

class EngineView : public ServingView {
 public:
  EngineView(const Engine* engine,
             std::shared_ptr<const GraphSnapshot> snap)
      : engine_(engine), snap_(std::move(snap)) {}

  uint64_t epoch() const override { return snap_->epoch; }

  Result<WireResult> RunQuery(const FinderQuery& query,
                              uint8_t flags) const override {
    auto result = engine_->QueryAt(snap_, query);
    ST_RETURN_IF_ERROR(result.status());
    WireResult wire;
    wire.epoch = result.value().epoch;
    wire.warm_online = result.value().warm_online;
    wire.chains = ToWireChains(*snap_, result.value(), flags);
    return wire;
  }

 private:
  const Engine* const engine_;
  const std::shared_ptr<const GraphSnapshot> snap_;
};

class EngineBackend : public ServingBackend {
 public:
  explicit EngineBackend(Engine* engine) : engine_(engine) {}

  std::shared_ptr<const ServingView> Pin() const override {
    return std::make_shared<EngineView>(engine_, engine_->snapshot());
  }

  EngineStats stats() const override { return engine_->stats(); }

  std::vector<WireShardStats> shard_stats() const override { return {}; }

  void SetPublishCallback(ViewCallback cb) override {
    if (!cb) {
      engine_->SetPublishCallback(nullptr);
      return;
    }
    Engine* engine = engine_;
    engine_->SetPublishCallback(
        [engine, cb = std::move(cb)](
            const std::shared_ptr<const GraphSnapshot>& snap) {
          cb(std::make_shared<EngineView>(engine, snap));
        });
  }

 private:
  Engine* const engine_;
};

class ShardedView : public ServingView {
 public:
  ShardedView(const ShardedEngine* engine,
              std::shared_ptr<const ShardedSnapshot> snap)
      : engine_(engine), snap_(std::move(snap)) {}

  uint64_t epoch() const override { return snap_->epoch; }

  Result<WireResult> RunQuery(const FinderQuery& query,
                              uint8_t flags) const override {
    auto result = engine_->QueryAt(snap_, query);
    ST_RETURN_IF_ERROR(result.status());
    const ShardedQueryResult& merged = result.value();
    WireResult wire;
    wire.epoch = merged.epoch;
    wire.warm_online = merged.warm_online;
    wire.chains.reserve(merged.chains.size());
    for (size_t i = 0; i < merged.chains.size(); ++i) {
      WireChain chain;
      chain.nodes = merged.chains[i].path.nodes;
      chain.weight = merged.chains[i].path.weight;
      chain.length = merged.chains[i].path.length;
      if (flags & kFlagRender) {
        // Node ids (and word tables) are shard-local: render through
        // the producing shard.
        chain.rendered = engine_->RenderChain(merged.chains[i],
                                              merged.chain_shard[i]);
      }
      wire.chains.push_back(std::move(chain));
    }
    return wire;
  }

 private:
  const ShardedEngine* const engine_;
  const std::shared_ptr<const ShardedSnapshot> snap_;
};

class ShardedBackend : public ServingBackend {
 public:
  explicit ShardedBackend(ShardedEngine* engine) : engine_(engine) {}

  std::shared_ptr<const ServingView> Pin() const override {
    return std::make_shared<ShardedView>(engine_, engine_->snapshot());
  }

  EngineStats stats() const override { return engine_->stats(); }

  std::vector<WireShardStats> shard_stats() const override {
    std::vector<WireShardStats> out;
    const std::vector<EngineStats> per = engine_->shard_stats();
    out.reserve(per.size());
    for (const EngineStats& s : per) {
      WireShardStats shard;
      shard.clusters = s.clusters;
      shard.edges = s.edges;
      shard.keywords = s.keywords;
      shard.resident_bytes = s.resident_bytes;
      out.push_back(shard);
    }
    return out;
  }

  void SetPublishCallback(ViewCallback cb) override {
    if (!cb) {
      engine_->SetPublishCallback(nullptr);
      return;
    }
    ShardedEngine* engine = engine_;
    engine_->SetPublishCallback(
        [engine, cb = std::move(cb)](
            const std::shared_ptr<const ShardedSnapshot>& snap) {
          cb(std::make_shared<ShardedView>(engine, snap));
        });
  }

 private:
  ShardedEngine* const engine_;
};

}  // namespace

std::unique_ptr<ServingBackend> MakeServingBackend(Engine* engine) {
  return std::make_unique<EngineBackend>(engine);
}

std::unique_ptr<ServingBackend> MakeServingBackend(ShardedEngine* engine) {
  return std::make_unique<ShardedBackend>(engine);
}

}  // namespace net
}  // namespace stabletext
