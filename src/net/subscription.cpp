#include "net/subscription.h"

namespace stabletext {
namespace net {

uint64_t SubscriptionRegistry::Add(uint64_t connection_id,
                                   const FinderQuery& query,
                                   uint8_t flags) {
  WriterMutexLock lock(mu_);
  const uint64_t id = next_id_++;
  auto sub = std::make_shared<Subscription>();
  sub->id = id;
  sub->connection_id = connection_id;
  sub->query = query;
  sub->flags = flags;
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

bool SubscriptionRegistry::Remove(uint64_t connection_id, uint64_t id) {
  WriterMutexLock lock(mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end() ||
      it->second->connection_id != connection_id) {
    return false;
  }
  subscriptions_.erase(it);
  return true;
}

void SubscriptionRegistry::RemoveConnection(uint64_t connection_id) {
  WriterMutexLock lock(mu_);
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->second->connection_id == connection_id) {
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::shared_ptr<Subscription>> SubscriptionRegistry::Snapshot()
    const {
  ReaderMutexLock lock(mu_);
  std::vector<std::shared_ptr<Subscription>> out;
  out.reserve(subscriptions_.size());
  for (const auto& [id, sub] : subscriptions_) out.push_back(sub);
  return out;
}

size_t SubscriptionRegistry::size() const {
  ReaderMutexLock lock(mu_);
  return subscriptions_.size();
}

}  // namespace net
}  // namespace stabletext
