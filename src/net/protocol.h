// Wire protocol of the network serving layer: a small length-prefixed
// binary framing that reuses the CRC32-checksummed record discipline of
// the write-ahead log (storage/wal.h), so a torn or bit-rotten frame is
// detected instead of misparsed.
//
// Frame layout (multi-byte fields host-endian, like every other byte
// stream this codebase writes — the protocol is machine-local; clients
// and servers are expected to share an architecture):
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = [u8 MsgType][u64 request_id][body]
//
// request_id echoes the client's id on responses so a client can
// interleave one-shot requests with server-initiated pushes; push frames
// (kDelta, kBye) carry request_id 0.
//
// Request types: PING, QUERY, SUBSCRIBE, UNSUBSCRIBE, STATS.
// Response types: PONG, RESULT, RETRY (admission control shed the
// request), ERROR, SUBSCRIBED, UNSUBSCRIBED, STATS_RESULT, and the
// pushed DELTA / BYE frames.

#ifndef STABLETEXT_NET_PROTOCOL_H_
#define STABLETEXT_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stable/finder.h"
#include "stable/path.h"
#include "util/status.h"

namespace stabletext {
namespace net {

/// Upper bound on one frame's payload; a peer announcing more is corrupt
/// (or hostile) and the connection is dropped.
constexpr uint32_t kMaxFramePayload = 8u << 20;

/// Bytes of framing overhead in front of every payload.
constexpr size_t kFrameHeaderBytes = 8;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 0x01,
  kQuery = 0x02,
  kSubscribe = 0x03,
  kUnsubscribe = 0x04,
  kStats = 0x05,
  // Responses and pushes.
  kPong = 0x81,
  kResult = 0x82,
  kRetry = 0x83,
  kError = 0x84,
  kSubscribed = 0x85,
  kUnsubscribed = 0x86,
  kStatsResult = 0x87,
  kDelta = 0x88,  ///< Pushed per-epoch top-k delta for a subscription.
  kBye = 0x89,    ///< Graceful-shutdown farewell; no more frames follow.
};

/// QUERY/SUBSCRIBE flag bits.
constexpr uint8_t kFlagRender = 0x01;  ///< Server renders chain text.

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  std::string body;
};

/// Serializes a complete frame (header + checksummed payload).
std::string EncodeFrame(MsgType type, uint64_t request_id,
                        const std::string& body);

/// \brief Incremental frame decoder over a non-blocking byte stream.
///
/// Feed() whatever read(2) returned; Next() yields complete frames in
/// order. A checksum mismatch or oversized length is kCorruption — the
/// stream can no longer be trusted and the connection must be dropped.
class FrameReader {
 public:
  void Feed(const void* data, size_t size);

  /// OK: *frame holds the next complete frame. kNotFound: need more
  /// bytes. kCorruption: the stream is torn (bad checksum / bad length).
  Status Next(Frame* frame);

  size_t buffered() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  size_t off_ = 0;  // Consumed prefix, compacted opportunistically.
};

// ---------------------------------------------------------------------
// Message bodies. Every Decode* validates bounds and enum ranges and
// returns kCorruption on a malformed body.

/// One top-k entry as it travels over the wire: the path plus an
/// optional server-rendered text (kFlagRender).
struct WireChain {
  std::vector<NodeId> nodes;
  double weight = 0;
  uint32_t length = 0;
  std::string rendered;

  friend bool operator==(const WireChain& a, const WireChain& b) {
    return a.nodes == b.nodes && a.weight == b.weight &&
           a.length == b.length && a.rendered == b.rendered;
  }
  friend bool operator!=(const WireChain& a, const WireChain& b) {
    return !(a == b);
  }
};

/// RESULT body: one query's answer.
struct WireResult {
  uint64_t epoch = 0;
  bool warm_online = false;
  std::vector<WireChain> chains;
};

/// DELTA body: the rank-wise difference between a subscription's last
/// pushed top-k and the top-k at `epoch`. Apply with ApplyDelta(): resize
/// to new_size, then overwrite each changed rank.
struct WireDelta {
  uint64_t subscription_id = 0;
  uint64_t epoch = 0;
  uint32_t new_size = 0;
  std::vector<std::pair<uint32_t, WireChain>> changes;  ///< (rank, entry).
};

/// Per-shard slice of a STATS_RESULT when the server fronts a
/// ShardedEngine (empty for a single engine).
struct WireShardStats {
  uint64_t clusters = 0;
  uint64_t edges = 0;
  uint64_t keywords = 0;
  uint64_t resident_bytes = 0;

  friend bool operator==(const WireShardStats& a, const WireShardStats& b) {
    return a.clusters == b.clusters && a.edges == b.edges &&
           a.keywords == b.keywords && a.resident_bytes == b.resident_bytes;
  }
};

/// STATS_RESULT body: the served engine's point-in-time stats plus the
/// serving layer's admission/push counters.
struct WireStats {
  uint64_t epoch = 0;
  uint32_t intervals = 0;
  uint64_t clusters = 0;
  uint64_t edges = 0;
  uint64_t keywords = 0;
  uint64_t resident_bytes = 0;
  uint64_t query_cache_hits = 0;
  uint64_t query_cache_misses = 0;
  uint64_t subscriptions_active = 0;
  uint64_t pushes_sent = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_served = 0;
  /// Queries that errored or whose worker died mid-query (ReaderFleet
  /// failures + per-query error replies).
  uint64_t queries_failed = 0;
  /// One entry per shard when serving a ShardedEngine; empty otherwise.
  std::vector<WireShardStats> shards;
};

/// RETRY body: queue diagnostics at rejection time.
struct WireRetry {
  uint32_t inflight = 0;
  uint32_t queued = 0;
};

std::string EncodeQueryBody(const FinderQuery& query, uint8_t flags);
Status DecodeQueryBody(const std::string& body, FinderQuery* query,
                       uint8_t* flags);

std::string EncodeResultBody(const WireResult& result);
Status DecodeResultBody(const std::string& body, WireResult* result);

std::string EncodeDeltaBody(const WireDelta& delta);
Status DecodeDeltaBody(const std::string& body, WireDelta* delta);

std::string EncodeStatsBody(const WireStats& stats);
Status DecodeStatsBody(const std::string& body, WireStats* stats);

std::string EncodeRetryBody(const WireRetry& retry);
Status DecodeRetryBody(const std::string& body, WireRetry* retry);

/// ERROR body: status code + message.
std::string EncodeErrorBody(const Status& status);
Status DecodeErrorBody(const std::string& body, Status* status);

/// PONG / SUBSCRIBED / UNSUBSCRIBED bodies: a single u64.
std::string EncodeU64Body(uint64_t value);
Status DecodeU64Body(const std::string& body, uint64_t* value);

/// Replaces `topk` with the state after `delta`: resize to new_size,
/// overwrite changed ranks. kCorruption when a changed rank is out of
/// range.
Status ApplyDelta(std::vector<WireChain>* topk, const WireDelta& delta);

/// The rank-wise delta turning `last` into `now` (what the notifier
/// pushes): every rank whose entry differs — including ranks beyond
/// last's size — plus the new size (ranks beyond it are dropped).
WireDelta DiffTopK(const std::vector<WireChain>& last,
                   const std::vector<WireChain>& now);

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_PROTOCOL_H_
