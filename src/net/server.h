// TCP serving layer in front of an Engine or a ShardedEngine (via
// net/serving_backend.h): a poll-based event loop on one thread
// (non-blocking sockets, no thread-per-connection), a worker pool built
// on ReaderFleet executing admitted QUERY requests against pinned
// epochs, and a notifier thread that turns every published epoch into
// per-subscription DELTA pushes (net/subscription.h).
//
// Admission control: QUERY frames pass a bounded admission gate —
// at most `max_inflight` admitted-but-unanswered queries plus a
// `queue_depth` cap on the waiting queue. Past either bound the loop
// replies RETRY immediately instead of stalling; the event loop never
// blocks on query execution, so PING/STATS/SUBSCRIBE stay responsive
// under overload. Frames arriving in one socket read are decoded and
// admitted as a batch within a single event-loop turn.
//
// Lifecycle: Start() must run before the engine begins ingesting (it
// registers the engine's publish callback, a writer-side operation) and
// Shutdown() must not race Ingest* for the same reason. Shutdown is
// graceful: stop accepting, shed new queries with RETRY, drain every
// admitted query, let the notifier flush the deltas of every already
// published epoch, send each connection a BYE frame, flush, close.
//
// The query path keeps the engine's lock-freedom intact: workers and the
// notifier go through Engine::QueryAt on pinned snapshots exactly like
// in-process readers; the serving layer adds no lock on that path (its
// queues synchronize only admission and response hand-off).

#ifndef STABLETEXT_NET_SERVER_H_
#define STABLETEXT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/engine.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/serving_backend.h"
#include "net/subscription.h"
#include "util/annotated_mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace stabletext {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;        ///< 0 = ephemeral; read back via port().
  size_t workers = 2;       ///< Query worker threads (ReaderFleet).
  /// Admitted-but-unanswered QUERY cap (queued + executing + responses
  /// not yet handed to the connection). Past it: RETRY.
  size_t max_inflight = 64;
  /// Waiting-queue cap (jobs admitted but not yet picked up). Past it:
  /// RETRY even below max_inflight.
  size_t queue_depth = 128;
  /// Graceful-shutdown budget: drain in-flight queries and pending
  /// subscription pushes for at most this long before force-closing.
  int drain_timeout_ms = 5000;
  /// Test-only: runs on a worker thread before each admitted query
  /// executes (lets tests hold workers to force deterministic overload).
  std::function<void()> worker_test_hook;
};

class Server {
 public:
  /// `engine` must outlive the server and must not be ingesting yet
  /// when Start() runs (see the lifecycle note above).
  Server(Engine* engine, ServerOptions options);
  /// Same, fronting a sharded fleet: queries scatter-gather through the
  /// threshold merge, STATS frames carry per-shard slices.
  Server(ShardedEngine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, registers the engine publish hook, spawns the loop, worker
  /// and notifier threads. Returns the bound state via port().
  Status Start();

  /// Graceful shutdown (see header comment). Idempotent; must not race
  /// Engine::Ingest*.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  // Serving-layer counters (live).
  uint64_t pushes_sent() const { return pushes_sent_.load(); }
  uint64_t queries_rejected() const { return queries_rejected_.load(); }
  uint64_t queries_served() const { return queries_served_.load(); }
  /// Queries that returned an error reply plus workers that died
  /// mid-query (ReaderFleet::failed — their query never got a reply).
  uint64_t queries_failed() const {
    return queries_errored_.load(std::memory_order_relaxed) +
           (workers_ ? workers_->failed() : 0);
  }
  size_t subscriptions_active() const { return registry_.size(); }

  /// Folds the serving-layer counters into an EngineStats (the fields
  /// engine-side code leaves zero). Used by the STATS handler, the CLI
  /// and bench_serve.
  void FillServingStats(EngineStats* stats) const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameReader reader;
    std::string out;
    size_t out_off = 0;
  };

  // Admitted query awaiting a worker.
  struct Job {
    uint64_t connection_id = 0;
    uint64_t request_id = 0;
    FinderQuery query;
    uint8_t flags = 0;
  };

  // Response/push bytes headed for a connection, handed to the loop.
  struct Outbound {
    uint64_t connection_id = 0;
    std::string bytes;
    bool completes_query = false;  ///< Decrements the admission gate.
  };

  // Thread entry points: each assumes the capabilities of the thread it
  // runs on internally (RunLoop holds loop_.role for its whole life).
  void RunLoop();
  void WorkerLoop();
  void NotifierLoop();
  void OnPublish(const std::shared_ptr<const ServingView>& view);

  // Loop-thread-affine handlers and helpers: REQUIRES(loop_.role) makes
  // "only the loop thread touches connection state" compile-checked.
  void OnAccept() REQUIRES(loop_.role);
  void OnConnEvent(uint64_t connection_id, uint32_t events)
      REQUIRES(loop_.role);
  void HandleFrame(Connection* conn, const Frame& frame)
      REQUIRES(loop_.role);
  void HandleQuery(Connection* conn, const Frame& frame)
      REQUIRES(loop_.role);
  void Reply(Connection* conn, MsgType type, uint64_t request_id,
             const std::string& body) REQUIRES(loop_.role);
  void AppendOut(Connection* conn, const std::string& bytes)
      REQUIRES(loop_.role);
  // May close the connection.
  void TryFlush(Connection* conn) REQUIRES(loop_.role);
  void CloseConnection(uint64_t connection_id) REQUIRES(loop_.role);
  void EnqueueOutbound(uint64_t connection_id, std::string bytes,
                       bool completes_query);
  void DrainOutbound() REQUIRES(loop_.role);
  bool DrainComplete();
  bool AnyPendingOutput() const REQUIRES(loop_.role);

  // The served engine, behind the backend abstraction (owned; the
  // engine itself is borrowed and must outlive the server).
  const std::unique_ptr<ServingBackend> backend_;
  const ServerOptions options_;

  EventLoop loop_;
  int listen_fd_ GUARDED_BY(loop_.role) = -1;
  uint16_t port_ = 0;  // Set in Start() before any thread exists.
  std::thread loop_thread_;
  std::unique_ptr<ReaderFleet> workers_;
  std::unique_ptr<ReaderFleet> notifier_;

  // Loop-thread state: owned by whichever thread holds loop_.role (the
  // setup thread during Start(), then the loop thread exclusively).
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(loop_.role);
  uint64_t next_connection_id_ GUARDED_BY(loop_.role) = 1;

  // Admission gate and work queue.
  std::atomic<size_t> admitted_{0};
  Mutex work_mu_;
  CondVar work_cv_;
  std::deque<Job> work_ GUARDED_BY(work_mu_);
  bool stop_workers_ GUARDED_BY(work_mu_) = false;

  // Completed responses / pushes headed back to the loop thread.
  Mutex out_mu_;
  std::deque<Outbound> outbound_ GUARDED_BY(out_mu_);

  // Published epoch views awaiting notifier processing.
  Mutex snap_mu_;
  CondVar snap_cv_;
  std::deque<std::shared_ptr<const ServingView>> snapshots_
      GUARDED_BY(snap_mu_);
  bool notifier_busy_ GUARDED_BY(snap_mu_) = false;
  bool stop_notifier_ GUARDED_BY(snap_mu_) = false;

  SubscriptionRegistry registry_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_started_{false};
  std::atomic<uint64_t> pushes_sent_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> queries_errored_{0};
};

}  // namespace net
}  // namespace stabletext

#endif  // STABLETEXT_NET_SERVER_H_
