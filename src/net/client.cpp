#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unistd.h>

#include "net/socket.h"

namespace stabletext {
namespace net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port,
                       int attempts) {
  Close();
  Status last = Status::IOError("no attempt made");
  for (int i = 0; i < std::max(1, attempts); ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    auto fd = ConnectTcp(host, port);
    if (fd.ok()) {
      fd_ = fd.value();
      return Status::OK();
    }
    last = fd.status();
  }
  return last;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
  pending_pushes_.clear();
}

Status Client::SendFrame(MsgType type, uint64_t request_id,
                         const std::string& body) {
  if (fd_ < 0) return Status::IOError("not connected");
  const std::string frame = EncodeFrame(type, request_id, body);
  size_t off = 0;
  while (off < frame.size()) {
    const IoOutcome io =
        WriteSome(fd_, frame.data() + off, frame.size() - off);
    if (!io.ok) {
      Close();
      return Status::IOError("connection lost while sending");
    }
    // Blocking socket: would_block cannot happen; n advances.
    off += static_cast<size_t>(io.n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("not connected");
  Frame frame;
  for (;;) {
    Status s = reader_.Next(&frame);
    if (s.ok()) return frame;
    if (s.code() != StatusCode::kNotFound) {
      Close();
      return s;  // Torn stream.
    }
    s = WaitReadable(fd_, timeout_ms);
    if (!s.ok()) return s;  // kNotFound = timeout, kIOError = poll.
    char buf[16 * 1024];
    const IoOutcome io = ReadSome(fd_, buf, sizeof(buf));
    if (!io.ok) {
      Close();
      return Status::IOError("read failed");
    }
    if (io.n == 0 && !io.would_block) {
      Close();
      return Status::IOError("connection closed by server");
    }
    if (io.n > 0) reader_.Feed(buf, static_cast<size_t>(io.n));
  }
}

Result<Frame> Client::Call(MsgType type, const std::string& body) {
  const uint64_t request_id = next_request_id_++;
  ST_RETURN_IF_ERROR(SendFrame(type, request_id, body));
  for (;;) {
    auto frame = ReadFrame(/*timeout_ms=*/30000);
    if (!frame.ok()) return frame.status();
    if (frame.value().type == MsgType::kDelta ||
        frame.value().type == MsgType::kBye) {
      pending_pushes_.push_back(std::move(frame).value());
      continue;
    }
    if (frame.value().request_id != request_id) {
      // A response to a request this helper never issued: protocol
      // violation.
      Close();
      return Status::Corruption("response for unknown request id");
    }
    return frame;
  }
}

Result<WireResult> Client::Query(const FinderQuery& query, bool render,
                                 bool* retry) {
  if (retry != nullptr) *retry = false;
  auto frame = Call(MsgType::kQuery,
                    EncodeQueryBody(query, render ? kFlagRender : 0));
  if (!frame.ok()) return frame.status();
  switch (frame.value().type) {
    case MsgType::kResult: {
      WireResult result;
      ST_RETURN_IF_ERROR(DecodeResultBody(frame.value().body, &result));
      return result;
    }
    case MsgType::kRetry: {
      if (retry != nullptr) *retry = true;
      return WireResult{};
    }
    case MsgType::kError: {
      Status remote = Status::OK();
      ST_RETURN_IF_ERROR(DecodeErrorBody(frame.value().body, &remote));
      if (remote.ok()) return Status::Corruption("ERROR frame carried OK");
      return remote;
    }
    default:
      Close();
      return Status::Corruption("unexpected response to QUERY");
  }
}

Result<WireResult> Client::QueryWithRetry(const FinderQuery& query,
                                          bool render, int max_attempts,
                                          int backoff_ms) {
  for (int attempt = 0;; ++attempt) {
    bool retry = false;
    auto result = Query(query, render, &retry);
    if (!result.ok()) return result.status();
    if (!retry) return result;
    if (attempt + 1 >= max_attempts) {
      return Status::IOError("server overloaded (RETRY after " +
                             std::to_string(max_attempts) + " attempts)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

Result<uint64_t> Client::Subscribe(const FinderQuery& query,
                                   bool render) {
  auto frame = Call(MsgType::kSubscribe,
                    EncodeQueryBody(query, render ? kFlagRender : 0));
  if (!frame.ok()) return frame.status();
  if (frame.value().type == MsgType::kError) {
    Status remote = Status::OK();
    ST_RETURN_IF_ERROR(DecodeErrorBody(frame.value().body, &remote));
    if (remote.ok()) return Status::Corruption("ERROR frame carried OK");
    return remote;
  }
  if (frame.value().type != MsgType::kSubscribed) {
    Close();
    return Status::Corruption("unexpected response to SUBSCRIBE");
  }
  uint64_t id = 0;
  ST_RETURN_IF_ERROR(DecodeU64Body(frame.value().body, &id));
  return id;
}

Status Client::Unsubscribe(uint64_t subscription_id) {
  auto frame =
      Call(MsgType::kUnsubscribe, EncodeU64Body(subscription_id));
  if (!frame.ok()) return frame.status();
  if (frame.value().type == MsgType::kError) {
    Status remote = Status::OK();
    ST_RETURN_IF_ERROR(DecodeErrorBody(frame.value().body, &remote));
    return remote.ok() ? Status::Corruption("ERROR frame carried OK")
                       : remote;
  }
  if (frame.value().type != MsgType::kUnsubscribed) {
    Close();
    return Status::Corruption("unexpected response to UNSUBSCRIBE");
  }
  return Status::OK();
}

Result<WireStats> Client::Stats() {
  auto frame = Call(MsgType::kStats, "");
  if (!frame.ok()) return frame.status();
  if (frame.value().type != MsgType::kStatsResult) {
    Close();
    return Status::Corruption("unexpected response to STATS");
  }
  WireStats stats;
  ST_RETURN_IF_ERROR(DecodeStatsBody(frame.value().body, &stats));
  return stats;
}

Result<uint64_t> Client::Ping() {
  auto frame = Call(MsgType::kPing, "");
  if (!frame.ok()) return frame.status();
  if (frame.value().type != MsgType::kPong) {
    Close();
    return Status::Corruption("unexpected response to PING");
  }
  uint64_t epoch = 0;
  ST_RETURN_IF_ERROR(DecodeU64Body(frame.value().body, &epoch));
  return epoch;
}

Result<WireDelta> Client::NextPush(int timeout_ms, bool* is_bye) {
  if (is_bye != nullptr) *is_bye = false;
  Frame frame;
  if (!pending_pushes_.empty()) {
    frame = std::move(pending_pushes_.front());
    pending_pushes_.pop_front();
  } else {
    auto read = ReadFrame(timeout_ms);
    if (!read.ok()) return read.status();
    frame = std::move(read).value();
  }
  if (frame.type == MsgType::kBye) {
    if (is_bye != nullptr) *is_bye = true;
    return WireDelta{};
  }
  if (frame.type != MsgType::kDelta) {
    Close();
    return Status::Corruption("unexpected frame while awaiting push");
  }
  WireDelta delta;
  ST_RETURN_IF_ERROR(DecodeDeltaBody(frame.body, &delta));
  return delta;
}

}  // namespace net
}  // namespace stabletext
