#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace stabletext {
namespace net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

Result<in_addr> ResolveHost(const std::string& host) {
  in_addr addr{};
  const std::string use = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, use.c_str(), &addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + use);
  }
  return addr;
}

}  // namespace

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  const size_t colon = spec.rfind(':');
  std::string host;
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;
  } else {
    host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (port_str.empty()) {
    return Status::InvalidArgument("missing port in \"" + spec + "\"");
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end != port_str.c_str() + port_str.size() || port < 1 ||
      port > 65535) {
    return Status::InvalidArgument("bad port in \"" + spec + "\"");
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      int backlog) {
  auto addr = ResolveHost(host);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr.value();
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status s = ErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = ErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  auto addr = ResolveHost(host);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr.value();
  sa.sin_port = htons(port);
  // Non-blocking connect with a bounded poll wait, then back to blocking
  // mode for the caller.
  Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      return rc == 0 ? Status::IOError("connect timed out")
                     : ErrnoStatus("poll");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return Status::IOError(std::string("connect: ") +
                             std::strerror(err != 0 ? err : errno));
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    s = ErrnoStatus("fcntl");
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(sa.sin_port));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

IoOutcome ReadSome(int fd, void* buf, size_t size) {
  IoOutcome out;
  for (;;) {
    const ssize_t n = ::read(fd, buf, size);
    if (n >= 0) {
      out.n = n;
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.would_block = true;
      return out;
    }
    out.ok = false;
    return out;
  }
}

IoOutcome WriteSome(int fd, const void* buf, size_t size) {
  IoOutcome out;
  for (;;) {
    const ssize_t n = ::send(fd, buf, size, MSG_NOSIGNAL);
    if (n >= 0) {
      out.n = n;
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.would_block = true;
      return out;
    }
    out.ok = false;
    return out;
  }
}

Status WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll");
  if (rc == 0) return Status::NotFound("poll timed out");
  if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
    return Status::IOError("poll: unexpected event");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace stabletext
