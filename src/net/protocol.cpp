#include "net/protocol.h"

#include <cstring>

#include "util/crc32.h"

namespace stabletext {
namespace net {

namespace {

// Append/consume helpers. Fixed-width fields are memcpy'd host-endian —
// the same machine-local discipline as the storage layer (see the header
// comment).

template <typename T>
void PutPod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutString(std::string* out, const std::string& s) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked sequential reader over a decoded body.
class BodyReader {
 public:
  explicit BodyReader(const std::string& body) : body_(body) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (body_.size() - off_ < sizeof(T)) return false;
    std::memcpy(value, body_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!Get(&len)) return false;
    if (body_.size() - off_ < len) return false;
    s->assign(body_.data() + off_, len);
    off_ += len;
    return true;
  }

  bool Done() const { return off_ == body_.size(); }

 private:
  const std::string& body_;
  size_t off_ = 0;
};

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed ") + what + " body");
}

void PutChain(std::string* out, const WireChain& chain) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(chain.nodes.size()));
  for (const NodeId node : chain.nodes) PutPod<uint32_t>(out, node);
  PutPod<double>(out, chain.weight);
  PutPod<uint32_t>(out, chain.length);
  PutString(out, chain.rendered);
}

bool GetChain(BodyReader* in, WireChain* chain) {
  uint32_t n = 0;
  if (!in->Get(&n)) return false;
  if (n > kMaxFramePayload / sizeof(NodeId)) return false;
  chain->nodes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!in->Get(&chain->nodes[i])) return false;
  }
  return in->Get(&chain->weight) && in->Get(&chain->length) &&
         in->GetString(&chain->rendered);
}

}  // namespace

std::string EncodeFrame(MsgType type, uint64_t request_id,
                        const std::string& body) {
  std::string payload;
  payload.reserve(1 + 8 + body.size());
  PutPod<uint8_t>(&payload, static_cast<uint8_t>(type));
  PutPod<uint64_t>(&payload, request_id);
  payload.append(body);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutPod<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  PutPod<uint32_t>(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

void FrameReader::Feed(const void* data, size_t size) {
  // Compact the consumed prefix before it dominates the buffer.
  if (off_ > 0 && (off_ == buf_.size() || off_ > 64 * 1024)) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(static_cast<const char*>(data), size);
}

Status FrameReader::Next(Frame* frame) {
  if (buffered() < kFrameHeaderBytes) {
    return Status::NotFound("need more bytes");
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, buf_.data() + off_, sizeof(len));
  std::memcpy(&crc, buf_.data() + off_ + 4, sizeof(crc));
  if (len < 9 || len > kMaxFramePayload) {
    return Status::Corruption("bad frame length");
  }
  if (buffered() < kFrameHeaderBytes + len) {
    return Status::NotFound("need more bytes");
  }
  const char* payload = buf_.data() + off_ + kFrameHeaderBytes;
  if (Crc32(payload, len) != crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  frame->type = static_cast<MsgType>(static_cast<uint8_t>(payload[0]));
  std::memcpy(&frame->request_id, payload + 1, sizeof(uint64_t));
  frame->body.assign(payload + 9, len - 9);
  off_ += kFrameHeaderBytes + len;
  return Status::OK();
}

std::string EncodeQueryBody(const FinderQuery& query, uint8_t flags) {
  std::string body;
  PutPod<uint8_t>(&body, static_cast<uint8_t>(query.algorithm));
  PutPod<uint8_t>(&body, static_cast<uint8_t>(query.mode));
  PutPod<uint64_t>(&body, query.k);
  PutPod<uint32_t>(&body, query.l);
  PutPod<uint32_t>(&body, query.diversify_prefix);
  PutPod<uint32_t>(&body, query.diversify_suffix);
  PutPod<uint64_t>(&body, query.diversify_candidates);
  PutPod<uint64_t>(&body, query.memory_budget_bytes);
  PutPod<uint8_t>(&body, query.theorem1_pruning ? 1 : 0);
  PutPod<uint64_t>(&body, query.max_probes);
  PutPod<uint8_t>(&body, flags);
  return body;
}

Status DecodeQueryBody(const std::string& body, FinderQuery* query,
                       uint8_t* flags) {
  BodyReader in(body);
  uint8_t algorithm = 0;
  uint8_t mode = 0;
  uint64_t k = 0;
  uint8_t theorem1 = 0;
  if (!in.Get(&algorithm) || !in.Get(&mode) || !in.Get(&k) ||
      !in.Get(&query->l) || !in.Get(&query->diversify_prefix) ||
      !in.Get(&query->diversify_suffix)) {
    return Malformed("query");
  }
  uint64_t candidates = 0;
  uint64_t budget = 0;
  uint64_t max_probes = 0;
  if (!in.Get(&candidates) || !in.Get(&budget) || !in.Get(&theorem1) ||
      !in.Get(&max_probes) || !in.Get(flags) || !in.Done()) {
    return Malformed("query");
  }
  if (algorithm > static_cast<uint8_t>(FinderAlgorithm::kOnline) ||
      mode > static_cast<uint8_t>(FinderMode::kNormalized)) {
    return Malformed("query");
  }
  query->algorithm = static_cast<FinderAlgorithm>(algorithm);
  query->mode = static_cast<FinderMode>(mode);
  query->k = static_cast<size_t>(k);
  query->diversify_candidates = static_cast<size_t>(candidates);
  query->memory_budget_bytes = static_cast<size_t>(budget);
  query->theorem1_pruning = theorem1 != 0;
  query->max_probes = max_probes;
  return Status::OK();
}

std::string EncodeResultBody(const WireResult& result) {
  std::string body;
  PutPod<uint64_t>(&body, result.epoch);
  PutPod<uint8_t>(&body, result.warm_online ? 1 : 0);
  PutPod<uint32_t>(&body, static_cast<uint32_t>(result.chains.size()));
  for (const WireChain& chain : result.chains) PutChain(&body, chain);
  return body;
}

Status DecodeResultBody(const std::string& body, WireResult* result) {
  BodyReader in(body);
  uint8_t warm = 0;
  uint32_t n = 0;
  if (!in.Get(&result->epoch) || !in.Get(&warm) || !in.Get(&n)) {
    return Malformed("result");
  }
  result->warm_online = warm != 0;
  result->chains.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetChain(&in, &result->chains[i])) return Malformed("result");
  }
  return in.Done() ? Status::OK() : Malformed("result");
}

std::string EncodeDeltaBody(const WireDelta& delta) {
  std::string body;
  PutPod<uint64_t>(&body, delta.subscription_id);
  PutPod<uint64_t>(&body, delta.epoch);
  PutPod<uint32_t>(&body, delta.new_size);
  PutPod<uint32_t>(&body, static_cast<uint32_t>(delta.changes.size()));
  for (const auto& [rank, chain] : delta.changes) {
    PutPod<uint32_t>(&body, rank);
    PutChain(&body, chain);
  }
  return body;
}

Status DecodeDeltaBody(const std::string& body, WireDelta* delta) {
  BodyReader in(body);
  uint32_t n = 0;
  if (!in.Get(&delta->subscription_id) || !in.Get(&delta->epoch) ||
      !in.Get(&delta->new_size) || !in.Get(&n)) {
    return Malformed("delta");
  }
  delta->changes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!in.Get(&delta->changes[i].first) ||
        !GetChain(&in, &delta->changes[i].second)) {
      return Malformed("delta");
    }
  }
  return in.Done() ? Status::OK() : Malformed("delta");
}

std::string EncodeStatsBody(const WireStats& stats) {
  std::string body;
  PutPod<uint64_t>(&body, stats.epoch);
  PutPod<uint32_t>(&body, stats.intervals);
  PutPod<uint64_t>(&body, stats.clusters);
  PutPod<uint64_t>(&body, stats.edges);
  PutPod<uint64_t>(&body, stats.keywords);
  PutPod<uint64_t>(&body, stats.resident_bytes);
  PutPod<uint64_t>(&body, stats.query_cache_hits);
  PutPod<uint64_t>(&body, stats.query_cache_misses);
  PutPod<uint64_t>(&body, stats.subscriptions_active);
  PutPod<uint64_t>(&body, stats.pushes_sent);
  PutPod<uint64_t>(&body, stats.queries_rejected);
  PutPod<uint64_t>(&body, stats.queries_served);
  PutPod<uint64_t>(&body, stats.queries_failed);
  PutPod<uint32_t>(&body, static_cast<uint32_t>(stats.shards.size()));
  for (const WireShardStats& shard : stats.shards) {
    PutPod<uint64_t>(&body, shard.clusters);
    PutPod<uint64_t>(&body, shard.edges);
    PutPod<uint64_t>(&body, shard.keywords);
    PutPod<uint64_t>(&body, shard.resident_bytes);
  }
  return body;
}

Status DecodeStatsBody(const std::string& body, WireStats* stats) {
  BodyReader in(body);
  if (!in.Get(&stats->epoch) || !in.Get(&stats->intervals) ||
      !in.Get(&stats->clusters) || !in.Get(&stats->edges) ||
      !in.Get(&stats->keywords) || !in.Get(&stats->resident_bytes) ||
      !in.Get(&stats->query_cache_hits) ||
      !in.Get(&stats->query_cache_misses) ||
      !in.Get(&stats->subscriptions_active) ||
      !in.Get(&stats->pushes_sent) || !in.Get(&stats->queries_rejected) ||
      !in.Get(&stats->queries_served) || !in.Get(&stats->queries_failed)) {
    return Malformed("stats");
  }
  uint32_t shard_count = 0;
  if (!in.Get(&shard_count) ||
      shard_count > kMaxFramePayload / sizeof(WireShardStats)) {
    return Malformed("stats");
  }
  stats->shards.resize(shard_count);
  for (WireShardStats& shard : stats->shards) {
    if (!in.Get(&shard.clusters) || !in.Get(&shard.edges) ||
        !in.Get(&shard.keywords) || !in.Get(&shard.resident_bytes)) {
      return Malformed("stats");
    }
  }
  if (!in.Done()) return Malformed("stats");
  return Status::OK();
}

std::string EncodeRetryBody(const WireRetry& retry) {
  std::string body;
  PutPod<uint32_t>(&body, retry.inflight);
  PutPod<uint32_t>(&body, retry.queued);
  return body;
}

Status DecodeRetryBody(const std::string& body, WireRetry* retry) {
  BodyReader in(body);
  if (!in.Get(&retry->inflight) || !in.Get(&retry->queued) ||
      !in.Done()) {
    return Malformed("retry");
  }
  return Status::OK();
}

std::string EncodeErrorBody(const Status& status) {
  std::string body;
  PutPod<uint8_t>(&body, static_cast<uint8_t>(status.code()));
  PutString(&body, status.message());
  return body;
}

Status DecodeErrorBody(const std::string& body, Status* status) {
  BodyReader in(body);
  uint8_t code = 0;
  std::string message;
  if (!in.Get(&code) || !in.GetString(&message) || !in.Done() ||
      code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Malformed("error");
  }
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      *status = Status::OK();
      break;
    case StatusCode::kInvalidArgument:
      *status = Status::InvalidArgument(std::move(message));
      break;
    case StatusCode::kNotFound:
      *status = Status::NotFound(std::move(message));
      break;
    case StatusCode::kIOError:
      *status = Status::IOError(std::move(message));
      break;
    case StatusCode::kOutOfMemoryBudget:
      *status = Status::OutOfMemoryBudget(std::move(message));
      break;
    case StatusCode::kCorruption:
      *status = Status::Corruption(std::move(message));
      break;
    case StatusCode::kNotSupported:
      *status = Status::NotSupported(std::move(message));
      break;
    case StatusCode::kInternal:
      *status = Status::Internal(std::move(message));
      break;
    case StatusCode::kDataLoss:
      *status = Status::DataLoss(std::move(message));
      break;
  }
  return Status::OK();
}

std::string EncodeU64Body(uint64_t value) {
  std::string body;
  PutPod<uint64_t>(&body, value);
  return body;
}

Status DecodeU64Body(const std::string& body, uint64_t* value) {
  BodyReader in(body);
  if (!in.Get(value) || !in.Done()) return Malformed("u64");
  return Status::OK();
}

Status ApplyDelta(std::vector<WireChain>* topk, const WireDelta& delta) {
  topk->resize(delta.new_size);
  for (const auto& [rank, chain] : delta.changes) {
    if (rank >= delta.new_size) {
      return Status::Corruption("delta rank out of range");
    }
    (*topk)[rank] = chain;
  }
  return Status::OK();
}

WireDelta DiffTopK(const std::vector<WireChain>& last,
                   const std::vector<WireChain>& now) {
  WireDelta delta;
  delta.new_size = static_cast<uint32_t>(now.size());
  for (uint32_t rank = 0; rank < now.size(); ++rank) {
    if (rank >= last.size() || last[rank] != now[rank]) {
      delta.changes.emplace_back(rank, now[rank]);
    }
  }
  return delta;
}

}  // namespace net
}  // namespace stabletext
