// ClusterExtractor: turns the pruned keyword graph of one interval into the
// interval's cluster set. Section 3: "Our algorithm identifies all
// articulation points in G' and reports all vertices (with their associated
// edges) in each biconnected component as a cluster"; Section 5.3 counts
// connected components, so both decompositions are offered.

#ifndef STABLETEXT_CLUSTER_CLUSTER_EXTRACTOR_H_
#define STABLETEXT_CLUSTER_CLUSTER_EXTRACTOR_H_

#include <vector>

#include "cluster/biconnected.h"
#include "cluster/cluster.h"

namespace stabletext {

/// Which graph decomposition defines a cluster.
enum class ClusterMode {
  kBiconnected,         ///< One cluster per biconnected component (paper
                        ///< default, Section 3).
  kConnectedComponent,  ///< One cluster per connected component (the
                        ///< granularity reported in Section 5.3).
};

/// Options for cluster extraction.
struct ClusterExtractorOptions {
  ClusterMode mode = ClusterMode::kBiconnected;
  /// Clusters with fewer keywords are dropped. 2 keeps everything
  /// (bridges / "trees connecting components" are two-keyword clusters).
  size_t min_keywords = 2;
  /// Biconnected-finder tuning.
  BiconnectedOptions biconnected;
};

/// \brief Extracts the cluster set of one interval.
class ClusterExtractor {
 public:
  explicit ClusterExtractor(ClusterExtractorOptions options = {})
      : options_(options) {}

  /// Decomposes `graph` into clusters tagged with `interval`.
  /// `stats` may be null and is only filled in biconnected mode.
  Result<std::vector<Cluster>> Extract(const KeywordGraph& graph,
                                       uint32_t interval,
                                       BiconnectedStats* stats = nullptr);

 private:
  ClusterExtractorOptions options_;
};

}  // namespace stabletext

#endif  // STABLETEXT_CLUSTER_CLUSTER_EXTRACTOR_H_
