// Persistence for interval cluster sets. Clusters are the natural
// checkpoint between the two halves of the system (Section 3 cluster
// generation is expensive and append-only per interval; Section 4 stable-
// cluster queries are re-run with different parameters), so production use
// stores each interval's clusters on disk and reloads them for analysis.
//
// Format: line-oriented text, one cluster per line:
//   <interval>\t<k1,k2,...>\t<u:v:weight,...>
// Weights round-trip exactly (C99 hex floats).

#ifndef STABLETEXT_CLUSTER_CLUSTER_IO_H_
#define STABLETEXT_CLUSTER_CLUSTER_IO_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "util/status.h"

namespace stabletext {

/// Writes `clusters` to `path` (truncates).
Status SaveClusters(const std::vector<Cluster>& clusters,
                    const std::string& path);

/// Reads clusters previously written by SaveClusters into *out
/// (replacing its contents).
Status LoadClusters(const std::string& path, std::vector<Cluster>* out);

}  // namespace stabletext

#endif  // STABLETEXT_CLUSTER_CLUSTER_IO_H_
