// Cluster: a set of correlated keywords for one temporal interval, produced
// by the biconnected-component decomposition of the pruned keyword graph.

#ifndef STABLETEXT_CLUSTER_CLUSTER_H_
#define STABLETEXT_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cooccur/keyword_dict.h"
#include "graph/keyword_graph.h"
#include "util/arena.h"

namespace stabletext {

/// Flat sorted keyword storage: cache-line aligned and padded to whole
/// lines, so the SIMD intersection kernels (util/setops.h) stream it
/// without splitting blocks across unnecessary line boundaries.
using KeywordArray = std::vector<KeywordId, CacheAlignedAllocator<KeywordId>>;

/// \brief One keyword cluster: vertices plus their member edges.
struct Cluster {
  uint32_t interval = 0;               ///< Temporal interval the cluster
                                       ///< belongs to.
  KeywordArray keywords;               ///< Distinct, sorted ascending.
  std::vector<WeightedEdge> edges;     ///< Member edges (u < v).

  size_t size() const { return keywords.size(); }

  /// Sum of member edge weights (used by weighted affinity functions).
  double TotalEdgeWeight() const;

  /// True if `id` is a member keyword (binary search).
  bool Contains(KeywordId id) const;

  /// Renders keywords as text using `dict`, comma-separated, for display.
  std::string ToString(const KeywordDict& dict, size_t max_keywords = 12)
      const;
};

/// Normalizes a cluster: sorts and dedups keywords, sorts edges, canonical
/// (u < v) edge orientation.
void NormalizeCluster(Cluster* cluster);

}  // namespace stabletext

#endif  // STABLETEXT_CLUSTER_CLUSTER_H_
